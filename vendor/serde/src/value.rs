//! The JSON-shaped data model and error type.

use std::fmt;

/// A JSON-shaped value tree.
///
/// Integers are kept separate from floats (`i128` covers every integer type
/// in the workspace, including `u64` seeds) so typed round-trips do not go
/// through floating point. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number with no fractional part.
    Int(i128),
    /// A JSON number with a fractional part or exponent.
    Float(f64),
    /// A JSON string.
    Str(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object as ordered `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The boolean if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer if this is a [`Value::Int`].
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The number as an `f64` if this is numeric (int or float).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string slice if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements if this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The `(key, value)` pairs if this is a [`Value::Object`].
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Look up a key if this is a [`Value::Object`] (first match wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Serialization / deserialization error (a message, as in `serde::de::Error`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// "expected X, found Y" while deserializing `ty`.
    pub fn expected(what: &str, found: &Value, ty: &str) -> Self {
        Error(format!("expected {what} for {ty}, found {}", found.kind()))
    }

    /// An unrecognized externally-tagged enum variant.
    pub fn unknown_variant(tag: &str, ty: &str) -> Self {
        Error(format!("unknown variant `{tag}` for {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}
