//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment cannot reach a crates.io mirror, so the workspace
//! vendors the pieces it needs: the `Serialize` / `Deserialize` trait names
//! and the derive macros (which expand to nothing — see `serde_derive`).
//! The codebase annotates types with `#[derive(Serialize, Deserialize)]`
//! for downstream JSON export but never invokes a serializer itself, so
//! this is sufficient to build and run everything. Replace the path
//! dependency with real serde when a registry becomes available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. Never used as a bound in this
/// workspace; present so `use serde::Serialize` imports both the trait and
/// the derive macro, exactly as with real serde.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
