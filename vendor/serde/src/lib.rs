//! Offline stand-in for the subset of `serde` (+ `serde_json`) this
//! workspace uses.
//!
//! The build environment cannot reach a crates.io mirror, so the workspace
//! vendors the pieces it needs. Unlike the original no-op stub, this
//! version carries a real — if deliberately small — self-describing
//! serialization framework:
//!
//! - [`Value`]: a JSON-shaped data model (null, bool, integer, float,
//!   string, array, object with insertion-ordered keys).
//! - [`Serialize`] / [`Deserialize`]: traits converting to/from [`Value`],
//!   implemented for the std types the workspace stores in serialized
//!   structs and derivable for plain structs and enums via the
//!   `serde_derive` proc macros (externally-tagged enums, like real serde).
//! - [`json`]: a writer (compact and pretty) and a strict parser, playing
//!   the role of `serde_json`.
//!
//! Deviations from real serde, all documented where they bite:
//!
//! - The traits are self-describing (`to_value` / `from_value`) rather than
//!   visitor-based. Call sites that only `#[derive(Serialize, Deserialize)]`
//!   and go through [`json::to_string`] / [`json::from_str`] migrate to real
//!   serde + serde_json by swapping the path dependency and renaming
//!   `serde::json::` to `serde_json::`.
//! - Maps serialize as arrays of `[key, value]` pairs (sorted by key, so
//!   output is deterministic even for `HashMap`), sidestepping serde_json's
//!   string-keys-only restriction for the tuple-keyed maps in this
//!   workspace.
//! - Non-finite floats serialize as `null`, and `null` deserializes to
//!   `f64::NAN`, mirroring serde_json's lossy default.

mod impls;
pub mod json;
mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Error, Value};

/// Types that can be converted into a [`Value`] tree.
///
/// Mirrors `serde::Serialize` at the derive/import level; the method is a
/// simpler self-describing API (see the crate docs for the migration note).
pub trait Serialize {
    /// Convert `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
///
/// The `'de` lifetime parameter exists so `use serde::Deserialize` and
/// `impl<'de> Deserialize<'de>` read exactly as with real serde; this
/// implementation never borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Reconstruct `Self` from the data model.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Look up a required struct field in an object's pairs.
///
/// Support routine for the generated `Deserialize` impls; `ty` names the
/// containing type for the error message.
pub fn object_field<'a>(
    fields: &'a [(String, Value)],
    name: &str,
    ty: &str,
) -> Result<&'a Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}` in {ty}")))
}
