//! [`Serialize`] / [`Deserialize`] implementations for the std types the
//! workspace stores inside serialized structs.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::Hash;

use crate::{Deserialize, Error, Serialize, Value};

macro_rules! int_impls {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let i = value
                    .as_int()
                    .ok_or_else(|| Error::expected("integer", value, stringify!($ty)))?;
                <$ty>::try_from(i).map_err(|_| {
                    Error::custom(format!("{i} out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

macro_rules! float_impls {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    // Non-finite floats serialize as null (serde_json's
                    // default); accept it back as NaN so round-trips stay
                    // total.
                    Value::Null => Ok(<$ty>::NAN),
                    _ => value
                        .as_float()
                        .map(|f| f as $ty)
                        .ok_or_else(|| Error::expected("number", value, stringify!($ty))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::expected("bool", value, "bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned).ok_or_else(|| Error::expected("string", value, "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", value, "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+) of $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items =
                    value.as_array().ok_or_else(|| Error::expected("array", value, "tuple"))?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected array of {} for tuple, found {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A: 0) of 1;
    (A: 0, B: 1) of 2;
    (A: 0, B: 1, C: 2) of 3;
    (A: 0, B: 1, C: 2, D: 3) of 4;
}

/// Maps serialize as arrays of `[key, value]` pairs sorted by key: JSON
/// objects require string keys (this workspace has tuple-keyed maps), and
/// sorting makes `HashMap` output deterministic.
fn map_to_value<'a, K: Serialize + Ord + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    let mut entries: Vec<(&K, &V)> = entries.collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    Value::Array(
        entries.into_iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect(),
    )
}

fn map_entries<'de, K: Deserialize<'de>, V: Deserialize<'de>>(
    value: &Value,
) -> Result<Vec<(K, V)>, Error> {
    value
        .as_array()
        .ok_or_else(|| Error::expected("array of pairs", value, "map"))?
        .iter()
        .map(<(K, V)>::from_value)
        .collect()
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_entries::<K, V>(value)?.into_iter().collect())
    }
}

impl<K: Serialize + Ord + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<'de, K: Deserialize<'de> + Eq + Hash, V: Deserialize<'de>> Deserialize<'de> for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_entries::<K, V>(value)?.into_iter().collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(value)?.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
