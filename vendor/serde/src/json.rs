//! JSON text encoding of the [`Value`] data model (the `serde_json` role).
//!
//! The writer is deterministic: object keys keep their insertion order and
//! maps are already key-sorted by the `Serialize` impls, so equal inputs
//! produce byte-identical output. The parser is strict JSON (no comments,
//! no trailing commas) with one extension matching the writer: integers
//! parse as [`Value::Int`] and keep full `i128` precision.

use crate::{Deserialize, Error, Serialize, Value};

/// Serialize a typed value into the data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstruct a typed value from the data model.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    out
}

/// Serialize to human-readable JSON text (two-space indent, trailing newline).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    out.push('\n');
    out
}

/// Parse JSON text into a typed value.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

/// Parse JSON text into the data model.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    let value = parser.value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    Ok(value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) if f.is_finite() => {
            // f64's Display is the shortest decimal that round-trips, and
            // never uses exponent notation, so it is always valid JSON.
            out.push_str(&f.to_string());
        }
        // serde_json's default: non-finite floats become null.
        Value::Float(_) => out.push_str("null"),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items, indent, level, ('[', ']'), |out, item, indent, level| {
                write_value(out, item, indent, level)
            })
        }
        Value::Object(pairs) => {
            write_seq(out, pairs, indent, level, ('{', '}'), |out, (key, val), indent, level| {
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level);
            })
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    items: &[T],
    indent: Option<usize>,
    level: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, &T, Option<usize>, usize),
) {
    out.push(open);
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        write_item(out, item, indent, level + 1);
    }
    if !items.is_empty() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * level));
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting depth cap: artifacts are shallow; this bounds parser recursion.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nesting too deep"));
        }
        match self.peek().ok_or_else(|| self.err("unexpected end of input"))? {
            b'n' if self.eat_literal("null") => Ok(Value::Null),
            b't' if self.eat_literal("true") => Ok(Value::Bool(true)),
            b'f' if self.eat_literal("false") => Ok(Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(depth),
            b'{' => self.object(depth),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value(depth + 1)?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while matches!(self.bytes.get(self.pos), Some(&b) if b != b'"' && b != b'\\' && b >= 0x20)
            {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape_into(&mut s)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape_into(&mut self, s: &mut String) -> Result<(), Error> {
        let escape = *self.bytes.get(self.pos).ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match escape {
            b'"' => s.push('"'),
            b'\\' => s.push('\\'),
            b'/' => s.push('/'),
            b'b' => s.push('\u{8}'),
            b'f' => s.push('\u{c}'),
            b'n' => s.push('\n'),
            b'r' => s.push('\r'),
            b't' => s.push('\t'),
            b'u' => {
                let high = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&high) {
                    // Surrogate pair: a second \uXXXX must follow.
                    if !self.eat_literal("\\u") {
                        return Err(self.err("unpaired surrogate in string"));
                    }
                    let low = self.hex4()?;
                    0x10000 + ((high - 0xd800) << 10) + (low.wrapping_sub(0xdc00) & 0x3ff)
                } else {
                    high
                };
                s.push(char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?);
            }
            _ => return Err(self.err("unknown escape sequence")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
        } else {
            // Integers beyond i128 (never produced by the writer) fall back
            // to f64 rather than failing.
            text.parse::<i128>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Object(vec![
            ("id".into(), Value::Str("fig01".into())),
            ("n".into(), Value::Int(-42)),
            ("seed".into(), Value::Int(u64::MAX as i128)),
            ("pi".into(), Value::Float(3.25)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("xs".into(), Value::Array(vec![Value::Int(1), Value::Int(2)])),
        ]);
        let text = to_string(&v);
        assert_eq!(parse(&text).unwrap(), v);
        let pretty = to_string_pretty(&v);
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn escapes_and_parses_special_strings() {
        let s = "quote \" slash \\ newline \n tab \t nul \u{1} snowman ☃".to_string();
        let text = to_string(&s);
        assert!(text.contains("\\\"") && text.contains("\\n") && text.contains("\\u0001"));
        assert_eq!(from_str::<String>(&text).unwrap(), s);
        // Surrogate-pair escapes decode to the astral character.
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::INFINITY), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2", "{1: 2}"] {
            assert!(parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn typed_maps_round_trip_as_sorted_pair_arrays() {
        let mut m = std::collections::HashMap::new();
        m.insert((2usize, 1usize), 4.0f64);
        m.insert((1, 9), 2.5);
        let text = to_string(&m);
        assert_eq!(text, "[[[1,9],2.5],[[2,1],4]]");
        let back: std::collections::HashMap<(usize, usize), f64> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }
}
