//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach a crates.io mirror, so the workspace
//! vendors a sampling-only property harness: the `proptest!` macro runs each
//! property 64 times with inputs drawn from the strategy expressions
//! (integer/float ranges, tuples, `collection::vec`, `bool::ANY`), and
//! `prop_assert!` / `prop_assert_eq!` forward to the std assert macros.
//! There is **no shrinking** and no persisted failure seeds — the RNG is
//! fixed-seeded per test (derived from the property name) so failures
//! reproduce deterministically. Swap the path dependency for real proptest
//! when a registry becomes available.

use std::ops::Range;

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Deterministic SplitMix64 sampler state for one property run.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type (mirrors `proptest::strategy::Strategy`,
/// reduced to generation without shrinking).
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// Mirrors `proptest::bool::ANY`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for `collection::vec`: a fixed size or a range.
    pub trait SizeRange {
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Mirrors `proptest::collection::VecStrategy`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// FNV-1a, used to derive a per-property seed from its name so each test
/// gets a distinct but stable input stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Mirrors `proptest::proptest!`, reduced to the `#[test] fn name(pat in
/// strategy, ...) { body }` form actually used in this workspace. Each
/// property runs 64 sampled cases.
#[macro_export]
macro_rules! proptest {
    ($( #[test] fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )+) => {
        $(
            #[test]
            fn $name() {
                let mut __proptest_rng =
                    $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                for __proptest_case in 0u32..64 {
                    $( let $arg = $crate::Strategy::sample(&($strategy), &mut __proptest_rng); )+
                    $body
                }
            }
        )+
    };
}

/// Mirrors `proptest::prop_assert!` (failures panic instead of being
/// reported through a shrinking runner).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    crate::proptest! {
        #[test]
        fn ranges_tuples_and_vecs_sample_in_bounds(
            k in 2usize..64,
            x in 0.5f64..1.5,
            pair in (1usize..10, crate::bool::ANY),
            v in crate::collection::vec(0usize..5, 1usize..20)
        ) {
            prop_assert!((2..64).contains(&k));
            prop_assert!((0.5..1.5).contains(&x));
            prop_assert!((1..10).contains(&pair.0));
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }
}
