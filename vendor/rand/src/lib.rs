//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment cannot reach a crates.io mirror, so the workspace
//! vendors a deterministic PRNG exposing the exact API surface the code
//! relies on: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen,
//! gen_range, gen_bool}`, and `seq::SliceRandom::shuffle`. The generator is
//! SplitMix64 — statistically fine for simulation workloads and, unlike
//! real `StdRng`, stable across releases, which keeps seeded experiment
//! trajectories reproducible forever. Swap the path dependency for real
//! rand when a registry becomes available (seeded streams will change).

use std::ops::Range;

/// Object-safe source of random 64-bit words (mirrors `rand::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Mirrors `rand::SeedableRng`, reduced to the one constructor in use.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods (mirrors `rand::Rng`), blanket-implemented
/// for every `RngCore` exactly as in real rand.
pub trait Rng: RngCore {
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_in(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait SampleStandard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision, as in real rand.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `gen_range` (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < 2^-53 for the span sizes used here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: f64 = f64::sample_standard(rng);
                self.start + (u as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014): passes BigCrush, one
            // u64 of state, never produces the fixed point 0 forever.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Mirrors `rand::seq::SliceRandom`, reduced to `shuffle`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = a.gen();
            let y: f64 = b.gen();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
            let i = a.gen_range(0..17usize);
            assert!(i < 17);
            b.gen_range(0..17usize);
            let f = a.gen_range(2.5..3.5f64);
            assert!((2.5..3.5).contains(&f));
            b.gen_range(2.5..3.5f64);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6500..7500).contains(&hits), "got {hits}");
    }
}
