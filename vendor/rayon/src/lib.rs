//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The build environment cannot reach a crates.io mirror, so the workspace
//! vendors a thread-pool-free parallel iterator: `par_iter()` /
//! `into_par_iter()` followed by `map(...)` and `collect()` / `for_each()`.
//! Work is distributed over `std::thread::available_parallelism()` scoped
//! threads pulling indices from a shared atomic counter, so load-imbalanced
//! sweeps (the common case in the reproduce harness) still saturate all
//! cores. Unlike real rayon there is no work-stealing pool reuse, so only
//! use this for coarse-grained items — exactly what the sweep loops need.
//! Swap the path dependency for real rayon when a registry is available.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Conversion into a parallel iterator (mirrors `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    type Item: Send;

    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// `.par_iter()` sugar (mirrors `rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;

    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.into_par_iter()
    }
}

/// An eager parallel iterator over an already-materialized item list.
pub struct ParIter<I: Send> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    pub fn map<R, F>(self, f: F) -> ParMap<I, F>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        par_apply(self.items, f);
    }
}

/// The result of `par_iter().map(f)`; terminated by `collect` or `for_each`.
pub struct ParMap<I: Send, F> {
    items: Vec<I>,
    f: F,
}

impl<I, R, F> ParMap<I, F>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    /// Collects mapped results **in input order**, like real rayon.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let f = &self.f;
        par_apply(self.items, f).into_iter().collect()
    }

    pub fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync,
    {
        let f = &self.f;
        par_apply(self.items, move |item| g(f(item)));
    }
}

/// Thread-team size: `RAYON_NUM_THREADS` when set to a positive integer
/// (matching real rayon's env knob; `0`, empty, or unparsable values fall
/// back), otherwise `std::thread::available_parallelism()`. Read per call,
/// so tests and benches can toggle serial/parallel execution at runtime.
fn team_size() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// Applies `f` to every item on a scoped thread team, returning results in
/// input order.
fn par_apply<I: Send, R: Send>(items: Vec<I>, f: impl Fn(I) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let threads = team_size().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let item = work[idx].lock().unwrap().take().expect("item claimed twice");
                let result = f(item);
                *out[idx].lock().unwrap() = Some(result);
            });
        }
    });
    out.into_iter().map(|slot| slot.into_inner().unwrap().expect("worker died")).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_input_order() {
        let input: Vec<usize> = (0..1000).collect();
        let squares: Vec<usize> = input.par_iter().map(|&x| x * x).collect();
        assert_eq!(squares, (0..1000).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_consumes_vec() {
        let doubled: Vec<i64> = vec![1i64, 2, 3].into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    /// Serializes the tests that read or write `RAYON_NUM_THREADS`, since
    /// the env is process-global and tests run concurrently.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn rayon_num_threads_env_caps_the_team() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let seen = Mutex::new(HashSet::new());
        let input: Vec<usize> = (0..32).collect();
        let out: Vec<usize> = input
            .par_iter()
            .map(|&x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                x + 1
            })
            .collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(out, (1..33).collect::<Vec<_>>());
        assert_eq!(seen.lock().unwrap().len(), 1, "capped team must be serial");
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let _guard = ENV_LOCK.lock().unwrap();
        if std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1) < 2 {
            return; // single-core runner: nothing to assert
        }
        let seen = Mutex::new(HashSet::new());
        let input: Vec<usize> = (0..64).collect();
        input.par_iter().for_each(|_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        assert!(seen.lock().unwrap().len() > 1);
    }
}
