//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment cannot reach a crates.io mirror, so the workspace
//! vendors a small timing harness exposing the criterion API the benches
//! are written against: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark is warmed
//! up once and then timed for `sample_size` samples; mean and best times
//! are printed per benchmark. No statistical analysis, HTML reports, or
//! baseline comparison — swap in real criterion when a registry becomes
//! available for those.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Top-level harness handle (mirrors `criterion::Criterion`).
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _criterion: self, name, sample_size }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let n = self.default_sample_size;
        run_one(id, n, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size: sample_size.max(1) };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label:<50} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let best = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "  {label:<50} mean {:>12.3?}  best {:>12.3?}  ({} samples)",
        mean,
        best,
        bencher.samples.len()
    );
}

/// Mirrors `criterion::criterion_group!` (plain form, no custom config).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
