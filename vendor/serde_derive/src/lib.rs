//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors a minimal serde stand-in. The derives expand to
//! nothing: the codebase only annotates types for future serialization and
//! never calls a serializer, so empty expansions keep every annotation
//! compiling without pulling in the real dependency. Swap the `[patch]`-free
//! path dependency in the workspace root for real serde when a registry is
//! available.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
