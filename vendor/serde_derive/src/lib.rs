//! Real (minimal) `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors a serde stand-in. Unlike the original no-op expansion,
//! these derives generate working impls of the vendored `serde::Serialize`
//! / `serde::Deserialize` traits (self-describing `to_value` / `from_value`
//! conversions through `serde::Value`).
//!
//! Written directly against `proc_macro` token trees — `syn` / `quote` are
//! not available offline. Supported shapes, which cover every derive site
//! in the workspace:
//!
//! - structs with named fields (including private fields), tuple structs,
//!   and unit structs;
//! - enums with unit, tuple, and struct variants, encoded externally
//!   tagged exactly like real serde: `"Variant"`, `{"Variant": value}`,
//!   `{"Variant": [..]}`, `{"Variant": {..}}`.
//!
//! Generic type parameters and `#[serde(...)]` attributes are not
//! supported and panic with a clear message at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Input model

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// `struct S;`
    UnitStruct,
    /// `struct S(A, B);` with the field count.
    TupleStruct(usize),
    /// `struct S { a: A, b: B }` with the field names.
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    loop {
        match tokens.peek() {
            // Outer attributes (`#[...]`, including expanded doc comments).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the bracketed group
            }
            // Visibility: `pub`, optionally followed by `(crate)` etc.
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    tokens.next();
                }
            }
            _ => break,
        }
    }
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive: generic type `{name}` is not supported by the vendored serde");
    }
    let shape = match (keyword.as_str(), tokens.next()) {
        ("struct", None) | ("struct", Some(TokenTree::Punct(_))) => Shape::UnitStruct,
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(count_tuple_fields(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_variants(g.stream()))
        }
        (kw, other) => panic!("serde derive: unsupported {kw} body for `{name}`: {other:?}"),
    };
    Item { name, shape }
}

/// Parse `a: A, b: B, ...` (attributes and visibility allowed per field),
/// returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip per-field attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        tokens.next();
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(field)) = tokens.next() else { break };
        fields.push(field.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{field}`, found {other:?}"),
        }
        // Consume the type up to the next comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Count the comma-separated types of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    // Tokens since the last top-level comma — distinguishes the trailing
    // comma of `(A,)` from the separating comma of `(A, B)`.
    let mut pending = false;
    let mut angle_depth = 0i32;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                pending = false;
            }
            _ => pending = true,
        }
    }
    if pending {
        count + 1
    } else {
        count
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next();
        }
        let Some(TokenTree::Ident(name)) = tokens.next() else { break };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                tokens.next();
                VariantFields::Tuple(count)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream());
                tokens.next();
                VariantFields::Named(named)
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name: name.to_string(), fields });
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        for tok in tokens.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (as source text, parsed back into a TokenStream)

/// `("name".to_string(), serde::Serialize::to_value(&#expr))`
fn ser_pair(name: &str, expr: &str) -> String {
    format!("({name:?}.to_string(), serde::Serialize::to_value({expr}))")
}

/// The `Value::Object(...)` expression for a set of named fields accessed
/// through `prefix` (`&self.` for structs, `` for bound match variables).
fn ser_named(fields: &[String], prefix: &str) -> String {
    let pairs: Vec<String> = fields.iter().map(|f| ser_pair(f, &format!("{prefix}{f}"))).collect();
    format!("serde::Value::Object(vec![{}])", pairs.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::TupleStruct(count) => {
            let items: Vec<String> =
                (0..*count).map(|i| format!("serde::Serialize::to_value(&self.{i})")).collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::NamedStruct(fields) => ser_named(fields, "&self."),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vname} => serde::Value::Str({vname:?}.to_string()),"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => serde::Value::Object(vec![{}]),",
                            ser_pair(vname, "f0")
                        ),
                        VariantFields::Tuple(count) => {
                            let binds: Vec<String> = (0..*count).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => serde::Value::Object(vec![({vname:?}.to_string(), serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => format!(
                            "{name}::{vname} {{ {} }} => serde::Value::Object(vec![({vname:?}.to_string(), {})]),",
                            fields.join(", "),
                            ser_named(fields, "")
                        ),
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{ {body} }}\n}}"
    )
}

/// The struct-literal body deserializing named `fields` out of `pairs`
/// (a `&[(String, Value)]` binding), for type `ty` in error messages.
fn de_named(fields: &[String], pairs_var: &str, ty: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: serde::Deserialize::from_value(serde::object_field({pairs_var}, {f:?}, {ty:?})?)?"
            )
        })
        .collect();
    inits.join(", ")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => format!("{{ let _ = value; Ok({name}) }}"),
        Shape::TupleStruct(count) => {
            let inits: Vec<String> = (0..*count)
                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "{{\n
                let items = value.as_array().ok_or_else(|| serde::Error::expected(\"array\", value, {name:?}))?;\n
                if items.len() != {count} {{ return Err(serde::Error::custom(format!(\"expected {count} elements for {name}, found {{}}\", items.len()))); }}\n
                Ok({name}({}))\n
                }}",
                inits.join(", ")
            )
        }
        Shape::NamedStruct(fields) => format!(
            "{{\n
            let pairs = value.as_object().ok_or_else(|| serde::Error::expected(\"object\", value, {name:?}))?;\n
            Ok({name} {{ {} }})\n
            }}",
            de_named(fields, "pairs", name)
        ),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let data_variants: Vec<&Variant> =
                variants.iter().filter(|v| !matches!(v.fields, VariantFields::Unit)).collect();
            let data_arms: Vec<String> = data_variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    let vty = format!("{name}::{vname}");
                    match &v.fields {
                        VariantFields::Unit => unreachable!(),
                        VariantFields::Tuple(1) => format!(
                            "{vname:?} => Ok({name}::{vname}(serde::Deserialize::from_value(inner)?)),"
                        ),
                        VariantFields::Tuple(count) => {
                            let inits: Vec<String> = (0..*count)
                                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            format!(
                                "{vname:?} => {{\n
                                let items = inner.as_array().ok_or_else(|| serde::Error::expected(\"array\", inner, {vty:?}))?;\n
                                if items.len() != {count} {{ return Err(serde::Error::custom(format!(\"expected {count} elements for {vty}, found {{}}\", items.len()))); }}\n
                                Ok({name}::{vname}({}))\n
                                }}",
                                inits.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => format!(
                            "{vname:?} => {{\n
                            let pairs = inner.as_object().ok_or_else(|| serde::Error::expected(\"object\", inner, {vty:?}))?;\n
                            Ok({name}::{vname} {{ {} }})\n
                            }}",
                            de_named(fields, "pairs", &vty)
                        ),
                    }
                })
                .collect();
            let str_arm = format!(
                "serde::Value::Str(tag) => match tag.as_str() {{ {} other => Err(serde::Error::unknown_variant(other, {name:?})), }},",
                unit_arms.join(" ")
            );
            let object_arm = if data_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "serde::Value::Object(pairs) if pairs.len() == 1 => {{\n
                    let (tag, inner) = (&pairs[0].0, &pairs[0].1);\n
                    match tag.as_str() {{ {} other => Err(serde::Error::unknown_variant(other, {name:?})), }}\n
                    }},",
                    data_arms.join(" ")
                )
            };
            format!(
                "match value {{\n
                {str_arm}\n
                {object_arm}\n
                other => Err(serde::Error::expected(\"variant tag\", other, {name:?})),\n
                }}"
            )
        }
    };
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {{ {body} }}\n}}"
    )
}
