//! Integration tests spanning the whole workspace: model zoo → strategy
//! search → topology finder → flow-level simulation → cost model.

use topoopt::graph::topologies;
use topoopt::models::zoo::build_dlrm;
use topoopt::models::DlrmConfig;
use topoopt::netsim::iteration::natural_ring_plans;
use topoopt::prelude::*;
use topoopt::rdma::build_forwarding_plan;

fn co_optimize_quick(kind: ModelKind, n: usize, d: usize, bps: f64) -> CoOptResult {
    let model = build_model(kind, ModelPreset::Shared);
    let mut cfg = AlternatingConfig::new(d, bps);
    cfg.max_rounds = 2;
    cfg.mcmc.iterations = 80;
    co_optimize(&model, n, &cfg)
}

#[test]
fn full_pipeline_produces_valid_fabric_and_finite_iteration_time() {
    for kind in [ModelKind::Dlrm, ModelKind::Candle, ModelKind::Bert] {
        let n = 16;
        let r = co_optimize_quick(kind, n, 4, 25.0e9);
        assert!(r.network.graph.respects_degree(4), "{kind:?} violates degree");
        assert!(r.network.graph.is_strongly_connected(), "{kind:?} disconnected");
        r.network.routing.validate_against(&r.network.graph).unwrap();

        let plans: Vec<AllReducePlan> = r
            .network
            .groups
            .iter()
            .map(|g| AllReducePlan { permutations: g.permutations(), bytes: g.bytes })
            .collect();
        let net = SimNetwork::new(r.network.graph.clone(), n, r.network.routing.clone());
        let it = simulate_iteration(
            &net,
            &r.demands,
            &plans,
            &IterationParams { compute_s: r.estimate.compute_s },
        );
        assert!(it.total_s.is_finite() && it.total_s > 0.0, "{kind:?} iteration broken");
        assert!(!it.unroutable);
    }
}

#[test]
fn topoopt_beats_cost_equivalent_fat_tree_for_communication_heavy_candle() {
    // The paper's headline comparison (§5.3): at equal cost, TopoOpt's
    // iteration time is substantially lower than the Fat-tree's for the
    // communication-heavy, mostly-data-parallel CANDLE workload (2.8x in
    // Figure 11a). DLRM's all-to-all-heavy variants are covered by the
    // Figure 12 harness, where the crossover against the Fat-tree is the
    // expected behaviour.
    let n = 16;
    let degree = 4;
    let link_bps = 25.0e9;
    let compute = ComputeParams::default();

    let model = build_model(ModelKind::Candle, ModelPreset::Shared);
    let strategy = ParallelizationStrategy::pure_data_parallel(&model, n);
    let demands = extract_traffic(&model, &strategy, compute.gpus_per_server);
    let est = estimate_iteration_time(
        &model,
        &strategy,
        &TopologyView::FullMesh { n, per_server_bps: degree as f64 * link_bps },
        &compute,
    );

    // TopoOpt fabric.
    let out = topology_finder(&TopologyFinderInput {
        num_servers: n,
        degree,
        link_bps,
        demands: &demands,
        totient: TotientPermsConfig::default(),
        matching: MatchingAlgo::Auto,
        mp_shortest_path: false,
        availability_aware: false,
    });
    let plans: Vec<AllReducePlan> = out
        .groups
        .iter()
        .map(|g| AllReducePlan { permutations: g.permutations(), bytes: g.bytes })
        .collect();
    let topo_net = SimNetwork::new(out.graph.clone(), n, out.routing.clone());
    let topo = simulate_iteration(
        &topo_net,
        &demands,
        &plans,
        &IterationParams { compute_s: est.compute_s },
    );

    // Cost-equivalent Fat-tree (modelled as a non-blocking switch at the
    // reduced per-server bandwidth B').
    let ft_bw = equivalent_fat_tree_bandwidth(n, degree, link_bps);
    assert!(ft_bw < degree as f64 * link_bps);
    let ft_net = SimNetwork::without_rules(topologies::ideal_switch(n, ft_bw), n);
    let ft = simulate_iteration(
        &ft_net,
        &demands,
        &natural_ring_plans(&demands),
        &IterationParams { compute_s: est.compute_s },
    );

    assert!(
        topo.comm_s < ft.comm_s,
        "TopoOpt comm {} should beat cost-equivalent Fat-tree {}",
        topo.comm_s,
        ft.comm_s
    );
}

#[test]
fn reconfigurable_fabric_degrades_with_reconfiguration_latency() {
    // Figure 17's trend: larger OCS reconfiguration latency raises the
    // iteration time, and at microsecond latency the reconfigurable fabric
    // approaches TopoOpt's static one-shot topology.
    let n = 16;
    let model = build_dlrm(&DlrmConfig::shared());
    let strategy = ParallelizationStrategy::hybrid_embeddings_round_robin(&model, n);
    let demands = extract_traffic(&model, &strategy, 4);

    let mut last = 0.0;
    for latency in [1.0e-6, 100.0e-6, 1.0e-3, 10.0e-3] {
        let r = simulate_reconfigurable_iteration(
            &demands,
            &ReconfigParams {
                degree: 4,
                link_bps: 25.0e9,
                reconfig_latency_s: latency,
                ..Default::default()
            },
        );
        assert!(r.comm_s >= last, "latency {latency}: {} < previous {last}", r.comm_s);
        last = r.comm_s;
    }
}

#[test]
fn rdma_forwarding_covers_every_pair_of_the_co_optimized_fabric() {
    let r = co_optimize_quick(ModelKind::Dlrm, 12, 4, 25.0e9);
    let plan = build_forwarding_plan(&r.network.graph, 12, &r.network.routing);
    for s in 0..12 {
        for d in 0..12 {
            if s != d {
                assert!(plan.has_connection(s, d), "no RDMA connection {s}->{d}");
            }
        }
    }
}

#[test]
fn relay_overhead_pipeline_prices_kernel_forwarding_and_exports_round_trip() {
    // The §6 loop end to end: co-optimize, derive the forwarding plan,
    // simulate with the kernel penalty attached, export to JSON, parse back.
    let n = 12;
    let r = co_optimize_quick(ModelKind::Dlrm, n, 4, 25.0e9);
    let plan = build_forwarding_plan(&r.network.graph, n, &r.network.routing);

    let plans: Vec<AllReducePlan> = r
        .network
        .groups
        .iter()
        .map(|g| AllReducePlan { permutations: g.permutations(), bytes: g.bytes })
        .collect();
    let base_net = SimNetwork::new(r.network.graph.clone(), n, r.network.routing.clone());
    let params = IterationParams { compute_s: r.estimate.compute_s };
    let base = simulate_iteration(&base_net, &r.demands, &plans, &params);
    let free = simulate_iteration(
        &base_net.clone().with_relay_overhead(plan.clone(), 1.0),
        &r.demands,
        &plans,
        &params,
    );
    assert_eq!(base, free, "relay efficiency 1.0 must be free");
    let taxed = simulate_iteration(
        &base_net.clone().with_relay_overhead(plan.clone(), 0.3),
        &r.demands,
        &plans,
        &params,
    );
    assert!(taxed.total_s >= base.total_s);

    // JSON export round-trips through the vendored serde parser.
    let topology = TopologyExport::from_graph(&r.network.graph, n);
    assert_eq!(TopologyExport::from_json(&topology.to_json()).unwrap(), topology);
    let forwarding = ForwardingExport::from_plan(&plan);
    assert_eq!(ForwardingExport::from_json(&forwarding.to_json()).unwrap(), forwarding);
    let coopt = CoOptimizationExport::from_result("DLRM", n, &r);
    assert_eq!(CoOptimizationExport::from_json(&coopt.to_json()).unwrap(), coopt);
}

#[test]
fn cost_model_and_architectures_are_consistent() {
    // The Ideal Switch is the most expensive mainstream fabric, TopoOpt and
    // the cost-equivalent Fat-tree are (by construction) comparable.
    let n = 128;
    let d = 4;
    let b = 100.0e9;
    let ideal = interconnect_cost(CostedArchitecture::IdealSwitch, n, d, b).total();
    let topo = interconnect_cost(CostedArchitecture::TopoOptPatchPanel, n, d, b).total();
    assert!(ideal > 1.5 * topo);
    let b_eq = equivalent_fat_tree_bandwidth(n, d, b);
    assert!(b_eq < d as f64 * b);

    // Architecture builders produce usable graphs for the simulator.
    for arch in Architecture::all() {
        let built = build_architecture(arch, 32, d, 25.0e9, b_eq, 1);
        assert!(built.graph.num_nodes() >= 32, "{arch:?} too small");
        assert!(built.graph.is_strongly_connected(), "{arch:?} disconnected");
    }
}

#[test]
fn mutability_multi_ring_balances_traffic_without_changing_volume() {
    use topoopt::workloads::{dlrm_hybrid_heatmap, topoopt_combined_heatmap};
    let single = dlrm_hybrid_heatmap(16, 1);
    let combined = topoopt_combined_heatmap(16, &[1, 3, 7]);
    assert!((single.total() - combined.total()).abs() / single.total() < 1e-9);
    assert!(combined.max_entry() < single.max_entry());
}
