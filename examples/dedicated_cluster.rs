//! Dedicated-cluster architecture comparison (a reduced-size Figure 11).
//!
//! For one DNN model, compare the simulated training iteration time of
//! TopoOpt, Ideal Switch, cost-equivalent Fat-tree, oversubscribed Fat-tree
//! and Expander on a dedicated cluster.
//!
//! Run with: `cargo run --release --example dedicated_cluster [model] [servers]`
//! where `model` is one of dlrm, candle, bert, ncf, resnet, vgg.

use topoopt::netsim::iteration::natural_ring_plans;
use topoopt::prelude::*;

fn parse_model(name: &str) -> ModelKind {
    match name.to_ascii_lowercase().as_str() {
        "dlrm" => ModelKind::Dlrm,
        "candle" => ModelKind::Candle,
        "bert" => ModelKind::Bert,
        "ncf" => ModelKind::Ncf,
        "resnet" | "resnet50" => ModelKind::ResNet50,
        "vgg" | "vgg16" => ModelKind::Vgg16,
        other => panic!("unknown model '{other}'"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = parse_model(args.get(1).map(String::as_str).unwrap_or("dlrm"));
    let num_servers: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let degree = 4;
    let link_bps = 25.0e9;

    let model = build_model(kind, ModelPreset::Shared);
    let compute = ComputeParams::default();
    println!(
        "{} on a dedicated cluster of {} servers (d = {}, B = {} Gbps)",
        model.name,
        num_servers,
        degree,
        link_bps / 1.0e9
    );

    // The hybrid heuristic placement is the starting point everywhere; the
    // TopoOpt row additionally runs the alternating optimization.
    let strategy = if model.embedding_param_bytes() > model.dense_param_bytes() {
        ParallelizationStrategy::hybrid_embeddings_round_robin(&model, num_servers)
    } else {
        ParallelizationStrategy::pure_data_parallel(&model, num_servers)
    };
    let demands = extract_traffic(&model, &strategy, compute.gpus_per_server);
    let est = estimate_iteration_time(
        &model,
        &strategy,
        &TopologyView::FullMesh { n: num_servers, per_server_bps: degree as f64 * link_bps },
        &compute,
    );

    println!("{:<22} {:>12} {:>14} {:>10}", "architecture", "comm (s)", "iteration (s)", "tax");

    // TopoOpt: co-optimized strategy + topology.
    let mut cfg = AlternatingConfig::new(degree, link_bps);
    cfg.max_rounds = 2;
    cfg.mcmc.iterations = 150;
    let co = co_optimize(&model, num_servers, &cfg);
    let plans: Vec<AllReducePlan> = co
        .network
        .groups
        .iter()
        .map(|g| AllReducePlan { permutations: g.permutations(), bytes: g.bytes })
        .collect();
    let topo_net =
        SimNetwork::new(co.network.graph.clone(), num_servers, co.network.routing.clone());
    let topo = simulate_iteration(
        &topo_net,
        &co.demands,
        &plans,
        &IterationParams { compute_s: co.estimate.compute_s },
    );
    print_row("TopoOpt", &topo);

    // Ideal Switch: d*B per server through a non-blocking hub.
    let ideal_graph =
        topoopt::graph::topologies::ideal_switch(num_servers, degree as f64 * link_bps);
    let ideal_net = SimNetwork::without_rules(ideal_graph, num_servers);
    let ideal = simulate_iteration(
        &ideal_net,
        &demands,
        &natural_ring_plans(&demands),
        &IterationParams { compute_s: est.compute_s },
    );
    print_row("Ideal Switch", &ideal);

    // Cost-equivalent Fat-tree: one NIC of reduced bandwidth per server.
    let ft_bw = equivalent_fat_tree_bandwidth(num_servers, degree, link_bps);
    let ft_graph = topoopt::graph::topologies::ideal_switch(num_servers, ft_bw);
    let ft_net = SimNetwork::without_rules(ft_graph, num_servers);
    let ft = simulate_iteration(
        &ft_net,
        &demands,
        &natural_ring_plans(&demands),
        &IterationParams { compute_s: est.compute_s },
    );
    print_row(&format!("Fat-tree ({:.0}G)", ft_bw / 1.0e9), &ft);

    // Oversubscribed Fat-tree at full host bandwidth.
    let k = topoopt::graph::topologies::fat_tree_arity_for_hosts(num_servers);
    let over_graph =
        topoopt::graph::topologies::oversubscribed_fat_tree(k, degree as f64 * link_bps).graph;
    let over_net = SimNetwork::without_rules(over_graph, num_servers);
    let over = simulate_iteration(
        &over_net,
        &demands,
        &natural_ring_plans(&demands),
        &IterationParams { compute_s: est.compute_s },
    );
    print_row("Oversub Fat-tree", &over);

    // Expander: random regular direct-connect graph, demand-oblivious.
    let exp_graph = topoopt::graph::topologies::expander(num_servers, degree, link_bps, 7);
    let exp_net = SimNetwork::without_rules(exp_graph, num_servers);
    let exp = simulate_iteration(
        &exp_net,
        &demands,
        &natural_ring_plans(&demands),
        &IterationParams { compute_s: est.compute_s },
    );
    print_row("Expander", &exp);
}

fn print_row(name: &str, r: &topoopt::netsim::IterationResult) {
    println!("{:<22} {:>12.4} {:>14.4} {:>9.2}x", name, r.comm_s, r.total_s, r.bandwidth_tax);
}
