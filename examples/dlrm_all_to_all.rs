//! DLRM all-to-all stress study (a reduced-size Figure 12/13/21) plus the
//! RDMA forwarding plan of the §6 testbed.
//!
//! Sweeps the batch size of a DLRM whose embedding tables are spread across
//! every server (worst-case all-to-all MP traffic) and reports iteration
//! time and bandwidth tax for TopoOpt vs an Ideal Switch, then prints the
//! NPAR forwarding-rule summary a 12-node testbed would install.
//!
//! Run with: `cargo run --release --example dlrm_all_to_all`

use topoopt::models::zoo::build_dlrm;
use topoopt::models::DlrmConfig;
use topoopt::netsim::iteration::natural_ring_plans;
use topoopt::prelude::*;
use topoopt::rdma::build_forwarding_plan;
use topoopt::rdma::forwarding::split_all_nics;

fn main() {
    let num_servers = 16;
    let degree = 4;
    let link_bps = 25.0e9;
    let compute = ComputeParams::default();

    println!(
        "DLRM all-to-all sweep on {} servers (d = {}, B = {} Gbps)",
        num_servers,
        degree,
        link_bps / 1.0e9
    );
    println!(
        "{:>6} {:>14} {:>16} {:>12} {:>16}",
        "batch", "MP/AllReduce", "TopoOpt iter (s)", "tax", "Ideal iter (s)"
    );

    for batch in [64usize, 128, 256, 512, 1024] {
        let model = build_dlrm(&DlrmConfig::all_to_all(batch));
        let strategy = ParallelizationStrategy::hybrid_embeddings_round_robin(&model, num_servers);
        let demands = extract_traffic(&model, &strategy, compute.gpus_per_server);
        let est = estimate_iteration_time(
            &model,
            &strategy,
            &TopologyView::FullMesh { n: num_servers, per_server_bps: degree as f64 * link_bps },
            &compute,
        );

        let out = topology_finder(&TopologyFinderInput {
            num_servers,
            degree,
            link_bps,
            demands: &demands,
            totient: TotientPermsConfig::default(),
            matching: MatchingAlgo::Auto,
            mp_shortest_path: false,
            availability_aware: false,
        });
        let plans: Vec<AllReducePlan> = out
            .groups
            .iter()
            .map(|g| AllReducePlan { permutations: g.permutations(), bytes: g.bytes })
            .collect();
        let topo_net = SimNetwork::new(out.graph.clone(), num_servers, out.routing.clone());
        let topo = simulate_iteration(
            &topo_net,
            &demands,
            &plans,
            &IterationParams { compute_s: est.compute_s },
        );

        let ideal_graph =
            topoopt::graph::topologies::ideal_switch(num_servers, degree as f64 * link_bps);
        let ideal_net = SimNetwork::without_rules(ideal_graph, num_servers);
        let ideal = simulate_iteration(
            &ideal_net,
            &demands,
            &natural_ring_plans(&demands),
            &IterationParams { compute_s: est.compute_s },
        );

        println!(
            "{:>6} {:>13.1}% {:>16.4} {:>11.2}x {:>16.4}",
            batch,
            demands.mp_to_allreduce_ratio() * 100.0,
            topo.total_s,
            topo.bandwidth_tax,
            ideal.total_s
        );
    }

    // RDMA forwarding plan for the 12-node testbed configuration (§6,
    // Appendix I).
    let testbed_servers = 12;
    let model = build_dlrm(&DlrmConfig::testbed(64));
    let strategy = ParallelizationStrategy::hybrid_embeddings_round_robin(&model, testbed_servers);
    let demands = extract_traffic(&model, &strategy, 1);
    let out = topology_finder(&TopologyFinderInput {
        num_servers: testbed_servers,
        degree,
        link_bps,
        demands: &demands,
        totient: TotientPermsConfig::default(),
        matching: MatchingAlgo::Auto,
        mp_shortest_path: false,
        availability_aware: false,
    });
    let plan = build_forwarding_plan(&out.graph, testbed_servers, &out.routing);
    let nics = split_all_nics(testbed_servers, degree);
    let max_relays = (0..testbed_servers)
        .flat_map(|s| (0..testbed_servers).map(move |d| (s, d)))
        .filter(|(s, d)| s != d)
        .filter_map(|(s, d)| plan.relay_count(s, d))
        .max()
        .unwrap_or(0);
    println!("\n--- 12-node testbed RDMA forwarding plan ---");
    println!("logical interfaces (NPAR): {}", nics.len() * 2);
    println!("forwarding rules installed: {}", plan.num_rules());
    println!("maximum relays on any logical RDMA connection: {}", max_relays);
    println!(
        "all-pairs RDMA connectivity: {}",
        (0..testbed_servers)
            .all(|s| (0..testbed_servers).all(|d| s == d || plan.has_connection(s, d)))
    );
}
