//! Shared-cluster study (a reduced-size Figure 16): several jobs with the
//! §5.6 mix share the fabric; TopoOpt shards the optical ports per job while
//! a switched fabric makes everyone contend.
//!
//! Run with: `cargo run --release --example shared_cluster [total_servers]`

use topoopt::cluster::{job_mix_for_load, ClusterShards, MixModel};
use topoopt::netsim::iteration::natural_ring_plans;
use topoopt::netsim::multijob::{build_job_flows, simulate_shared_cluster, JobSpec};
use topoopt::prelude::*;

/// Everything one job contributes to the shared simulation: demands, ring
/// plans, its server shard, compute time, and a display name.
type JobData = (TrafficDemands, Vec<AllReducePlan>, Vec<usize>, f64, String);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let total_servers: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let degree = 4;
    let link_bps = 25.0e9;
    let compute = ComputeParams::default();
    let mix = MixModel { servers_per_job: 8, ..MixModel::default() };

    println!(
        "shared cluster of {} servers (d = {}, B = {} Gbps), job mix 40/30/20/10 DLRM/BERT/CANDLE/VGG",
        total_servers,
        degree,
        link_bps / 1.0e9
    );
    println!(
        "{:>6} {:>6} {:>16} {:>16} {:>16} {:>16}",
        "load", "jobs", "TopoOpt avg (s)", "TopoOpt p99 (s)", "Fabric avg (s)", "Fabric p99 (s)"
    );

    for load in [0.25, 0.5, 0.75, 1.0] {
        let requests = job_mix_for_load(&mix, total_servers, load, 42);
        let mut shards = ClusterShards::new(total_servers);

        // Build each job's demands once.
        let mut topoopt_jobs: Vec<JobSpec> = Vec::new();
        let mut fabric_jobs: Vec<JobSpec> = Vec::new();

        // TopoOpt: disjoint shard + per-job topology. The physical network is
        // the union of all shard topologies.
        let mut union = Graph::new(total_servers);
        let mut per_job: Vec<JobData> = Vec::new();
        for req in &requests {
            let Some((_, servers)) = shards.allocate(req.servers) else { break };
            let model = build_model(req.model, ModelPreset::Shared);
            let strategy = if model.embedding_param_bytes() > model.dense_param_bytes() {
                ParallelizationStrategy::hybrid_embeddings_round_robin(&model, req.servers)
            } else {
                ParallelizationStrategy::pure_data_parallel(&model, req.servers)
            };
            let demands = extract_traffic(&model, &strategy, compute.gpus_per_server);
            let out = topology_finder(&TopologyFinderInput {
                num_servers: req.servers,
                degree,
                link_bps,
                demands: &demands,
                totient: TotientPermsConfig::default(),
                matching: MatchingAlgo::Auto,
                mp_shortest_path: false,
                availability_aware: false,
            });
            // Splice the shard's topology into the cluster-wide graph.
            for (_, e) in out.graph.edges() {
                union.add_edge(servers[e.src], servers[e.dst], e.capacity_bps);
            }
            let plans: Vec<AllReducePlan> = out
                .groups
                .iter()
                .map(|g| AllReducePlan { permutations: g.permutations(), bytes: g.bytes })
                .collect();
            let est = estimate_iteration_time(
                &model,
                &strategy,
                &TopologyView::from_graph(&out.graph, req.servers),
                &compute,
            );
            per_job.push((demands, plans, servers, est.compute_s, model.name.clone()));
        }
        let topo_net = SimNetwork::without_rules(union, total_servers);
        for (demands, plans, servers, compute_s, name) in &per_job {
            topoopt_jobs.push(JobSpec::new(
                name.clone(),
                build_job_flows(&topo_net, demands, plans, servers),
                *compute_s,
            ));
        }
        let topo_result = simulate_shared_cluster(&topo_net, &topoopt_jobs);

        // Shared switched fabric (cost-equivalent bandwidth), same jobs.
        let ft_bw = equivalent_fat_tree_bandwidth(total_servers, degree, link_bps);
        let fabric = topoopt::graph::topologies::ideal_switch(total_servers, ft_bw);
        let fabric_net = SimNetwork::without_rules(fabric, total_servers);
        for (demands, _plans, servers, compute_s, name) in &per_job {
            let ring_plans = natural_ring_plans(demands);
            fabric_jobs.push(JobSpec::new(
                name.clone(),
                build_job_flows(&fabric_net, demands, &ring_plans, servers),
                *compute_s,
            ));
        }
        let fabric_result = simulate_shared_cluster(&fabric_net, &fabric_jobs);

        println!(
            "{:>5.0}% {:>6} {:>16.4} {:>16.4} {:>16.4} {:>16.4}",
            load * 100.0,
            topoopt_jobs.len(),
            topo_result.average_s,
            topo_result.p99_s,
            fabric_result.average_s,
            fabric_result.p99_s
        );
    }
}
