//! Quickstart: co-optimize the topology and parallelization strategy of one
//! DLRM training job and simulate a training iteration on the result.
//!
//! Run with: `cargo run --release --example quickstart`

use topoopt::prelude::*;

fn main() {
    // A 16-server job, 4 GPUs per server, 4 x 25 Gbps optical interfaces
    // per server (the same shape as the paper's testbed, §6).
    let num_servers = 16;
    let degree = 4;
    let link_bps = 25.0e9;

    let model = build_model(ModelKind::Dlrm, ModelPreset::Shared);
    println!(
        "model: {} ({} operators, {:.1} GB parameters, {} embedding tables)",
        model.name,
        model.num_ops(),
        model.total_param_bytes() / 1.0e9,
        model.embedding_ops().len()
    );

    // Alternating optimization (§4.1): MCMC strategy search <-> TopologyFinder.
    let mut cfg = AlternatingConfig::new(degree, link_bps);
    cfg.max_rounds = 3;
    cfg.mcmc.iterations = 200;
    let result = co_optimize(&model, num_servers, &cfg);

    println!("\n--- co-optimization result ({} rounds) ---", result.rounds);
    println!(
        "strategy: {} model-parallel operators, {:.2} GB AllReduce, {:.2} GB MP per iteration",
        result.strategy.num_model_parallel_ops(),
        result.demands.total_allreduce_bytes() / 1.0e9,
        result.demands.total_mp_bytes() / 1.0e9
    );
    println!(
        "topology: degree split d_A = {} / d_MP = {}, {} physical links, strongly connected = {}",
        result.network.degree_allreduce,
        result.network.degree_mp,
        result.network.graph.num_edges(),
        result.network.graph.is_strongly_connected()
    );
    for g in &result.network.groups {
        println!(
            "  AllReduce group of {} servers -> ring strides {:?}",
            g.members.len(),
            g.strides
        );
    }
    println!(
        "routing: {} installed rules, average path length {:.2} hops",
        result.network.routing.len(),
        result.network.routing.average_hops()
    );

    // Simulate one training iteration on the fabric (flow-level simulator).
    let plans: Vec<AllReducePlan> = result
        .network
        .groups
        .iter()
        .map(|g| AllReducePlan { permutations: g.permutations(), bytes: g.bytes })
        .collect();
    let net =
        SimNetwork::new(result.network.graph.clone(), num_servers, result.network.routing.clone());
    let iteration = simulate_iteration(
        &net,
        &result.demands,
        &plans,
        &IterationParams { compute_s: result.estimate.compute_s },
    );

    println!("\n--- simulated training iteration ---");
    println!("compute:        {:.4} s", iteration.compute_s);
    println!("communication:  {:.4} s", iteration.comm_s);
    println!("total:          {:.4} s", iteration.total_s);
    println!("bandwidth tax:  {:.2}x", iteration.bandwidth_tax);

    // And the cost of this fabric vs an equivalently fast Ideal Switch.
    let topo_cost =
        interconnect_cost(CostedArchitecture::TopoOptPatchPanel, num_servers, degree, link_bps)
            .total();
    let ideal_cost =
        interconnect_cost(CostedArchitecture::IdealSwitch, num_servers, degree, link_bps).total();
    println!("\n--- interconnect cost ---");
    println!("TopoOpt (patch panel): ${:.0}", topo_cost);
    println!("Ideal Switch:          ${:.0} ({:.1}x)", ideal_cost, ideal_cost / topo_cost);
}
