//! Quickstart: co-optimize the topology and parallelization strategy of one
//! DLRM training job, derive the fabric's RDMA forwarding plan, and
//! simulate a training iteration on the result.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Pass `--json <dir>` to export the fabric as JSON (`topology.json`,
//! `forwarding.json`, `cooptimization.json` — the schema documented in
//! `topoopt::export`); every file is parsed back through the workspace's
//! serde parser before the process exits, so a zero exit code certifies the
//! artifacts round-trip.

use std::path::PathBuf;
use std::process::ExitCode;

use topoopt::export::{CoOptimizationExport, ForwardingExport, TopologyExport};
use topoopt::prelude::*;
use topoopt::rdma::build_forwarding_plan;

fn parse_args() -> Result<Option<PathBuf>, String> {
    let mut json_dir = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                let dir = args.next().ok_or("--json requires a directory")?;
                json_dir = Some(PathBuf::from(dir));
            }
            other => {
                return Err(format!(
                    "unknown argument '{other}' (usage: quickstart [--json <dir>])"
                ))
            }
        }
    }
    Ok(json_dir)
}

fn main() -> ExitCode {
    let json_dir = match parse_args() {
        Ok(dir) => dir,
        Err(msg) => {
            eprintln!("quickstart: {msg}");
            return ExitCode::from(2);
        }
    };

    // A 16-server job, 4 GPUs per server, 4 x 25 Gbps optical interfaces
    // per server (the same shape as the paper's testbed, §6).
    let num_servers = 16;
    let degree = 4;
    let link_bps = 25.0e9;

    let model = build_model(ModelKind::Dlrm, ModelPreset::Shared);
    println!(
        "model: {} ({} operators, {:.1} GB parameters, {} embedding tables)",
        model.name,
        model.num_ops(),
        model.total_param_bytes() / 1.0e9,
        model.embedding_ops().len()
    );

    // Alternating optimization (§4.1): MCMC strategy search <-> TopologyFinder.
    let mut cfg = AlternatingConfig::new(degree, link_bps);
    cfg.max_rounds = 3;
    cfg.mcmc.iterations = 200;
    let result = co_optimize(&model, num_servers, &cfg);

    println!("\n--- co-optimization result ({} rounds) ---", result.rounds);
    println!(
        "strategy: {} model-parallel operators, {:.2} GB AllReduce, {:.2} GB MP per iteration",
        result.strategy.num_model_parallel_ops(),
        result.demands.total_allreduce_bytes() / 1.0e9,
        result.demands.total_mp_bytes() / 1.0e9
    );
    println!(
        "topology: degree split d_A = {} / d_MP = {}, {} physical links, strongly connected = {}",
        result.network.degree_allreduce,
        result.network.degree_mp,
        result.network.graph.num_edges(),
        result.network.graph.is_strongly_connected()
    );
    for g in &result.network.groups {
        println!(
            "  AllReduce group of {} servers -> ring strides {:?}",
            g.members.len(),
            g.strides
        );
    }
    println!(
        "routing: {} installed rules, average path length {:.2} hops",
        result.network.routing.len(),
        result.network.routing.average_hops()
    );

    // The RDMA forwarding plane this fabric needs (§6, Appendix I):
    // destination-keyed kernel rules on every relay server.
    let plan = build_forwarding_plan(&result.network.graph, num_servers, &result.network.routing);
    println!("\n--- NPAR forwarding plane ---");
    println!(
        "kernel rules: {} ({} conflicts), relayed logical connections: {:.0}%",
        plan.num_rules(),
        plan.conflicts.len(),
        plan.relayed_fraction() * 100.0
    );
    println!("relay histogram (pairs by relay count): {:?}", plan.relay_histogram());

    // Simulate one training iteration on the fabric (flow-level simulator),
    // with relayed connections priced through the forwarding plane.
    let plans: Vec<AllReducePlan> = result
        .network
        .groups
        .iter()
        .map(|g| AllReducePlan { permutations: g.permutations(), bytes: g.bytes })
        .collect();
    let net =
        SimNetwork::new(result.network.graph.clone(), num_servers, result.network.routing.clone())
            .with_relay_overhead(plan.clone(), 1.0);
    let iteration = simulate_iteration(
        &net,
        &result.demands,
        &plans,
        &IterationParams { compute_s: result.estimate.compute_s },
    );

    println!("\n--- simulated training iteration ---");
    println!("compute:        {:.4} s", iteration.compute_s);
    println!("communication:  {:.4} s", iteration.comm_s);
    println!("total:          {:.4} s", iteration.total_s);
    println!("bandwidth tax:  {:.2}x", iteration.bandwidth_tax);

    // And the cost of this fabric vs an equivalently fast Ideal Switch.
    let topo_cost =
        interconnect_cost(CostedArchitecture::TopoOptPatchPanel, num_servers, degree, link_bps)
            .total();
    let ideal_cost =
        interconnect_cost(CostedArchitecture::IdealSwitch, num_servers, degree, link_bps).total();
    println!("\n--- interconnect cost ---");
    println!("TopoOpt (patch panel): ${:.0}", topo_cost);
    println!("Ideal Switch:          ${:.0} ({:.1}x)", ideal_cost, ideal_cost / topo_cost);

    // JSON export: write the fabric, then prove every artifact parses back.
    if let Some(dir) = json_dir {
        let topology = TopologyExport::from_graph(&result.network.graph, num_servers);
        let forwarding = ForwardingExport::from_plan(&plan);
        let coopt = CoOptimizationExport::from_result(model.name.clone(), num_servers, &result);
        let files = [
            ("topology.json", topology.to_json()),
            ("forwarding.json", forwarding.to_json()),
            ("cooptimization.json", coopt.to_json()),
        ];
        if let Err(err) = std::fs::create_dir_all(&dir) {
            eprintln!("quickstart: cannot create {}: {err}", dir.display());
            return ExitCode::FAILURE;
        }
        for (name, text) in &files {
            if let Err(err) = std::fs::write(dir.join(name), text) {
                eprintln!("quickstart: cannot write {name}: {err}");
                return ExitCode::FAILURE;
            }
        }
        // Round-trip through the vendored serde parser: typed and generic.
        let topo_ok = TopologyExport::from_json(&files[0].1).map(|t| t == topology);
        let fwd_ok = ForwardingExport::from_json(&files[1].1).map(|f| f == forwarding);
        let co_ok = CoOptimizationExport::from_json(&files[2].1).map(|c| c == coopt);
        match (topo_ok, fwd_ok, co_ok) {
            (Ok(true), Ok(true), Ok(true)) => {
                println!("\n[wrote topology.json, forwarding.json, cooptimization.json to {}; all round-trip]", dir.display());
            }
            other => {
                eprintln!("quickstart: JSON round-trip failed: {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
