//! The experiment registry: every figure/table of the TopoOpt evaluation
//! as a builder returning a structured [`ExperimentReport`].
//!
//! Experiments compute *data*; presentation (aligned text, markdown for
//! `EXPERIMENTS.md`, JSON for `BENCH_<id>.json`) is rendered from the
//! report by `topoopt-report`. Sweeps inside an experiment run in parallel
//! with rayon and are collected in input order, so reports — and therefore
//! every rendering — are byte-for-byte stable run-over-run for a fixed
//! seed and scale.

use rayon::prelude::*;
use std::sync::Arc;
use topoopt_cluster::{
    job_mix_for_load, poisson_arrival_times, ClusterShards, MixModel, TransitionSchedule,
};
use topoopt_collectives::tree::{double_binary_tree, tree_allreduce_traffic};
use topoopt_core::topology_finder::TopologyFinderOutput;
use topoopt_cost::{
    component_costs, equivalent_fat_tree_bandwidth, interconnect_cost, optical_technologies,
    CostedArchitecture,
};
use topoopt_graph::{Graph, TrafficMatrix};
use topoopt_models::zoo::build_dlrm;
use topoopt_models::{DlrmConfig, ModelKind, ModelPreset};
use topoopt_netsim::iteration::natural_ring_plans;
use topoopt_netsim::multijob::{
    build_job_flows, simulate_shared_cluster, simulate_shared_cluster_stats, solo_iteration_s,
    JobSpec,
};
use topoopt_netsim::{
    simulate_dynamic_cluster, simulate_iteration, simulate_reconfigurable_iteration, AllReducePlan,
    DynamicClusterParams, DynamicFabric, DynamicJobSpec, IterationParams, MigrationMode,
    ReconfigParams, SharedEngineMode, SimNetwork,
};
use topoopt_rdma::RepairMode;
use topoopt_reconfig::{
    FabricSpec, FabricState, MigrationPlanner, MigrationProblem, NaiveOrdered, PairReachability,
    RandomPermutation, Strategy, ThroughputDip, TreeSearch,
};
use topoopt_report::{row, Cell, Column, ExperimentReport, ScaleInfo, Table};
use topoopt_strategy::{
    estimate_from_demands, estimate_iteration_time, extract_traffic, search_strategy, McmcConfig,
    ParallelizationStrategy, TopologyView,
};
use topoopt_workloads::production::cdf_points;
use topoopt_workloads::{
    dlrm_hybrid_heatmap, dlrm_pure_dp_heatmap, overhead_scaling, production_style_heatmap,
    sample_production_jobs, time_to_accuracy, topoopt_combined_heatmap, AccuracyCurve,
};

use crate::{
    baseline_strategy, build_rdma_fabric, build_rdma_fabric_available, build_topoopt_fabric,
    build_topoopt_fabric_routed, compute_params, demands_and_compute, expander_iteration,
    switch_iteration, topoopt_iteration, RdmaFabric,
};

const GB: f64 = 1.0e9;

/// Run configuration every experiment builder receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// True for paper-scale cluster sizes (`--full`).
    pub full: bool,
    /// Dedicated-cluster server count (paper: 128).
    pub dedicated: usize,
    /// Shared-cluster server count (paper: 432).
    pub shared: usize,
    /// MCMC iterations in strategy-search runs.
    pub mcmc_iters: usize,
    /// RNG seed for the sampling / MCMC experiments (`--seed`).
    pub seed: u64,
}

/// Default seed: keeps the seeded trajectories of the original harness.
pub const DEFAULT_SEED: u64 = 7;

impl Scale {
    /// Reduced-scale (default) or paper-scale (`--full`) sizes.
    pub fn new(full: bool, seed: u64) -> Scale {
        if full {
            Scale { full, dedicated: 128, shared: 432, mcmc_iters: 400, seed }
        } else {
            Scale { full, dedicated: 32, shared: 64, mcmc_iters: 100, seed }
        }
    }

    /// The report-metadata view of this configuration.
    pub fn info(&self) -> ScaleInfo {
        ScaleInfo {
            full: self.full,
            dedicated: self.dedicated,
            shared: self.shared,
            mcmc_iters: self.mcmc_iters,
        }
    }
}

/// One registry entry: identity plus the builder function.
pub struct ExperimentDef {
    /// Stable id, also the `BENCH_<id>.json` artifact name.
    pub id: &'static str,
    /// Figure/table name in the paper.
    pub title: &'static str,
    /// Paper section the experiment reproduces.
    pub section: &'static str,
    /// Builds the report body (tables + notes); the harness stamps
    /// identity and run metadata via [`run`].
    pub build: fn(&Scale) -> ExperimentReport,
}

/// Every experiment of the evaluation, in presentation order.
pub const EXPERIMENTS: &[ExperimentDef] = &[
    ExperimentDef { id: "fig01_dlrm_heatmaps", title: "Figure 1", section: "§2.1", build: fig01 },
    ExperimentDef {
        id: "fig02_production_cdfs", title: "Figure 2", section: "§2.2", build: fig02
    },
    ExperimentDef {
        id: "fig03_network_overhead",
        title: "Figure 3",
        section: "§2.2",
        build: fig03,
    },
    ExperimentDef { id: "fig04_prod_heatmaps", title: "Figure 4", section: "§2.2", build: fig04 },
    ExperimentDef { id: "table01_optical_tech", title: "Table 1", section: "§3", build: table01 },
    ExperimentDef {
        id: "mcmc_strategy_search",
        title: "FlexNet MCMC search",
        section: "§4.1",
        build: mcmc_search,
    },
    ExperimentDef {
        id: "fig07_09_mutability",
        title: "Figures 7–9",
        section: "§4.2",
        build: fig07_09,
    },
    ExperimentDef { id: "fig10_cost", title: "Figure 10", section: "§5.1", build: fig10 },
    ExperimentDef {
        id: "fig11_dedicated_d4",
        title: "Figure 11",
        section: "§5.2",
        build: fig11_d4,
    },
    ExperimentDef { id: "fig12_alltoall", title: "Figure 12", section: "§5.3", build: fig12 },
    ExperimentDef { id: "fig13_bandwidth_tax", title: "Figure 13", section: "§5.4", build: fig13 },
    ExperimentDef { id: "fig14_path_length", title: "Figure 14", section: "§5.5", build: fig14 },
    ExperimentDef { id: "fig15_link_traffic", title: "Figure 15", section: "§5.5", build: fig15 },
    ExperimentDef { id: "fig16_shared", title: "Figure 16", section: "§5.6", build: fig16 },
    ExperimentDef {
        id: "fig16_dynamic",
        title: "Figure 16 (dynamic)",
        section: "§5.6 + Appendix C",
        build: fig16_dynamic,
    },
    ExperimentDef {
        id: "fig16_dynamic_scale",
        title: "Figure 16 (datacenter scale)",
        section: "§5.6 + ROADMAP",
        build: fig16_dynamic_scale,
    },
    ExperimentDef { id: "fig17_reconfig", title: "Figure 17", section: "§5.7", build: fig17 },
    ExperimentDef {
        id: "fig_reconfig_planned",
        title: "Planned reconfiguration",
        section: "§5.7 + ROADMAP",
        build: fig_reconfig_planned,
    },
    ExperimentDef {
        id: "fig_failure_degradation",
        title: "Failure degradation",
        section: "§6 + ROADMAP",
        build: fig_failure_degradation,
    },
    ExperimentDef {
        id: "fig19_testbed_throughput",
        title: "Figure 19",
        section: "§6",
        build: fig19,
    },
    ExperimentDef {
        id: "fig20_time_to_accuracy", title: "Figure 20", section: "§6", build: fig20
    },
    ExperimentDef {
        id: "fig21_testbed_alltoall", title: "Figure 21", section: "§6", build: fig21
    },
    ExperimentDef {
        id: "rdma_relay_overhead",
        title: "Kernel-relay overhead",
        section: "§6 + Appendix I",
        build: rdma_relay_overhead,
    },
    ExperimentDef {
        id: "figA_dbt_heatmaps",
        title: "Appendix A figure",
        section: "Appendix A",
        build: fig_a,
    },
    ExperimentDef {
        id: "table02_component_costs",
        title: "Table 2",
        section: "Appendix G",
        build: table02,
    },
    ExperimentDef {
        id: "fig27_dedicated_d8",
        title: "Figure 27",
        section: "Appendix",
        build: fig27_d8,
    },
    ExperimentDef {
        id: "fig28_degree_sweep",
        title: "Figure 28",
        section: "Appendix",
        build: fig28,
    },
];

/// Look up an experiment by id.
pub fn find(id: &str) -> Option<&'static ExperimentDef> {
    EXPERIMENTS.iter().find(|def| def.id == id)
}

/// Run one experiment: build the report body, then stamp identity, scale,
/// seed, and wall time.
pub fn run(def: &ExperimentDef, scale: &Scale) -> ExperimentReport {
    let started = std::time::Instant::now();
    let mut report = (def.build)(scale);
    report.wall_time_s = started.elapsed().as_secs_f64();
    report.id = def.id.to_string();
    report.title = def.title.to_string();
    report.section = def.section.to_string();
    report.scale = scale.info();
    report.seed = scale.seed;
    report
}

/// Compute one row of cells per item in parallel, preserving input order
/// (the vendored rayon's `collect` is order-stable).
fn par_rows<T: Send>(items: Vec<T>, f: impl Fn(T) -> Vec<Cell> + Sync) -> Vec<Vec<Cell>> {
    items.into_par_iter().map(f).collect()
}

/// Columns of a traffic-heatmap summary table.
fn heatmap_columns() -> Vec<Column> {
    vec![
        Column::text("heatmap"),
        Column::fixed("total (GB)", 1),
        Column::fixed("max pair (GB)", 2),
        Column::int("non-zero pairs"),
    ]
}

fn heatmap_row(label: &str, tm: &topoopt_graph::TrafficMatrix) -> Vec<Cell> {
    row![label, tm.total() / GB, tm.max_entry() / GB, tm.nonzero_pairs()]
}

fn fig01(_s: &Scale) -> ExperimentReport {
    let dp = dlrm_pure_dp_heatmap(16);
    let hybrid = dlrm_hybrid_heatmap(16, 1);
    let mut table =
        Table::titled("DLRM traffic heatmaps (16 servers, §2.1 model)", heatmap_columns())
            .with_paper("hybrid parallelism concentrates the 22 GB DLRM's traffic on few pairs");
    table.push(heatmap_row("(a) pure data parallelism", &dp));
    table.push(heatmap_row("(b) hybrid parallelism", &hybrid));
    ExperimentReport::new().table(table).note(format!(
        "(b) hybrid heatmap (relative intensity 1-9):\n{}",
        hybrid.ascii_heatmap().trim_end()
    ))
}

fn fig02(s: &Scale) -> ExperimentReport {
    let jobs = sample_production_jobs(500, s.seed);
    let workers = cdf_points(&jobs, |j| j.workers as f64);
    let duration = cdf_points(&jobs, |j| j.duration_hours);
    let quantile = |points: &[(f64, f64)], pct: usize| {
        let idx = ((points.len() * pct) / 100).min(points.len() - 1);
        points[idx].0
    };
    let mut table = Table::titled(
        "production job CDFs (500 sampled jobs)",
        vec![
            Column::text("percentile"),
            Column::fixed("workers", 0),
            Column::fixed("duration (hours)", 1),
        ],
    )
    .with_paper("production jobs span orders of magnitude in size and duration");
    for pct in [10usize, 25, 50, 75, 90, 99] {
        table.push(row![format!("p{pct}"), quantile(&workers, pct), quantile(&duration, pct)]);
    }
    ExperimentReport::new().table(table)
}

fn fig03(_s: &Scale) -> ExperimentReport {
    let rows = overhead_scaling(100.0e9);
    let mut table = Table::titled(
        "network overhead (%) vs number of GPUs (B = 100 Gbps/server)",
        vec![
            Column::text("model"),
            Column::fixed("8", 1),
            Column::fixed("16", 1),
            Column::fixed("32", 1),
            Column::fixed("64", 1),
            Column::fixed("128", 1),
        ],
    )
    .with_paper("communication grows to tens of percent of iteration time at 128 GPUs");
    for kind in ModelKind::all() {
        let vals: Vec<f64> =
            rows.iter().filter(|(k, _, _)| *k == kind).map(|(_, _, v)| *v).collect();
        table.push(row![kind.name(), vals[0], vals[1], vals[2], vals[3], vals[4]]);
    }
    ExperimentReport::new().table(table)
}

fn fig04(_s: &Scale) -> ExperimentReport {
    let mut table = Table::titled(
        "production-style traffic heatmaps (ring + model-dependent MP rows)",
        heatmap_columns(),
    );
    for (label, n, hosts) in [
        ("(a) vision", 48, vec![0usize]),
        ("(b) image processing", 48, vec![0, 24]),
        ("(c) object tracking", 49, vec![5, 17, 33]),
        ("(d) speech recognition", 48, vec![]),
    ] {
        let tm = production_style_heatmap(n, &hosts, 2.0, 0.5);
        table.push(heatmap_row(label, &tm));
    }
    ExperimentReport::new().table(table)
}

fn table01(_s: &Scale) -> ExperimentReport {
    let mut table = Table::titled(
        "optical switching technologies",
        vec![
            Column::text("technology"),
            Column::int("ports"),
            Column::sci("reconfig (s)", 3),
            Column::fixed("loss (dB)", 1),
            Column::fixed("$/port", 0),
        ],
    )
    .with_paper("Table 1 values are the paper's own survey data");
    for t in optical_technologies() {
        table.push(row![
            t.name,
            t.port_count,
            t.reconfig_latency_s,
            t.insertion_loss_db,
            t.cost_per_port
        ]);
    }
    ExperimentReport::new().table(table)
}

fn mcmc_search(s: &Scale) -> ExperimentReport {
    let n = 16;
    let cfg = McmcConfig { iterations: s.mcmc_iters, seed: s.seed, ..Default::default() };
    let params = compute_params();
    let view = TopologyView::FullMesh { n, per_server_bps: 400.0e9 };
    let mut table = Table::titled(
        format!(
            "FlexNet-style MCMC strategy search ({} iterations x {} chains, {n} servers, \
             4 x 100 Gbps)",
            s.mcmc_iters, cfg.chains
        ),
        vec![
            Column::text("model"),
            Column::fixed("pure-DP est (s)", 4),
            Column::fixed("best est (s)", 4),
            Column::fixed("speedup", 2),
            Column::int("accepted"),
            Column::int("evaluated"),
        ],
    )
    .with_paper("MCMC finds hybrid placements for embedding-dominated models (§4.1)");
    let rows = par_rows(vec![ModelKind::Dlrm, ModelKind::Ncf, ModelKind::Bert], |kind| {
        let model = topoopt_models::build_model(kind, ModelPreset::Shared);
        let initial = ParallelizationStrategy::pure_data_parallel(&model, n);
        let initial_est = estimate_iteration_time(&model, &initial, &view, &params);
        let result = search_strategy(&model, initial, &view, &params, &cfg);
        row![
            kind.name(),
            initial_est.total_s,
            result.estimate.total_s,
            initial_est.total_s / result.estimate.total_s,
            result.accepted,
            result.evaluated
        ]
    });
    table.extend(rows);
    ExperimentReport::new().table(table)
}

fn fig07_09(_s: &Scale) -> ExperimentReport {
    let mut table =
        Table::titled("AllReduce mutability (16 servers, DLRM §2.1)", heatmap_columns())
            .with_paper("permuting ring neighbours load-balances AllReduce across the fabric");
    for stride in [1usize, 3, 7] {
        let tm = dlrm_hybrid_heatmap(16, stride);
        table.push(heatmap_row(&format!("+{stride} ring permutation"), &tm));
    }
    let combined = topoopt_combined_heatmap(16, &[1, 3, 7]);
    table.push(heatmap_row("TopoOpt combined {+1,+3,+7}", &combined));
    let single = dlrm_hybrid_heatmap(16, 1);
    ExperimentReport::new().table(table).note(format!(
        "max-entry reduction from load balancing: {:.2}x",
        single.max_entry() / combined.max_entry()
    ))
}

fn fig10(_s: &Scale) -> ExperimentReport {
    let mut report = ExperimentReport::new();
    for (d, b) in [(4usize, 100.0e9), (8usize, 200.0e9)] {
        let mut table = Table::titled(
            format!("interconnect cost (M$), d = {d}, B = {} Gbps", b / 1.0e9),
            vec![
                Column::int("servers"),
                Column::fixed("TopoOpt", 2),
                Column::fixed("OCS", 2),
                Column::fixed("Fat-tree*", 2),
                Column::fixed("Ideal", 2),
                Column::fixed("SiP-ML", 2),
                Column::fixed("Expander", 2),
            ],
        );
        for n in [128usize, 432, 1024, 2000] {
            let c = |a| interconnect_cost(a, n, d, b).total() / 1.0e6;
            table.push(row![
                n,
                c(CostedArchitecture::TopoOptPatchPanel),
                c(CostedArchitecture::TopoOptOcs),
                c(CostedArchitecture::TopoOptPatchPanel), // cost-equivalent by construction
                c(CostedArchitecture::IdealSwitch),
                c(CostedArchitecture::SipMl),
                c(CostedArchitecture::Expander),
            ]);
        }
        report = report.table(table);
    }
    report.note("(* the Fat-tree baseline's bandwidth is chosen for cost parity with TopoOpt)")
}

fn dedicated_sweep(s: &Scale, degree: usize) -> ExperimentReport {
    let n = s.dedicated;
    let mut table = Table::titled(
        format!("training iteration time (s), dedicated cluster of {n} servers, d = {degree}"),
        vec![
            Column::text("model"),
            Column::fixed("B (Gbps)", 0),
            Column::fixed("TopoOpt", 4),
            Column::fixed("IdealSwitch", 4),
            Column::fixed("Fat-tree", 4),
            Column::fixed("Oversub FT", 4),
            Column::fixed("Expander", 4),
        ],
    )
    .with_paper(
        "128 servers in the paper; TopoOpt tracks the ideal switch and beats the \
         cost-equivalent fat-tree",
    );
    let combos: Vec<(ModelKind, f64)> = ModelKind::all()
        .into_iter()
        .flat_map(|kind| [25.0, 100.0].map(|gbps| (kind, gbps)))
        .collect();
    let rows = par_rows(combos, |(kind, link_gbps)| {
        let link_bps = link_gbps * 1.0e9;
        let (model, strategy) = baseline_strategy(kind, ModelPreset::Shared, n);
        let (demands, compute_s) =
            demands_and_compute(&model, &strategy, n, degree as f64 * link_bps);
        let topo = topoopt_iteration(&demands, n, degree, link_bps, compute_s);
        let ideal = switch_iteration(&demands, n, degree as f64 * link_bps, compute_s);
        let ft_bw = equivalent_fat_tree_bandwidth(n, degree, link_bps);
        let ft = switch_iteration(&demands, n, ft_bw, compute_s);
        let oversub = switch_iteration(&demands, n, degree as f64 * link_bps / 2.0, compute_s);
        let exp = expander_iteration(&demands, n, degree, link_bps, compute_s);
        row![
            kind.name(),
            link_gbps,
            topo.total_s,
            ideal.total_s,
            ft.total_s,
            oversub.total_s,
            exp.total_s
        ]
    });
    table.extend(rows);
    ExperimentReport::new().table(table)
}

fn fig11_d4(s: &Scale) -> ExperimentReport {
    dedicated_sweep(s, 4)
}

fn fig27_d8(s: &Scale) -> ExperimentReport {
    dedicated_sweep(s, 8)
}

fn alltoall_row(n: usize, degree: usize, batch: usize) -> (f64, f64, f64, f64, f64) {
    let model = build_dlrm(&DlrmConfig::all_to_all(batch));
    let strategy = ParallelizationStrategy::hybrid_embeddings_round_robin(&model, n);
    let params = compute_params();
    let demands = extract_traffic(&model, &strategy, params.gpus_per_server);
    let link_bps = 100.0e9;
    let est = estimate_iteration_time(
        &model,
        &strategy,
        &TopologyView::FullMesh { n, per_server_bps: degree as f64 * link_bps },
        &params,
    );
    let topo = topoopt_iteration(&demands, n, degree, link_bps, est.compute_s);
    let ideal = switch_iteration(&demands, n, degree as f64 * link_bps, est.compute_s);
    let ft_bw = equivalent_fat_tree_bandwidth(n, degree, link_bps);
    let ft = switch_iteration(&demands, n, ft_bw, est.compute_s);
    (demands.mp_to_allreduce_ratio(), topo.total_s, ideal.total_s, ft.total_s, topo.bandwidth_tax)
}

fn fig12(s: &Scale) -> ExperimentReport {
    let n = s.dedicated;
    let mut report = ExperimentReport::new();
    for degree in [4usize, 8] {
        let mut table = Table::titled(
            format!("impact of all-to-all traffic, {n} servers, B = 100 Gbps, d = {degree}"),
            vec![
                Column::int("batch"),
                Column::fixed("alltoall/AR (%)", 0),
                Column::fixed("TopoOpt", 4),
                Column::fixed("Ideal", 4),
                Column::fixed("Fat-tree", 4),
            ],
        )
        .with_paper("128 servers in the paper");
        let rows = par_rows(vec![64usize, 128, 256, 512, 1024, 2048], |batch| {
            let (ratio, topo, ideal, ft, _tax) = alltoall_row(n, degree, batch);
            row![batch, ratio * 100.0, topo, ideal, ft]
        });
        table.extend(rows);
        report = report.table(table);
    }
    report
}

fn fig13(s: &Scale) -> ExperimentReport {
    let n = s.dedicated;
    let mut table = Table::titled(
        format!("bandwidth tax of host-based forwarding, {n} servers"),
        vec![Column::int("batch"), Column::fixed("d=4 (x)", 2), Column::fixed("d=8 (x)", 2)],
    );
    let rows = par_rows(vec![64usize, 128, 256, 512, 1024, 2048], |batch| {
        let (_, _, _, _, tax4) = alltoall_row(n, 4, batch);
        let (_, _, _, _, tax8) = alltoall_row(n, 8, batch);
        row![batch, tax4, tax8]
    });
    table.extend(rows);
    ExperimentReport::new().table(table)
}

fn topoopt_fabric_for(
    n: usize,
    degree: usize,
) -> (TopologyFinderOutput, topoopt_strategy::TrafficDemands) {
    let model = build_dlrm(&DlrmConfig::all_to_all(128));
    let strategy = ParallelizationStrategy::hybrid_embeddings_round_robin(&model, n);
    let demands = extract_traffic(&model, &strategy, 4);
    let out = build_topoopt_fabric(&demands, n, degree, 100.0e9);
    (out, demands)
}

fn fig14(s: &Scale) -> ExperimentReport {
    let n = s.dedicated;
    let mut table = Table::titled(
        format!("path-length CDF over all server pairs, {n} servers"),
        vec![
            Column::int("degree"),
            Column::fixed("average (hops)", 2),
            Column::int("p50"),
            Column::int("p90"),
            Column::int("max"),
        ],
    );
    let rows = par_rows(vec![4usize, 8], |degree| {
        let (out, _) = topoopt_fabric_for(n, degree);
        let net = SimNetwork::new(out.graph.clone(), n, out.routing.clone());
        let cdf = net.server_path_length_cdf();
        let avg = net.average_server_path_length();
        let p = |q: f64| cdf[((cdf.len() as f64 * q) as usize).min(cdf.len() - 1)];
        row![degree, avg, p(0.5), p(0.9), *cdf.last().unwrap()]
    });
    table.extend(rows);
    ExperimentReport::new().table(table)
}

fn fig15(s: &Scale) -> ExperimentReport {
    let n = s.dedicated;
    let mut table = Table::titled(
        format!("per-link carried traffic for the all-to-all DLRM, {n} servers"),
        vec![
            Column::int("degree"),
            Column::int("links"),
            Column::fixed("min (MB)", 1),
            Column::fixed("max (MB)", 1),
            Column::fixed("min/max imbalance (%)", 0),
        ],
    );
    let rows: Vec<Option<Vec<Cell>>> = vec![4usize, 8]
        .into_par_iter()
        .map(|degree| {
            let (out, demands) = topoopt_fabric_for(n, degree);
            let plans: Vec<AllReducePlan> = out
                .groups
                .iter()
                .map(|g| AllReducePlan { permutations: g.permutations(), bytes: g.bytes })
                .collect();
            let net = SimNetwork::new(out.graph.clone(), n, out.routing.clone());
            let it =
                simulate_iteration(&net, &demands, &plans, &IterationParams { compute_s: 0.0 });
            let cdf = it.link_traffic_cdf;
            if cdf.is_empty() {
                return None;
            }
            let min = cdf.first().unwrap() / 1.0e6;
            let max = cdf.last().unwrap() / 1.0e6;
            Some(row![degree, cdf.len(), min, max, (1.0 - min / max) * 100.0])
        })
        .collect();
    table.extend(rows.into_iter().flatten());
    ExperimentReport::new().table(table)
}

fn fig16(s: &Scale) -> ExperimentReport {
    let total = s.shared;
    let degree = 8;
    let link_bps = 100.0e9;
    let mix = MixModel { servers_per_job: 16, ..MixModel::default() };
    // Default seed 7 reproduces the original harness's job-mix stream
    // (which used a fixed seed of 11).
    let mix_seed = s.seed.wrapping_add(4);
    let mut table = Table::titled(
        format!("shared cluster of {total} servers (d = {degree}, B = 100 Gbps), §5.6 job mix"),
        vec![
            Column::fixed("load (%)", 0),
            Column::int("jobs"),
            Column::fixed("TopoOpt avg (s)", 4),
            Column::fixed("TopoOpt p99 (s)", 4),
            Column::fixed("Fat-tree avg (s)", 4),
            Column::fixed("Fat-tree p99 (s)", 4),
        ],
    )
    .with_paper("432 servers in the paper");
    let rows = par_rows(vec![0.2, 0.4, 0.6, 0.8, 1.0], |load| {
        let requests = job_mix_for_load(&mix, total, load, mix_seed);
        let mut shards = ClusterShards::new(total);
        let mut union = topoopt_graph::Graph::new(total);
        let mut jobs_data = Vec::new();
        for req in &requests {
            let Some((_, servers)) = shards.allocate(req.servers) else { break };
            let (model, strategy) = baseline_strategy(req.model, ModelPreset::Shared, req.servers);
            let (demands, compute_s) =
                demands_and_compute(&model, &strategy, req.servers, degree as f64 * link_bps);
            let out = build_topoopt_fabric(&demands, req.servers, degree, link_bps);
            for (_, e) in out.graph.edges() {
                union.add_edge(servers[e.src], servers[e.dst], e.capacity_bps);
            }
            let plans: Vec<AllReducePlan> = out
                .groups
                .iter()
                .map(|g| AllReducePlan { permutations: g.permutations(), bytes: g.bytes })
                .collect();
            jobs_data.push((demands, plans, servers, compute_s, model.name.clone()));
        }
        let topo_net = SimNetwork::without_rules(union, total);
        let topo_jobs: Vec<JobSpec> = jobs_data
            .iter()
            .map(|(demands, plans, servers, compute_s, name)| {
                JobSpec::new(
                    name.clone(),
                    build_job_flows(&topo_net, demands, plans, servers),
                    *compute_s,
                )
            })
            .collect();
        let topo = simulate_shared_cluster(&topo_net, &topo_jobs);

        let ft_bw = equivalent_fat_tree_bandwidth(total, degree, link_bps);
        let ft_net =
            SimNetwork::without_rules(topoopt_graph::topologies::ideal_switch(total, ft_bw), total);
        let ft_jobs: Vec<JobSpec> = jobs_data
            .iter()
            .map(|(demands, _plans, servers, compute_s, name)| {
                JobSpec::new(
                    name.clone(),
                    build_job_flows(&ft_net, demands, &natural_ring_plans(demands), servers),
                    *compute_s,
                )
            })
            .collect();
        let ft = simulate_shared_cluster(&ft_net, &ft_jobs);
        row![load * 100.0, topo_jobs.len(), topo.average_s, topo.p99_s, ft.average_s, ft.p99_s]
    });
    table.extend(rows);
    ExperimentReport::new().table(table)
}

fn fig16_dynamic(s: &Scale) -> ExperimentReport {
    let total = s.shared;
    let degree = 8;
    let link_bps = 100.0e9;
    let iterations = 20usize;
    let mix = MixModel { servers_per_job: 16, ..MixModel::default() };
    let mix_seed = s.seed.wrapping_add(4);
    let mut table = Table::titled(
        format!(
            "dynamic shared cluster of {total} servers (d = {degree}, B = 100 Gbps): \
             Poisson arrivals, {iterations}-iteration jobs, look-ahead provisioning"
        ),
        vec![
            Column::fixed("load (%)", 0),
            Column::int("jobs"),
            Column::fixed("TopoOpt mean JCT (s)", 4),
            Column::fixed("TopoOpt p99 JCT (s)", 4),
            Column::fixed("queue wait (s)", 4),
            Column::fixed("switch-over (s)", 4),
            Column::int("flips"),
            Column::fixed("Fat-tree mean JCT (s)", 4),
            Column::fixed("Fat-tree p99 JCT (s)", 4),
        ],
    )
    .with_paper(
        "Appendix C: the look-ahead bank pre-wires the next job's topology while jobs \
         train, so patch-panel rewiring is (mostly) hidden behind queueing",
    );
    let rows = par_rows(vec![0.2, 0.4, 0.6, 0.8, 1.0], |load| {
        // Twice the steady-state job count, so the cluster sees sustained
        // turnover (departures freeing shards for queued arrivals).
        let requests = job_mix_for_load(&mix, total * 2, load, mix_seed);

        // Per-request demands, plans, shard topology, and solo iteration
        // time (over local ids; the dynamic simulator places the shard).
        let built: Vec<(DynamicJobSpec, f64)> = requests
            .iter()
            .map(|req| {
                let (model, strategy) =
                    baseline_strategy(req.model, ModelPreset::Shared, req.servers);
                let (demands, compute_s) =
                    demands_and_compute(&model, &strategy, req.servers, degree as f64 * link_bps);
                let out = build_topoopt_fabric(&demands, req.servers, degree, link_bps);
                let plans: Vec<AllReducePlan> = out
                    .groups
                    .iter()
                    .map(|g| AllReducePlan { permutations: g.permutations(), bytes: g.bytes })
                    .collect();
                let spec = DynamicJobSpec {
                    name: model.name.clone(),
                    servers: req.servers,
                    demands,
                    plans,
                    topology: Some(out.graph),
                    compute_s,
                    arrival_s: 0.0,
                    iterations,
                };
                // The exact per-iteration cost the dynamic simulator will
                // charge this job, so the arrival-rate calibration below
                // can never drift from the simulated durations.
                let solo_iter_s = solo_iteration_s(&spec, 1.0e-6);
                (spec, solo_iter_s)
            })
            .collect();

        // Arrival spacing that offers `load` of the cluster on average:
        // rate = total*load / (servers_per_job * mean job duration).
        let mean_duration_s = iterations as f64 * built.iter().map(|(_, it)| it).sum::<f64>()
            / built.len().max(1) as f64;
        let mean_gap_s =
            mean_duration_s * mix.servers_per_job as f64 / (total as f64 * load.max(0.05));
        let arrivals = poisson_arrival_times(built.len(), mean_gap_s, mix_seed);
        // Patch-panel rewiring takes minutes against jobs that train for
        // hours; a tenth of a (scaled-down) job's runtime keeps the
        // hide-it-behind-training mechanism visible in the table.
        let provisioning_s = 0.1 * mean_duration_s;

        let topo_jobs: Vec<DynamicJobSpec> = built
            .iter()
            .zip(&arrivals)
            .map(|((spec, _), &t)| {
                let mut spec = spec.clone();
                spec.arrival_s = t;
                spec
            })
            .collect();
        let topo = simulate_dynamic_cluster(
            &topo_jobs,
            &DynamicClusterParams {
                total_servers: total,
                fabric: DynamicFabric::Partitioned,
                provisioning_time_s: provisioning_s,
                per_hop_latency_s: 1.0e-6,
                migration: MigrationMode::Atomic,
                shared_engine: SharedEngineMode::Persistent,
                window_cap: None,
                faults: vec![],
            },
        );

        let ft_bw = equivalent_fat_tree_bandwidth(total, degree, link_bps);
        let ft_jobs: Vec<DynamicJobSpec> = topo_jobs
            .iter()
            .map(|spec| {
                let mut spec = spec.clone();
                spec.plans = natural_ring_plans(&spec.demands);
                spec.topology = None;
                spec
            })
            .collect();
        let ft = simulate_dynamic_cluster(
            &ft_jobs,
            &DynamicClusterParams {
                total_servers: total,
                fabric: DynamicFabric::Shared(topoopt_graph::topologies::ideal_switch(
                    total, ft_bw,
                )),
                provisioning_time_s: 0.0,
                per_hop_latency_s: 1.0e-6,
                migration: MigrationMode::Atomic,
                shared_engine: SharedEngineMode::Persistent,
                window_cap: None,
                faults: vec![],
            },
        );
        row![
            load * 100.0,
            topo_jobs.len(),
            topo.mean_jct_s,
            topo.p99_jct_s,
            topo.mean_queue_delay_s,
            topo.mean_switch_over_s,
            topo.flips,
            ft.mean_jct_s,
            ft.p99_jct_s
        ]
    });
    table.extend(rows);
    ExperimentReport::new().table(table).note(
        "JCT = submission to departure. TopoOpt pays switch-over only when the look-ahead \
         bank's wiring did not finish in time; the fat-tree never rewires but runs every \
         job at the cost-equivalent (lower) per-server bandwidth.",
    )
}

fn fig16_dynamic_scale(s: &Scale) -> ExperimentReport {
    let degree = 8;
    let link_bps = 100.0e9;
    let iterations = 20usize;
    let mix = MixModel { servers_per_job: 16, ..MixModel::default() };
    let mix_seed = s.seed.wrapping_add(5);
    // Fixed datacenter sizes regardless of --full: the point of this
    // experiment is the committed, diffable scaling curve of the flat
    // engine, not a paper figure at a paper size.
    let sizes = [512usize, 2048, 8192];

    // Every request asks for the same 16-server shard, so one
    // TopologyFinder run per model kind covers every job at every cluster
    // size. These fabrics use `mp_shortest_path` routing: MP pairs covered
    // by a DP ring still ride their matched direct links.
    let kinds = [ModelKind::Dlrm, ModelKind::Bert, ModelKind::Candle, ModelKind::Vgg16];
    let prototypes: Vec<(ModelKind, DynamicJobSpec, f64)> = kinds
        .par_iter()
        .map(|&kind| {
            let n = mix.servers_per_job;
            let (model, strategy) = baseline_strategy(kind, ModelPreset::Shared, n);
            let (demands, compute_s) =
                demands_and_compute(&model, &strategy, n, degree as f64 * link_bps);
            let out = build_topoopt_fabric_routed(&demands, n, degree, link_bps);
            let plans: Vec<AllReducePlan> = out
                .groups
                .iter()
                .map(|g| AllReducePlan { permutations: g.permutations(), bytes: g.bytes })
                .collect();
            let spec = DynamicJobSpec {
                name: model.name.clone(),
                servers: n,
                demands,
                plans,
                topology: Some(out.graph),
                compute_s,
                arrival_s: 0.0,
                iterations,
            };
            let solo_iter_s = solo_iteration_s(&spec, 1.0e-6);
            (kind, spec, solo_iter_s)
        })
        .collect();
    let prototype = |kind: ModelKind| {
        prototypes.iter().find(|(k, _, _)| *k == kind).expect("prototype for every mix kind")
    };

    // Table 1: the dynamic sweep — Poisson arrivals at two offered loads
    // per cluster size, partitioned TopoOpt fabric with look-ahead
    // provisioning (a cost-equivalent shared fat-tree at 8k servers would
    // re-simulate every co-resident flow set on each of thousands of
    // events; the partitioned sweep is the regime the paper's provisioner
    // targets and what the sharded engine accelerates).
    let mut dynamic_table = Table::titled(
        format!(
            "dynamic TopoOpt cluster at datacenter scale (d = {degree}, B = 100 Gbps, \
             16-server jobs, {iterations} iterations each): Poisson arrivals, \
             look-ahead provisioning"
        ),
        vec![
            Column::int("servers"),
            Column::fixed("load (%)", 0),
            Column::int("jobs"),
            Column::fixed("mean JCT (s)", 4),
            Column::fixed("p99 JCT (s)", 4),
            Column::fixed("queue wait (s)", 4),
            Column::fixed("switch-over (s)", 4),
            Column::int("flips"),
            Column::fixed("makespan (s)", 4),
        ],
    )
    .with_paper("extends Figure 16 / Appendix C from 432 to 8192 servers (ROADMAP north-star)");
    let mut points: Vec<(usize, f64)> = Vec::new();
    for &total in &sizes {
        for load in [0.6, 0.9] {
            points.push((total, load));
        }
    }
    let rows = par_rows(points, |(total, load)| {
        // Twice the steady-state job count, so the cluster sees sustained
        // turnover (departures freeing shards for queued arrivals).
        let requests = job_mix_for_load(&mix, total * 2, load, mix_seed);
        let built: Vec<(&DynamicJobSpec, f64)> = requests
            .iter()
            .map(|req| {
                let (_, spec, solo) = prototype(req.model);
                (spec, *solo)
            })
            .collect();
        let mean_duration_s = iterations as f64 * built.iter().map(|(_, it)| it).sum::<f64>()
            / built.len().max(1) as f64;
        let mean_gap_s =
            mean_duration_s * mix.servers_per_job as f64 / (total as f64 * load.max(0.05));
        let arrivals = poisson_arrival_times(built.len(), mean_gap_s, mix_seed);
        let provisioning_s = 0.1 * mean_duration_s;
        let jobs: Vec<DynamicJobSpec> = built
            .iter()
            .zip(&arrivals)
            .map(|((spec, _), &t)| {
                let mut spec = (*spec).clone();
                spec.arrival_s = t;
                spec
            })
            .collect();
        let r = simulate_dynamic_cluster(
            &jobs,
            &DynamicClusterParams {
                total_servers: total,
                fabric: DynamicFabric::Partitioned,
                provisioning_time_s: provisioning_s,
                per_hop_latency_s: 1.0e-6,
                migration: MigrationMode::Atomic,
                shared_engine: SharedEngineMode::Persistent,
                window_cap: None,
                faults: vec![],
            },
        );
        row![
            total,
            load * 100.0,
            jobs.len(),
            r.mean_jct_s,
            r.p99_jct_s,
            r.mean_queue_delay_s,
            r.mean_switch_over_s,
            r.flips,
            r.makespan_s
        ]
    });
    dynamic_table.extend(rows);

    // Table 2: one fully-occupied static round per size on the union
    // fabric, with the engine's work counters. Every job is a disjoint
    // component, so this is exactly the workload the sharded event loops
    // and component-scoped waterfilling exist for: max_component stays at
    // one job's flow count no matter how large the cluster grows.
    let mut round_table = Table::titled(
        "full-occupancy static round on the union fabric (engine work counters)".to_string(),
        vec![
            Column::int("servers"),
            Column::int("jobs"),
            Column::int("flows"),
            Column::int("events"),
            Column::int("waterfills"),
            Column::int("max component"),
            Column::fixed("avg iter (s)", 4),
            Column::fixed("p99 iter (s)", 4),
        ],
    );
    let round_rows = par_rows(sizes.to_vec(), |total| {
        let requests = job_mix_for_load(&mix, total, 1.0, mix_seed);
        let mut shards = ClusterShards::new(total);
        let mut union = topoopt_graph::Graph::new(total);
        let mut placed: Vec<(&DynamicJobSpec, Vec<usize>)> = Vec::new();
        for req in &requests {
            let Some((_, servers)) = shards.allocate(req.servers) else { break };
            let (_, spec, _) = prototype(req.model);
            let topo = spec.topology.as_ref().expect("prototype fabrics are partitioned");
            for (_, e) in topo.edges() {
                union.add_edge(servers[e.src], servers[e.dst], e.capacity_bps);
            }
            placed.push((spec, servers));
        }
        let net = SimNetwork::without_rules(union, total);
        let jobs: Vec<JobSpec> = placed
            .iter()
            .map(|(spec, servers)| {
                JobSpec::new(
                    spec.name.clone(),
                    build_job_flows(&net, &spec.demands, &spec.plans, servers),
                    spec.compute_s,
                )
            })
            .collect();
        let flow_count: usize = jobs.iter().map(|j| j.flows.len()).sum();
        let (round, stats) = simulate_shared_cluster_stats(&net, &jobs);
        row![
            total,
            jobs.len(),
            flow_count,
            stats.events,
            stats.waterfills,
            stats.max_component,
            round.average_s,
            round.p99_s
        ]
    });
    round_table.extend(round_rows);

    // Table 3: the persistent-engine payoff — the same Poisson mix on a
    // cost-equivalent shared fat-tree, where every arrival/departure
    // re-rates the co-resident set. One engine survives the whole run
    // (links intern once, admission parks flows, departure retires them);
    // the window counters prove the reuse: jobs are server-disjoint on the
    // ideal switch, so a window touches one job-level component and every
    // other resident keeps its cached round time.
    let mut window_table = Table::titled(
        "shared fat-tree arm: persistent engine window counters (60% offered load)".to_string(),
        vec![
            Column::int("servers"),
            Column::int("jobs"),
            Column::int("windows"),
            Column::int("incremental"),
            Column::int("rebuilt"),
            Column::int("jobs re-rated"),
            Column::int("jobs reused"),
            Column::int("events"),
            Column::int("waterfills"),
            Column::int("max component"),
            Column::fixed("mean JCT (s)", 4),
        ],
    );
    let window_rows = par_rows(sizes.to_vec(), |total| {
        let load = 0.6;
        let requests = job_mix_for_load(&mix, total * 2, load, mix_seed);
        let built: Vec<(&DynamicJobSpec, f64)> = requests
            .iter()
            .map(|req| {
                let (_, spec, solo) = prototype(req.model);
                (spec, *solo)
            })
            .collect();
        let mean_duration_s = iterations as f64 * built.iter().map(|(_, it)| it).sum::<f64>()
            / built.len().max(1) as f64;
        let mean_gap_s =
            mean_duration_s * mix.servers_per_job as f64 / (total as f64 * load.max(0.05));
        let arrivals = poisson_arrival_times(built.len(), mean_gap_s, mix_seed);
        let ft_bw = equivalent_fat_tree_bandwidth(total, degree, link_bps);
        let jobs: Vec<DynamicJobSpec> = built
            .iter()
            .zip(&arrivals)
            .map(|((spec, _), &t)| {
                let mut spec = (*spec).clone();
                spec.arrival_s = t;
                spec.plans = natural_ring_plans(&spec.demands);
                spec.topology = None;
                spec
            })
            .collect();
        let r = simulate_dynamic_cluster(
            &jobs,
            &DynamicClusterParams {
                total_servers: total,
                fabric: DynamicFabric::Shared(topoopt_graph::topologies::ideal_switch(
                    total, ft_bw,
                )),
                provisioning_time_s: 0.0,
                per_hop_latency_s: 1.0e-6,
                migration: MigrationMode::Atomic,
                shared_engine: SharedEngineMode::Persistent,
                window_cap: None,
                faults: vec![],
            },
        );
        let e = r.engine;
        row![
            total,
            jobs.len(),
            e.windows,
            e.windows_incremental,
            e.windows_rebuilt,
            e.jobs_rerated,
            e.jobs_reused,
            e.events,
            e.waterfills,
            e.max_component,
            r.mean_jct_s
        ]
    });
    window_table.extend(window_rows);

    ExperimentReport::new().table(dynamic_table).table(round_table).table(window_table).note(
        "Flat index-based engine + per-component sharded event loops: disjoint 16-server \
         jobs schedule fully independently, so the largest re-rated component is one job's \
         flow set even at 8192 servers. MP pairs use shortest-path routes over their \
         matched links (mp_shortest_path). The shared-arm table drives one persistent \
         engine across every arrival/departure window: 'jobs reused' counts resident jobs \
         whose cached round time survived a window untouched (bit-identical to a full \
         rebuild).",
    )
}

fn fig17(s: &Scale) -> ExperimentReport {
    let n = s.dedicated.min(32);
    let degree = 8;
    let mut report = ExperimentReport::new();
    for kind in [ModelKind::Dlrm, ModelKind::Bert] {
        let (model, strategy) = baseline_strategy(kind, ModelPreset::Shared, n);
        let (demands, compute_s) = demands_and_compute(&model, &strategy, n, 800.0e9);
        let topo = topoopt_iteration(&demands, n, degree, 100.0e9, compute_s);
        let mut table = Table::titled(
            format!(
                "OCS reconfiguration latency, {} on {n} servers, d = {degree} \
                 (TopoOpt static: {:.4} s)",
                kind.name(),
                topo.total_s
            ),
            vec![
                Column::fixed("latency (us)", 0),
                Column::fixed("OCS-reconfig-FW (s)", 4),
                Column::fixed("OCS-reconfig-noFW (s)", 4),
            ],
        );
        let rows = par_rows(vec![1.0, 10.0, 100.0, 1000.0, 10000.0], |latency_us| {
            let base = ReconfigParams {
                degree,
                link_bps: 100.0e9,
                reconfig_latency_s: latency_us * 1.0e-6,
                compute_s,
                ..Default::default()
            };
            let fw = simulate_reconfigurable_iteration(&demands, &base);
            let nofw = simulate_reconfigurable_iteration(
                &demands,
                &ReconfigParams { host_forwarding: false, ..base },
            );
            row![latency_us, fw.total_s, nofw.total_s]
        });
        table.extend(rows);
        report = report.table(table);
    }
    report
}

/// Relay efficiency the committed §6 figures run at. 1.0 calibrates the
/// testbed to the paper's tuned forwarding path (DPDK-grade relaying);
/// `rdma_relay_overhead` sweeps the penalty itself.
const TESTBED_RELAY_EFFICIENCY: f64 = 1.0;

/// The 12-server degree-4 §6 testbed: synthesize the TopoOpt fabric for
/// one model with `TopologyFinder`, derive its NPAR forwarding plan, and
/// return it together with the model, demands, and compute estimate.
fn testbed_fabric(
    kind: ModelKind,
) -> (topoopt_models::DnnModel, RdmaFabric, topoopt_strategy::TrafficDemands, f64) {
    let n = 12;
    let (model, strategy) = baseline_strategy(kind, ModelPreset::Testbed, n);
    let (demands, compute_s) = demands_and_compute(&model, &strategy, n, 100.0e9);
    let fabric = build_rdma_fabric(&demands, n, 4, 25.0e9);
    (model, fabric, demands, compute_s)
}

/// Samples/second of one model on its already-built testbed fabric:
/// TopoOpt 4x25G (host-forwarded over its real forwarding plan) vs 100G
/// switch vs 25G switch.
fn testbed_throughput_on(
    model: &topoopt_models::DnnModel,
    fabric: &RdmaFabric,
    demands: &topoopt_strategy::TrafficDemands,
    compute_s: f64,
) -> (f64, f64, f64) {
    let n = fabric.num_servers;
    let params = compute_params();
    let global_batch = (model.batch_per_gpu * params.gpus_per_server * n) as f64;
    let topo = fabric.simulate(demands, compute_s, TESTBED_RELAY_EFFICIENCY);
    let sw100 = switch_iteration(demands, n, 100.0e9, compute_s);
    let sw25 = switch_iteration(demands, n, 25.0e9, compute_s);
    (global_batch / topo.total_s, global_batch / sw100.total_s, global_batch / sw25.total_s)
}

fn testbed_throughput(kind: ModelKind) -> (f64, f64, f64) {
    let (model, fabric, demands, compute_s) = testbed_fabric(kind);
    testbed_throughput_on(&model, &fabric, &demands, compute_s)
}

fn fig19(_s: &Scale) -> ExperimentReport {
    let mut table = Table::titled(
        "testbed training throughput (samples/second), 12 servers",
        vec![
            Column::text("model"),
            Column::fixed("TopoOpt 4x25G", 1),
            Column::fixed("Switch 100G", 1),
            Column::fixed("Switch 25G", 1),
        ],
    )
    .with_paper("TopoOpt at 4 x 25 Gbps matches or beats the 100 Gbps switch");
    // Each model row builds its own fabric; the DLRM row's plan statistics
    // feed the note, so that fabric is synthesized exactly once.
    let results: Vec<(Vec<Cell>, Option<String>)> = vec![
        ModelKind::Bert,
        ModelKind::Dlrm,
        ModelKind::Vgg16,
        ModelKind::Candle,
        ModelKind::ResNet50,
    ]
    .into_par_iter()
    .map(|kind| {
        let (model, fabric, demands, compute_s) = testbed_fabric(kind);
        let (topo, sw100, sw25) = testbed_throughput_on(&model, &fabric, &demands, compute_s);
        let dlrm_stats = (kind == ModelKind::Dlrm).then(|| {
            format!(
                "The DLRM row's fabric: {} destination-keyed kernel rules, {:.0}% of server \
                 pairs relayed, relay histogram {:?} (pairs by relay count).",
                fabric.plan.num_rules(),
                fabric.plan.relayed_fraction() * 100.0,
                fabric.plan.relay_histogram(),
            )
        });
        (row![kind.name(), topo, sw100, sw25], dlrm_stats)
    })
    .collect();
    let mut dlrm_stats = String::new();
    for (row, stats) in results {
        table.push(row);
        if let Some(s) = stats {
            dlrm_stats = s;
        }
    }
    ExperimentReport::new().table(table).note(format!(
        "Each TopoOpt row runs on its own synthesized 12-server degree-4 fabric through \
         that fabric's NPAR forwarding plan (Appendix I), at relay efficiency \
         {TESTBED_RELAY_EFFICIENCY}. {dlrm_stats}",
    ))
}

/// Figure 20 rows for one top-5 accuracy target. Unreachable targets (the
/// curve saturates below them) produce empty "n/a" cells instead of
/// panicking the whole `reproduce all` run.
fn fig20_rows(target: f64) -> Vec<Vec<Cell>> {
    let curve = AccuracyCurve::vgg19_imagenet();
    let (topo, sw100, sw25) = testbed_throughput(ModelKind::Vgg16);
    let samples_per_epoch = 1.28e6;
    [("TopoOpt 4x25G", topo), ("Switch 100G", sw100), ("Switch 25G", sw25)]
        .into_iter()
        .map(|(name, thr)| {
            let hours = time_to_accuracy(&curve, target, thr, samples_per_epoch);
            row![name, hours]
        })
        .collect()
}

fn fig20(_s: &Scale) -> ExperimentReport {
    let mut table = Table::titled(
        "time-to-accuracy of VGG19/ImageNet (top-5 target 90%)",
        vec![Column::text("network"), Column::fixed("hours", 1)],
    );
    table.extend(fig20_rows(0.90));
    ExperimentReport::new().table(table)
}

fn fig21(_s: &Scale) -> ExperimentReport {
    let n = 12;
    let mut table = Table::titled(
        "testbed all-to-all impact (12 servers, §6 DLRM)",
        vec![
            Column::int("batch"),
            Column::fixed("alltoall/AR (%)", 0),
            Column::fixed("TopoOpt 4x25G (s)", 4),
            Column::fixed("Switch 100G (s)", 4),
            Column::fixed("Switch 25G (s)", 4),
        ],
    );
    let rows = par_rows(vec![32usize, 64, 128, 256, 512], |batch| {
        let model = build_dlrm(&DlrmConfig::testbed(batch));
        let strategy = ParallelizationStrategy::hybrid_embeddings_round_robin(&model, n);
        let params = compute_params();
        let demands = extract_traffic(&model, &strategy, params.gpus_per_server);
        let est = estimate_iteration_time(
            &model,
            &strategy,
            &TopologyView::FullMesh { n, per_server_bps: 100.0e9 },
            &params,
        );
        let fabric = build_rdma_fabric(&demands, n, 4, 25.0e9);
        let topo = fabric.simulate(&demands, est.compute_s, TESTBED_RELAY_EFFICIENCY);
        let sw100 = switch_iteration(&demands, n, 100.0e9, est.compute_s);
        let sw25 = switch_iteration(&demands, n, 25.0e9, est.compute_s);
        row![
            batch,
            demands.mp_to_allreduce_ratio() * 100.0,
            topo.total_s,
            sw100.total_s,
            sw25.total_s
        ]
    });
    table.extend(rows);
    ExperimentReport::new().table(table)
}

fn rdma_relay_overhead(_s: &Scale) -> ExperimentReport {
    // §6 / Appendix I: what does host-based forwarding actually cost? Sweep
    // the kernel-relay efficiency against the server degree on the 12-node
    // DLRM testbed. Lower degree = longer rule chains = more connections
    // paying the kernel penalty; efficiency 1.0 is the committed fig19/21
    // operating point.
    let n = 12;
    let (model, strategy) = baseline_strategy(ModelKind::Dlrm, ModelPreset::Testbed, n);
    let params = compute_params();
    let (demands, compute_s) = demands_and_compute(&model, &strategy, n, 100.0e9);
    let mut table = Table::titled(
        "kernel-relay overhead sweep (12-server DLRM testbed, B = 25 Gbps per interface)",
        vec![
            Column::int("degree"),
            Column::fixed("relay eff", 2),
            Column::int("rules"),
            Column::fixed("relayed pairs (%)", 0),
            Column::int("max relays"),
            Column::fixed("sim iter (s)", 4),
            Column::fixed("est iter (s)", 4),
            Column::fixed("slowdown (x)", 2),
        ],
    )
    .with_paper(
        "Appendix I measures the relay datapath at near line rate once tuned; the sweep \
         shows how fast an untuned kernel path erodes TopoOpt's advantage",
    );
    // The fabric and its efficiency-1.0 baseline depend only on the degree:
    // build each once and sweep the efficiencies against it.
    let row_blocks: Vec<Vec<Vec<Cell>>> = vec![2usize, 3, 4]
        .into_par_iter()
        .map(|degree| {
            let fabric = build_rdma_fabric(&demands, n, degree, 25.0e9);
            let baseline = fabric.simulate(&demands, compute_s, 1.0);
            let hist = fabric.plan.relay_histogram();
            let base_view = TopologyView::from_graph(&fabric.out.graph, n);
            [1.0, 0.9, 0.8, 0.7, 0.6, 0.5]
                .into_iter()
                .map(|eff| {
                    let sim = if eff >= 1.0 {
                        baseline.clone()
                    } else {
                        fabric.simulate(&demands, compute_s, eff)
                    };
                    // The analytical estimate sees the same penalty through
                    // the per-pair factors of the topology view.
                    let view = base_view.clone().with_pair_factors(fabric.pair_factors(eff));
                    let est = estimate_iteration_time(&model, &strategy, &view, &params);
                    row![
                        degree,
                        eff,
                        fabric.plan.num_rules(),
                        fabric.plan.relayed_fraction() * 100.0,
                        hist.len().saturating_sub(1),
                        sim.total_s,
                        est.total_s,
                        sim.total_s / baseline.total_s
                    ]
                })
                .collect()
        })
        .collect();
    table.extend(row_blocks.into_iter().flatten());
    ExperimentReport::new().table(table).note(
        "sim = flow-level simulation with per-flow kernel-relay rate caps; est = FlexNet \
         cost model with the same per-pair factors; slowdown is sim vs the same fabric at \
         relay efficiency 1.0. The penalty is eff^relays with up to 10 relays on this \
         fabric, so the cap stays above the fabric's max-min fair shares (no slowdown) \
         until it abruptly dominates — the cliff between 0.6 and 0.5 is the model, not \
         noise. The rule set is degree-invariant because TopologyFinder gives this \
         MP-heavy job d_A = 1 (one shared AllReduce ring carries all routed traffic); \
         the extra MP links of higher degrees show up only in the estimate's bandwidth \
         terms.",
    )
}

fn fig_a(_s: &Scale) -> ExperimentReport {
    let members: Vec<usize> = (0..16).collect();
    let dbt = double_binary_tree(&members);
    let tm = tree_allreduce_traffic(16, 22.0 * GB, &dbt);
    let mut table = Table::titled(
        "double binary tree AllReduce permutations (Appendix A), 16 servers",
        heatmap_columns(),
    );
    table.push(heatmap_row("DBT AllReduce of a 22 GB model", &tm));
    // Permuting the labels preserves volume.
    let permuted: Vec<usize> = (0..16).map(|i| (i * 5) % 16).collect();
    let dbt2 = double_binary_tree(&permuted);
    let tm2 = tree_allreduce_traffic(16, 22.0 * GB, &dbt2);
    table.push(heatmap_row("relabelled DBT (same cost)", &tm2));
    ExperimentReport::new().table(table)
}

fn table02(_s: &Scale) -> ExperimentReport {
    let mut table = Table::titled(
        "component costs ($)",
        vec![
            Column::fixed("bandwidth (Gbps)", 0),
            Column::fixed("transceiver", 0),
            Column::fixed("NIC", 0),
            Column::fixed("switch port", 0),
            Column::fixed("patch panel", 0),
            Column::fixed("OCS", 0),
            Column::fixed("1x2 switch", 0),
        ],
    )
    .with_paper("Table 2 (Appendix G) values are the paper's own price survey");
    for gbps in [10.0, 25.0, 40.0, 100.0, 200.0] {
        let c = component_costs(gbps * 1.0e9);
        table.push(row![
            gbps,
            c.transceiver,
            c.nic,
            c.electrical_switch_port,
            c.patch_panel_port,
            c.ocs_port,
            c.one_by_two_switch
        ]);
    }
    ExperimentReport::new().table(table)
}

fn fig28(s: &Scale) -> ExperimentReport {
    let n = s.dedicated;
    let mut table = Table::titled(
        format!("impact of server degree on iteration time, {n} servers"),
        vec![
            Column::text("model"),
            Column::int("degree"),
            Column::fixed("B=40 Gbps (s)", 4),
            Column::fixed("B=100 Gbps (s)", 4),
        ],
    );
    let combos: Vec<(ModelKind, usize)> = [ModelKind::Dlrm, ModelKind::Candle, ModelKind::Bert]
        .into_iter()
        .flat_map(|kind| [4usize, 6, 8, 10].map(|degree| (kind, degree)))
        .collect();
    let rows = par_rows(combos, |(kind, degree)| {
        let (model, strategy) = baseline_strategy(kind, ModelPreset::Shared, n);
        let mut per_bw = Vec::new();
        for b in [40.0e9, 100.0e9] {
            let (demands, compute_s) = demands_and_compute(&model, &strategy, n, degree as f64 * b);
            let topo = topoopt_iteration(&demands, n, degree, b, compute_s);
            per_bw.push(topo.total_s);
        }
        row![kind.name(), degree, per_bw[0], per_bw[1]]
    });
    table.extend(rows);
    ExperimentReport::new().table(table)
}

/// The migration-planner callback [`fig_reconfig_planned`] hands the
/// dynamic cluster: tree-search sequencing with per-destination rule
/// repair, each link operation costing an equal slice of the atomic
/// rewiring time. Falls back to the atomic swap — naming the violated
/// policy on the schedule — when no safe ordering is found.
fn planned_migration_mode(provisioning_s: f64) -> MigrationMode {
    MigrationMode::Planned(Arc::new(move |prev: Option<&Graph>, target: &Graph| {
        let n = target.num_nodes();
        let per_step_s = provisioning_s / target.num_edges().max(1) as f64;
        let source = prev.cloned().unwrap_or_else(|| Graph::new(n));
        let problem = MigrationProblem::new(
            n,
            FabricSpec::shortest_path(source),
            FabricSpec::shortest_path(target.clone()),
        );
        let planner = MigrationPlanner::new(Box::new(TreeSearch::default()));
        match planner.plan(&problem) {
            Ok(plan) => TransitionSchedule::planned(
                (1..=plan.link_ops()).map(|i| i as f64 * per_step_s).collect(),
            ),
            Err(fb) => TransitionSchedule {
                step_offsets_s: vec![provisioning_s],
                planned: false,
                fallback: Some(fb.violation.policy),
            },
        }
    }))
}

/// Rows of the §6 testbed migration table: one atomic baseline plus the
/// three planner strategies for the migration `source` → `target`, with
/// the fluid-engine throughput dip as the soft policy.
fn reconfig_testbed_rows(name: &str, source: &Graph, target: &Graph, seed: u64) -> Vec<Vec<Cell>> {
    let n = source.num_nodes();
    let problem = MigrationProblem::new(
        n,
        FabricSpec::shortest_path(source.clone()),
        FabricSpec::shortest_path(target.clone()),
    );
    let ops = problem.ops().len();
    let all_pairs: Vec<(usize, usize)> =
        (0..n).flat_map(|s| (0..n).map(move |d| (s, d))).filter(|&(s, d)| s != d).collect();
    let mut probe = TrafficMatrix::new(n);
    for &(s, d) in &all_pairs {
        probe.add(s, d, 1.0e6);
    }
    let strategies: Vec<(&str, Box<dyn Strategy>)> = vec![
        ("naive ordered", Box::new(NaiveOrdered)),
        ("random perms", Box::new(RandomPermutation::new(4, seed))),
        ("tree search", Box::new(TreeSearch::default())),
    ];
    // The atomic swap: the whole fabric is dark for the full rewiring, a
    // throughput dip of 1.0 by definition.
    let mut rows =
        vec![row![name, "atomic swap", ops, 1usize, 1.0, 1.0, 0usize, "dark while rewiring"]];
    for (label, strategy) in strategies {
        let src_state = FabricState::from_spec(&problem.source, n);
        let dip = ThroughputDip::new(probe.clone(), 1.0e-6, TESTBED_RELAY_EFFICIENCY, &src_state);
        let planner = MigrationPlanner::new(strategy)
            .with_hard(Box::new(PairReachability::new(all_pairs.clone())))
            .with_soft(Box::new(dip));
        rows.push(match planner.plan(&problem) {
            Ok(plan) => row![
                name,
                label,
                plan.link_ops(),
                plan.steps.len(),
                plan.peak_cost,
                plan.mean_cost,
                plan.states_checked,
                "ok"
            ],
            Err(fb) => row![
                name,
                label,
                ops,
                1usize,
                1.0,
                1.0,
                fb.states_checked,
                format!("fallback: {}", fb.violation.policy)
            ],
        });
    }
    rows
}

fn fig_reconfig_planned(s: &Scale) -> ExperimentReport {
    // Table 1: §6 testbed model-to-model migrations (12 servers, d = 4,
    // 25 Gbps), atomic swap vs the three planner strategies.
    let n = 12usize;
    let degree = 4usize;
    let kinds = [ModelKind::Bert, ModelKind::Dlrm, ModelKind::Vgg16, ModelKind::Candle];
    let fabrics: Vec<(ModelKind, Graph)> = kinds
        .par_iter()
        .map(|&kind| {
            let (model, strategy) = baseline_strategy(kind, ModelPreset::Testbed, n);
            let (demands, _) = demands_and_compute(&model, &strategy, n, 100.0e9);
            (kind, build_topoopt_fabric(&demands, n, degree, 25.0e9).graph)
        })
        .collect();
    let mut testbed_table = Table::titled(
        format!(
            "§6 testbed migrations ({n} servers, d = {degree}, 25 Gbps): atomic swap vs \
             planned per-link sequencing (hard: loop freedom + all-pairs reachability; \
             soft: fluid-engine throughput dip, 0 = no loss, 1 = fabric dark)"
        ),
        vec![
            Column::text("migration"),
            Column::text("strategy"),
            Column::int("link ops"),
            Column::int("steps"),
            Column::fixed("peak dip", 4),
            Column::fixed("mean dip", 4),
            Column::int("states"),
            Column::text("outcome"),
        ],
    )
    .with_paper(
        "Snowcap-style reconfiguration synthesis applied to the patch panel: every \
         intermediate fabric must keep all rule chains loop-free and every pair reachable",
    );
    let migrations: Vec<(String, Graph, Graph)> = (0..fabrics.len())
        .map(|i| {
            let (ka, ga) = &fabrics[i];
            let (kb, gb) = &fabrics[(i + 1) % fabrics.len()];
            (format!("{} -> {}", ka.name(), kb.name()), ga.clone(), gb.clone())
        })
        .collect();
    let seed = s.seed;
    let row_groups: Vec<Vec<Vec<Cell>>> = migrations
        .into_par_iter()
        .map(|(name, ga, gb)| reconfig_testbed_rows(&name, &ga, &gb, seed))
        .collect();
    for group in row_groups {
        testbed_table.extend(group);
    }

    // Table 2: a fig16-style dynamic workload, atomic vs planned
    // transitions end to end — same jobs, same arrivals, same provisioner.
    let total = s.shared;
    let dyn_degree = 8;
    let link_bps = 100.0e9;
    let iterations = 20usize;
    let mix = MixModel { servers_per_job: 16, ..MixModel::default() };
    let mix_seed = s.seed.wrapping_add(6);
    let mut dynamic_table = Table::titled(
        format!(
            "dynamic cluster of {total} servers (d = {dyn_degree}, B = 100 Gbps): atomic \
             swap vs planned per-link migration at every job transition"
        ),
        vec![
            Column::fixed("load (%)", 0),
            Column::text("migration"),
            Column::int("jobs"),
            Column::fixed("mean JCT (s)", 4),
            Column::fixed("p99 JCT (s)", 4),
            Column::fixed("queue wait (s)", 4),
            Column::fixed("switch-over (s)", 4),
            Column::int("planned"),
            Column::int("fallbacks"),
        ],
    )
    .with_paper(
        "the planned column counts transitions sequenced by the tree-search planner \
         (stale wiring of departed jobs is torn down link by link); fallbacks counts \
         transitions that reverted to the atomic swap",
    );
    let dyn_groups: Vec<Vec<Vec<Cell>>> = vec![0.6, 0.9]
        .into_par_iter()
        .map(|load| {
            let requests = job_mix_for_load(&mix, total * 2, load, mix_seed);
            let built: Vec<(DynamicJobSpec, f64)> = requests
                .iter()
                .map(|req| {
                    let (model, strategy) =
                        baseline_strategy(req.model, ModelPreset::Shared, req.servers);
                    let (demands, compute_s) = demands_and_compute(
                        &model,
                        &strategy,
                        req.servers,
                        dyn_degree as f64 * link_bps,
                    );
                    let out = build_topoopt_fabric(&demands, req.servers, dyn_degree, link_bps);
                    let plans: Vec<AllReducePlan> = out
                        .groups
                        .iter()
                        .map(|g| AllReducePlan { permutations: g.permutations(), bytes: g.bytes })
                        .collect();
                    let spec = DynamicJobSpec {
                        name: model.name.clone(),
                        servers: req.servers,
                        demands,
                        plans,
                        topology: Some(out.graph),
                        compute_s,
                        arrival_s: 0.0,
                        iterations,
                    };
                    let solo_iter_s = solo_iteration_s(&spec, 1.0e-6);
                    (spec, solo_iter_s)
                })
                .collect();
            let mean_duration_s = iterations as f64 * built.iter().map(|(_, it)| it).sum::<f64>()
                / built.len().max(1) as f64;
            let mean_gap_s =
                mean_duration_s * mix.servers_per_job as f64 / (total as f64 * load.max(0.05));
            let arrivals = poisson_arrival_times(built.len(), mean_gap_s, mix_seed);
            let provisioning_s = 0.1 * mean_duration_s;
            let jobs: Vec<DynamicJobSpec> = built
                .iter()
                .zip(&arrivals)
                .map(|((spec, _), &t)| {
                    let mut spec = spec.clone();
                    spec.arrival_s = t;
                    spec
                })
                .collect();
            let modes = [
                ("atomic", MigrationMode::Atomic),
                ("planned", planned_migration_mode(provisioning_s)),
            ];
            modes
                .into_iter()
                .map(|(label, migration)| {
                    let r = simulate_dynamic_cluster(
                        &jobs,
                        &DynamicClusterParams {
                            total_servers: total,
                            fabric: DynamicFabric::Partitioned,
                            provisioning_time_s: provisioning_s,
                            per_hop_latency_s: 1.0e-6,
                            migration,
                            shared_engine: SharedEngineMode::Persistent,
                            window_cap: None,
                            faults: vec![],
                        },
                    );
                    row![
                        load * 100.0,
                        label,
                        jobs.len(),
                        r.mean_jct_s,
                        r.p99_jct_s,
                        r.mean_queue_delay_s,
                        r.mean_switch_over_s,
                        r.planned_transitions,
                        r.fallback_transitions
                    ]
                })
                .collect()
        })
        .collect();
    for group in dyn_groups {
        dynamic_table.extend(group);
    }

    ExperimentReport::new().table(testbed_table).table(dynamic_table).note(
        "Peak/mean dip is the worst/average fraction of source-fabric goodput lost across \
         the migration's intermediate states (fluid-simulated over an all-pairs probe); \
         the atomic swap scores 1.0 because the whole fabric is dark while it rewires. \
         Planned transitions pay the same provisioner mechanics (look-ahead wiring hidden \
         behind queueing), with the schedule's total time scaled to the number of link \
         operations the migration actually needs.",
    )
}

/// Degraded-mode throughput of one repaired fabric: kill the given links,
/// run [`topoopt_rdma::ForwardingPlan::repair`] at the chosen granularity,
/// and price the surviving fabric through the repaired plan's relay
/// factors (severed pairs get factor 0 = no logical connection).
struct DegradedRun {
    repaired: usize,
    dropped: usize,
    severed: usize,
    extra_relays: usize,
    connected_pct: f64,
    samples_per_s: f64,
}

fn degraded_run(
    fabric: &RdmaFabric,
    killed: &[topoopt_graph::EdgeId],
    mode: RepairMode,
    model: &topoopt_models::DnnModel,
    strategy: &ParallelizationStrategy,
    demands: &topoopt_strategy::TrafficDemands,
    global_batch: f64,
) -> DegradedRun {
    let n = fabric.num_servers;
    let mut degraded = fabric.out.graph.clone();
    for &id in killed {
        degraded.remove_edge(id);
    }
    let mut plan = fabric.plan.clone();
    let report = plan.repair(&degraded, mode);
    let factors: Vec<Vec<f64>> = (0..n)
        .map(|s| {
            (0..n)
                .map(|d| plan.effective_throughput_factor(s, d, TESTBED_RELAY_EFFICIENCY))
                .collect()
        })
        .collect();
    let view = TopologyView::from_graph(&degraded, n).with_pair_factors(factors);
    let est = estimate_from_demands(model, strategy, demands, &view, &compute_params());
    let connected = (0..n)
        .flat_map(|s| (0..n).map(move |d| (s, d)))
        .filter(|&(s, d)| s != d)
        .filter(|&(s, d)| plan.has_connection(s, d));
    DegradedRun {
        repaired: report.repaired_rules,
        dropped: report.dropped_rules,
        severed: report.degraded.len(),
        extra_relays: report.extra_relays,
        connected_pct: connected.count() as f64 / (n * (n - 1)) as f64 * 100.0,
        samples_per_s: if est.total_s.is_finite() { global_batch / est.total_s } else { 0.0 },
    }
}

fn fig_failure_degradation(s: &Scale) -> ExperimentReport {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    // The §6 testbed under fire: 12 servers, degree 4, DLRM demands. Kill
    // a seeded shuffle's prefix of the fabric's directed links (so each
    // failure rate's casualty set contains the previous one's), repair the
    // NPAR forwarding plan around the corpses at both granularities, and
    // price the degraded fabric against the cost-equivalent fat-tree.
    let n = 12;
    let degree = 4;
    let link_bps = 25.0e9;
    let (model, strategy) = baseline_strategy(ModelKind::Dlrm, ModelPreset::Testbed, n);
    let params = compute_params();
    let demands = extract_traffic(&model, &strategy, params.gpus_per_server);
    let global_batch = (model.batch_per_gpu * params.gpus_per_server * n) as f64;
    let fabric = build_rdma_fabric(&demands, n, degree, link_bps);

    let kill_order = |g: &Graph| -> Vec<topoopt_graph::EdgeId> {
        let mut ids: Vec<_> = g.edges().map(|(id, _)| id).collect();
        ids.shuffle(&mut StdRng::seed_from_u64(s.seed));
        ids
    };
    let order = kill_order(&fabric.out.graph);
    let num_links = order.len();

    let ft_bps = equivalent_fat_tree_bandwidth(n, degree, link_bps);
    let ft_est = estimate_from_demands(
        &model,
        &strategy,
        &demands,
        &TopologyView::FullMesh { n, per_server_bps: ft_bps },
        &params,
    );
    let ft_samples = global_batch / ft_est.total_s;
    let healthy = degraded_run(
        &fabric,
        &[],
        RepairMode::PerDestination,
        &model,
        &strategy,
        &demands,
        global_batch,
    );

    let mut table = Table::titled(
        "degraded-mode throughput under link failures (12-server degree-4 DLRM testbed)",
        vec![
            Column::int("failed links"),
            Column::fixed("failed (%)", 0),
            Column::text("repair"),
            Column::int("repaired"),
            Column::int("dropped"),
            Column::int("severed pairs"),
            Column::int("extra relays"),
            Column::fixed("connected (%)", 0),
            Column::fixed("TopoOpt (samples/s)", 1),
            Column::fixed("vs healthy (%)", 0),
            Column::fixed("fat-tree (samples/s)", 1),
        ],
    )
    .with_paper("host-forwarded fabrics degrade gracefully: repairs detour rule chains");
    table.push(row![
        0usize,
        0.0,
        "-",
        healthy.repaired,
        healthy.dropped,
        healthy.severed,
        healthy.extra_relays,
        healthy.connected_pct,
        healthy.samples_per_s,
        100.0,
        ft_samples
    ]);
    let sweep: Vec<(usize, RepairMode, &str)> = [1usize, 2, 4, 8]
        .iter()
        .flat_map(|&k| {
            [(k, RepairMode::PerRule, "per-rule"), (k, RepairMode::PerDestination, "per-dest")]
        })
        .collect();
    let rows = par_rows(sweep, |(k, mode, label)| {
        let run =
            degraded_run(&fabric, &order[..k], mode, &model, &strategy, &demands, global_batch);
        row![
            k,
            k as f64 / num_links as f64 * 100.0,
            label,
            run.repaired,
            run.dropped,
            run.severed,
            run.extra_relays,
            run.connected_pct,
            run.samples_per_s,
            run.samples_per_s / healthy.samples_per_s * 100.0,
            ft_samples
        ]
    });
    table.extend(rows);

    // Second axis: the availability-aware synthesis knob. The DLRM
    // testbed's one job-spanning DP group already earns redundant rings,
    // so the knob bites on a fabric shared by two half-cluster tenants
    // (no global AllReduce group): default synthesis spends the degree on
    // the larger tenant and leaves the connectivity fallback a lone +1
    // ring, availability-aware placement doubles the global rings so no
    // single cut partitions the fabric.
    let mut tenant_mp = TrafficMatrix::new(n);
    tenant_mp.set(0, 6, 1.0e9);
    tenant_mp.set(7, 2, 1.0e9);
    let tenant_demands = topoopt_strategy::TrafficDemands {
        num_servers: n,
        allreduce_groups: vec![
            topoopt_strategy::AllReduceGroup { members: (0..6).collect(), bytes: 3.0 * GB },
            topoopt_strategy::AllReduceGroup { members: (6..12).collect(), bytes: 2.0 * GB },
        ],
        mp: tenant_mp,
        samples_per_server: demands.samples_per_server,
    };
    let mut knob_table = Table::titled(
        "availability-aware synthesis vs default (two half-cluster tenants, degree 4)",
        vec![
            Column::text("synthesis"),
            Column::int("links"),
            Column::int("rings"),
            Column::int("critical links"),
            Column::fixed("worst cut connected (%)", 0),
            Column::int("severed pairs @4 kills"),
            Column::int("repaired rules @4 kills"),
        ],
    );
    let fabric_row = |label: &str, fab: &RdmaFabric| -> Vec<Cell> {
        let g = &fab.out.graph;
        let ids: Vec<_> = g.edges().map(|(id, _)| id).collect();
        let mut critical = 0usize;
        let mut worst_connected = usize::MAX;
        for &id in &ids {
            let mut cut = g.clone();
            cut.remove_edge(id);
            let connected = topoopt_reconfig::surviving_pairs(&cut, n).len();
            if connected < n * (n - 1) {
                critical += 1;
            }
            worst_connected = worst_connected.min(connected);
        }
        let order = kill_order(g);
        let mut degraded = g.clone();
        for &id in &order[..4] {
            degraded.remove_edge(id);
        }
        let mut plan = fab.plan.clone();
        let rep = plan.repair(&degraded, RepairMode::PerDestination);
        row![
            label,
            ids.len(),
            fab.out.groups.iter().map(|gr| gr.strides.len()).sum::<usize>(),
            critical,
            worst_connected as f64 / (n * (n - 1)) as f64 * 100.0,
            rep.degraded.len(),
            rep.repaired_rules
        ]
    };
    knob_table
        .push(fabric_row("default", &build_rdma_fabric(&tenant_demands, n, degree, link_bps)));
    knob_table.push(fabric_row(
        "availability-aware",
        &build_rdma_fabric_available(&tenant_demands, n, degree, link_bps),
    ));

    ExperimentReport::new().table(table).table(knob_table).note(format!(
        "Casualties are a seed-{} shuffle of the fabric's directed links; each failure \
         count kills a prefix of the same shuffle, so casualty sets are nested. Repairs \
         re-point destination-keyed kernel rules onto shortest paths of the degraded \
         fabric: per-rule touches only broken rules (stale/fresh mixtures can loop, \
         surfacing as severed pairs), per-destination resyncs every rule towards an \
         affected destination. Throughput is the cost-model estimate through the \
         repaired plan's relay factors at relay efficiency {TESTBED_RELAY_EFFICIENCY}; \
         severed pairs carry factor 0. The fat-tree column is the cost-equivalent \
         switched fabric at {:.0} Gbps per server, assumed to absorb these failure \
         counts via its path redundancy. In the tenant table, critical links are \
         directed links whose lone loss partitions the fabric; rings counts selected \
         AllReduce strides (including the connectivity fallback).",
        s.seed,
        ft_bps / 1.0e9,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_findable() {
        for def in EXPERIMENTS {
            assert_eq!(find(def.id).unwrap().id, def.id);
            assert_eq!(EXPERIMENTS.iter().filter(|d| d.id == def.id).count(), 1);
        }
        assert!(find("no_such_experiment").is_none());
    }

    #[test]
    fn fast_experiment_produces_a_stamped_report() {
        let s = Scale::new(false, DEFAULT_SEED);
        let def = find("table01_optical_tech").unwrap();
        let report = run(def, &s);
        assert_eq!(report.id, "table01_optical_tech");
        assert_eq!(report.title, "Table 1");
        assert_eq!(report.section, "§3");
        assert_eq!(report.seed, DEFAULT_SEED);
        assert!(!report.scale.full);
        assert!(report.wall_time_s >= 0.0);
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.tables[0].rows.len(), 6);
        // The report is renderable and serializable.
        assert!(report.render_text().contains("3D MEMS"));
        let back = ExperimentReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn sampling_experiment_is_deterministic_per_seed() {
        let s = Scale::new(false, 7);
        let a = fig02(&s);
        let b = fig02(&s);
        assert_eq!(a, b);
        let c = fig02(&Scale::new(false, 99));
        assert_ne!(a.tables[0].rows, c.tables[0].rows);
    }

    #[test]
    fn reconfig_testbed_rows_keep_planned_dips_no_worse_than_atomic() {
        let src = topoopt_graph::topologies::from_permutations(8, &[1, 3], 25.0e9);
        let dst = topoopt_graph::topologies::from_permutations(8, &[2, 5], 25.0e9);
        let rows = reconfig_testbed_rows("a -> b", &src, &dst, DEFAULT_SEED);
        assert_eq!(rows.len(), 4, "atomic baseline plus three strategies");
        // The atomic swap is dark for the full rewiring: peak dip 1.0.
        let Cell::Float(atomic_peak) = rows[0][4] else { panic!("peak dip must be a float") };
        assert_eq!(atomic_peak, 1.0);
        // The tree-search row must sequence this uncapped migration and
        // never dip below the atomic worst case.
        let tree = &rows[3];
        assert_eq!(tree[7], Cell::Str("ok".into()));
        let Cell::Float(tree_peak) = tree[4] else { panic!("peak dip must be a float") };
        assert!(tree_peak <= atomic_peak + 1e-9, "planned peak dip {tree_peak} worse than atomic");
        // Every strategy row either succeeds or names the violated policy.
        for r in &rows[1..] {
            let Cell::Str(outcome) = &r[7] else { panic!("outcome must be text") };
            assert!(outcome == "ok" || outcome.starts_with("fallback: "), "outcome {outcome}");
        }
    }

    #[test]
    fn planned_migration_mode_schedules_or_falls_back_with_a_policy() {
        let MigrationMode::Planned(planner) = planned_migration_mode(1.0) else {
            panic!("planned_migration_mode must return the planned variant")
        };
        // Dark shard: every target link is one step, total = provisioning.
        let target = topoopt_graph::topologies::from_permutations(6, &[1, 2], 25.0e9);
        let schedule = planner(None, &target);
        assert!(schedule.planned && schedule.fallback.is_none());
        assert_eq!(schedule.steps(), target.num_edges());
        assert!((schedule.total_s() - 1.0).abs() < 1e-12);
        // Stale wiring: tear-down steps extend the schedule beyond the
        // atomic total instead of being teleported away.
        let stale = topoopt_graph::topologies::from_permutations(6, &[3], 25.0e9);
        let schedule = planner(Some(&stale), &target);
        assert!(schedule.planned && schedule.fallback.is_none());
        assert!(schedule.steps() > target.num_edges());
    }

    #[test]
    fn fig20_unreachable_accuracy_target_yields_na_cells_not_a_panic() {
        // Regression: the 0.93-asymptote VGG19 curve can never hit 99%
        // top-5; fig20 must render "n/a" cells instead of unwrapping None.
        let rows = fig20_rows(0.99);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row[1], Cell::Empty, "unreachable target should give an empty cell");
        }
        // The committed 90% target stays numeric.
        for row in fig20_rows(0.90) {
            assert!(matches!(row[1], Cell::Float(h) if h.is_finite() && h > 0.0));
        }
    }

    #[test]
    fn relay_overhead_sweep_is_anchored_at_unit_efficiency() {
        let s = Scale::new(false, DEFAULT_SEED);
        let report = rdma_relay_overhead(&s);
        let rows = &report.tables[0].rows;
        assert_eq!(rows.len(), 18);
        for chunk in rows.chunks(6) {
            // First row of each degree block is efficiency 1.0: slowdown 1x.
            let Cell::Float(slowdown) = chunk[0][7] else { panic!("slowdown must be float") };
            assert!((slowdown - 1.0).abs() < 1e-12);
            // Harsher kernels never speed the iteration up.
            let totals: Vec<f64> = chunk
                .iter()
                .map(|r| match r[5] {
                    Cell::Float(t) => t,
                    _ => panic!("sim iter must be float"),
                })
                .collect();
            for w in totals.windows(2) {
                assert!(w[1] >= w[0] - 1e-12, "lower efficiency must not be faster: {totals:?}");
            }
        }
    }

    #[test]
    fn mcmc_search_improves_embedding_models() {
        let s = Scale { full: false, dedicated: 32, shared: 64, mcmc_iters: 60, seed: 7 };
        let report = mcmc_search(&s);
        let rows = &report.tables[0].rows;
        assert_eq!(rows.len(), 3);
        // DLRM row: speedup (col 3) must be >= 1 (search never regresses).
        let Cell::Float(speedup) = rows[0][3] else { panic!("speedup cell should be a float") };
        assert!(speedup >= 1.0, "MCMC should not regress: {speedup}");
    }
}
