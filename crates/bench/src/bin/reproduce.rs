//! Regenerate the tables and figures of the TopoOpt evaluation.
//!
//! Usage:
//!   cargo run --release -p topoopt-bench --bin reproduce -- <experiment>... [options]
//!   cargo run --release -p topoopt-bench --bin reproduce -- all --json bench/ --md
//!
//! Every experiment builds a structured `ExperimentReport` (see the
//! `topoopt-report` crate); this binary only parses arguments, runs the
//! registry (`topoopt_bench::experiments`), and renders:
//!
//!   default        aligned text, rendered from the report
//!   --json <dir>   one `BENCH_<id>.json` per experiment + `BENCH_SUMMARY.json`
//!   --md           regenerate `EXPERIMENTS.md` (paper-vs-measured index)
//!
//! By default cluster sizes are scaled down (e.g. 32 servers instead of
//! 128) so the whole suite runs in minutes on a laptop; pass `--full` for
//! the paper-scale sizes. `--seed` makes the sampling/MCMC experiments
//! reproducible run-over-run (default: 7). Unknown flags and unknown
//! experiment names are rejected with exit code 2.

use std::path::PathBuf;
use std::process::ExitCode;

use serde::{Deserialize, Serialize};
use topoopt_bench::experiments::{self, ExperimentDef, Scale, DEFAULT_SEED, EXPERIMENTS};
use topoopt_report::ExperimentReport;

/// Parsed command line.
struct Cli {
    /// Selected experiment ids, in registry order (`all` when empty input).
    selected: Vec<&'static ExperimentDef>,
    full: bool,
    seed: u64,
    json_dir: Option<PathBuf>,
    md: bool,
}

enum Action {
    Run(Cli),
    List,
    Help,
}

fn usage() -> String {
    let mut out = String::new();
    out.push_str("usage: reproduce [<experiment>... | all | list] [options]\n\n");
    out.push_str("Regenerates the tables and figures of the TopoOpt evaluation.\n");
    out.push_str("Sweeps inside each experiment run in parallel across all cores;\n");
    out.push_str("experiments always run in registry order.\n\n");
    out.push_str("options:\n");
    out.push_str("  --full        paper-scale cluster sizes (default: scaled down)\n");
    out.push_str("  --seed <u64>  RNG seed for sampling/MCMC experiments (default: 7)\n");
    out.push_str("  --json <dir>  write BENCH_<id>.json per experiment + BENCH_SUMMARY.json\n");
    out.push_str("  --md          regenerate EXPERIMENTS.md (requires running 'all')\n");
    out.push_str("  -h/--help     this message\n\n");
    out.push_str("experiments:\n");
    for def in EXPERIMENTS {
        out.push_str(&format!("  {:<24} {} ({})\n", def.id, def.title, def.section));
    }
    out
}

fn parse_args(args: &[String]) -> Result<Action, String> {
    let mut full = false;
    let mut seed = DEFAULT_SEED;
    let mut json_dir = None;
    let mut md = false;
    let mut names: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--md" => md = true,
            "--seed" => {
                let value = iter.next().ok_or("--seed requires a value")?;
                seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("--seed requires an unsigned integer, got '{value}'"))?;
            }
            "--json" => {
                let value = iter.next().ok_or("--json requires a directory")?;
                if value.starts_with('-') {
                    return Err(format!("--json requires a directory, got '{value}'"));
                }
                json_dir = Some(PathBuf::from(value));
            }
            "-h" | "--help" | "help" => return Ok(Action::Help),
            "list" => return Ok(Action::List),
            flag if flag.starts_with('-') => return Err(format!("unknown flag '{flag}'")),
            name => names.push(name.to_string()),
        }
    }

    let all = names.is_empty() || names.iter().any(|n| n == "all");
    let unknown: Vec<&String> =
        names.iter().filter(|n| *n != "all" && experiments::find(n).is_none()).collect();
    if !unknown.is_empty() {
        let mut msg = format!(
            "unknown experiment{} {}; valid names:\n",
            if unknown.len() > 1 { "s" } else { "" },
            unknown.iter().map(|n| format!("'{n}'")).collect::<Vec<_>>().join(", ")
        );
        for def in EXPERIMENTS {
            msg.push_str(&format!("  {}\n", def.id));
        }
        return Err(msg.trim_end().to_string());
    }
    // --md always rewrites the committed EXPERIMENTS.md; a subset run
    // would silently truncate it to the selected experiments.
    if md && !all {
        return Err(
            "--md regenerates the full EXPERIMENTS.md and requires running 'all'".to_string()
        );
    }
    // Registry order keeps text/markdown output independent of CLI order
    // and deduplicates repeated names.
    let selected: Vec<&'static ExperimentDef> =
        EXPERIMENTS.iter().filter(|def| all || names.iter().any(|n| n == def.id)).collect();
    Ok(Action::Run(Cli { selected, full, seed, json_dir, md }))
}

/// Per-experiment entry of `BENCH_SUMMARY.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ExperimentSummary {
    id: String,
    title: String,
    section: String,
    wall_time_s: f64,
    tables: usize,
    rows: usize,
}

/// The combined `BENCH_SUMMARY.json` artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BenchSummary {
    generated_by: String,
    full: bool,
    seed: u64,
    total_wall_time_s: f64,
    experiments: Vec<ExperimentSummary>,
}

/// Write one `BENCH_<id>.json` per report. `BENCH_SUMMARY.json` is only
/// written when the full registry ran, so a subset run (e.g. regenerating
/// one experiment's artifact) never clobbers the committed summary with a
/// partial one. Returns whether the summary was written.
fn write_json_artifacts(
    dir: &PathBuf,
    reports: &[ExperimentReport],
    cli: &Cli,
    total_wall_time_s: f64,
) -> std::io::Result<bool> {
    std::fs::create_dir_all(dir)?;
    for report in reports {
        std::fs::write(dir.join(format!("BENCH_{}.json", report.id)), report.to_json())?;
    }
    if reports.len() < EXPERIMENTS.len() {
        return Ok(false);
    }
    let summary = BenchSummary {
        generated_by: "reproduce (topoopt-bench)".to_string(),
        full: cli.full,
        seed: cli.seed,
        total_wall_time_s,
        experiments: reports
            .iter()
            .map(|r| ExperimentSummary {
                id: r.id.clone(),
                title: r.title.clone(),
                section: r.section.clone(),
                wall_time_s: r.wall_time_s,
                tables: r.tables.len(),
                rows: r.tables.iter().map(|t| t.rows.len()).sum(),
            })
            .collect(),
    };
    std::fs::write(dir.join("BENCH_SUMMARY.json"), serde::json::to_string_pretty(&summary))?;
    Ok(true)
}

/// Render the `EXPERIMENTS.md` paper-vs-measured index. Deliberately
/// excludes wall times so the committed file is stable for a fixed seed
/// and scale (CI regenerates it and diffs).
fn render_experiments_md(reports: &[ExperimentReport], cli: &Cli) -> String {
    let mut out = String::new();
    out.push_str("# EXPERIMENTS — paper vs. measured\n\n");
    out.push_str(
        "Generated by `cargo run --release -p topoopt-bench --bin reproduce -- all --md`.\n\
         Do not edit by hand; regenerate after changing the harness.\n\n",
    );
    // The sizes come from the reports themselves (every report carries the
    // ScaleInfo it ran at), not from a restatement of Scale::new.
    let scale = reports[0].scale;
    out.push_str(&format!(
        "Run configuration: {} ({} dedicated / {} shared servers, {} MCMC iterations), seed {}.\n",
        if scale.full { "paper-scale (`--full`)" } else { "reduced scale" },
        scale.dedicated,
        scale.shared,
        scale.mcmc_iters,
        cli.seed
    ));
    for report in reports {
        out.push_str(&format!("\n## {} · `{}` ({})\n\n", report.title, report.id, report.section));
        out.push_str(&report.render_markdown());
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(Action::Help) => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Ok(Action::List) => {
            for def in EXPERIMENTS {
                println!("{}", def.id);
            }
            return ExitCode::SUCCESS;
        }
        Ok(Action::Run(cli)) => cli,
        Err(msg) => {
            eprintln!("reproduce: {msg}");
            eprintln!("try 'reproduce --help'");
            return ExitCode::from(2);
        }
    };

    let scale = Scale::new(cli.full, cli.seed);
    let started = std::time::Instant::now();
    let mut reports = Vec::new();
    for def in &cli.selected {
        println!("\n================ {} ================", def.id);
        let report = experiments::run(def, &scale);
        print!("{}", report.render_text());
        println!(
            "[{} done in {:.2?}]",
            def.id,
            std::time::Duration::from_secs_f64(report.wall_time_s)
        );
        reports.push(report);
    }
    let total_wall_time_s = started.elapsed().as_secs_f64();
    if reports.len() > 1 {
        println!("\n[{} experiments done in {:.2?}]", reports.len(), started.elapsed());
    }

    if let Some(dir) = &cli.json_dir {
        match write_json_artifacts(dir, &reports, &cli, total_wall_time_s) {
            Err(err) => {
                eprintln!("reproduce: failed to write JSON artifacts to {}: {err}", dir.display());
                return ExitCode::FAILURE;
            }
            Ok(true) => println!(
                "[wrote {} BENCH_*.json artifacts + BENCH_SUMMARY.json to {}]",
                reports.len(),
                dir.display()
            ),
            Ok(false) => println!(
                "[wrote {} BENCH_*.json artifacts to {}; BENCH_SUMMARY.json unchanged \
                 (subset run — use 'all --json' to refresh it)]",
                reports.len(),
                dir.display()
            ),
        }
    }
    if cli.md {
        let path = PathBuf::from("EXPERIMENTS.md");
        if let Err(err) = std::fs::write(&path, render_experiments_md(&reports, &cli)) {
            eprintln!("reproduce: failed to write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        println!("[regenerated {} from {} experiments]", path.display(), reports.len());
    }
    ExitCode::SUCCESS
}
