//! Regenerate the tables and figures of the TopoOpt evaluation.
//!
//! Usage:
//!   cargo run --release -p topoopt-bench --bin reproduce -- <experiment> [--full]
//!   cargo run --release -p topoopt-bench --bin reproduce -- all
//!
//! Experiments (see DESIGN.md's per-experiment index):
//!   fig01_dlrm_heatmaps   fig02_production_cdfs  fig03_network_overhead
//!   fig04_prod_heatmaps   table01_optical_tech   fig07_09_mutability
//!   fig10_cost            fig11_dedicated_d4     fig12_alltoall
//!   fig13_bandwidth_tax   fig14_path_length      fig15_link_traffic
//!   fig16_shared          fig17_reconfig         fig19_testbed_throughput
//!   fig20_time_to_accuracy fig21_testbed_alltoall figA_dbt_heatmaps
//!   table02_component_costs fig27_dedicated_d8    fig28_degree_sweep
//!
//! By default cluster sizes are scaled down (e.g. 32 servers instead of
//! 128) so the whole suite runs in minutes on a laptop; pass `--full` for
//! the paper-scale sizes. EXPERIMENTS.md records the reduced-scale results
//! against the paper's reported numbers.

use rayon::prelude::*;
use topoopt_bench::*;
use topoopt_cluster::{job_mix_for_load, ClusterShards, MixModel};
use topoopt_collectives::tree::{double_binary_tree, tree_allreduce_traffic};
use topoopt_core::architectures::Architecture;
use topoopt_core::topology_finder::TopologyFinderOutput;
use topoopt_cost::{
    component_costs, equivalent_fat_tree_bandwidth, interconnect_cost, optical_technologies,
    CostedArchitecture,
};
use topoopt_models::zoo::build_dlrm;
use topoopt_models::{DlrmConfig, ModelKind, ModelPreset};
use topoopt_netsim::iteration::natural_ring_plans;
use topoopt_netsim::multijob::{build_job_flows, simulate_shared_cluster, JobSpec};
use topoopt_netsim::{
    simulate_iteration, simulate_reconfigurable_iteration, AllReducePlan, IterationParams,
    ReconfigParams, SimNetwork,
};
use topoopt_strategy::{extract_traffic, ParallelizationStrategy, TopologyView};
use topoopt_workloads::production::cdf_points;
use topoopt_workloads::{
    dlrm_hybrid_heatmap, dlrm_pure_dp_heatmap, overhead_scaling, production_style_heatmap,
    sample_production_jobs, time_to_accuracy, topoopt_combined_heatmap, AccuracyCurve,
};

const GB: f64 = 1.0e9;

struct Scale {
    /// Dedicated-cluster server count (paper: 128).
    dedicated: usize,
    /// Shared-cluster server count (paper: 432).
    shared: usize,
    /// MCMC iterations in harness runs.
    mcmc_iters: usize,
}

fn scale(full: bool) -> Scale {
    if full {
        Scale { dedicated: 128, shared: 432, mcmc_iters: 400 }
    } else {
        Scale { dedicated: 32, shared: 64, mcmc_iters: 100 }
    }
}

type Experiment = (&'static str, fn(&Scale));

/// Render one display row per item in parallel, then print the rows in input
/// order (the vendored rayon's `collect` preserves order).
fn par_rows<T: Send>(items: Vec<T>, f: impl Fn(T) -> String + Sync) {
    let rows: Vec<String> = items.into_par_iter().map(f).collect();
    for row in rows {
        println!("{row}");
    }
}

fn usage(experiments: &[Experiment]) {
    println!("usage: reproduce [<experiment> | all | list] [--full]");
    println!();
    println!("Regenerates the tables and figures of the TopoOpt evaluation.");
    println!("Sweeps inside each experiment run in parallel across all cores.");
    println!();
    println!("options:");
    println!("  --full    paper-scale cluster sizes (default: scaled down)");
    println!("  -h/--help this message");
    println!();
    println!("experiments:");
    for (name, _) in experiments {
        println!("  {name}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let which =
        args.iter().find(|a| !a.starts_with("--")).cloned().unwrap_or_else(|| "all".to_string());
    let s = scale(full);

    let experiments: Vec<Experiment> = vec![
        ("fig01_dlrm_heatmaps", fig01),
        ("fig02_production_cdfs", fig02),
        ("fig03_network_overhead", fig03),
        ("fig04_prod_heatmaps", fig04),
        ("table01_optical_tech", table01),
        ("fig07_09_mutability", fig07_09),
        ("fig10_cost", fig10),
        ("fig11_dedicated_d4", fig11_d4),
        ("fig12_alltoall", fig12),
        ("fig13_bandwidth_tax", fig13),
        ("fig14_path_length", fig14),
        ("fig15_link_traffic", fig15),
        ("fig16_shared", fig16),
        ("fig17_reconfig", fig17),
        ("fig19_testbed_throughput", fig19),
        ("fig20_time_to_accuracy", fig20),
        ("fig21_testbed_alltoall", fig21),
        ("figA_dbt_heatmaps", fig_a),
        ("table02_component_costs", table02),
        ("fig27_dedicated_d8", fig27_d8),
        ("fig28_degree_sweep", fig28),
    ];

    if args.iter().any(|a| a == "--help" || a == "-h") || which == "help" {
        usage(&experiments);
        return;
    }
    if which == "list" {
        for (name, _) in &experiments {
            println!("{name}");
        }
        return;
    }

    let started = std::time::Instant::now();
    let mut ran = 0;
    for (name, f) in &experiments {
        if which == "all" || which == *name {
            println!("\n================ {} ================", name);
            let t0 = std::time::Instant::now();
            f(&s);
            println!("[{} done in {:.2?}]", name, t0.elapsed());
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("unknown experiment '{which}'; valid names:");
        for (name, _) in &experiments {
            eprintln!("  {name}");
        }
        std::process::exit(1);
    }
    if ran > 1 {
        println!("\n[{ran} experiments done in {:.2?}]", started.elapsed());
    }
}

fn heatmap_summary(label: &str, tm: &topoopt_graph::TrafficMatrix) {
    println!(
        "{label}: total {:.1} GB, max pair {:.2} GB, non-zero pairs {}",
        tm.total() / GB,
        tm.max_entry() / GB,
        tm.nonzero_pairs()
    );
}

fn fig01(_s: &Scale) {
    println!("DLRM traffic heatmaps (16 servers, §2.1 model):");
    let dp = dlrm_pure_dp_heatmap(16);
    let hybrid = dlrm_hybrid_heatmap(16, 1);
    heatmap_summary("(a) pure data parallelism", &dp);
    heatmap_summary("(b) hybrid parallelism   ", &hybrid);
    println!("\n(b) hybrid heatmap (relative intensity 1-9):\n{}", hybrid.ascii_heatmap());
}

fn fig02(_s: &Scale) {
    let jobs = sample_production_jobs(500, 7);
    let workers = cdf_points(&jobs, |j| j.workers as f64);
    let duration = cdf_points(&jobs, |j| j.duration_hours);
    println!("worker-count CDF (value, cumulative fraction):");
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        let idx = ((workers.len() as f64 * q) as usize).min(workers.len() - 1);
        println!("  p{:<4} {:>8.0} workers", q * 100.0, workers[idx].0);
    }
    println!("training-duration CDF:");
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        let idx = ((duration.len() as f64 * q) as usize).min(duration.len() - 1);
        println!("  p{:<4} {:>8.1} hours", q * 100.0, duration[idx].0);
    }
}

fn fig03(_s: &Scale) {
    println!("network overhead (%) vs number of GPUs (B = 100 Gbps/server):");
    println!("{:<10} {:>6} {:>6} {:>6} {:>6} {:>6}", "model", "8", "16", "32", "64", "128");
    let rows = overhead_scaling(100.0e9);
    for kind in ModelKind::all() {
        let vals: Vec<f64> =
            rows.iter().filter(|(k, _, _)| *k == kind).map(|(_, _, v)| *v).collect();
        println!(
            "{:<10} {:>5.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
            kind.name(),
            vals[0],
            vals[1],
            vals[2],
            vals[3],
            vals[4]
        );
    }
}

fn fig04(_s: &Scale) {
    println!("production-style traffic heatmaps (ring + model-dependent MP rows):");
    for (label, n, hosts) in [
        ("(a) vision", 48, vec![0usize]),
        ("(b) image processing", 48, vec![0, 24]),
        ("(c) object tracking", 49, vec![5, 17, 33]),
        ("(d) speech recognition", 48, vec![]),
    ] {
        let tm = production_style_heatmap(n, &hosts, 2.0, 0.5);
        heatmap_summary(label, &tm);
    }
}

fn table01(_s: &Scale) {
    println!(
        "{:<22} {:>10} {:>16} {:>14} {:>10}",
        "technology", "ports", "reconfig", "loss (dB)", "$/port"
    );
    for t in optical_technologies() {
        println!(
            "{:<22} {:>10} {:>14.3e}s {:>14.1} {:>10}",
            t.name,
            t.port_count,
            t.reconfig_latency_s,
            t.insertion_loss_db,
            t.cost_per_port.map(|c| format!("{c:.0}")).unwrap_or_else(|| "n/a".into())
        );
    }
}

fn fig07_09(_s: &Scale) {
    println!("AllReduce mutability (16 servers, DLRM §2.1):");
    for stride in [1usize, 3, 7] {
        let tm = dlrm_hybrid_heatmap(16, stride);
        heatmap_summary(&format!("+{stride} ring permutation"), &tm);
    }
    let combined = topoopt_combined_heatmap(16, &[1, 3, 7]);
    heatmap_summary("TopoOpt combined {+1,+3,+7}", &combined);
    let single = dlrm_hybrid_heatmap(16, 1);
    println!(
        "max-entry reduction from load balancing: {:.2}x",
        single.max_entry() / combined.max_entry()
    );
}

fn fig10(_s: &Scale) {
    println!("interconnect cost (M$):");
    for (d, b) in [(4usize, 100.0e9), (8usize, 200.0e9)] {
        println!("--- d = {d}, B = {} Gbps ---", b / 1.0e9);
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "servers", "TopoOpt", "OCS", "Fat-tree*", "Ideal", "SiP-ML", "Expander"
        );
        for n in [128usize, 432, 1024, 2000] {
            let c = |a| interconnect_cost(a, n, d, b).total() / 1.0e6;
            println!(
                "{:>8} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                n,
                c(CostedArchitecture::TopoOptPatchPanel),
                c(CostedArchitecture::TopoOptOcs),
                c(CostedArchitecture::TopoOptPatchPanel), // cost-equivalent by construction
                c(CostedArchitecture::IdealSwitch),
                c(CostedArchitecture::SipMl),
                c(CostedArchitecture::Expander),
            );
        }
    }
    println!("(* the Fat-tree baseline's bandwidth is chosen for cost parity with TopoOpt)");
}

fn dedicated_sweep(s: &Scale, degree: usize) {
    let n = s.dedicated;
    println!(
        "training iteration time (s), dedicated cluster of {n} servers, d = {degree} (paper: 128 servers):"
    );
    println!(
        "{:<10} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "model", "B(Gbps)", "TopoOpt", "IdealSwitch", "Fat-tree", "Oversub FT", "Expander"
    );
    let combos: Vec<(ModelKind, f64)> = ModelKind::all()
        .into_iter()
        .flat_map(|kind| [25.0, 100.0].map(|gbps| (kind, gbps)))
        .collect();
    par_rows(combos, |(kind, link_gbps)| {
        let link_bps = link_gbps * 1.0e9;
        let (model, strategy) = baseline_strategy(kind, ModelPreset::Shared, n);
        let (demands, compute_s) =
            demands_and_compute(&model, &strategy, n, degree as f64 * link_bps);
        let topo = topoopt_iteration(&demands, n, degree, link_bps, compute_s);
        let ideal = switch_iteration(&demands, n, degree as f64 * link_bps, compute_s);
        let ft_bw = equivalent_fat_tree_bandwidth(n, degree, link_bps);
        let ft = switch_iteration(&demands, n, ft_bw, compute_s);
        let oversub = switch_iteration(&demands, n, degree as f64 * link_bps / 2.0, compute_s);
        let exp = expander_iteration(&demands, n, degree, link_bps, compute_s);
        format!(
            "{:<10} {:>7.0} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            kind.name(),
            link_gbps,
            topo.total_s,
            ideal.total_s,
            ft.total_s,
            oversub.total_s,
            exp.total_s
        )
    });
}

fn fig11_d4(s: &Scale) {
    dedicated_sweep(s, 4);
}

fn fig27_d8(s: &Scale) {
    dedicated_sweep(s, 8);
}

fn alltoall_row(n: usize, degree: usize, batch: usize) -> (f64, f64, f64, f64, f64) {
    let model = build_dlrm(&DlrmConfig::all_to_all(batch));
    let strategy = ParallelizationStrategy::hybrid_embeddings_round_robin(&model, n);
    let params = compute_params();
    let demands = extract_traffic(&model, &strategy, params.gpus_per_server);
    let link_bps = 100.0e9;
    let est = topoopt_strategy::estimate_iteration_time(
        &model,
        &strategy,
        &TopologyView::FullMesh { n, per_server_bps: degree as f64 * link_bps },
        &params,
    );
    let topo = topoopt_iteration(&demands, n, degree, link_bps, est.compute_s);
    let ideal = switch_iteration(&demands, n, degree as f64 * link_bps, est.compute_s);
    let ft_bw = equivalent_fat_tree_bandwidth(n, degree, link_bps);
    let ft = switch_iteration(&demands, n, ft_bw, est.compute_s);
    (demands.mp_to_allreduce_ratio(), topo.total_s, ideal.total_s, ft.total_s, topo.bandwidth_tax)
}

fn fig12(s: &Scale) {
    let n = s.dedicated;
    println!("impact of all-to-all traffic, {n} servers, B = 100 Gbps (paper: 128 servers):");
    for degree in [4usize, 8] {
        println!("--- d = {degree} ---");
        println!(
            "{:>6} {:>14} {:>12} {:>12} {:>12}",
            "batch", "alltoall/AR", "TopoOpt", "Ideal", "Fat-tree"
        );
        par_rows(vec![64usize, 128, 256, 512, 1024, 2048], |batch| {
            let (ratio, topo, ideal, ft, _tax) = alltoall_row(n, degree, batch);
            format!(
                "{:>6} {:>13.0}% {:>12.4} {:>12.4} {:>12.4}",
                batch,
                ratio * 100.0,
                topo,
                ideal,
                ft
            )
        });
    }
}

fn fig13(s: &Scale) {
    let n = s.dedicated;
    println!("bandwidth tax of host-based forwarding, {n} servers:");
    println!("{:>6} {:>10} {:>10}", "batch", "d=4", "d=8");
    par_rows(vec![64usize, 128, 256, 512, 1024, 2048], |batch| {
        let (_, _, _, _, tax4) = alltoall_row(n, 4, batch);
        let (_, _, _, _, tax8) = alltoall_row(n, 8, batch);
        format!("{:>6} {:>9.2}x {:>9.2}x", batch, tax4, tax8)
    });
}

fn topoopt_fabric_for(
    n: usize,
    degree: usize,
) -> (TopologyFinderOutput, topoopt_strategy::TrafficDemands) {
    let model = build_dlrm(&DlrmConfig::all_to_all(128));
    let strategy = ParallelizationStrategy::hybrid_embeddings_round_robin(&model, n);
    let demands = extract_traffic(&model, &strategy, 4);
    let out = build_topoopt_fabric(&demands, n, degree, 100.0e9);
    (out, demands)
}

fn fig14(s: &Scale) {
    let n = s.dedicated;
    println!("path-length CDF over all server pairs, {n} servers:");
    par_rows(vec![4usize, 8], |degree| {
        let (out, _) = topoopt_fabric_for(n, degree);
        let net = SimNetwork::new(out.graph.clone(), n, out.routing.clone());
        let cdf = net.server_path_length_cdf();
        let avg = net.average_server_path_length();
        let p = |q: f64| cdf[((cdf.len() as f64 * q) as usize).min(cdf.len() - 1)];
        format!(
            "d = {degree}: average {:.2} hops, p50 {} hops, p90 {} hops, max {} hops",
            avg,
            p(0.5),
            p(0.9),
            cdf.last().unwrap()
        )
    });
}

fn fig15(s: &Scale) {
    let n = s.dedicated;
    println!("per-link carried traffic for the all-to-all DLRM, {n} servers:");
    let rows: Vec<Option<String>> = vec![4usize, 8]
        .into_par_iter()
        .map(|degree| {
            let (out, demands) = topoopt_fabric_for(n, degree);
            let plans: Vec<AllReducePlan> = out
                .groups
                .iter()
                .map(|g| AllReducePlan { permutations: g.permutations(), bytes: g.bytes })
                .collect();
            let net = SimNetwork::new(out.graph.clone(), n, out.routing.clone());
            let it =
                simulate_iteration(&net, &demands, &plans, &IterationParams { compute_s: 0.0 });
            let cdf = it.link_traffic_cdf;
            if cdf.is_empty() {
                return None;
            }
            let min = cdf.first().unwrap() / 1.0e6;
            let max = cdf.last().unwrap() / 1.0e6;
            Some(format!(
                "d = {degree}: {} links, min {:.1} MB, max {:.1} MB, min/max imbalance {:.0}%",
                cdf.len(),
                min,
                max,
                (1.0 - min / max) * 100.0
            ))
        })
        .collect();
    for row in rows.into_iter().flatten() {
        println!("{row}");
    }
}

fn fig16(s: &Scale) {
    let total = s.shared;
    let degree = 8;
    let link_bps = 100.0e9;
    let mix = MixModel { servers_per_job: 16, ..MixModel::default() };
    println!(
        "shared cluster of {total} servers (d = {degree}, B = 100 Gbps), §5.6 job mix (paper: 432 servers):"
    );
    println!(
        "{:>6} {:>6} {:>14} {:>14} {:>14} {:>14}",
        "load", "jobs", "TopoOpt avg", "TopoOpt p99", "Fat-tree avg", "Fat-tree p99"
    );
    par_rows(vec![0.2, 0.4, 0.6, 0.8, 1.0], |load| {
        let requests = job_mix_for_load(&mix, total, load, 11);
        let mut shards = ClusterShards::new(total);
        let mut union = topoopt_graph::Graph::new(total);
        let mut jobs_data = Vec::new();
        for req in &requests {
            let Some((_, servers)) = shards.allocate(req.servers) else { break };
            let (model, strategy) = baseline_strategy(req.model, ModelPreset::Shared, req.servers);
            let (demands, compute_s) =
                demands_and_compute(&model, &strategy, req.servers, degree as f64 * link_bps);
            let out = build_topoopt_fabric(&demands, req.servers, degree, link_bps);
            for (_, e) in out.graph.edges() {
                union.add_edge(servers[e.src], servers[e.dst], e.capacity_bps);
            }
            let plans: Vec<AllReducePlan> = out
                .groups
                .iter()
                .map(|g| AllReducePlan { permutations: g.permutations(), bytes: g.bytes })
                .collect();
            jobs_data.push((demands, plans, servers, compute_s, model.name.clone()));
        }
        let topo_net = SimNetwork::without_rules(union, total);
        let topo_jobs: Vec<JobSpec> = jobs_data
            .iter()
            .map(|(demands, plans, servers, compute_s, name)| JobSpec {
                name: name.clone(),
                flows: build_job_flows(&topo_net, demands, plans, servers),
                compute_s: *compute_s,
            })
            .collect();
        let topo = simulate_shared_cluster(&topo_net, &topo_jobs);

        let ft_bw = equivalent_fat_tree_bandwidth(total, degree, link_bps);
        let ft_net =
            SimNetwork::without_rules(topoopt_graph::topologies::ideal_switch(total, ft_bw), total);
        let ft_jobs: Vec<JobSpec> = jobs_data
            .iter()
            .map(|(demands, _plans, servers, compute_s, name)| JobSpec {
                name: name.clone(),
                flows: build_job_flows(&ft_net, demands, &natural_ring_plans(demands), servers),
                compute_s: *compute_s,
            })
            .collect();
        let ft = simulate_shared_cluster(&ft_net, &ft_jobs);
        format!(
            "{:>5.0}% {:>6} {:>14.4} {:>14.4} {:>14.4} {:>14.4}",
            load * 100.0,
            topo_jobs.len(),
            topo.average_s,
            topo.p99_s,
            ft.average_s,
            ft.p99_s
        )
    });
}

fn fig17(s: &Scale) {
    let n = s.dedicated.min(32);
    let degree = 8;
    println!("impact of OCS reconfiguration latency, {n} servers, d = {degree}:");
    for kind in [ModelKind::Dlrm, ModelKind::Bert] {
        let (model, strategy) = baseline_strategy(kind, ModelPreset::Shared, n);
        let (demands, compute_s) = demands_and_compute(&model, &strategy, n, 800.0e9);
        let topo = topoopt_iteration(&demands, n, degree, 100.0e9, compute_s);
        println!("--- {} (TopoOpt static: {:.4} s) ---", kind.name(), topo.total_s);
        println!("{:>14} {:>18} {:>18}", "latency (us)", "OCS-reconfig-FW", "OCS-reconfig-noFW");
        par_rows(vec![1.0, 10.0, 100.0, 1000.0, 10000.0], |latency_us| {
            let base = ReconfigParams {
                degree,
                link_bps: 100.0e9,
                reconfig_latency_s: latency_us * 1.0e-6,
                compute_s,
                ..Default::default()
            };
            let fw = simulate_reconfigurable_iteration(&demands, &base);
            let nofw = simulate_reconfigurable_iteration(
                &demands,
                &ReconfigParams { host_forwarding: false, ..base },
            );
            format!("{:>14.0} {:>18.4} {:>18.4}", latency_us, fw.total_s, nofw.total_s)
        });
    }
}

fn testbed_throughput(kind: ModelKind) -> (f64, f64, f64) {
    // 12-node testbed (§6): TopoOpt 4x25G vs 100G switch vs 25G switch.
    let n = 12;
    let (model, strategy) = baseline_strategy(kind, ModelPreset::Testbed, n);
    let params = compute_params();
    let (demands, compute_s) = demands_and_compute(&model, &strategy, n, 100.0e9);
    let global_batch = (model.batch_per_gpu * params.gpus_per_server * n) as f64;
    let topo = topoopt_iteration(&demands, n, 4, 25.0e9, compute_s);
    let sw100 = switch_iteration(&demands, n, 100.0e9, compute_s);
    let sw25 = switch_iteration(&demands, n, 25.0e9, compute_s);
    (global_batch / topo.total_s, global_batch / sw100.total_s, global_batch / sw25.total_s)
}

fn fig19(_s: &Scale) {
    println!("testbed training throughput (samples/second), 12 servers:");
    println!("{:<10} {:>16} {:>16} {:>16}", "model", "TopoOpt 4x25G", "Switch 100G", "Switch 25G");
    par_rows(
        vec![
            ModelKind::Bert,
            ModelKind::Dlrm,
            ModelKind::Vgg16,
            ModelKind::Candle,
            ModelKind::ResNet50,
        ],
        |kind| {
            let (topo, sw100, sw25) = testbed_throughput(kind);
            format!("{:<10} {:>16.1} {:>16.1} {:>16.1}", kind.name(), topo, sw100, sw25)
        },
    );
}

fn fig20(_s: &Scale) {
    println!("time-to-accuracy of VGG19/ImageNet (top-5 target 90%):");
    let curve = AccuracyCurve::vgg19_imagenet();
    let (topo, sw100, sw25) = testbed_throughput(ModelKind::Vgg16);
    let samples_per_epoch = 1.28e6;
    for (name, thr) in [("TopoOpt 4x25G", topo), ("Switch 100G", sw100), ("Switch 25G", sw25)] {
        let hours = time_to_accuracy(&curve, 0.90, thr, samples_per_epoch).unwrap();
        println!("{:<16} {:>8.1} hours", name, hours);
    }
}

fn fig21(_s: &Scale) {
    let n = 12;
    println!("testbed all-to-all impact (12 servers, §6 DLRM):");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "batch", "alltoall/AR", "TopoOpt 4x25G", "Switch 100G", "Switch 25G"
    );
    par_rows(vec![32usize, 64, 128, 256, 512], |batch| {
        let model = build_dlrm(&DlrmConfig::testbed(batch));
        let strategy = ParallelizationStrategy::hybrid_embeddings_round_robin(&model, n);
        let params = compute_params();
        let demands = extract_traffic(&model, &strategy, params.gpus_per_server);
        let est = topoopt_strategy::estimate_iteration_time(
            &model,
            &strategy,
            &TopologyView::FullMesh { n, per_server_bps: 100.0e9 },
            &params,
        );
        let topo = topoopt_iteration(&demands, n, 4, 25.0e9, est.compute_s);
        let sw100 = switch_iteration(&demands, n, 100.0e9, est.compute_s);
        let sw25 = switch_iteration(&demands, n, 25.0e9, est.compute_s);
        format!(
            "{:>6} {:>13.0}% {:>14.4} {:>14.4} {:>14.4}",
            batch,
            demands.mp_to_allreduce_ratio() * 100.0,
            topo.total_s,
            sw100.total_s,
            sw25.total_s
        )
    });
}

fn fig_a(_s: &Scale) {
    println!("double binary tree AllReduce permutations (Appendix A), 16 servers:");
    let members: Vec<usize> = (0..16).collect();
    let dbt = double_binary_tree(&members);
    let tm = tree_allreduce_traffic(16, 22.0 * GB, &dbt);
    heatmap_summary("DBT AllReduce of a 22 GB model", &tm);
    // Permuting the labels preserves volume.
    let permuted: Vec<usize> = (0..16).map(|i| (i * 5) % 16).collect();
    let dbt2 = double_binary_tree(&permuted);
    let tm2 = tree_allreduce_traffic(16, 22.0 * GB, &dbt2);
    heatmap_summary("relabelled DBT (same cost)   ", &tm2);
}

fn table02(_s: &Scale) {
    println!(
        "{:>10} {:>12} {:>8} {:>14} {:>12} {:>10} {:>12}",
        "bandwidth", "transceiver", "NIC", "switch port", "patch panel", "OCS", "1x2 switch"
    );
    for gbps in [10.0, 25.0, 40.0, 100.0, 200.0] {
        let c = component_costs(gbps * 1.0e9);
        println!(
            "{:>8}G {:>12.0} {:>8.0} {:>14.0} {:>12.0} {:>10.0} {:>12.0}",
            gbps,
            c.transceiver,
            c.nic,
            c.electrical_switch_port,
            c.patch_panel_port,
            c.ocs_port,
            c.one_by_two_switch
        );
    }
}

fn fig28(s: &Scale) {
    let n = s.dedicated;
    println!("impact of server degree on iteration time, {n} servers:");
    println!("{:<10} {:>8} {:>12} {:>12}", "model", "degree", "B=40 Gbps", "B=100 Gbps");
    let combos: Vec<(ModelKind, usize)> = [ModelKind::Dlrm, ModelKind::Candle, ModelKind::Bert]
        .into_iter()
        .flat_map(|kind| [4usize, 6, 8, 10].map(|degree| (kind, degree)))
        .collect();
    par_rows(combos, |(kind, degree)| {
        let (model, strategy) = baseline_strategy(kind, ModelPreset::Shared, n);
        let mut row = Vec::new();
        for b in [40.0e9, 100.0e9] {
            let (demands, compute_s) = demands_and_compute(&model, &strategy, n, degree as f64 * b);
            let topo = topoopt_iteration(&demands, n, degree, b, compute_s);
            row.push(topo.total_s);
        }
        format!("{:<10} {:>8} {:>12.4} {:>12.4}", kind.name(), degree, row[0], row[1])
    });
    let _ = Architecture::all();
    let _ = s.mcmc_iters;
}
