//! Shared helpers for the figure/table regeneration harness (`reproduce`
//! binary) and the Criterion benches, plus the [`experiments`] registry of
//! report-returning experiment builders.

pub mod experiments;

use topoopt_core::topology_finder::{topology_finder, TopologyFinderInput, TopologyFinderOutput};
use topoopt_core::totient::TotientPermsConfig;
use topoopt_graph::matching::MatchingAlgo;
use topoopt_models::{build_model, ModelKind, ModelPreset};
use topoopt_netsim::iteration::natural_ring_plans;
use topoopt_netsim::{simulate_iteration, AllReducePlan, IterationParams, SimNetwork};
use topoopt_rdma::{build_forwarding_plan, ForwardingPlan};
use topoopt_strategy::{
    estimate_iteration_time, extract_traffic, ComputeParams, ParallelizationStrategy, TopologyView,
    TrafficDemands,
};

/// Default compute model used by the whole harness.
pub fn compute_params() -> ComputeParams {
    ComputeParams::default()
}

/// The heuristic strategy the switched baselines use: hybrid placement for
/// embedding models, pure data parallelism otherwise.
pub fn baseline_strategy(
    kind: ModelKind,
    preset: ModelPreset,
    n: usize,
) -> (topoopt_models::DnnModel, ParallelizationStrategy) {
    let model = build_model(kind, preset);
    // Hybrid (embedding tables placed on single servers) only pays off when
    // the embedding tables dominate the parameter bytes (DLRM / NCF); BERT's
    // token embedding stays replicated, as in practice.
    let strategy = if model.embedding_param_bytes() > model.dense_param_bytes() {
        ParallelizationStrategy::hybrid_embeddings_round_robin(&model, n)
    } else {
        ParallelizationStrategy::pure_data_parallel(&model, n)
    };
    (model, strategy)
}

/// Extract demands and the compute-time estimate for a strategy on a
/// `d x B` full-mesh view.
pub fn demands_and_compute(
    model: &topoopt_models::DnnModel,
    strategy: &ParallelizationStrategy,
    n: usize,
    per_server_bps: f64,
) -> (TrafficDemands, f64) {
    let params = compute_params();
    let demands = extract_traffic(model, strategy, params.gpus_per_server);
    let est = estimate_iteration_time(
        model,
        strategy,
        &TopologyView::FullMesh { n, per_server_bps },
        &params,
    );
    (demands, est.compute_s)
}

/// Run `TopologyFinder` for a demand set (historical routing: coin-change
/// ring routes win over MP shortest paths; all committed artifacts up to
/// `fig16_dynamic` use this).
pub fn build_topoopt_fabric(
    demands: &TrafficDemands,
    n: usize,
    degree: usize,
    link_bps: f64,
) -> TopologyFinderOutput {
    topology_finder(&TopologyFinderInput {
        num_servers: n,
        degree,
        link_bps,
        demands,
        totient: TotientPermsConfig::default(),
        matching: MatchingAlgo::Auto,
        mp_shortest_path: false,
        availability_aware: false,
    })
}

/// [`build_topoopt_fabric`] with `mp_shortest_path` routing enabled: MP
/// pairs covered by an AllReduce ring are re-routed onto strictly shorter
/// BFS paths, so matched MP links carry the MP traffic they were built for.
/// Used by the datacenter-scale experiments (`fig16_dynamic_scale`).
pub fn build_topoopt_fabric_routed(
    demands: &TrafficDemands,
    n: usize,
    degree: usize,
    link_bps: f64,
) -> TopologyFinderOutput {
    topology_finder(&TopologyFinderInput {
        num_servers: n,
        degree,
        link_bps,
        demands,
        totient: TotientPermsConfig::default(),
        matching: MatchingAlgo::Auto,
        mp_shortest_path: true,
        availability_aware: false,
    })
}

/// Simulated iteration time of a TopoOpt fabric for the given demands.
pub fn topoopt_iteration(
    demands: &TrafficDemands,
    n: usize,
    degree: usize,
    link_bps: f64,
    compute_s: f64,
) -> topoopt_netsim::IterationResult {
    let out = build_topoopt_fabric(demands, n, degree, link_bps);
    let plans: Vec<AllReducePlan> = out
        .groups
        .iter()
        .map(|g| AllReducePlan { permutations: g.permutations(), bytes: g.bytes })
        .collect();
    let net = SimNetwork::new(out.graph.clone(), n, out.routing.clone());
    simulate_iteration(&net, demands, &plans, &IterationParams { compute_s })
}

/// A §6-testbed-style fabric: the `TopologyFinder` output plus the NPAR
/// forwarding plan its routing implies (Appendix I).
pub struct RdmaFabric {
    /// Number of servers.
    pub num_servers: usize,
    /// Topology, routing, and AllReduce group selections.
    pub out: TopologyFinderOutput,
    /// Destination-keyed kernel forwarding rules + per-pair relay counts.
    pub plan: ForwardingPlan,
}

impl RdmaFabric {
    /// The per-pair throughput-factor matrix of this fabric at a given
    /// relay efficiency (feeds `TopologyView::with_pair_factors`).
    pub fn pair_factors(&self, relay_efficiency: f64) -> Vec<Vec<f64>> {
        (0..self.num_servers)
            .map(|s| {
                (0..self.num_servers)
                    .map(|d| self.plan.effective_throughput_factor(s, d, relay_efficiency))
                    .collect()
            })
            .collect()
    }

    /// Simulate one iteration on this fabric with the RDMA forwarding
    /// plane attached: flows between relayed pairs are rate-capped by
    /// `relay_efficiency` per kernel relay. At `relay_efficiency = 1.0`
    /// the result is bit-identical to [`topoopt_iteration`]'s.
    pub fn simulate(
        &self,
        demands: &TrafficDemands,
        compute_s: f64,
        relay_efficiency: f64,
    ) -> topoopt_netsim::IterationResult {
        let plans: Vec<AllReducePlan> = self
            .out
            .groups
            .iter()
            .map(|g| AllReducePlan { permutations: g.permutations(), bytes: g.bytes })
            .collect();
        let net =
            SimNetwork::new(self.out.graph.clone(), self.num_servers, self.out.routing.clone())
                .with_relay_overhead(self.plan.clone(), relay_efficiency);
        simulate_iteration(&net, demands, &plans, &IterationParams { compute_s })
    }
}

/// Run `TopologyFinder` for a demand set and derive the fabric's NPAR
/// forwarding plan from the resulting topology + routing.
pub fn build_rdma_fabric(
    demands: &TrafficDemands,
    n: usize,
    degree: usize,
    link_bps: f64,
) -> RdmaFabric {
    let out = build_topoopt_fabric(demands, n, degree, link_bps);
    let plan = build_forwarding_plan(&out.graph, n, &out.routing);
    RdmaFabric { num_servers: n, out, plan }
}

/// [`build_rdma_fabric`] with the availability-aware knob on: the degree
/// split gives every AllReduce group redundant rings and stride selection
/// is repaired until no single link loss disconnects a group's circulant.
/// Used by the failure-degradation experiment; the committed default
/// fabrics keep the knob off.
pub fn build_rdma_fabric_available(
    demands: &TrafficDemands,
    n: usize,
    degree: usize,
    link_bps: f64,
) -> RdmaFabric {
    let out = topology_finder(&TopologyFinderInput {
        num_servers: n,
        degree,
        link_bps,
        demands,
        totient: TotientPermsConfig::default(),
        matching: MatchingAlgo::Auto,
        mp_shortest_path: false,
        availability_aware: true,
    });
    let plan = build_forwarding_plan(&out.graph, n, &out.routing);
    RdmaFabric { num_servers: n, out, plan }
}

/// Simulated TopoOpt iteration priced through the RDMA forwarding plane
/// (§6): the fabric is synthesized with `TopologyFinder`, its forwarding
/// plan derived, and relayed logical connections pay the kernel penalty.
pub fn topoopt_rdma_iteration(
    demands: &TrafficDemands,
    n: usize,
    degree: usize,
    link_bps: f64,
    compute_s: f64,
    relay_efficiency: f64,
) -> topoopt_netsim::IterationResult {
    build_rdma_fabric(demands, n, degree, link_bps).simulate(demands, compute_s, relay_efficiency)
}

/// Simulated iteration time on a non-blocking switch of `per_server_bps`
/// per server (used for the Ideal Switch and the cost-equivalent Fat-tree).
pub fn switch_iteration(
    demands: &TrafficDemands,
    n: usize,
    per_server_bps: f64,
    compute_s: f64,
) -> topoopt_netsim::IterationResult {
    let g = topoopt_graph::topologies::ideal_switch(n, per_server_bps);
    let net = SimNetwork::without_rules(g, n);
    simulate_iteration(&net, demands, &natural_ring_plans(demands), &IterationParams { compute_s })
}

/// Simulated iteration on an expander fabric of the same degree.
pub fn expander_iteration(
    demands: &TrafficDemands,
    n: usize,
    degree: usize,
    link_bps: f64,
    compute_s: f64,
) -> topoopt_netsim::IterationResult {
    let g = topoopt_graph::topologies::expander(n, degree, link_bps, 11);
    let net = SimNetwork::without_rules(g, n);
    simulate_iteration(&net, demands, &natural_ring_plans(demands), &IterationParams { compute_s })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_compose_into_a_comparison() {
        let n = 8;
        let (model, strategy) = baseline_strategy(ModelKind::Candle, ModelPreset::Shared, n);
        let (demands, compute_s) = demands_and_compute(&model, &strategy, n, 100.0e9);
        let topo = topoopt_iteration(&demands, n, 4, 25.0e9, compute_s);
        let ideal = switch_iteration(&demands, n, 100.0e9, compute_s);
        assert!(topo.total_s.is_finite());
        assert!(ideal.total_s.is_finite());
    }

    #[test]
    fn rdma_iteration_at_unit_efficiency_matches_the_abstract_shortcut() {
        // The §6 acceptance invariant: pricing TopoOpt through the real
        // forwarding plane with relay_efficiency = 1.0 is bit-identical to
        // the plan-less topoopt_iteration path.
        let n = 12;
        let (model, strategy) = baseline_strategy(ModelKind::Dlrm, ModelPreset::Testbed, n);
        let (demands, compute_s) = demands_and_compute(&model, &strategy, n, 100.0e9);
        let shortcut = topoopt_iteration(&demands, n, 4, 25.0e9, compute_s);
        let rdma = topoopt_rdma_iteration(&demands, n, 4, 25.0e9, compute_s, 1.0);
        assert_eq!(shortcut, rdma);
    }

    #[test]
    fn rdma_fabric_exposes_plan_and_factors() {
        let n = 12;
        let (model, strategy) = baseline_strategy(ModelKind::Dlrm, ModelPreset::Testbed, n);
        let (demands, _) = demands_and_compute(&model, &strategy, n, 100.0e9);
        let fabric = build_rdma_fabric(&demands, n, 4, 25.0e9);
        // Every pair has a logical connection on the connected testbed.
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    assert!(fabric.plan.has_connection(s, d));
                }
            }
        }
        let factors = fabric.pair_factors(0.5);
        assert_eq!(factors.len(), n);
        // Self-pairs are loopback (factor 1); relayed pairs decay.
        assert_eq!(factors[0][0], 1.0);
        let min = factors.iter().flat_map(|row| row.iter()).cloned().fold(f64::INFINITY, f64::min);
        assert!(min < 1.0, "a 12-server d=4 fabric must relay some pairs");
    }
}
