//! Datacenter-scale netsim benchmark: the flat index-based engine with
//! sharded event loops against the map-keyed from-scratch reference.
//!
//! The workload is the Figure-16 dynamic shape at cluster scale: disjoint
//! 8-server rings covering every server, one flow per ring edge plus a
//! staggered second wave arriving mid-simulation, so the run exercises
//! arrivals, completions, and re-rating — not just one waterfill.
//!
//! * At 512 servers both allocators run and the bench *asserts* the flat
//!   engine is at least 5x faster (the vendored criterion stand-in has no
//!   baseline comparison, so the acceptance gate is an explicit
//!   median-of-runs assertion — the bench binary fails loudly if the
//!   speedup regresses).
//! * At 2048 and 8192 servers only the flat engine runs (the from-scratch
//!   loop re-rates every active flow on every event and would take minutes
//!   per sample); these points are the committed scaling curve, compared
//!   PR-over-PR via `BENCH_fig16_dynamic_scale.json`.
//!
//! Run with `cargo bench -p topoopt-bench --bench scale`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};
use topoopt_graph::Graph;
use topoopt_netsim::fluid::{simulate_flows, simulate_flows_reference, FlowSpec};

/// Disjoint 8-server rings covering `servers` nodes: one flow per edge with
/// distinct sizes (completions spread over many events) plus a second wave
/// of staggered arrivals, so disjoint components keep scheduling
/// independently while the cluster is already busy.
fn dynamic_workload(servers: usize) -> (Graph, Vec<FlowSpec>) {
    let size = 8usize;
    let rings = servers / size;
    let mut g = Graph::new(servers);
    let mut flows = Vec::new();
    for r in 0..rings {
        let base = r * size;
        for i in 0..size {
            g.add_edge(base + i, base + (i + 1) % size, 100.0e9);
            let bytes = 1.0e9 * (1.0 + ((r * size + i) % 17) as f64 / 4.0);
            flows.push(FlowSpec::new(vec![base + i, base + (i + 1) % size], bytes));
            let mut second = FlowSpec::new(vec![base + i, base + (i + 1) % size], bytes * 0.75);
            second.start_s = 0.05 + (r % 5) as f64 * 0.01;
            flows.push(second);
        }
    }
    (g, flows)
}

/// Median wall time of `runs` executions.
fn median_time<F: FnMut()>(runs: usize, mut f: F) -> Duration {
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    group.sample_size(3);

    // 512-server point: flat vs reference, with the acceptance assertion.
    let (g, flows) = dynamic_workload(512);
    group.bench_with_input(BenchmarkId::new("flat_engine", 512), &512usize, |b, _| {
        b.iter(|| simulate_flows(&g, &flows, 1.0e-6))
    });
    let flat = median_time(3, || {
        simulate_flows(&g, &flows, 1.0e-6);
    });
    let reference = median_time(1, || {
        simulate_flows_reference(&g, &flows, 1.0e-6);
    });
    let speedup = reference.as_secs_f64() / flat.as_secs_f64().max(1e-12);
    println!(
        "  scale/512 speedup: {speedup:.1}x (flat {flat:?} vs map-keyed reference {reference:?})"
    );
    assert!(
        speedup >= 5.0,
        "flat engine must beat the map-keyed reference by >= 5x on the 512-server \
         dynamic workload, measured {speedup:.2}x"
    );

    // Scaling curve: flat engine only.
    for &servers in &[2048usize, 8192] {
        let (g, flows) = dynamic_workload(servers);
        group.bench_with_input(BenchmarkId::new("flat_engine", servers), &servers, |b, _| {
            b.iter(|| simulate_flows(&g, &flows, 1.0e-6))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
