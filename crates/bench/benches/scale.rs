//! Datacenter-scale netsim benchmark: the flat index-based engine with
//! sharded event loops against the map-keyed from-scratch reference.
//!
//! The workload is the Figure-16 dynamic shape at cluster scale: disjoint
//! 8-server rings covering every server, one flow per ring edge plus a
//! staggered second wave arriving mid-simulation, so the run exercises
//! arrivals, completions, and re-rating — not just one waterfill.
//!
//! * At 512 servers both allocators run and the bench *asserts* the flat
//!   engine is at least 5x faster (the vendored criterion stand-in has no
//!   baseline comparison, so the acceptance gate is an explicit
//!   median-of-runs assertion — the bench binary fails loudly if the
//!   speedup regresses).
//! * At 2048 and 8192 servers only the flat engine runs (the from-scratch
//!   loop re-rates every active flow on every event and would take minutes
//!   per sample); these points are the committed scaling curve, compared
//!   PR-over-PR via `BENCH_fig16_dynamic_scale.json`.
//!
//! Run with `cargo bench -p topoopt-bench --bench scale`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};
use topoopt_graph::{topologies, Graph, TrafficMatrix};
use topoopt_netsim::fluid::{simulate_flows, simulate_flows_reference, FlowSpec};
use topoopt_netsim::{
    simulate_dynamic_cluster, AllReducePlan, DynamicClusterParams, DynamicFabric, DynamicJobSpec,
    MigrationMode, SharedEngineMode,
};
use topoopt_strategy::{AllReduceGroup, TrafficDemands};

/// Disjoint 8-server rings covering `servers` nodes: one flow per edge with
/// distinct sizes (completions spread over many events) plus a second wave
/// of staggered arrivals, so disjoint components keep scheduling
/// independently while the cluster is already busy.
fn dynamic_workload(servers: usize) -> (Graph, Vec<FlowSpec>) {
    let size = 8usize;
    let rings = servers / size;
    let mut g = Graph::new(servers);
    let mut flows = Vec::new();
    for r in 0..rings {
        let base = r * size;
        for i in 0..size {
            g.add_edge(base + i, base + (i + 1) % size, 100.0e9);
            let bytes = 1.0e9 * (1.0 + ((r * size + i) % 17) as f64 / 4.0);
            flows.push(FlowSpec::new(vec![base + i, base + (i + 1) % size], bytes));
            let mut second = FlowSpec::new(vec![base + i, base + (i + 1) % size], bytes * 0.75);
            second.start_s = 0.05 + (r % 5) as f64 * 0.01;
            flows.push(second);
        }
    }
    (g, flows)
}

/// Median wall time of `runs` executions.
fn median_time<F: FnMut()>(runs: usize, mut f: F) -> Duration {
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    group.sample_size(3);

    // 512-server point: flat vs reference, with the acceptance assertion.
    let (g, flows) = dynamic_workload(512);
    group.bench_with_input(BenchmarkId::new("flat_engine", 512), &512usize, |b, _| {
        b.iter(|| simulate_flows(&g, &flows, 1.0e-6))
    });
    let flat = median_time(3, || {
        simulate_flows(&g, &flows, 1.0e-6);
    });
    let reference = median_time(1, || {
        simulate_flows_reference(&g, &flows, 1.0e-6);
    });
    let speedup = reference.as_secs_f64() / flat.as_secs_f64().max(1e-12);
    println!(
        "  scale/512 speedup: {speedup:.1}x (flat {flat:?} vs map-keyed reference {reference:?})"
    );
    assert!(
        speedup >= 5.0,
        "flat engine must beat the map-keyed reference by >= 5x on the 512-server \
         dynamic workload, measured {speedup:.2}x"
    );

    // Scaling curve: flat engine only.
    for &servers in &[2048usize, 8192] {
        let (g, flows) = dynamic_workload(servers);
        group.bench_with_input(BenchmarkId::new("flat_engine", servers), &servers, |b, _| {
            b.iter(|| simulate_flows(&g, &flows, 1.0e-6))
        });
    }

    // Mid-run-arrival shared-fabric workload: 2048 servers at 60% offered
    // load, Poisson arrivals on an ideal switch. The persistent engine
    // keeps one FluidEngine alive across every arrival/departure window
    // (admission parks flows, departure retires them, untouched components
    // keep their cached round times); the rebuild reference re-interns the
    // fabric and re-simulates every resident per window. Both modes produce
    // bit-identical results (asserted by tests/dynamic.rs); this gate is
    // about the wall-clock payoff.
    let jobs = mid_run_arrival_trace(2048, 0.6);
    let params = |mode: SharedEngineMode| DynamicClusterParams {
        total_servers: 2048,
        fabric: DynamicFabric::Shared(topologies::ideal_switch(2048, 100.0e9)),
        provisioning_time_s: 0.0,
        per_hop_latency_s: 1.0e-6,
        migration: MigrationMode::Atomic,
        shared_engine: mode,
        window_cap: None,
        faults: vec![],
    };
    group.bench_with_input(BenchmarkId::new("dynamic_persistent", 2048), &2048usize, |b, _| {
        b.iter(|| simulate_dynamic_cluster(&jobs, &params(SharedEngineMode::Persistent)))
    });
    let persistent = median_time(3, || {
        simulate_dynamic_cluster(&jobs, &params(SharedEngineMode::Persistent));
    });
    let rebuild = median_time(1, || {
        simulate_dynamic_cluster(&jobs, &params(SharedEngineMode::Rebuild));
    });
    let speedup = rebuild.as_secs_f64() / persistent.as_secs_f64().max(1e-12);
    println!(
        "  scale/dynamic-2048 speedup: {speedup:.1}x (persistent {persistent:?} vs \
         rebuild-per-window {rebuild:?})"
    );
    assert!(
        speedup >= 5.0,
        "persistent dynamic engine must beat the rebuild-per-window reference by >= 5x \
         on the 2048-server 60%-load mid-run-arrival workload, measured {speedup:.2}x"
    );
    group.finish();
}

/// Poisson trace of 16-server ring-allreduce jobs on a shared fabric at the
/// given offered load: arrival gaps are inverse-CDF exponentials from a
/// fixed splitmix-style stream, so the trace is identical run to run.
fn mid_run_arrival_trace(total: usize, load: f64) -> Vec<DynamicJobSpec> {
    let n = 16usize;
    let bytes = 1.0e9;
    let iterations = 10usize;
    let compute_s = 0.02;
    // Ring allreduce moves ~2(n-1)/n * bytes per server through 100 Gbps
    // links: ~0.15 s/iteration. The gap keeps `load` of the cluster busy.
    let iter_estimate_s = 0.15;
    let mean_gap_s = iter_estimate_s * iterations as f64 * n as f64 / (total as f64 * load);
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut t = 0.0f64;
    (0..48)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((state >> 11) as f64) / ((1u64 << 53) as f64);
            t += -mean_gap_s * (1.0 - u).ln();
            DynamicJobSpec {
                name: format!("j{i}"),
                servers: n,
                demands: TrafficDemands {
                    num_servers: n,
                    allreduce_groups: vec![AllReduceGroup { members: (0..n).collect(), bytes }],
                    mp: TrafficMatrix::new(n),
                    samples_per_server: 1.0,
                },
                plans: vec![AllReducePlan::natural_ring((0..n).collect(), bytes)],
                topology: None,
                compute_s,
                arrival_s: t,
                iterations,
            }
        })
        .collect()
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
