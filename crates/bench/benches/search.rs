//! Inner-engine benchmarks for the strategy search stack.
//!
//! Three axes, matching the PR that introduced them:
//!
//! * `mcmc_incremental` vs `mcmc_reference` — the same single-chain search
//!   driven by the incremental `CostEvaluator` (mutate-and-revert) versus
//!   the clone-per-proposal full re-estimation loop. The incremental path
//!   must be ≥ 5x faster on the Shared-preset DLRM search.
//! * `mcmc_chains` — one chain versus four parallel chains of the same
//!   per-chain length: with ≥ 4 cores the 4x search effort should cost
//!   roughly one chain's wall time.
//! * `waterfill_components` — a fabric-reconfiguration-heavy sharded
//!   workload whose event batches re-waterfill many disjoint components;
//!   `serial` pins `RAYON_NUM_THREADS=1`, `parallel` uses all cores.
//!
//! Run with `cargo bench -p topoopt-bench --bench search`; record the
//! incremental/reference and serial/parallel ratios in CHANGES.md
//! PR-over-PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topoopt_bench::compute_params;
use topoopt_graph::Graph;
use topoopt_models::zoo::build_dlrm;
use topoopt_models::DlrmConfig;
use topoopt_netsim::fluid::FlowSpec;
use topoopt_netsim::FluidEngine;
use topoopt_strategy::{
    search_strategy, search_strategy_reference, McmcConfig, ParallelizationStrategy, TopologyView,
};

fn mcmc_cfg(iterations: usize, chains: usize) -> McmcConfig {
    McmcConfig { iterations, temperature: 0.05, seed: 7, restrict_to_heavy_ops: true, chains }
}

fn bench_mcmc_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_mcmc");
    group.sample_size(10);
    let n = 32;
    let model = build_dlrm(&DlrmConfig::shared());
    let view = TopologyView::FullMesh { n, per_server_bps: 400.0e9 };
    let params = compute_params();
    let initial = ParallelizationStrategy::pure_data_parallel(&model, n);
    let cfg = mcmc_cfg(200, 1);
    group.bench_function("dlrm_shared_32s_incremental", |b| {
        b.iter(|| search_strategy(&model, initial.clone(), &view, &params, &cfg))
    });
    group.bench_function("dlrm_shared_32s_reference", |b| {
        b.iter(|| search_strategy_reference(&model, initial.clone(), &view, &params, &cfg))
    });
    group.finish();
}

fn bench_mcmc_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_chains");
    group.sample_size(10);
    let n = 32;
    let model = build_dlrm(&DlrmConfig::shared());
    let view = TopologyView::FullMesh { n, per_server_bps: 400.0e9 };
    let params = compute_params();
    let initial = ParallelizationStrategy::pure_data_parallel(&model, n);
    for &chains in &[1usize, 4] {
        let cfg = mcmc_cfg(200, chains);
        group.bench_with_input(BenchmarkId::new("dlrm_shared_32s", chains), &chains, |b, _| {
            b.iter(|| search_strategy(&model, initial.clone(), &view, &params, &cfg))
        });
    }
    group.finish();
}

/// `rings` disjoint rings with neighbour and 3-hop flows per node, plus
/// `reconfigs` scheduled fabric swaps (to the same capacities): every swap
/// re-waterfills all rings in one event batch — the multi-component case
/// the engine fans out to rayon threads.
fn reconfig_heavy_shards(rings: usize, size: usize, reconfigs: usize) -> f64 {
    let mut g = Graph::new(rings * size);
    for r in 0..rings {
        let base = r * size;
        for i in 0..size {
            g.add_edge(base + i, base + (i + 1) % size, 100.0e9);
        }
    }
    let mut engine = FluidEngine::new(&g, 1.0e-6);
    for r in 0..rings {
        let base = r * size;
        for i in 0..size {
            engine.add_flow(FlowSpec::new(
                vec![base + i, base + (i + 1) % size],
                1.0e9 * (1.0 + ((r * 7 + i) % 11) as f64 / 4.0),
            ));
            engine.add_flow(FlowSpec::new(
                (0..=3).map(|k| base + (i + k) % size).collect(),
                0.5e9 * (1.0 + ((r * 5 + i) % 7) as f64 / 3.0),
            ));
        }
    }
    for k in 1..=reconfigs {
        engine.schedule_reconfig(0.02 * k as f64, &g);
    }
    engine.run();
    engine.result().makespan_s
}

fn bench_waterfill_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("waterfill_components");
    group.sample_size(10);
    for &(rings, size) in &[(16usize, 12usize), (32, 16)] {
        let label = format!("{rings}x{size}");
        group.bench_with_input(BenchmarkId::new("serial", &label), &label, |b, _| {
            std::env::set_var("RAYON_NUM_THREADS", "1");
            b.iter(|| reconfig_heavy_shards(rings, size, 20));
            std::env::remove_var("RAYON_NUM_THREADS");
        });
        group.bench_with_input(BenchmarkId::new("parallel", &label), &label, |b, _| {
            b.iter(|| reconfig_heavy_shards(rings, size, 20))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mcmc_incremental, bench_mcmc_chains, bench_waterfill_components);
criterion_main!(benches);
