//! Ablation benches for the workspace's main algorithmic design choices:
//! geometric vs naive permutation selection, exact vs greedy matching, and
//! multi-ring vs single-ring AllReduce. Each bench reports the runtime of
//! the two variants; the quality difference is asserted in unit tests and
//! reported by the `reproduce` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use topoopt_collectives::ring::{multi_ring_traffic, ring_allreduce_traffic, RingPermutation};
use topoopt_core::select::select_for_group;
use topoopt_core::totient::{totient_perms, TotientPermsConfig};
use topoopt_graph::matching::{maximum_weight_matching, MatchingAlgo};

fn bench_selection_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_select_permutations");
    let members: Vec<usize> = (0..128).collect();
    group.bench_function("geometric_selection", |b| {
        b.iter(|| select_for_group(&members, 4, &TotientPermsConfig::default()))
    });
    group.bench_function("naive_lowest_strides", |b| {
        b.iter(|| {
            let perms = totient_perms(&members, &TotientPermsConfig::default());
            perms.into_iter().take(4).collect::<Vec<_>>()
        })
    });
    group.finish();
}

fn bench_matching_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_matching");
    group.sample_size(20);
    let n = 20;
    let weights: Vec<Vec<f64>> =
        (0..n).map(|i| (0..n).map(|j| ((i * 31 + j * 17) % 97) as f64).collect()).collect();
    group.bench_function("exact_blossom_substitute", |b| {
        b.iter(|| maximum_weight_matching(&weights, MatchingAlgo::Exact))
    });
    group.bench_function("greedy_improve", |b| {
        b.iter(|| maximum_weight_matching(&weights, MatchingAlgo::GreedyImprove))
    });
    group.finish();
}

fn bench_multiring_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_multiring");
    let n = 128;
    let members: Vec<usize> = (0..n).collect();
    group.bench_function("single_ring_traffic", |b| {
        b.iter(|| ring_allreduce_traffic(n, 4.0e9, &RingPermutation::new(members.clone(), 1)))
    });
    group.bench_function("three_ring_traffic", |b| {
        let perms: Vec<RingPermutation> =
            [1usize, 7, 23].iter().map(|&s| RingPermutation::new(members.clone(), s)).collect();
        b.iter(|| multi_ring_traffic(n, 4.0e9, &perms))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_selection_variants,
    bench_matching_variants,
    bench_multiring_variants
);
criterion_main!(benches);
