//! Criterion benchmarks of the flow-level simulator: one training iteration
//! on TopoOpt and on an ideal switch, and one reconfigurable-fabric
//! iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topoopt_bench::{baseline_strategy, switch_iteration, topoopt_iteration};
use topoopt_models::{ModelKind, ModelPreset};
use topoopt_netsim::{simulate_reconfigurable_iteration, ReconfigParams};
use topoopt_strategy::extract_traffic;

fn bench_iteration_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("iteration_simulation");
    group.sample_size(10);
    for &n in &[16usize, 32] {
        let (model, strategy) = baseline_strategy(ModelKind::Dlrm, ModelPreset::Shared, n);
        let demands = extract_traffic(&model, &strategy, 4);
        group.bench_with_input(BenchmarkId::new("topoopt", n), &n, |b, &n| {
            b.iter(|| topoopt_iteration(&demands, n, 4, 100.0e9, 0.01))
        });
        group.bench_with_input(BenchmarkId::new("ideal_switch", n), &n, |b, &n| {
            b.iter(|| switch_iteration(&demands, n, 400.0e9, 0.01))
        });
    }
    group.finish();
}

fn bench_reconfig_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconfigurable_fabric");
    group.sample_size(10);
    let n = 16;
    let (model, strategy) = baseline_strategy(ModelKind::Bert, ModelPreset::Shared, n);
    let demands = extract_traffic(&model, &strategy, 4);
    group.bench_function("bert_16servers_10ms_ocs", |b| {
        b.iter(|| {
            simulate_reconfigurable_iteration(
                &demands,
                &ReconfigParams { degree: 4, link_bps: 100.0e9, ..Default::default() },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_iteration_sim, bench_reconfig_sim);
criterion_main!(benches);
