//! Incremental engine vs. from-scratch water-filling.
//!
//! Two workload shapes bracket the engine's advantage:
//!
//! * `sharded` — many disjoint per-job rings (the Figure 16 shape): every
//!   completion event touches one job's component, so the incremental
//!   engine re-rates O(job) flows while the reference loop re-rates all of
//!   them. This is where the asymptotic win lives.
//! * `hub` — every flow crosses one shared switch: the component is the
//!   whole network, so the engine's win reduces to skipping untouched
//!   settle work.
//!
//! Run with `cargo bench -p topoopt-bench --bench fluid`; compare the
//! `incremental` and `from_scratch` lines per shape PR-over-PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topoopt_graph::{topologies, Graph};
use topoopt_netsim::fluid::{simulate_flows, simulate_flows_reference, FlowSpec};

/// `rings` disjoint rings of `size` nodes, one flow per edge with distinct
/// sizes so completions are spread over many events.
fn sharded_workload(rings: usize, size: usize) -> (Graph, Vec<FlowSpec>) {
    let mut g = Graph::new(rings * size);
    let mut flows = Vec::new();
    for r in 0..rings {
        let base = r * size;
        for i in 0..size {
            g.add_edge(base + i, base + (i + 1) % size, 100.0e9);
            flows.push(FlowSpec::new(
                vec![base + i, base + (i + 1) % size],
                1.0e9 * (1.0 + ((r * size + i) % 17) as f64 / 4.0),
            ));
        }
    }
    (g, flows)
}

/// All-to-one incast through a shared hub: one fully-connected component.
fn hub_workload(n: usize) -> (Graph, Vec<FlowSpec>) {
    let g = topologies::ideal_switch(n, 100.0e9);
    let hub = n;
    let flows: Vec<FlowSpec> = (1..n)
        .map(|i| FlowSpec::new(vec![i, hub, 0], 1.0e9 * (1.0 + (i % 13) as f64 / 3.0)))
        .collect();
    (g, flows)
}

fn bench_waterfill(c: &mut Criterion) {
    let mut group = c.benchmark_group("fluid_engine");
    group.sample_size(10);
    for &(rings, size) in &[(8usize, 8usize), (24, 16)] {
        let (g, flows) = sharded_workload(rings, size);
        let label = format!("{rings}x{size}");
        group.bench_with_input(BenchmarkId::new("sharded_incremental", &label), &label, |b, _| {
            b.iter(|| simulate_flows(&g, &flows, 1.0e-6))
        });
        group.bench_with_input(BenchmarkId::new("sharded_from_scratch", &label), &label, |b, _| {
            b.iter(|| simulate_flows_reference(&g, &flows, 1.0e-6))
        });
    }
    for &n in &[64usize, 192] {
        let (g, flows) = hub_workload(n);
        group.bench_with_input(BenchmarkId::new("hub_incremental", n), &n, |b, _| {
            b.iter(|| simulate_flows(&g, &flows, 1.0e-6))
        });
        group.bench_with_input(BenchmarkId::new("hub_from_scratch", n), &n, |b, _| {
            b.iter(|| simulate_flows_reference(&g, &flows, 1.0e-6))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_waterfill);
criterion_main!(benches);
