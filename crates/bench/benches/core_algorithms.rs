//! Criterion micro-benchmarks of TopoOpt's core algorithms: TotientPerms +
//! SelectPermutations, CoinChangeMod routing, TopologyFinder, repeated
//! matching rounds (buffer-reusing vs per-round allocation), and one round
//! of the MCMC strategy search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topoopt_bench::{baseline_strategy, build_topoopt_fabric, compute_params};
use topoopt_core::coinchange::CoinChangeTable;
use topoopt_core::select::select_for_group;
use topoopt_core::totient::TotientPermsConfig;
use topoopt_graph::matching::{maximum_weight_matching, MatchingAlgo, MatchingRounds};
use topoopt_models::{ModelKind, ModelPreset};
use topoopt_strategy::{extract_traffic, search_strategy, McmcConfig, TopologyView};

fn bench_totient_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("totient_select");
    for &n in &[64usize, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let members: Vec<usize> = (0..n).collect();
            b.iter(|| select_for_group(&members, 4, &TotientPermsConfig::default()))
        });
    }
    group.finish();
}

fn bench_coin_change(c: &mut Criterion) {
    let mut group = c.benchmark_group("coin_change_table");
    for &n in &[128usize, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| CoinChangeTable::new(n, &[1, 7, 23, 61]))
        });
    }
    group.finish();
}

fn bench_topology_finder(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_finder");
    group.sample_size(10);
    for &n in &[16usize, 32] {
        let (model, strategy) = baseline_strategy(ModelKind::Dlrm, ModelPreset::Shared, n);
        let demands = extract_traffic(&model, &strategy, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| build_topoopt_fabric(&demands, n, 4, 100.0e9))
        });
    }
    group.finish();
}

/// A d_MP-style loop: 4 matching rounds with served-pair halving between
/// rounds, once through the buffer-reusing [`MatchingRounds`] API and once
/// through per-round `maximum_weight_matching` calls (which re-symmetrize
/// the matrix and re-allocate the exact solver's 2^n DP tables each round).
fn bench_matching_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching_rounds");
    group.sample_size(10);
    for &n in &[20usize, 48] {
        let mut weights = vec![vec![0.0; n]; n];
        for (i, row) in weights.iter_mut().enumerate() {
            for (j, w) in row.iter_mut().enumerate() {
                if i != j {
                    *w = ((i * 31 + j * 17) % 29) as f64 * 1.0e8;
                }
            }
        }
        group.bench_with_input(BenchmarkId::new("reused_buffers", n), &n, |b, _| {
            b.iter(|| {
                let mut rounds = MatchingRounds::new(&weights, MatchingAlgo::Auto);
                for _ in 0..4 {
                    let m = rounds.round();
                    for &(a, bb) in &m {
                        rounds.halve_pair(a, bb);
                    }
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("per_round_alloc", n), &n, |b, _| {
            b.iter(|| {
                let mut w = weights.clone();
                for _ in 0..4 {
                    let m = maximum_weight_matching(&w, MatchingAlgo::Auto);
                    for &(a, bb) in &m {
                        w[a][bb] /= 2.0;
                        w[bb][a] /= 2.0;
                    }
                }
            })
        });
    }
    group.finish();
}

fn bench_mcmc_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcmc_strategy_search");
    group.sample_size(10);
    let n = 16;
    let (model, strategy) = baseline_strategy(ModelKind::Dlrm, ModelPreset::Shared, n);
    let view = TopologyView::FullMesh { n, per_server_bps: 400.0e9 };
    let params = compute_params();
    group.bench_function("dlrm_16servers_50iters", |b| {
        b.iter(|| {
            search_strategy(
                &model,
                strategy.clone(),
                &view,
                &params,
                &McmcConfig { iterations: 50, ..Default::default() },
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_totient_select,
    bench_coin_change,
    bench_topology_finder,
    bench_matching_rounds,
    bench_mcmc_search
);
criterion_main!(benches);
