//! Committed-artifact checks: the datacenter-scale experiment ships its
//! `BENCH_fig16_dynamic_scale.json` artifact in `bench/`, and the file must
//! round-trip through the vendored `serde::json` parser — i.e. parse into a
//! full [`ExperimentReport`] and re-serialize to the committed bytes, so the
//! artifact can never drift from the report format that regenerates it.

use topoopt_report::{Cell, ExperimentReport};

fn artifact_path(name: &str) -> std::path::PathBuf {
    // crates/bench -> repo root -> bench/.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench").join(name)
}

#[test]
fn fig16_dynamic_scale_artifact_is_committed_and_round_trips() {
    let path = artifact_path("BENCH_fig16_dynamic_scale.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed artifact {}: {e}", path.display()));
    let report = ExperimentReport::from_json(&text).expect("artifact must parse as a report");
    assert_eq!(report.id, "fig16_dynamic_scale");
    assert!(!report.tables.is_empty(), "scale artifact must carry tables");
    // The experiment sweeps 512/2048/8192 servers; the sweep sizes appear as
    // the first column of every row of the dynamic-cluster table.
    let servers: Vec<i128> = report.tables[0]
        .rows
        .iter()
        .filter_map(|r| match r[0] {
            Cell::Int(v) => Some(v),
            _ => None,
        })
        .collect();
    for expected in [512, 2048, 8192] {
        assert!(
            servers.contains(&expected),
            "scale sweep must include {expected} servers, got {servers:?}"
        );
    }
    // The shared arm's persistent-engine table must prove window-level
    // reuse: at every size, windows are served incrementally and cached
    // job-rates outnumber re-simulated ones.
    let windows = report
        .tables
        .iter()
        .find(|t| {
            t.title.as_deref().is_some_and(|t| t.contains("persistent engine window counters"))
        })
        .expect("scale artifact must carry the persistent window-counter table");
    assert!(!windows.rows.is_empty());
    for row in &windows.rows {
        let Cell::Int(incremental) = row[3] else { panic!("incremental windows must be an int") };
        let Cell::Int(rerated) = row[5] else { panic!("re-rated job count must be an int") };
        let Cell::Int(reused) = row[6] else { panic!("reused job count must be an int") };
        assert!(incremental > 0, "windows must be served incrementally");
        assert!(
            reused > rerated,
            "cached job-windows must dominate re-rated ones ({reused} vs {rerated})"
        );
    }
    // Round-trip: parse -> serialize reproduces the committed bytes exactly.
    assert_eq!(report.to_json(), text, "artifact must round-trip byte-identically");
}

#[test]
fn fig_failure_degradation_artifact_is_committed_and_round_trips() {
    let path = artifact_path("BENCH_fig_failure_degradation.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed artifact {}: {e}", path.display()));
    let report = ExperimentReport::from_json(&text).expect("artifact must parse as a report");
    assert_eq!(report.id, "fig_failure_degradation");
    assert_eq!(report.tables.len(), 2, "failure sweep plus the availability-knob comparison");

    // Table 1: the healthy row anchors the sweep at 100%, degradation is
    // monotone in reported connectivity, and a severed fabric never claims
    // positive throughput (stall, don't fabricate goodput).
    let sweep = &report.tables[0];
    assert!(sweep.rows.len() > 1, "sweep must carry the healthy row plus failure rows");
    for row in &sweep.rows {
        let Cell::Int(severed) = row[5] else { panic!("severed pairs must be an int") };
        let Cell::Float(connected) = row[7] else { panic!("connected % must be a float") };
        let Cell::Float(samples) = row[8] else { panic!("samples/s must be a float") };
        assert!(samples.is_finite() && samples >= 0.0);
        if severed > 0 {
            assert!(connected < 100.0, "severed pairs imply lost connectivity");
            assert_eq!(samples, 0.0, "a severed training job cannot make progress");
        }
    }

    // Table 2: the availability-aware synthesis must reach zero critical
    // links where the default fabric has some.
    let knob = &report.tables[1];
    assert_eq!(knob.rows.len(), 2, "default vs availability-aware");
    let critical = |row: &Vec<Cell>| match row[3] {
        Cell::Int(v) => v,
        _ => panic!("critical links must be an int"),
    };
    assert!(critical(&knob.rows[0]) > 0, "the default fabric must have critical links to fix");
    assert_eq!(critical(&knob.rows[1]), 0, "availability-aware synthesis survives any single cut");

    // Round-trip: parse -> serialize reproduces the committed bytes exactly.
    assert_eq!(report.to_json(), text, "artifact must round-trip byte-identically");
}

#[test]
fn fig_reconfig_planned_artifact_is_committed_and_round_trips() {
    let path = artifact_path("BENCH_fig_reconfig_planned.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed artifact {}: {e}", path.display()));
    let report = ExperimentReport::from_json(&text).expect("artifact must parse as a report");
    assert_eq!(report.id, "fig_reconfig_planned");
    assert_eq!(report.tables.len(), 2, "testbed migrations plus the dynamic workload");

    // Table 1: on every migration row pair, the planned strategies' peak
    // throughput dip is no worse than the atomic swap's 1.0, and each row
    // either found a valid ordering or reports an explicit fallback naming
    // the violated policy.
    let migrations = &report.tables[0];
    assert!(!migrations.rows.is_empty());
    for row in &migrations.rows {
        let Cell::Float(peak) = row[4] else { panic!("peak dip must be a float") };
        let Cell::Str(strategy) = &row[1] else { panic!("strategy must be text") };
        let Cell::Str(outcome) = &row[7] else { panic!("outcome must be text") };
        if strategy == "atomic swap" {
            assert_eq!(peak, 1.0, "the atomic swap is dark for the whole rewiring");
        } else {
            assert!(peak <= 1.0 + 1e-9, "planned peak dip {peak} worse than atomic");
            assert!(
                outcome == "ok" || outcome.starts_with("fallback: "),
                "outcome must be ok or name the violated policy, got {outcome}"
            );
        }
    }

    // Table 2: the planned arm actually planned its transitions.
    let dynamic = &report.tables[1];
    let planned_rows: Vec<_> =
        dynamic.rows.iter().filter(|r| r[1] == Cell::Str("planned".into())).collect();
    assert!(!planned_rows.is_empty(), "dynamic table must carry planned rows");
    for row in planned_rows {
        let Cell::Int(planned) = row[7] else { panic!("planned count must be an int") };
        let Cell::Int(fallbacks) = row[8] else { panic!("fallback count must be an int") };
        assert!(planned + fallbacks > 0, "planned rows must classify every transition");
    }

    // Round-trip: parse -> serialize reproduces the committed bytes exactly.
    assert_eq!(report.to_json(), text, "artifact must round-trip byte-identically");
}
