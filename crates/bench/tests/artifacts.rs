//! Committed-artifact checks: the datacenter-scale experiment ships its
//! `BENCH_fig16_dynamic_scale.json` artifact in `bench/`, and the file must
//! round-trip through the vendored `serde::json` parser — i.e. parse into a
//! full [`ExperimentReport`] and re-serialize to the committed bytes, so the
//! artifact can never drift from the report format that regenerates it.

use topoopt_report::{Cell, ExperimentReport};

fn artifact_path(name: &str) -> std::path::PathBuf {
    // crates/bench -> repo root -> bench/.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench").join(name)
}

#[test]
fn fig16_dynamic_scale_artifact_is_committed_and_round_trips() {
    let path = artifact_path("BENCH_fig16_dynamic_scale.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed artifact {}: {e}", path.display()));
    let report = ExperimentReport::from_json(&text).expect("artifact must parse as a report");
    assert_eq!(report.id, "fig16_dynamic_scale");
    assert!(!report.tables.is_empty(), "scale artifact must carry tables");
    // The experiment sweeps 512/2048/8192 servers; the sweep sizes appear as
    // the first column of every row of the dynamic-cluster table.
    let servers: Vec<i128> = report.tables[0]
        .rows
        .iter()
        .filter_map(|r| match r[0] {
            Cell::Int(v) => Some(v),
            _ => None,
        })
        .collect();
    for expected in [512, 2048, 8192] {
        assert!(
            servers.contains(&expected),
            "scale sweep must include {expected} servers, got {servers:?}"
        );
    }
    // Round-trip: parse -> serialize reproduces the committed bytes exactly.
    assert_eq!(report.to_json(), text, "artifact must round-trip byte-identically");
}
