//! Cluster management for shared TopoOpt deployments (§5.6, Appendix C).
//!
//! * [`shard`] — partition the cluster's servers into per-job shards.
//! * [`lookahead`] — the Active/Look-ahead dual-port provisioning scheme
//!   that hides patch-panel reconfiguration latency between jobs.
//! * [`scheduler`] — the §5.6 job mix (40% DLRM / 30% BERT / 20% CANDLE /
//!   10% VGG) and load-level generation.

pub mod lookahead;
pub mod scheduler;
pub mod shard;

pub use lookahead::{LookaheadProvisioner, PortSide, TransitionRecord, TransitionSchedule};
pub use scheduler::{job_mix_for_load, jobs_for_load, poisson_arrival_times, JobRequest, MixModel};
pub use shard::ClusterShards;
