//! Shared-cluster job mix and load generation (§5.6).
//!
//! Following the paper (which follows Themis and Pollux): 40% of jobs are
//! DLRM, 30% BERT, 20% CANDLE and 10% VGG16; every job requests 16 servers
//! (64 GPUs); 5 / 10 / 15 / 20 / 27 active jobs represent 20–100% load on a
//! 432-server cluster.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use topoopt_models::ModelKind;

/// The §5.6 job-mix model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixModel {
    /// Fraction of DLRM jobs.
    pub dlrm: f64,
    /// Fraction of BERT jobs.
    pub bert: f64,
    /// Fraction of CANDLE jobs.
    pub candle: f64,
    /// Fraction of VGG jobs.
    pub vgg: f64,
    /// Servers each job requests.
    pub servers_per_job: usize,
}

impl Default for MixModel {
    fn default() -> Self {
        MixModel { dlrm: 0.4, bert: 0.3, candle: 0.2, vgg: 0.1, servers_per_job: 16 }
    }
}

/// One job request in the shared-cluster experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobRequest {
    /// Which model the job trains.
    pub model: ModelKind,
    /// Number of servers requested.
    pub servers: usize,
}

/// Number of concurrently active jobs for a given load level on a cluster of
/// `total_servers` servers (§5.6 uses 5/10/15/20/27 jobs for 20–100% on 432
/// servers).
pub fn jobs_for_load(total_servers: usize, servers_per_job: usize, load: f64) -> usize {
    let max_jobs = total_servers / servers_per_job.max(1);
    ((max_jobs as f64 * load).round() as usize).clamp(1, max_jobs)
}

/// Generate the job list for one load level, deterministically from `seed`,
/// with model shares as close to the mix as integer counts allow.
pub fn job_mix_for_load(
    mix: &MixModel,
    total_servers: usize,
    load: f64,
    seed: u64,
) -> Vec<JobRequest> {
    let count = jobs_for_load(total_servers, mix.servers_per_job, load);
    let mut rng = StdRng::seed_from_u64(seed);
    // Deterministic rounding: assign the guaranteed integer share of each
    // model first, then fill the remainder by sampling the mix.
    let mut jobs = Vec::with_capacity(count);
    let base = [
        (ModelKind::Dlrm, mix.dlrm),
        (ModelKind::Bert, mix.bert),
        (ModelKind::Candle, mix.candle),
        (ModelKind::Vgg16, mix.vgg),
    ];
    for &(model, share) in &base {
        let k = (share * count as f64).floor() as usize;
        for _ in 0..k {
            jobs.push(JobRequest { model, servers: mix.servers_per_job });
        }
    }
    while jobs.len() < count {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        let mut model = ModelKind::Dlrm;
        for &(m, share) in &base {
            acc += share;
            if r <= acc {
                model = m;
                break;
            }
        }
        jobs.push(JobRequest { model, servers: mix.servers_per_job });
    }
    jobs
}

/// Deterministic Poisson-process arrival times for the dynamic
/// shared-cluster experiment: `count` cumulative exponential inter-arrival
/// gaps of mean `mean_gap_s`, seeded so trajectories are reproducible.
pub fn poisson_arrival_times(count: usize, mean_gap_s: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut times = Vec::with_capacity(count);
    let mut now = 0.0f64;
    for _ in 0..count {
        let u: f64 = rng.gen();
        // Inverse-CDF sampling; clamp away u = 1.0 to keep ln finite.
        now += -(1.0 - u.min(1.0 - 1e-12)).ln() * mean_gap_s.max(0.0);
        times.push(now);
    }
    times
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_arrivals_are_sorted_deterministic_and_roughly_mean_spaced() {
        let a = poisson_arrival_times(500, 2.0, 9);
        let b = poisson_arrival_times(500, 2.0, 9);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let mean_gap = a.last().unwrap() / 500.0;
        assert!((mean_gap - 2.0).abs() < 0.5, "mean gap {mean_gap} far from 2.0");
        assert!(poisson_arrival_times(0, 1.0, 1).is_empty());
    }

    #[test]
    fn load_levels_match_paper_counts() {
        // 432 servers, 16 per job -> 27 jobs at 100%, ~5 at 20%.
        assert_eq!(jobs_for_load(432, 16, 1.0), 27);
        assert_eq!(jobs_for_load(432, 16, 0.2), 5);
        assert_eq!(jobs_for_load(432, 16, 0.4), 11);
        assert_eq!(jobs_for_load(432, 16, 0.6), 16);
        assert_eq!(jobs_for_load(432, 16, 0.8), 22);
    }

    #[test]
    fn mix_shares_are_respected_at_full_load() {
        let jobs = job_mix_for_load(&MixModel::default(), 432, 1.0, 7);
        assert_eq!(jobs.len(), 27);
        let dlrm = jobs.iter().filter(|j| j.model == ModelKind::Dlrm).count();
        let bert = jobs.iter().filter(|j| j.model == ModelKind::Bert).count();
        let vgg = jobs.iter().filter(|j| j.model == ModelKind::Vgg16).count();
        assert!(dlrm >= 10, "expected >= 40% DLRM, got {dlrm}/27");
        assert!(bert >= 8, "expected >= 30% BERT, got {bert}/27");
        assert!(vgg >= 2, "expected >= 10% VGG, got {vgg}/27");
        assert!(jobs.iter().all(|j| j.servers == 16));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = job_mix_for_load(&MixModel::default(), 432, 0.6, 3);
        let b = job_mix_for_load(&MixModel::default(), 432, 0.6, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn minimum_one_job_even_at_tiny_load() {
        assert_eq!(jobs_for_load(432, 16, 0.0), 1);
    }
}
