//! Sharding a TopoOpt cluster into disjoint per-job partitions.
//!
//! The optical switches let TopoOpt cut the fabric into isolated shards
//! (Figure 26): a job's servers and the circuits between them are completely
//! disjoint from every other job's, so jobs never contend for bandwidth.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Tracks which servers are free and which shard each allocated server
/// belongs to.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterShards {
    total_servers: usize,
    free: BTreeSet<usize>,
    /// shard id -> servers
    shards: Vec<Option<Vec<usize>>>,
}

impl ClusterShards {
    /// A cluster of `total_servers` free servers.
    pub fn new(total_servers: usize) -> Self {
        ClusterShards { total_servers, free: (0..total_servers).collect(), shards: Vec::new() }
    }

    /// Total number of servers in the cluster.
    pub fn total_servers(&self) -> usize {
        self.total_servers
    }

    /// Number of currently free servers.
    pub fn free_servers(&self) -> usize {
        self.free.len()
    }

    /// Allocate a shard of `size` servers; returns the shard id and the
    /// allocated server ids, or `None` if not enough servers are free.
    pub fn allocate(&mut self, size: usize) -> Option<(usize, Vec<usize>)> {
        if size == 0 || self.free.len() < size {
            return None;
        }
        let servers: Vec<usize> = self.free.iter().take(size).cloned().collect();
        for s in &servers {
            self.free.remove(s);
        }
        let id = self.shards.len();
        self.shards.push(Some(servers.clone()));
        Some((id, servers))
    }

    /// Release a shard's servers back to the free pool.
    pub fn release(&mut self, shard_id: usize) -> bool {
        if shard_id >= self.shards.len() {
            return false;
        }
        match self.shards[shard_id].take() {
            Some(servers) => {
                for s in servers {
                    self.free.insert(s);
                }
                true
            }
            None => false,
        }
    }

    /// Servers of an active shard.
    pub fn shard_servers(&self, shard_id: usize) -> Option<&Vec<usize>> {
        self.shards.get(shard_id).and_then(|s| s.as_ref())
    }

    /// Number of active shards.
    pub fn active_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.is_some()).count()
    }

    /// Verify no server belongs to two shards and every allocated server is
    /// not in the free pool.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = BTreeSet::new();
        for (id, shard) in self.shards.iter().enumerate() {
            if let Some(servers) = shard {
                for &s in servers {
                    if !seen.insert(s) {
                        return Err(format!("server {s} appears in two shards"));
                    }
                    if self.free.contains(&s) {
                        return Err(format!("server {s} of shard {id} is also free"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Current load: fraction of servers allocated to jobs.
    pub fn load(&self) -> f64 {
        1.0 - self.free.len() as f64 / self.total_servers.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut c = ClusterShards::new(32);
        let (id, servers) = c.allocate(16).unwrap();
        assert_eq!(servers.len(), 16);
        assert_eq!(c.free_servers(), 16);
        assert_eq!(c.active_shards(), 1);
        assert!((c.load() - 0.5).abs() < 1e-12);
        c.validate().unwrap();
        assert!(c.release(id));
        assert_eq!(c.free_servers(), 32);
        assert!(!c.release(id), "double release must fail");
    }

    #[test]
    fn allocation_fails_when_full() {
        let mut c = ClusterShards::new(8);
        assert!(c.allocate(8).is_some());
        assert!(c.allocate(1).is_none());
        assert!(c.allocate(0).is_none());
    }

    #[test]
    fn shards_are_disjoint() {
        let mut c = ClusterShards::new(48);
        let (_, a) = c.allocate(16).unwrap();
        let (_, b) = c.allocate(16).unwrap();
        let (_, d) = c.allocate(16).unwrap();
        let mut all: Vec<usize> = a.into_iter().chain(b).chain(d).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 48);
        c.validate().unwrap();
    }

    proptest! {
        #[test]
        fn validation_holds_under_random_alloc_release(
            ops in proptest::collection::vec((1usize..20, proptest::bool::ANY), 1..60)
        ) {
            let mut c = ClusterShards::new(64);
            let mut live: Vec<usize> = Vec::new();
            for (size, release_first) in ops {
                if release_first && !live.is_empty() {
                    let id = live.remove(0);
                    prop_assert!(c.release(id));
                }
                if let Some((id, _)) = c.allocate(size) {
                    live.push(id);
                }
                c.validate().unwrap();
                prop_assert!(c.load() >= 0.0 && c.load() <= 1.0);
            }
        }
    }
}
