//! Active / Look-ahead port provisioning (Appendix C).
//!
//! Patch panels take minutes to reconfigure, so a shared TopoOpt cluster
//! splits every server interface through an inexpensive 1×2 mechanical
//! switch into an *Active* port (carrying the current job's topology) and a
//! *Look-ahead* port (pre-wired with the next job's topology while the
//! current job trains). When the next job is ready, every 1×2 switch flips
//! sides — a microsecond-scale operation — and the roles swap.

use serde::{Deserialize, Serialize};

/// Which side of the 1×2 switch a server interface currently uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortSide {
    /// The side currently carrying traffic.
    Active,
    /// The side being pre-provisioned for the next job.
    LookAhead,
}

impl PortSide {
    /// The other side.
    pub fn flipped(self) -> PortSide {
        match self {
            PortSide::Active => PortSide::LookAhead,
            PortSide::LookAhead => PortSide::Active,
        }
    }
}

/// State of the dual-sided provisioning for one cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LookaheadProvisioner {
    /// Which physical patch-panel bank (0 or 1) is the Active side.
    active_bank: usize,
    /// Whether the look-ahead bank has a fully provisioned topology waiting.
    lookahead_ready: bool,
    /// Remaining seconds of patch-panel rewiring for the look-ahead bank.
    provisioning_remaining_s: f64,
    /// How long one full rewiring takes (minutes for a patch panel).
    provisioning_time_s: f64,
    /// Number of flips performed so far.
    pub flips: usize,
}

impl LookaheadProvisioner {
    /// New provisioner; `provisioning_time_s` is the patch-panel rewiring
    /// time for a full job topology.
    pub fn new(provisioning_time_s: f64) -> Self {
        LookaheadProvisioner {
            active_bank: 0,
            lookahead_ready: false,
            provisioning_remaining_s: 0.0,
            provisioning_time_s,
            flips: 0,
        }
    }

    /// The bank currently serving traffic (0 or 1).
    pub fn active_bank(&self) -> usize {
        self.active_bank
    }

    /// Start wiring the next job's topology on the look-ahead bank.
    pub fn start_provisioning(&mut self) {
        self.lookahead_ready = false;
        self.provisioning_remaining_s = self.provisioning_time_s;
    }

    /// Advance wall-clock time (the robot keeps rewiring while the current
    /// job trains).
    pub fn advance(&mut self, dt_s: f64) {
        if self.provisioning_remaining_s > 0.0 {
            self.provisioning_remaining_s = (self.provisioning_remaining_s - dt_s).max(0.0);
            if self.provisioning_remaining_s == 0.0 {
                self.lookahead_ready = true;
            }
        }
    }

    /// True when the look-ahead bank is fully wired and the cluster can flip
    /// instantly.
    pub fn ready_to_flip(&self) -> bool {
        self.lookahead_ready
    }

    /// Switch-over delay the next job observes if it starts now: zero when
    /// the look-ahead bank is ready, otherwise the remaining rewiring time.
    pub fn switch_over_delay(&self) -> f64 {
        if self.lookahead_ready {
            0.0
        } else {
            self.provisioning_remaining_s
        }
    }

    /// Flip the 1×2 switches: the look-ahead bank becomes active. Returns
    /// the delay incurred (0 when pre-provisioning finished in time).
    pub fn flip(&mut self) -> f64 {
        let delay = self.switch_over_delay();
        self.active_bank = 1 - self.active_bank;
        self.lookahead_ready = false;
        self.provisioning_remaining_s = 0.0;
        self.flips += 1;
        delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_side_flips() {
        assert_eq!(PortSide::Active.flipped(), PortSide::LookAhead);
        assert_eq!(PortSide::LookAhead.flipped(), PortSide::Active);
    }

    #[test]
    fn pre_provisioned_flip_is_free() {
        let mut p = LookaheadProvisioner::new(300.0);
        p.start_provisioning();
        assert!(!p.ready_to_flip());
        p.advance(400.0); // the current job trained long enough
        assert!(p.ready_to_flip());
        let delay = p.flip();
        assert_eq!(delay, 0.0);
        assert_eq!(p.active_bank(), 1);
        assert_eq!(p.flips, 1);
    }

    #[test]
    fn early_flip_pays_remaining_rewiring_time() {
        let mut p = LookaheadProvisioner::new(300.0);
        p.start_provisioning();
        p.advance(100.0);
        assert!(!p.ready_to_flip());
        assert!((p.switch_over_delay() - 200.0).abs() < 1e-9);
        let delay = p.flip();
        assert!((delay - 200.0).abs() < 1e-9);
    }

    #[test]
    fn banks_alternate_across_flips() {
        let mut p = LookaheadProvisioner::new(1.0);
        for expect in [1usize, 0, 1, 0] {
            p.start_provisioning();
            p.advance(2.0);
            p.flip();
            assert_eq!(p.active_bank(), expect);
        }
        assert_eq!(p.flips, 4);
    }
}
