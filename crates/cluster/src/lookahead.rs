//! Active / Look-ahead port provisioning (Appendix C).
//!
//! Patch panels take minutes to reconfigure, so a shared TopoOpt cluster
//! splits every server interface through an inexpensive 1×2 mechanical
//! switch into an *Active* port (carrying the current job's topology) and a
//! *Look-ahead* port (pre-wired with the next job's topology while the
//! current job trains). When the next job is ready, every 1×2 switch flips
//! sides — a microsecond-scale operation — and the roles swap.

use serde::{Deserialize, Serialize};

/// Which side of the 1×2 switch a server interface currently uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortSide {
    /// The side currently carrying traffic.
    Active,
    /// The side being pre-provisioned for the next job.
    LookAhead,
}

impl PortSide {
    /// The other side.
    pub fn flipped(self) -> PortSide {
        match self {
            PortSide::Active => PortSide::LookAhead,
            PortSide::LookAhead => PortSide::Active,
        }
    }
}

/// A per-step rewiring schedule for one patch-panel transition, as produced
/// by a migration planner (or the single-opaque-step atomic fallback).
/// Offsets are cumulative completion times measured from the moment wiring
/// starts on the look-ahead bank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionSchedule {
    /// Completion offset of each rewiring step, in seconds from wiring
    /// start, non-decreasing. Atomic transitions carry exactly one entry:
    /// the full opaque rewiring time.
    pub step_offsets_s: Vec<f64>,
    /// True when the schedule came from a migration planner (per-link
    /// steps), false for the opaque atomic swap.
    pub planned: bool,
    /// When the planner could not sequence the migration safely, the name
    /// and detail of the hard policy that forced the fallback to atomic.
    pub fallback: Option<String>,
}

impl TransitionSchedule {
    /// The opaque atomic swap: one step covering the full rewiring.
    pub fn atomic(total_s: f64) -> Self {
        TransitionSchedule { step_offsets_s: vec![total_s], planned: false, fallback: None }
    }

    /// A planner-produced per-step schedule.
    pub fn planned(step_offsets_s: Vec<f64>) -> Self {
        TransitionSchedule { step_offsets_s, planned: true, fallback: None }
    }

    /// Total rewiring time (the last step's completion offset).
    pub fn total_s(&self) -> f64 {
        self.step_offsets_s.last().copied().unwrap_or(0.0)
    }

    /// Number of rewiring steps.
    pub fn steps(&self) -> usize {
        self.step_offsets_s.len()
    }
}

/// The realized account of one patch-panel transition: the schedule that
/// was executed, when wiring started, and how much rewiring the admitted
/// job actually waited for (the part not hidden behind queueing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionRecord {
    /// Absolute simulation time at which look-ahead wiring started.
    pub wiring_started_s: f64,
    /// The executed schedule (atomic or planned).
    pub schedule: TransitionSchedule,
    /// Switch-over delay the job paid at flip time: the portion of the
    /// schedule not hidden behind the job's queue wait.
    pub residual_s: f64,
}

impl TransitionRecord {
    /// Absolute completion timestamps of each rewiring step.
    pub fn step_times_s(&self) -> Vec<f64> {
        self.schedule.step_offsets_s.iter().map(|o| self.wiring_started_s + o).collect()
    }
}

/// State of the dual-sided provisioning for one cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LookaheadProvisioner {
    /// Which physical patch-panel bank (0 or 1) is the Active side.
    active_bank: usize,
    /// Whether the look-ahead bank has a fully provisioned topology waiting.
    lookahead_ready: bool,
    /// Remaining seconds of patch-panel rewiring for the look-ahead bank.
    provisioning_remaining_s: f64,
    /// How long one full rewiring takes (minutes for a patch panel).
    provisioning_time_s: f64,
    /// Number of flips performed so far.
    pub flips: usize,
}

impl LookaheadProvisioner {
    /// New provisioner; `provisioning_time_s` is the patch-panel rewiring
    /// time for a full job topology.
    pub fn new(provisioning_time_s: f64) -> Self {
        LookaheadProvisioner {
            active_bank: 0,
            lookahead_ready: false,
            provisioning_remaining_s: 0.0,
            provisioning_time_s,
            flips: 0,
        }
    }

    /// The bank currently serving traffic (0 or 1).
    pub fn active_bank(&self) -> usize {
        self.active_bank
    }

    /// Start wiring the next job's topology on the look-ahead bank.
    pub fn start_provisioning(&mut self) {
        self.start_provisioning_for(self.provisioning_time_s);
    }

    /// Start wiring the next job's topology with an explicit total rewiring
    /// time — used when a migration planner produced a per-step schedule
    /// whose total differs from the opaque full-rewire default.
    pub fn start_provisioning_for(&mut self, total_s: f64) {
        self.lookahead_ready = total_s <= 0.0;
        self.provisioning_remaining_s = total_s.max(0.0);
    }

    /// Advance wall-clock time (the robot keeps rewiring while the current
    /// job trains).
    pub fn advance(&mut self, dt_s: f64) {
        if self.provisioning_remaining_s > 0.0 {
            self.provisioning_remaining_s = (self.provisioning_remaining_s - dt_s).max(0.0);
            if self.provisioning_remaining_s == 0.0 {
                self.lookahead_ready = true;
            }
        }
    }

    /// True when the look-ahead bank is fully wired and the cluster can flip
    /// instantly.
    pub fn ready_to_flip(&self) -> bool {
        self.lookahead_ready
    }

    /// Switch-over delay the next job observes if it starts now: zero when
    /// the look-ahead bank is ready, otherwise the remaining rewiring time.
    pub fn switch_over_delay(&self) -> f64 {
        if self.lookahead_ready {
            0.0
        } else {
            self.provisioning_remaining_s
        }
    }

    /// Flip the 1×2 switches: the look-ahead bank becomes active. Returns
    /// the delay incurred (0 when pre-provisioning finished in time).
    pub fn flip(&mut self) -> f64 {
        let delay = self.switch_over_delay();
        self.active_bank = 1 - self.active_bank;
        self.lookahead_ready = false;
        self.provisioning_remaining_s = 0.0;
        self.flips += 1;
        delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_side_flips() {
        assert_eq!(PortSide::Active.flipped(), PortSide::LookAhead);
        assert_eq!(PortSide::LookAhead.flipped(), PortSide::Active);
    }

    #[test]
    fn pre_provisioned_flip_is_free() {
        let mut p = LookaheadProvisioner::new(300.0);
        p.start_provisioning();
        assert!(!p.ready_to_flip());
        p.advance(400.0); // the current job trained long enough
        assert!(p.ready_to_flip());
        let delay = p.flip();
        assert_eq!(delay, 0.0);
        assert_eq!(p.active_bank(), 1);
        assert_eq!(p.flips, 1);
    }

    #[test]
    fn early_flip_pays_remaining_rewiring_time() {
        let mut p = LookaheadProvisioner::new(300.0);
        p.start_provisioning();
        p.advance(100.0);
        assert!(!p.ready_to_flip());
        assert!((p.switch_over_delay() - 200.0).abs() < 1e-9);
        let delay = p.flip();
        assert!((delay - 200.0).abs() < 1e-9);
    }

    #[test]
    fn scheduled_provisioning_overrides_the_opaque_total() {
        let mut p = LookaheadProvisioner::new(300.0);
        // A planned migration that only needs 40s of rewiring instead of
        // the full 300s rewire.
        let schedule = TransitionSchedule::planned(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(schedule.steps(), 4);
        assert!((schedule.total_s() - 40.0).abs() < 1e-12);
        p.start_provisioning_for(schedule.total_s());
        p.advance(25.0);
        assert!((p.switch_over_delay() - 15.0).abs() < 1e-9);
        let delay = p.flip();
        assert!((delay - 15.0).abs() < 1e-9);
        let record = TransitionRecord { wiring_started_s: 100.0, schedule, residual_s: delay };
        assert_eq!(record.step_times_s(), vec![110.0, 120.0, 130.0, 140.0]);
    }

    #[test]
    fn atomic_schedule_is_one_opaque_step() {
        let s = TransitionSchedule::atomic(300.0);
        assert_eq!(s.steps(), 1);
        assert!((s.total_s() - 300.0).abs() < 1e-12);
        assert!(!s.planned);
        assert!(s.fallback.is_none());
        assert_eq!(TransitionSchedule::planned(vec![]).total_s(), 0.0);
    }

    #[test]
    fn zero_length_schedule_is_immediately_ready() {
        let mut p = LookaheadProvisioner::new(300.0);
        p.start_provisioning_for(0.0);
        assert!(p.ready_to_flip());
        assert_eq!(p.flip(), 0.0);
    }

    #[test]
    fn banks_alternate_across_flips() {
        let mut p = LookaheadProvisioner::new(1.0);
        for expect in [1usize, 0, 1, 0] {
            p.start_provisioning();
            p.advance(2.0);
            p.flip();
            assert_eq!(p.active_bank(), expect);
        }
        assert_eq!(p.flips, 4);
    }
}
