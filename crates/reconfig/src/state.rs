//! Mid-migration fabric states.
//!
//! A patch-panel migration is a sequence of per-link unplug/replug steps.
//! Between steps the fabric is neither the source nor the target: some
//! links of each are live, and the servers' destination-keyed forwarding
//! rules are a mixture of stale entries (installed for the source fabric)
//! and incremental repairs. [`FabricState`] models exactly that — the live
//! link multiset plus the installed rule table — and applies link
//! operations the way the controller would: unplugging a link repairs the
//! rules it breaks, plugging one fills rules for newly reachable pairs.
//!
//! The repair granularity matters. With [`RuleRepair::PerRule`] only the
//! rules whose next-hop link died are repointed (minimal touch, like
//! patching individual `tc flower` entries); the repaired next hops follow
//! shortest paths in the *current* graph while untouched rules still encode
//! source-fabric paths, and that mixture can transiently loop. With
//! [`RuleRepair::PerDestination`] every rule towards an affected
//! destination is resynced at once; since rule chains only ever follow
//! rules keyed on one destination, per-destination freshness makes loops
//! impossible by construction (every fresh rule strictly decreases the
//! current-graph distance to the destination) — only reachability can
//! still be violated.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use topoopt_core::Routing;
use topoopt_graph::paths::bfs_shortest_path;
use topoopt_graph::Graph;
use topoopt_rdma::npar::NparPartition;
use topoopt_rdma::{build_forwarding_plan, ForwardingPlan, ForwardingRule};

/// One directed physical link (a patch-panel fibre).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Source server.
    pub src: usize,
    /// Destination server.
    pub dst: usize,
    /// Capacity in bits per second.
    pub capacity_bps: f64,
}

/// A single patch-panel operation on one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkOp {
    /// Unplug the link.
    Remove(Link),
    /// Plug the link.
    Add(Link),
}

/// How the controller repairs forwarding rules after each link operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuleRepair {
    /// Minimal touch: only the rules whose next-hop link died are
    /// repointed to a current shortest path (dropped when the destination
    /// became unreachable). Stale rules towards the same destination stay
    /// installed, so repaired chains can transiently loop.
    PerRule,
    /// Every rule towards a destination with at least one broken rule is
    /// resynced to current shortest paths. Loop-free by construction;
    /// reachability can still break.
    PerDestination,
}

/// A migration endpoint: the link multiset plus the routing its
/// destination-keyed rules derive from (empty routing = shortest paths).
#[derive(Debug, Clone)]
pub struct FabricSpec {
    /// The fabric's links.
    pub graph: Graph,
    /// Routing whose paths install the fabric's forwarding rules.
    pub routing: Routing,
}

impl FabricSpec {
    /// A fabric whose rules follow explicit routing paths where given.
    pub fn new(graph: Graph, routing: Routing) -> Self {
        FabricSpec { graph, routing }
    }

    /// A fabric whose rules follow shortest paths.
    pub fn shortest_path(graph: Graph) -> Self {
        FabricSpec { graph, routing: Routing::new() }
    }
}

/// The live link multiset of a fabric, keyed by `(src, dst, capacity
/// bits)` with parallel-link counts — the unit the planner diffs and the
/// patch panel plugs.
pub fn link_multiset(graph: &Graph) -> BTreeMap<(usize, usize, u64), usize> {
    let mut m = BTreeMap::new();
    for (_, e) in graph.edges() {
        *m.entry((e.src, e.dst, e.capacity_bps.to_bits())).or_insert(0) += 1;
    }
    m
}

/// The link operations turning `source` into `target`: every link of the
/// source multiset not in the target is removed, every target link not in
/// the source is added. Deterministic order: removals first, then
/// additions, each sorted by `(src, dst)` — strategies permute from here.
pub fn diff_ops(source: &Graph, target: &Graph) -> Vec<LinkOp> {
    let src_links = link_multiset(source);
    let dst_links = link_multiset(target);
    let mut ops = Vec::new();
    for (&(s, d, cap), &count) in &src_links {
        let keep = dst_links.get(&(s, d, cap)).copied().unwrap_or(0);
        for _ in keep..count {
            ops.push(LinkOp::Remove(Link { src: s, dst: d, capacity_bps: f64::from_bits(cap) }));
        }
    }
    for (&(s, d, cap), &count) in &dst_links {
        let keep = src_links.get(&(s, d, cap)).copied().unwrap_or(0);
        for _ in keep..count {
            ops.push(LinkOp::Add(Link { src: s, dst: d, capacity_bps: f64::from_bits(cap) }));
        }
    }
    ops
}

/// A live mid-migration fabric: the current link multiset plus the
/// destination-keyed rule table actually installed on the servers (possibly
/// stale relative to the links).
#[derive(Debug, Clone)]
pub struct FabricState {
    num_servers: usize,
    graph: Graph,
    /// `(server, final_dst)` -> next hop, the kernel tables' content.
    next_hop: BTreeMap<(usize, usize), usize>,
}

impl FabricState {
    /// Start state of a migration: the spec's links with its freshly built
    /// forwarding plan installed.
    pub fn from_spec(spec: &FabricSpec, num_servers: usize) -> Self {
        let plan = build_forwarding_plan(&spec.graph, num_servers, &spec.routing);
        let mut state =
            FabricState { num_servers, graph: spec.graph.clone(), next_hop: BTreeMap::new() };
        state.install(&plan);
        state
    }

    /// The live links.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// Number of installed rules.
    pub fn num_rules(&self) -> usize {
        self.next_hop.len()
    }

    fn install(&mut self, plan: &ForwardingPlan) {
        self.next_hop.clear();
        for rules in plan.rules.values() {
            for r in rules {
                self.next_hop.insert((r.on_server, r.final_dst), r.next_hop);
            }
        }
    }

    /// Replace the whole rule table with a freshly built plan for the
    /// current links under `routing` — the final `InstallTargetRules` step
    /// of a migration (and the only rule update that is never stale).
    pub fn sync_with(&mut self, routing: &Routing) {
        let plan = build_forwarding_plan(&self.graph, self.num_servers, routing);
        self.install(&plan);
    }

    /// Apply one link operation, repairing the rule table the way the
    /// controller would at the given granularity. The caller is
    /// responsible for degree feasibility; removing a link that is not
    /// live panics (the planner only emits diffed operations).
    pub fn apply(&mut self, op: LinkOp, repair: RuleRepair) {
        match op {
            LinkOp::Remove(l) => {
                let id = self
                    .graph
                    .edges()
                    .find(|(_, e)| {
                        e.src == l.src
                            && e.dst == l.dst
                            && e.capacity_bps.to_bits() == l.capacity_bps.to_bits()
                    })
                    .map(|(id, _)| id)
                    .unwrap_or_else(|| panic!("remove of non-live link {} -> {}", l.src, l.dst));
                self.graph.remove_edge(id);
                self.repair_broken(repair);
            }
            LinkOp::Add(l) => {
                self.graph.add_edge(l.src, l.dst, l.capacity_bps);
                self.fill_missing();
            }
        }
    }

    /// Repoint or drop every rule whose next-hop link is no longer live.
    fn repair_broken(&mut self, repair: RuleRepair) {
        let broken: Vec<(usize, usize)> = self
            .next_hop
            .iter()
            .filter(|(&(server, _), &nh)| !self.graph.has_edge(server, nh))
            .map(|(&k, _)| k)
            .collect();
        match repair {
            RuleRepair::PerRule => {
                for (server, dst) in broken {
                    match bfs_shortest_path(&self.graph, server, dst) {
                        Some(path) => {
                            self.next_hop.insert((server, dst), path[1]);
                        }
                        None => {
                            self.next_hop.remove(&(server, dst));
                        }
                    }
                }
            }
            RuleRepair::PerDestination => {
                let mut dests: Vec<usize> = broken.iter().map(|&(_, d)| d).collect();
                dests.sort_unstable();
                dests.dedup();
                for dst in dests {
                    for server in 0..self.num_servers {
                        if server == dst {
                            continue;
                        }
                        match bfs_shortest_path(&self.graph, server, dst) {
                            Some(path) => {
                                self.next_hop.insert((server, dst), path[1]);
                            }
                            None => {
                                self.next_hop.remove(&(server, dst));
                            }
                        }
                    }
                }
            }
        }
    }

    /// Install rules for pairs that have a live path but no rule (pairs
    /// blackholed earlier in the migration, or newly connected by an add).
    fn fill_missing(&mut self) {
        for server in 0..self.num_servers {
            for dst in 0..self.num_servers {
                if server == dst || self.next_hop.contains_key(&(server, dst)) {
                    continue;
                }
                if let Some(path) = bfs_shortest_path(&self.graph, server, dst) {
                    self.next_hop.insert((server, dst), path[1]);
                }
            }
        }
    }

    /// Materialize the installed rule table as a [`ForwardingPlan`] so the
    /// rdma rule-chain walker ([`ForwardingPlan::walk`]) can judge it.
    /// Only `rules` is populated: mid-migration tables have no meaningful
    /// per-pair relay accounting until the chains are walked.
    pub fn forwarding_plan(&self) -> ForwardingPlan {
        let mut plan = ForwardingPlan::default();
        for (&(server, dst), &nh) in &self.next_hop {
            plan.rules.entry(server).or_default().push(ForwardingRule {
                on_server: server,
                final_dst: dst,
                src: server,
                next_hop: nh,
                next_hop_partition: if nh == dst {
                    NparPartition::Rdma
                } else {
                    NparPartition::Forwarding
                },
            });
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topoopt_graph::topologies;
    use topoopt_rdma::WalkOutcome;

    fn ring_spec(n: usize, perms: &[usize]) -> FabricSpec {
        FabricSpec::shortest_path(topologies::from_permutations(n, perms, 25.0e9))
    }

    #[test]
    fn diff_ops_is_the_multiset_difference() {
        let a = topologies::from_permutations(6, &[1], 25.0e9);
        let b = topologies::from_permutations(6, &[2, 3], 25.0e9);
        let ops = diff_ops(&a, &b);
        let removes = ops.iter().filter(|o| matches!(o, LinkOp::Remove(_))).count();
        let adds = ops.iter().filter(|o| matches!(o, LinkOp::Add(_))).count();
        // +1 ring: 6 links, none shared with the +2/+3 fabric's 6+6 links
        // (the +3 "ring" is bidirectional pairs, still distinct from +1).
        assert_eq!(removes, 6);
        assert_eq!(adds, b.num_edges());
        assert!(diff_ops(&a, &a).is_empty());
    }

    #[test]
    fn remove_with_per_rule_repair_touches_only_broken_rules() {
        // 4-ring 0->1->2->3->0: removing 0->1 breaks exactly the rules on
        // server 0 (all its chains start over 0->1).
        let spec = ring_spec(4, &[1]);
        let mut state = FabricState::from_spec(&spec, 4);
        let rules_before = state.num_rules();
        state.apply(
            LinkOp::Remove(Link { src: 0, dst: 1, capacity_bps: 25.0e9 }),
            RuleRepair::PerRule,
        );
        // Server 0 is now a sink: no outgoing links, so its rules are
        // dropped; every other server's stale rules stay.
        assert_eq!(state.num_rules(), rules_before - 3);
        let plan = state.forwarding_plan();
        assert!(!plan.walk(0, 1).is_delivered());
        // 1 -> 2 never used the removed link: still delivered.
        assert_eq!(plan.walk(1, 2), WalkOutcome::Delivered(vec![1, 2]));
    }

    #[test]
    fn add_fills_rules_for_newly_reachable_pairs() {
        let spec = ring_spec(4, &[1]);
        let mut state = FabricState::from_spec(&spec, 4);
        state.apply(
            LinkOp::Remove(Link { src: 0, dst: 1, capacity_bps: 25.0e9 }),
            RuleRepair::PerRule,
        );
        state
            .apply(LinkOp::Add(Link { src: 0, dst: 2, capacity_bps: 25.0e9 }), RuleRepair::PerRule);
        let plan = state.forwarding_plan();
        assert_eq!(plan.walk(0, 2), WalkOutcome::Delivered(vec![0, 2]));
        assert_eq!(plan.walk(0, 3), WalkOutcome::Delivered(vec![0, 2, 3]));
        // Server 1 lost its only in-link: still unreachable, no fill.
        assert_eq!(plan.walk(0, 1), WalkOutcome::Blackhole(vec![0]));
        // Plugging 3->1 reconnects 1; the freshly filled rule (0,1)->2
        // meets the stale ring rule (3,1)->0 and the chain cycles back to
        // the source — exactly the hazard the hard policies must catch.
        state
            .apply(LinkOp::Add(Link { src: 3, dst: 1, capacity_bps: 25.0e9 }), RuleRepair::PerRule);
        let plan = state.forwarding_plan();
        assert_eq!(plan.walk(0, 1), WalkOutcome::Loop(vec![0, 2, 3, 0]));
    }

    #[test]
    fn per_rule_repair_can_loop_per_destination_cannot() {
        // Chain 1->2->3->0. Add 3->1, remove 3->0 (0 becomes unreachable,
        // rules towards 0 break), then add 1->0. Under per-rule repair the
        // refill installs (3,0)->1 while 1 and 2 still hold stale chain
        // rules (1,0)->2 and (2,0)->3: the chain 2->3->1->2 cycles. A
        // per-destination resync rebuilds every rule towards 0 instead.
        let mut g = Graph::new(4);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 0, 1.0);
        let spec = FabricSpec::shortest_path(g);
        let loops_under = |repair: RuleRepair| {
            let mut state = FabricState::from_spec(&spec, 4);
            state.apply(LinkOp::Add(Link { src: 3, dst: 1, capacity_bps: 1.0 }), repair);
            state.apply(LinkOp::Remove(Link { src: 3, dst: 0, capacity_bps: 1.0 }), repair);
            state.apply(LinkOp::Add(Link { src: 1, dst: 0, capacity_bps: 1.0 }), repair);
            matches!(state.forwarding_plan().walk(2, 0), WalkOutcome::Loop(_))
        };
        assert!(loops_under(RuleRepair::PerRule), "stale+repaired mixture must cycle");
        assert!(!loops_under(RuleRepair::PerDestination), "per-destination resync is loop-free");
    }

    #[test]
    fn sync_with_installs_fresh_target_rules() {
        let spec = ring_spec(5, &[1]);
        let mut state = FabricState::from_spec(&spec, 5);
        for i in 0..5 {
            state.apply(
                LinkOp::Add(Link { src: i, dst: (i + 2) % 5, capacity_bps: 25.0e9 }),
                RuleRepair::PerRule,
            );
        }
        state.sync_with(&Routing::new());
        let plan = state.forwarding_plan();
        // Fresh shortest-path rules: 0 -> 2 uses the new chord directly.
        assert_eq!(plan.walk(0, 2), WalkOutcome::Delivered(vec![0, 2]));
        for s in 0..5 {
            for d in 0..5 {
                assert!(plan.walk(s, d).is_delivered());
            }
        }
    }
}
