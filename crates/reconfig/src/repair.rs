//! Planner-driven fault repair.
//!
//! When transceivers die, the controller faces a migration it never asked
//! for: the patch panel just lost links, while the servers' destination-keyed
//! forwarding rules still encode the healthy wiring. Repairing is exactly a
//! source-to-target migration — source: the healthy fabric with its installed
//! rules; target: the degraded fabric with freshly synced rules — whose link
//! operations are the dead-link unplugs. Driving it through
//! [`MigrationPlanner`] makes repairs respect the same hard policies as any
//! planned migration: every intermediate rule state stays loop-free
//! ([`LoopFreedom`]), and every pair that survives the fault stays
//! deliverable while chains repoint ([`PairReachability`] over
//! [`surviving_pairs`]). Pairs the fault physically severed are *not*
//! protected — no rule shuffle can resurrect a cut fibre; they surface as
//! `DegradedPair` records when the repaired plan is priced (see
//! `topoopt_rdma::ForwardingPlan::repair`).

use crate::planner::{MigrationFallback, MigrationPlan, MigrationProblem};
use crate::policies::{LoopFreedom, PairReachability};
use crate::state::{FabricSpec, Link, RuleRepair};
use crate::strategies::Strategy;
use crate::MigrationPlanner;
use topoopt_graph::paths::bfs_distances;
use topoopt_graph::Graph;

/// The fabric left after `dead` links failed: the healthy graph with one
/// live instance of each dead link removed (a dead link that was not live —
/// an overlapping double fault — is ignored).
pub fn degraded_graph(healthy: &Graph, dead: &[Link]) -> Graph {
    let mut g = healthy.clone();
    for l in dead {
        let id = g
            .edges()
            .find(|(_, e)| {
                e.src == l.src
                    && e.dst == l.dst
                    && e.capacity_bps.to_bits() == l.capacity_bps.to_bits()
            })
            .map(|(id, _)| id);
        if let Some(id) = id {
            g.remove_edge(id);
        }
    }
    g
}

/// The ordered pairs still path-connected on a graph — what a repair can
/// and must keep deliverable.
pub fn surviving_pairs(g: &Graph, num_servers: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for src in 0..num_servers {
        let dist = bfs_distances(g, src);
        for (dst, &d) in dist.iter().enumerate().take(num_servers) {
            if src != dst && d != usize::MAX {
                pairs.push((src, dst));
            }
        }
    }
    pairs
}

/// The fault-repair migration problem: tear the dead links out of the
/// healthy fabric, repairing rules at the given granularity along the way.
/// The target's rules follow shortest paths on the degraded graph — the
/// healthy fabric's explicit routing may depend on links that no longer
/// exist.
pub fn repair_problem(
    healthy: &FabricSpec,
    dead: &[Link],
    num_servers: usize,
    repair: RuleRepair,
) -> MigrationProblem {
    let mut problem = MigrationProblem::new(
        num_servers,
        healthy.clone(),
        FabricSpec::shortest_path(degraded_graph(&healthy.graph, dead)),
    );
    problem.repair = repair;
    problem
}

/// Sequence a dead-link repair with the default safety policies:
/// [`LoopFreedom`] plus [`PairReachability`] over the pairs surviving on
/// the degraded fabric. Returns the planner's explicit
/// [`MigrationFallback`] when no unplug order keeps every intermediate
/// state safe (the caller then falls back to an atomic resync and prices
/// the outage).
pub fn plan_link_repair(
    strategy: Box<dyn Strategy>,
    healthy: &FabricSpec,
    dead: &[Link],
    num_servers: usize,
    repair: RuleRepair,
) -> Result<MigrationPlan, MigrationFallback> {
    let problem = repair_problem(healthy, dead, num_servers, repair);
    let pairs = surviving_pairs(&problem.target.graph, num_servers);
    MigrationPlanner {
        strategy,
        hard: vec![Box::new(LoopFreedom), Box::new(PairReachability::new(pairs))],
        soft: Box::new(crate::policies::MinimizeSteps),
    }
    .plan(&problem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::StepOp;
    use crate::state::LinkOp;
    use crate::strategies::TreeSearch;
    use topoopt_graph::topologies;

    fn bidi_ring(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_bidi_edge(i, (i + 1) % n, 25.0e9);
        }
        g
    }

    #[test]
    fn repair_problem_ops_are_exactly_the_dead_links() {
        let healthy = FabricSpec::shortest_path(bidi_ring(5));
        let dead = vec![
            Link { src: 0, dst: 1, capacity_bps: 25.0e9 },
            Link { src: 3, dst: 2, capacity_bps: 25.0e9 },
        ];
        let problem = repair_problem(&healthy, &dead, 5, RuleRepair::PerDestination);
        let ops = problem.ops();
        assert_eq!(ops.len(), 2);
        assert!(ops.iter().all(|op| matches!(op, LinkOp::Remove(_))));
    }

    #[test]
    fn surviving_pairs_excludes_severed_ones() {
        // Directed 3-ring: losing 0->1 cuts 0 off from everyone (its only
        // egress) and strands 2->1 (whose only path relayed through 0);
        // only the 1->2->0 arc survives.
        let healthy = topologies::from_permutations(3, &[1], 25.0e9);
        let dead = vec![Link { src: 0, dst: 1, capacity_bps: 25.0e9 }];
        let degraded = degraded_graph(&healthy, &dead);
        let pairs = surviving_pairs(&degraded, 3);
        assert_eq!(pairs, vec![(1, 0), (1, 2), (2, 0)]);
    }

    #[test]
    fn per_rule_repair_falls_back_on_loops_per_destination_plans() {
        // Bidirectional 4-ring losing 0->1: under minimal-touch repair the
        // repointed (0,1)->3 meets the stale (3,1)->0 and cycles, so the
        // planner reports the loop instead of emitting an unsafe schedule.
        // The per-destination controller resyncs every rule towards 1 and
        // sequences the same repair cleanly.
        let healthy = FabricSpec::shortest_path(bidi_ring(4));
        let dead = vec![Link { src: 0, dst: 1, capacity_bps: 25.0e9 }];
        let fb = plan_link_repair(
            Box::new(TreeSearch::default()),
            &healthy,
            &dead,
            4,
            RuleRepair::PerRule,
        )
        .expect_err("stale/fresh mixture must violate a hard policy");
        assert!(
            fb.violation.policy == "loop-freedom" || fb.violation.policy == "pair-reachability",
            "unexpected violation: {:?}",
            fb.violation
        );
        let plan = plan_link_repair(
            Box::new(TreeSearch::default()),
            &healthy,
            &dead,
            4,
            RuleRepair::PerDestination,
        )
        .expect("per-destination repair must sequence a single unplug");
        assert_eq!(plan.link_ops(), 1);
        assert!(matches!(plan.steps.last().unwrap().op, StepOp::InstallTargetRules));
    }
}
