//! Safe patch-panel reconfiguration planning.
//!
//! The dynamic-cluster layer historically *teleported* the fabric:
//! between jobs the whole topology swapped atomically after an opaque
//! switch-over delay. A real OCS/patch-panel migration is a sequence of
//! per-link unplug/replug steps, and between steps the destination-keyed
//! forwarding rules of the rdma crate can transiently loop or blackhole
//! traffic. This crate sequences those steps safely — Snowcap's network
//! reconfiguration synthesis transplanted to optical training fabrics —
//! around three swappable traits:
//!
//! * [`Strategy`] searches orderings of the link operations:
//!   [`NaiveOrdered`], [`RandomPermutation`], and
//!   [`TreeSearch`] (DFS with backtracking).
//! * [`HardPolicy`] is the per-state validity oracle: [`LoopFreedom`]
//!   (no rule chain cycles, checked with [`ForwardingPlan::walk`]) and
//!   [`PairReachability`] (job-critical pairs stay deliverable).
//! * [`SoftPolicy`] scores valid states: [`MinimizeSteps`],
//!   [`DisplacedTraffic`], and the fluid-engine [`ThroughputDip`].
//!
//! [`MigrationPlanner`] composes the three. When no valid ordering exists
//! (or the search budget runs out) it reports an explicit
//! [`MigrationFallback`] naming the violated policy, and the caller falls
//! back to the atomic swap.
//!
//! ```rust
//! use topoopt_graph::topologies;
//! use topoopt_reconfig::{FabricSpec, MigrationPlanner, MigrationProblem, TreeSearch};
//!
//! let source = FabricSpec::shortest_path(topologies::from_permutations(8, &[1, 3], 25.0e9));
//! let target = FabricSpec::shortest_path(topologies::from_permutations(8, &[2, 5], 25.0e9));
//! let planner = MigrationPlanner::new(Box::new(TreeSearch::default()));
//! let plan = planner.plan(&MigrationProblem::new(8, source, target)).unwrap();
//! assert!(plan.link_ops() > 0);
//! ```
//!
//! [`ForwardingPlan::walk`]: topoopt_rdma::ForwardingPlan::walk

pub mod planner;
pub mod policies;
pub mod repair;
pub mod state;
pub mod strategies;

pub use planner::{
    evaluate_order, replay, MigrationFallback, MigrationPlan, MigrationProblem, MigrationStep,
    StepOp,
};
pub use policies::{
    DisplacedTraffic, HardPolicy, LoopFreedom, MinimizeSteps, PairReachability, PolicyViolation,
    SoftPolicy, ThroughputDip,
};
pub use repair::{degraded_graph, plan_link_repair, repair_problem, surviving_pairs};
pub use state::{diff_ops, link_multiset, FabricSpec, FabricState, Link, LinkOp, RuleRepair};
pub use strategies::{NaiveOrdered, RandomPermutation, Strategy, TreeSearch};

/// A migration planner: one search strategy, a conjunction of hard
/// policies, and one soft policy ranking valid orderings.
pub struct MigrationPlanner {
    /// The ordering search.
    pub strategy: Box<dyn Strategy>,
    /// Hard policies every intermediate state must satisfy. Defaults to
    /// [`LoopFreedom`] alone.
    pub hard: Vec<Box<dyn HardPolicy>>,
    /// Soft policy scoring valid states. Defaults to [`MinimizeSteps`].
    pub soft: Box<dyn SoftPolicy>,
}

impl MigrationPlanner {
    /// A planner with the given strategy, [`LoopFreedom`] as the hard
    /// policy, and [`MinimizeSteps`] as the soft policy.
    pub fn new(strategy: Box<dyn Strategy>) -> Self {
        MigrationPlanner {
            strategy,
            hard: vec![Box::new(LoopFreedom)],
            soft: Box::new(MinimizeSteps),
        }
    }

    /// Add a hard policy (conjunctive: all must hold at every step).
    pub fn with_hard(mut self, policy: Box<dyn HardPolicy>) -> Self {
        self.hard.push(policy);
        self
    }

    /// Replace the soft policy.
    pub fn with_soft(mut self, policy: Box<dyn SoftPolicy>) -> Self {
        self.soft = policy;
        self
    }

    /// Sequence the migration: a validated plan, or an explicit fallback
    /// naming the hard policy that blocked the search.
    pub fn plan(&self, problem: &MigrationProblem) -> Result<MigrationPlan, MigrationFallback> {
        self.strategy.plan(problem, &self.hard, &*self.soft)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topoopt_graph::topologies;

    fn problem(n: usize, src: &[usize], dst: &[usize]) -> MigrationProblem {
        let source = FabricSpec::shortest_path(topologies::from_permutations(n, src, 25.0e9));
        let target = FabricSpec::shortest_path(topologies::from_permutations(n, dst, 25.0e9));
        MigrationProblem::new(n, source, target)
    }

    fn all_pairs(n: usize) -> Vec<(usize, usize)> {
        (0..n).flat_map(|s| (0..n).map(move |d| (s, d))).filter(|&(s, d)| s != d).collect()
    }

    #[test]
    fn tree_search_sequences_a_ring_swap() {
        let p = problem(8, &[1, 3], &[2, 5]);
        let planner = MigrationPlanner::new(Box::new(TreeSearch::default()))
            .with_hard(Box::new(PairReachability::new(all_pairs(8))));
        let plan = planner.plan(&p).expect("tree search must sequence the swap");
        assert_eq!(plan.strategy, "tree-search");
        assert_eq!(plan.link_ops(), p.ops().len());
        assert!(matches!(plan.steps.last().unwrap().op, StepOp::InstallTargetRules));
        // Independent replay: every emitted state passes the hard policies.
        for (i, state) in replay(&p, &plan).iter().enumerate() {
            let fp = state.forwarding_plan();
            for policy in &planner.hard {
                policy
                    .check(state, &fp)
                    .unwrap_or_else(|v| panic!("step {i} violates {}: {}", v.policy, v.detail));
            }
        }
    }

    #[test]
    fn naive_order_disconnects_and_reports_the_policy() {
        // Tearing down every source link before any add disconnects the
        // fabric; with all-pairs reachability the naive order must fail on
        // disjoint ring sets.
        let p = problem(6, &[1], &[2, 3]);
        let planner = MigrationPlanner::new(Box::new(NaiveOrdered))
            .with_hard(Box::new(PairReachability::new(all_pairs(6))));
        let fb = planner.plan(&p).expect_err("removals-first must break reachability");
        assert_eq!(fb.violation.policy, "pair-reachability");
        assert!(fb.states_checked > 0);
    }

    #[test]
    fn random_permutation_is_seed_deterministic() {
        let p = problem(6, &[1], &[1, 2]);
        let planner = |seed| {
            MigrationPlanner::new(Box::new(RandomPermutation::new(16, seed)))
                .with_hard(Box::new(PairReachability::new(all_pairs(6))))
        };
        let a = planner(11).plan(&p);
        let b = planner(11).plan(&p);
        assert_eq!(a, b, "same seed must yield the identical plan");
    }

    #[test]
    fn empty_migration_is_just_the_rule_install() {
        let p = problem(5, &[1, 2], &[1, 2]);
        let plan = MigrationPlanner::new(Box::new(TreeSearch::default())).plan(&p).unwrap();
        assert_eq!(plan.link_ops(), 0);
        assert_eq!(plan.steps.len(), 1);
    }
}
