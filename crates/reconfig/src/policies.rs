//! Hard and soft migration policies (Snowcap-style).
//!
//! A [`HardPolicy`] is a per-state validity oracle: every intermediate
//! fabric a migration plan visits must satisfy every hard policy, or the
//! ordering is invalid. A [`SoftPolicy`] scores valid states; the planner
//! ranks valid orderings by their peak (then mean) state cost.
//!
//! Both traits judge the *installed rule table* of a [`FabricState`],
//! materialized as a [`ForwardingPlan`] and walked with the rdma
//! rule-chain walker — the same oracle the forwarding-plan property tests
//! use.

use crate::state::FabricState;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use topoopt_graph::traffic::TrafficMatrix;
use topoopt_netsim::fluid::{simulate_flows, FlowSpec};
use topoopt_rdma::{ForwardingPlan, WalkOutcome};

/// A named hard-policy violation: which policy rejected the state and why.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyViolation {
    /// Name of the violated policy (e.g. `loop-freedom`).
    pub policy: String,
    /// Human-readable detail (the offending pair and walk).
    pub detail: String,
}

impl PolicyViolation {
    /// A violation of the named policy.
    pub fn new(policy: &str, detail: String) -> Self {
        PolicyViolation { policy: policy.to_string(), detail }
    }
}

/// Per-state validity oracle: every intermediate fabric of a migration
/// must pass, or the ordering is invalid.
pub trait HardPolicy: Send + Sync {
    /// Stable policy name, reported on violations and fallbacks.
    fn name(&self) -> &'static str;
    /// Judge one mid-migration state (`plan` is `state`'s materialized
    /// rule table, shared across policies to avoid rebuilding it).
    fn check(&self, state: &FabricState, plan: &ForwardingPlan) -> Result<(), PolicyViolation>;
}

/// No rule chain may cycle: a loop forwards packets forever, melting the
/// involved links even when the looping pair carries no demand.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopFreedom;

impl HardPolicy for LoopFreedom {
    fn name(&self) -> &'static str {
        "loop-freedom"
    }

    fn check(&self, state: &FabricState, plan: &ForwardingPlan) -> Result<(), PolicyViolation> {
        let n = state.num_servers();
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                if let WalkOutcome::Loop(path) = plan.walk(src, dst) {
                    return Err(PolicyViolation::new(
                        self.name(),
                        format!("rule chain {src}->{dst} cycles: {path:?}"),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Job-critical pairs must stay deliverable at every step: their rule
/// chains terminate at the destination and every hop crosses a live link.
#[derive(Debug, Clone, Default)]
pub struct PairReachability {
    /// The ordered pairs that must stay reachable.
    pub pairs: Vec<(usize, usize)>,
}

impl PairReachability {
    /// Protect the given ordered pairs.
    pub fn new(pairs: Vec<(usize, usize)>) -> Self {
        PairReachability { pairs }
    }

    /// Protect every ordered pair with non-zero demand in the matrix.
    pub fn from_demand(demand: &TrafficMatrix) -> Self {
        let n = demand.num_nodes();
        let mut pairs = Vec::new();
        for s in 0..n {
            for d in 0..n {
                if s != d && demand.get(s, d) > 0.0 {
                    pairs.push((s, d));
                }
            }
        }
        PairReachability { pairs }
    }
}

impl HardPolicy for PairReachability {
    fn name(&self) -> &'static str {
        "pair-reachability"
    }

    fn check(&self, state: &FabricState, plan: &ForwardingPlan) -> Result<(), PolicyViolation> {
        for &(src, dst) in &self.pairs {
            if src == dst {
                continue;
            }
            match plan.walk(src, dst) {
                WalkOutcome::Delivered(path) => {
                    for hop in path.windows(2) {
                        if !state.graph().has_edge(hop[0], hop[1]) {
                            return Err(PolicyViolation::new(
                                self.name(),
                                format!(
                                    "chain {src}->{dst} crosses unplugged link {}->{}",
                                    hop[0], hop[1]
                                ),
                            ));
                        }
                    }
                }
                WalkOutcome::Blackhole(path) => {
                    return Err(PolicyViolation::new(
                        self.name(),
                        format!("pair {src}->{dst} blackholes at {}", path[path.len() - 1]),
                    ));
                }
                WalkOutcome::Loop(path) => {
                    return Err(PolicyViolation::new(
                        self.name(),
                        format!("pair {src}->{dst} loops: {path:?}"),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Scores one valid mid-migration state; the planner ranks orderings by
/// peak (then mean) state cost. Lower is better.
pub trait SoftPolicy: Send + Sync {
    /// Stable policy name, reported in plans.
    fn name(&self) -> &'static str;
    /// Cost of one valid state.
    fn state_cost(&self, state: &FabricState, plan: &ForwardingPlan) -> f64;
}

/// Every state costs 1: total cost counts migration steps, so shorter
/// schedules win. The cheapest useful default.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinimizeSteps;

impl SoftPolicy for MinimizeSteps {
    fn name(&self) -> &'static str {
        "minimize-steps"
    }

    fn state_cost(&self, _state: &FabricState, _plan: &ForwardingPlan) -> f64 {
        1.0
    }
}

/// Fraction of demand pairs whose traffic is displaced from its
/// source-fabric path (rerouted over different links, or not deliverable
/// at all). Cheap: pure rule walks, no fluid simulation.
#[derive(Debug, Clone)]
pub struct DisplacedTraffic {
    pairs: Vec<(usize, usize)>,
    baseline: BTreeMap<(usize, usize), Vec<usize>>,
}

impl DisplacedTraffic {
    /// Track the demand pairs against their paths in `source_plan`.
    pub fn new(pairs: Vec<(usize, usize)>, source_plan: &ForwardingPlan) -> Self {
        let baseline = pairs
            .iter()
            .filter(|&&(s, d)| s != d)
            .filter_map(|&(s, d)| match source_plan.walk(s, d) {
                WalkOutcome::Delivered(path) => Some(((s, d), path)),
                _ => None,
            })
            .collect();
        DisplacedTraffic { pairs, baseline }
    }
}

impl SoftPolicy for DisplacedTraffic {
    fn name(&self) -> &'static str {
        "displaced-traffic"
    }

    fn state_cost(&self, _state: &FabricState, plan: &ForwardingPlan) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        let displaced = self
            .pairs
            .iter()
            .filter(|&&(s, d)| s != d)
            .filter(|&&(s, d)| match plan.walk(s, d) {
                WalkOutcome::Delivered(path) => self.baseline.get(&(s, d)) != Some(&path),
                _ => true,
            })
            .count();
        displaced as f64 / self.pairs.len() as f64
    }
}

/// Transient throughput dip relative to the source fabric, evaluated with
/// the fluid engine: probe the demand matrix along each state's actual
/// rule-walk paths (undeliverable pairs contribute nothing) and compare
/// goodput — delivered bytes over makespan — against the source fabric's.
/// `0.0` = no dip, `1.0` = fabric fully dark. The atomic swap scores a
/// dip of `1.0` by definition: while the whole fabric rewires, nothing is
/// deliverable.
#[derive(Debug, Clone)]
pub struct ThroughputDip {
    probe: TrafficMatrix,
    per_hop_latency_s: f64,
    relay_efficiency: f64,
    baseline_goodput: f64,
}

impl ThroughputDip {
    /// Probe with `probe` demand; the baseline goodput is measured on
    /// `source` (the migration's start state).
    pub fn new(
        probe: TrafficMatrix,
        per_hop_latency_s: f64,
        relay_efficiency: f64,
        source: &FabricState,
    ) -> Self {
        let mut dip =
            ThroughputDip { probe, per_hop_latency_s, relay_efficiency, baseline_goodput: 0.0 };
        dip.baseline_goodput = dip.goodput(source, &source.forwarding_plan());
        dip
    }

    /// Goodput of one state under the probe demand: bytes delivered along
    /// the rule walks, divided by the fluid-simulated makespan.
    pub fn goodput(&self, state: &FabricState, plan: &ForwardingPlan) -> f64 {
        let n = state.num_servers().min(self.probe.num_nodes());
        let mut flows = Vec::new();
        let mut delivered = 0.0;
        for src in 0..n {
            for dst in 0..n {
                let bytes = self.probe.get(src, dst);
                if src == dst || bytes <= 0.0 {
                    continue;
                }
                if let WalkOutcome::Delivered(path) = plan.walk(src, dst) {
                    let relays = path.len().saturating_sub(2);
                    let factor = self.relay_efficiency.powi(relays as i32);
                    flows.push(FlowSpec::new(path, bytes).with_relay_factor(factor));
                    delivered += bytes;
                }
            }
        }
        if flows.is_empty() {
            return 0.0;
        }
        let result = simulate_flows(state.graph(), &flows, self.per_hop_latency_s);
        if result.makespan_s <= 0.0 {
            return 0.0;
        }
        delivered / result.makespan_s
    }
}

impl SoftPolicy for ThroughputDip {
    fn name(&self) -> &'static str {
        "throughput-dip"
    }

    fn state_cost(&self, state: &FabricState, plan: &ForwardingPlan) -> f64 {
        if self.baseline_goodput <= 0.0 {
            return 0.0;
        }
        (1.0 - self.goodput(state, plan) / self.baseline_goodput).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{FabricSpec, Link, LinkOp, RuleRepair};
    use topoopt_graph::topologies;

    fn ring_state(n: usize) -> FabricState {
        let spec = FabricSpec::shortest_path(topologies::from_permutations(n, &[1], 25.0e9));
        FabricState::from_spec(&spec, n)
    }

    #[test]
    fn fresh_states_pass_both_hard_policies() {
        let state = ring_state(5);
        let plan = state.forwarding_plan();
        assert!(LoopFreedom.check(&state, &plan).is_ok());
        let all: Vec<(usize, usize)> =
            (0..5).flat_map(|s| (0..5).map(move |d| (s, d))).filter(|&(s, d)| s != d).collect();
        assert!(PairReachability::new(all).check(&state, &plan).is_ok());
    }

    #[test]
    fn reachability_names_the_blackholed_pair() {
        let mut state = ring_state(4);
        state.apply(
            LinkOp::Remove(Link { src: 0, dst: 1, capacity_bps: 25.0e9 }),
            RuleRepair::PerRule,
        );
        let plan = state.forwarding_plan();
        let err = PairReachability::new(vec![(0, 1)]).check(&state, &plan).unwrap_err();
        assert_eq!(err.policy, "pair-reachability");
        assert!(err.detail.contains("0->1"), "detail should name the pair: {}", err.detail);
        // Loop-freedom alone tolerates the blackhole (nothing cycles).
        assert!(LoopFreedom.check(&state, &plan).is_ok());
    }

    #[test]
    fn loop_freedom_names_the_cycling_chain() {
        let mut state = ring_state(4);
        state.apply(
            LinkOp::Remove(Link { src: 0, dst: 1, capacity_bps: 25.0e9 }),
            RuleRepair::PerRule,
        );
        state
            .apply(LinkOp::Add(Link { src: 0, dst: 2, capacity_bps: 25.0e9 }), RuleRepair::PerRule);
        state
            .apply(LinkOp::Add(Link { src: 3, dst: 1, capacity_bps: 25.0e9 }), RuleRepair::PerRule);
        let plan = state.forwarding_plan();
        let err = LoopFreedom.check(&state, &plan).unwrap_err();
        assert_eq!(err.policy, "loop-freedom");
        assert!(err.detail.contains("cycles"));
    }

    #[test]
    fn displaced_traffic_counts_rerouted_pairs() {
        let state = ring_state(4);
        let source_plan = state.forwarding_plan();
        let pairs = vec![(0, 1), (1, 2), (0, 2)];
        let soft = DisplacedTraffic::new(pairs, &source_plan);
        // On the unmodified source state nothing is displaced.
        assert_eq!(soft.state_cost(&state, &source_plan), 0.0);
        // Remove 0->1: (0,1) undeliverable, (0,2) was routed 0->1->2.
        let mut moved = state.clone();
        moved.apply(
            LinkOp::Remove(Link { src: 0, dst: 1, capacity_bps: 25.0e9 }),
            RuleRepair::PerRule,
        );
        let plan = moved.forwarding_plan();
        let cost = soft.state_cost(&moved, &plan);
        assert!((cost - 2.0 / 3.0).abs() < 1e-12, "got {cost}");
    }

    #[test]
    fn throughput_dip_is_zero_at_source_and_one_when_dark() {
        let state = ring_state(4);
        let mut probe = TrafficMatrix::new(4);
        for i in 0..4 {
            probe.set(i, (i + 1) % 4, 1.0e9);
        }
        let soft = ThroughputDip::new(probe, 0.0, 1.0, &state);
        let plan = state.forwarding_plan();
        assert!(soft.state_cost(&state, &plan) < 1e-9);
        // Remove every link: nothing deliverable, dip = 1.
        let mut dark = state.clone();
        for i in 0..4 {
            dark.apply(
                LinkOp::Remove(Link { src: i, dst: (i + 1) % 4, capacity_bps: 25.0e9 }),
                RuleRepair::PerRule,
            );
        }
        let dark_plan = dark.forwarding_plan();
        assert_eq!(soft.state_cost(&dark, &dark_plan), 1.0);
    }
}
