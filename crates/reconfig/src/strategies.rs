//! Search strategies over migration-step orderings (Snowcap-style).
//!
//! A [`Strategy`] searches the permutation space of the problem's link
//! operations for an ordering whose every intermediate state passes the
//! hard policies. Three are provided, in increasing sophistication:
//!
//! * [`NaiveOrdered`] — the canonical removals-then-additions order,
//!   unmodified. Fails on most real migrations (tearing the source down
//!   first disconnects job-critical pairs) but is the honest baseline.
//! * [`RandomPermutation`] — sample N seeded random orderings, keep the
//!   valid one with the lowest (peak, mean) soft cost. Attempts are
//!   evaluated with rayon and merged order-stably, so the result is
//!   deterministic for a given seed regardless of thread count.
//! * [`TreeSearch`] — depth-first search with backtracking: grow the
//!   ordering one validated step at a time (additions preferred, so the
//!   target is built before the source is torn down), backtrack when every
//!   remaining operation violates a hard policy, and give up only when the
//!   state budget is exhausted.

use crate::planner::{
    add_infeasible, check_state, evaluate_order, MigrationFallback, MigrationPlan, MigrationProblem,
};
use crate::policies::{HardPolicy, PolicyViolation, SoftPolicy};
use crate::state::{FabricState, LinkOp};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

/// A search strategy over migration-step orderings.
pub trait Strategy: Send + Sync {
    /// Stable strategy name, recorded on emitted plans.
    fn name(&self) -> &'static str;
    /// Search for a valid ordering of the problem's link operations.
    fn plan(
        &self,
        problem: &MigrationProblem,
        hard: &[Box<dyn HardPolicy>],
        soft: &dyn SoftPolicy,
    ) -> Result<MigrationPlan, MigrationFallback>;
}

/// The canonical removals-then-additions order, evaluated as-is.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveOrdered;

impl Strategy for NaiveOrdered {
    fn name(&self) -> &'static str {
        "naive-ordered"
    }

    fn plan(
        &self,
        problem: &MigrationProblem,
        hard: &[Box<dyn HardPolicy>],
        soft: &dyn SoftPolicy,
    ) -> Result<MigrationPlan, MigrationFallback> {
        match evaluate_order(problem, &problem.ops(), hard, soft) {
            Ok(mut plan) => {
                plan.strategy = self.name().to_string();
                Ok(plan)
            }
            Err((violation, states_checked)) => {
                Err(MigrationFallback { violation, states_checked })
            }
        }
    }
}

/// Sample seeded random orderings; keep the best valid one by
/// `(peak_cost, mean_cost)`.
#[derive(Debug, Clone, Copy)]
pub struct RandomPermutation {
    /// Number of orderings to sample.
    pub attempts: usize,
    /// RNG seed; the same seed always yields the same plan.
    pub seed: u64,
}

impl RandomPermutation {
    /// Sample `attempts` orderings from the given seed.
    pub fn new(attempts: usize, seed: u64) -> Self {
        RandomPermutation { attempts, seed }
    }
}

impl Strategy for RandomPermutation {
    fn name(&self) -> &'static str {
        "random-permutation"
    }

    fn plan(
        &self,
        problem: &MigrationProblem,
        hard: &[Box<dyn HardPolicy>],
        soft: &dyn SoftPolicy,
    ) -> Result<MigrationPlan, MigrationFallback> {
        let base = problem.ops();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let orders: Vec<Vec<LinkOp>> = (0..self.attempts.max(1))
            .map(|_| {
                let mut order = base.clone();
                order.shuffle(&mut rng);
                order
            })
            .collect();
        // Evaluate attempts in parallel; the collect is order-stable, so
        // the arg-min below is deterministic under any thread count.
        let evals: Vec<Result<MigrationPlan, (PolicyViolation, usize)>> =
            orders.par_iter().map(|o| evaluate_order(problem, o, hard, soft)).collect();
        let states_checked: usize = evals
            .iter()
            .map(|e| match e {
                Ok(p) => p.states_checked,
                Err((_, c)) => *c,
            })
            .sum();
        let mut best: Option<MigrationPlan> = None;
        let mut deepest: Option<(usize, PolicyViolation)> = None;
        for eval in evals {
            match eval {
                Ok(plan) => {
                    let better = match &best {
                        None => true,
                        Some(b) => (plan.peak_cost, plan.mean_cost) < (b.peak_cost, b.mean_cost),
                    };
                    if better {
                        best = Some(plan);
                    }
                }
                Err((violation, depth)) => {
                    if deepest.as_ref().is_none_or(|(d, _)| depth > *d) {
                        deepest = Some((depth, violation));
                    }
                }
            }
        }
        match best {
            Some(mut plan) => {
                plan.strategy = self.name().to_string();
                plan.states_checked = states_checked;
                Ok(plan)
            }
            None => {
                let (_, violation) = deepest.expect("at least one attempt was evaluated");
                Err(MigrationFallback { violation, states_checked })
            }
        }
    }
}

/// Depth-first search with backtracking over step orderings.
#[derive(Debug, Clone, Copy)]
pub struct TreeSearch {
    /// Maximum number of intermediate states to validate before falling
    /// back to atomic.
    pub max_states: usize,
}

impl Default for TreeSearch {
    fn default() -> Self {
        TreeSearch { max_states: 20_000 }
    }
}

struct Dfs<'a> {
    problem: &'a MigrationProblem,
    hard: &'a [Box<dyn HardPolicy>],
    ops: Vec<LinkOp>,
    /// Candidate indices in preference order: additions first (build the
    /// target while the source still carries traffic), then removals.
    priority: Vec<usize>,
    taken: Vec<bool>,
    order: Vec<LinkOp>,
    checked: usize,
    max_states: usize,
    exhausted: bool,
    deepest: Option<(usize, PolicyViolation)>,
}

impl Dfs<'_> {
    fn record(&mut self, violation: PolicyViolation) {
        let depth = self.order.len();
        if self.deepest.as_ref().is_none_or(|(d, _)| depth >= *d) {
            self.deepest = Some((depth, violation));
        }
    }

    fn search(&mut self, state: &FabricState) -> bool {
        if self.order.len() == self.ops.len() {
            return true;
        }
        for pi in 0..self.priority.len() {
            let i = self.priority[pi];
            if self.taken[i] {
                continue;
            }
            if self.checked >= self.max_states {
                self.exhausted = true;
                return false;
            }
            let op = self.ops[i];
            if let LinkOp::Add(l) = &op {
                if add_infeasible(self.problem, state, l) {
                    self.record(PolicyViolation::new(
                        "interface-capacity",
                        format!(
                            "adding {}->{} exceeds degree {}",
                            l.src,
                            l.dst,
                            self.problem.max_degree.unwrap_or(0)
                        ),
                    ));
                    continue;
                }
            }
            let mut next = state.clone();
            next.apply(op, self.problem.repair);
            self.checked += 1;
            match check_state(&next, self.hard) {
                Ok(_) => {
                    self.taken[i] = true;
                    self.order.push(op);
                    if self.search(&next) {
                        return true;
                    }
                    self.order.pop();
                    self.taken[i] = false;
                }
                Err(v) => self.record(v),
            }
        }
        false
    }
}

impl Strategy for TreeSearch {
    fn name(&self) -> &'static str {
        "tree-search"
    }

    fn plan(
        &self,
        problem: &MigrationProblem,
        hard: &[Box<dyn HardPolicy>],
        soft: &dyn SoftPolicy,
    ) -> Result<MigrationPlan, MigrationFallback> {
        let ops = problem.ops();
        let mut priority: Vec<usize> =
            (0..ops.len()).filter(|&i| matches!(ops[i], LinkOp::Add(_))).collect();
        priority.extend((0..ops.len()).filter(|&i| matches!(ops[i], LinkOp::Remove(_))));
        let start = FabricState::from_spec(&problem.source, problem.num_servers);
        let mut dfs = Dfs {
            problem,
            hard,
            taken: vec![false; ops.len()],
            priority,
            ops,
            order: Vec::new(),
            checked: 1,
            max_states: self.max_states.max(1),
            exhausted: false,
            deepest: None,
        };
        if let Err(v) = check_state(&start, hard) {
            return Err(MigrationFallback {
                violation: PolicyViolation::new(
                    &v.policy,
                    format!("source state invalid: {}", v.detail),
                ),
                states_checked: 1,
            });
        }
        if dfs.search(&start) {
            let order = dfs.order.clone();
            match evaluate_order(problem, &order, hard, soft) {
                Ok(mut plan) => {
                    plan.strategy = self.name().to_string();
                    plan.states_checked += dfs.checked;
                    Ok(plan)
                }
                // Only reachable when the *final* target state violates a
                // policy (the DFS validated every step it took).
                Err((violation, states)) => {
                    Err(MigrationFallback { violation, states_checked: dfs.checked + states })
                }
            }
        } else {
            let violation = match (&dfs.deepest, dfs.exhausted) {
                (Some((depth, v)), true) => PolicyViolation::new(
                    "search-budget",
                    format!(
                        "exhausted {} states; deepest violation at depth {depth}: [{}] {}",
                        dfs.checked, v.policy, v.detail
                    ),
                ),
                (Some((depth, v)), false) => PolicyViolation::new(
                    &v.policy,
                    format!("no valid ordering; deepest violation at depth {depth}: {}", v.detail),
                ),
                (None, _) => PolicyViolation::new(
                    "search-budget",
                    format!("exhausted {} states before any violation", dfs.checked),
                ),
            };
            Err(MigrationFallback { violation, states_checked: dfs.checked })
        }
    }
}
