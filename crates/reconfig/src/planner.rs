//! The migration problem, plans, and the shared order evaluator.

use crate::policies::{HardPolicy, PolicyViolation, SoftPolicy};
use crate::state::{diff_ops, link_multiset, FabricSpec, FabricState, Link, LinkOp, RuleRepair};
use serde::{Deserialize, Serialize};
use topoopt_rdma::ForwardingPlan;

/// A source-to-target patch-panel migration to sequence.
#[derive(Debug, Clone)]
pub struct MigrationProblem {
    /// Number of servers (nodes of both fabrics).
    pub num_servers: usize,
    /// The fabric being torn down.
    pub source: FabricSpec,
    /// The fabric being built up.
    pub target: FabricSpec,
    /// Per-server interface budget: an add is infeasible while either
    /// endpoint is at this out/in degree (no free patch-panel port). With
    /// `None`, links can overlap freely mid-migration.
    pub max_degree: Option<usize>,
    /// Rule-repair granularity of the controller (see [`RuleRepair`]).
    pub repair: RuleRepair,
}

impl MigrationProblem {
    /// A problem with no interface budget and per-destination repair (the
    /// loop-free-by-construction controller mode; set
    /// [`RuleRepair::PerRule`] to model a minimal-touch controller whose
    /// stale/fresh rule mixtures can transiently loop).
    pub fn new(num_servers: usize, source: FabricSpec, target: FabricSpec) -> Self {
        MigrationProblem {
            num_servers,
            source,
            target,
            max_degree: None,
            repair: RuleRepair::PerDestination,
        }
    }

    /// The unordered link operations of the migration (source/target
    /// multiset difference) in the canonical removals-then-additions order.
    pub fn ops(&self) -> Vec<LinkOp> {
        diff_ops(&self.source.graph, &self.target.graph)
    }
}

/// One emitted migration step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StepOp {
    /// Unplug one link (broken rules are repaired at the problem's
    /// [`RuleRepair`] granularity).
    RemoveLink(Link),
    /// Plug one link (rules are filled for newly reachable pairs).
    AddLink(Link),
    /// Install the target fabric's full forwarding plan — always the final
    /// step, once the link multiset equals the target's.
    InstallTargetRules,
}

impl From<LinkOp> for StepOp {
    fn from(op: LinkOp) -> Self {
        match op {
            LinkOp::Remove(l) => StepOp::RemoveLink(l),
            LinkOp::Add(l) => StepOp::AddLink(l),
        }
    }
}

/// One step of a migration plan with the soft-policy cost of the fabric
/// state it leaves behind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationStep {
    /// The operation.
    pub op: StepOp,
    /// Soft-policy cost of the state after this step.
    pub cost: f64,
}

/// A validated migration plan: every state after every step satisfies all
/// hard policies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// Name of the strategy that found the ordering.
    pub strategy: String,
    /// The ordered steps (link operations plus the final rule install).
    pub steps: Vec<MigrationStep>,
    /// Peak soft-policy cost over all intermediate states.
    pub peak_cost: f64,
    /// Mean soft-policy cost over all intermediate states.
    pub mean_cost: f64,
    /// Number of intermediate states validated against the hard policies
    /// while searching (including rejected candidates).
    pub states_checked: usize,
}

impl MigrationPlan {
    /// Number of link operations (excluding the final rule install).
    pub fn link_ops(&self) -> usize {
        self.steps.iter().filter(|s| !matches!(s.op, StepOp::InstallTargetRules)).count()
    }
}

/// The planner could not sequence the migration safely: fall back to the
/// atomic swap, reporting the hard policy that blocked the search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationFallback {
    /// The violation that blocked the deepest search state (for exhausted
    /// budgets, the policy is `search-budget` and the detail names the
    /// deepest real violation).
    pub violation: PolicyViolation,
    /// Number of intermediate states validated before giving up.
    pub states_checked: usize,
}

/// Materialize a state's rule table once and run every hard policy on it.
pub(crate) fn check_state(
    state: &FabricState,
    hard: &[Box<dyn HardPolicy>],
) -> Result<ForwardingPlan, PolicyViolation> {
    let plan = state.forwarding_plan();
    for policy in hard {
        policy.check(state, &plan)?;
    }
    Ok(plan)
}

/// True when adding `l` would exceed the problem's interface budget.
pub(crate) fn add_infeasible(problem: &MigrationProblem, state: &FabricState, l: &Link) -> bool {
    match problem.max_degree {
        Some(d) => state.graph().out_degree(l.src) >= d || state.graph().in_degree(l.dst) >= d,
        None => false,
    }
}

/// Evaluate one complete ordering of the problem's link operations: apply
/// each op, validate every resulting state against the hard policies, score
/// it with the soft policy, and finish with the target rule install. On
/// violation returns the violation and how many states were checked first.
pub fn evaluate_order(
    problem: &MigrationProblem,
    order: &[LinkOp],
    hard: &[Box<dyn HardPolicy>],
    soft: &dyn SoftPolicy,
) -> Result<MigrationPlan, (PolicyViolation, usize)> {
    let mut state = FabricState::from_spec(&problem.source, problem.num_servers);
    let mut checked = 0usize;
    checked += 1;
    if let Err(v) = check_state(&state, hard) {
        return Err((
            PolicyViolation::new(&v.policy, format!("source state invalid: {}", v.detail)),
            checked,
        ));
    }
    let mut steps = Vec::with_capacity(order.len() + 1);
    for (idx, op) in order.iter().enumerate() {
        if let LinkOp::Add(l) = op {
            if add_infeasible(problem, &state, l) {
                return Err((
                    PolicyViolation::new(
                        "interface-capacity",
                        format!(
                            "step {idx}: adding {}->{} exceeds degree {}",
                            l.src,
                            l.dst,
                            problem.max_degree.unwrap_or(0)
                        ),
                    ),
                    checked,
                ));
            }
        }
        state.apply(*op, problem.repair);
        checked += 1;
        match check_state(&state, hard) {
            Ok(plan) => {
                steps.push(MigrationStep { op: (*op).into(), cost: soft.state_cost(&state, &plan) })
            }
            Err(v) => {
                return Err((
                    PolicyViolation::new(&v.policy, format!("after step {idx}: {}", v.detail)),
                    checked,
                ))
            }
        }
    }
    debug_assert_eq!(
        link_multiset(state.graph()),
        link_multiset(&problem.target.graph),
        "a complete ordering must land on the target link multiset"
    );
    state.sync_with(&problem.target.routing);
    checked += 1;
    match check_state(&state, hard) {
        Ok(plan) => steps.push(MigrationStep {
            op: StepOp::InstallTargetRules,
            cost: soft.state_cost(&state, &plan),
        }),
        Err(v) => {
            return Err((
                PolicyViolation::new(&v.policy, format!("target state invalid: {}", v.detail)),
                checked,
            ))
        }
    }
    let peak = steps.iter().map(|s| s.cost).fold(0.0f64, f64::max);
    let mean = steps.iter().map(|s| s.cost).sum::<f64>() / steps.len().max(1) as f64;
    Ok(MigrationPlan {
        strategy: String::new(),
        steps,
        peak_cost: peak,
        mean_cost: mean,
        states_checked: checked,
    })
}

/// Re-execute a plan's steps and return the fabric state after each one —
/// the independent verification hook the property tests use (the states
/// come from [`FabricState`] semantics, not from the search).
pub fn replay(problem: &MigrationProblem, plan: &MigrationPlan) -> Vec<FabricState> {
    let mut state = FabricState::from_spec(&problem.source, problem.num_servers);
    let mut states = Vec::with_capacity(plan.steps.len());
    for step in &plan.steps {
        match &step.op {
            StepOp::RemoveLink(l) => state.apply(LinkOp::Remove(*l), problem.repair),
            StepOp::AddLink(l) => state.apply(LinkOp::Add(*l), problem.repair),
            StepOp::InstallTargetRules => state.sync_with(&problem.target.routing),
        }
        states.push(state.clone());
    }
    states
}
