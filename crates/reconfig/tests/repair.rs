//! Property tests of planner-driven fault repair: on random connected
//! fabrics, kill EVERY live link in turn and demand that the
//! per-destination repair plans — and that each replayed intermediate
//! state keeps every surviving pair deliverable over live links with no
//! rule chain looping anywhere. Verified by independently replaying the
//! steps and walking the materialized rules, not by trusting the search.

use proptest::prelude::*;
use topoopt_graph::{topologies, Graph};
use topoopt_rdma::WalkOutcome;
use topoopt_reconfig::{
    plan_link_repair, repair_problem, replay, surviving_pairs, FabricSpec, Link, RuleRepair,
    TreeSearch,
};

/// A random strongly connected fabric: a +1 ring for connectivity plus
/// random ring permutations and chords.
fn fabric(n: usize, strides: &[usize], chords: &[(usize, usize)]) -> Graph {
    let mut ps: Vec<usize> = vec![1];
    ps.extend(strides.iter().map(|s| 1 + s % (n - 1)));
    ps.sort_unstable();
    ps.dedup();
    let mut g = topologies::from_permutations(n, &ps, 25.0e9);
    for &(a, b) in chords {
        let (a, b) = (a % n, b % n);
        if a != b {
            g.add_edge(a, b, 25.0e9);
        }
    }
    g
}

proptest! {
    // Satellite property: planner-driven repairs keep every surviving
    // pair reachable and loop-free under ANY single link failure. A
    // per-destination controller resyncs whole destination chains, so a
    // one-link casualty always admits a safe schedule — a fallback here
    // is a bug, not an unlucky fabric.
    #[test]
    fn any_single_link_failure_repairs_safely(
        n in 4usize..8,
        strides in proptest::collection::vec(0usize..16, 0usize..2),
        chords in proptest::collection::vec((0usize..64, 0usize..64), 0usize..4),
    ) {
        let healthy = FabricSpec::shortest_path(fabric(n, &strides, &chords));
        let casualties: Vec<Link> = healthy
            .graph
            .edges()
            .map(|(_, e)| Link { src: e.src, dst: e.dst, capacity_bps: e.capacity_bps })
            .collect();
        for &casualty in &casualties {
            let dead = [casualty];
            let problem = repair_problem(&healthy, &dead, n, RuleRepair::PerDestination);
            let survivors = surviving_pairs(&problem.target.graph, n);
            let plan = plan_link_repair(
                Box::new(TreeSearch::default()),
                &healthy,
                &dead,
                n,
                RuleRepair::PerDestination,
            )
            .unwrap_or_else(|fb| {
                panic!(
                    "per-destination repair of single dead link {}->{} must plan: {:?}",
                    casualty.src, casualty.dst, fb.violation
                )
            });
            for (i, state) in replay(&problem, &plan).iter().enumerate() {
                let fp = state.forwarding_plan();
                for s in 0..n {
                    for d in 0..n {
                        if s == d {
                            continue;
                        }
                        match fp.walk(s, d) {
                            WalkOutcome::Loop(path) => panic!(
                                "step {i} (dead {}->{}): chain {s}->{d} loops {path:?}",
                                casualty.src, casualty.dst
                            ),
                            WalkOutcome::Delivered(path) => {
                                for hop in path.windows(2) {
                                    prop_assert!(
                                        state.graph().has_edge(hop[0], hop[1]),
                                        "step {i}: chain {s}->{d} crosses dead link {}->{}",
                                        hop[0],
                                        hop[1]
                                    );
                                }
                            }
                            // Only pairs the fault physically severed may
                            // blackhole; survivors must stay deliverable.
                            WalkOutcome::Blackhole(path) => prop_assert!(
                                !survivors.contains(&(s, d)),
                                "step {i} (dead {}->{}): surviving pair {s}->{d} blackholes at {}",
                                casualty.src,
                                casualty.dst,
                                path[path.len() - 1]
                            ),
                        }
                    }
                }
            }
        }
    }
}
