//! Property tests of the migration planner: on random connected
//! source/target fabric pairs, every intermediate fabric a plan emits must
//! be loop-free and keep the demand pairs reachable — verified by
//! independently replaying the steps through [`FabricState`] and walking
//! the materialized rules with the shared rdma oracle, not by trusting the
//! search. Plus determinism: the same seed always yields the same plan
//! (random-permutation attempts are evaluated with rayon and merged
//! order-stably, so thread count cannot change the result).

use proptest::prelude::*;
use topoopt_graph::{topologies, Graph};
use topoopt_rdma::WalkOutcome;
use topoopt_reconfig::{
    replay, FabricSpec, LoopFreedom, MigrationPlanner, MigrationProblem, PairReachability,
    RandomPermutation, RuleRepair, StepOp, TreeSearch,
};

/// A random strongly connected fabric: a +1 ring for connectivity plus
/// random ring permutations and chords.
fn fabric(n: usize, strides: &[usize], chords: &[(usize, usize)]) -> Graph {
    let mut ps: Vec<usize> = vec![1];
    ps.extend(strides.iter().map(|s| 1 + s % (n - 1)));
    ps.sort_unstable();
    ps.dedup();
    let mut g = topologies::from_permutations(n, &ps, 25.0e9);
    for &(a, b) in chords {
        let (a, b) = (a % n, b % n);
        if a != b {
            g.add_edge(a, b, 25.0e9);
        }
    }
    g
}

fn all_pairs(n: usize) -> Vec<(usize, usize)> {
    (0..n).flat_map(|s| (0..n).map(move |d| (s, d))).filter(|&(s, d)| s != d).collect()
}

/// Replay the plan and assert every emitted state passes loop-freedom and
/// reachability of `pairs`, with every delivered walk crossing live links.
fn assert_states_safe(problem: &MigrationProblem, plan: &topoopt_reconfig::MigrationPlan) {
    let pairs = all_pairs(problem.num_servers);
    let states = replay(problem, plan);
    assert_eq!(states.len(), plan.steps.len());
    for (i, state) in states.iter().enumerate() {
        let fp = state.forwarding_plan();
        for &(s, d) in &pairs {
            match fp.walk(s, d) {
                WalkOutcome::Loop(path) => {
                    panic!("step {i}: chain {s}->{d} loops {path:?} (op {:?})", plan.steps[i].op)
                }
                WalkOutcome::Delivered(path) => {
                    for hop in path.windows(2) {
                        assert!(
                            state.graph().has_edge(hop[0], hop[1]),
                            "step {i}: chain {s}->{d} crosses unplugged link {}->{}",
                            hop[0],
                            hop[1]
                        );
                    }
                }
                WalkOutcome::Blackhole(path) => {
                    panic!("step {i}: pair {s}->{d} blackholes at {}", path[path.len() - 1])
                }
            }
        }
    }
    // The last state is the target fabric with its own rules installed.
    assert!(matches!(plan.steps.last().unwrap().op, StepOp::InstallTargetRules));
}

fn planner_with_reachability(
    n: usize,
    strategy: Box<dyn topoopt_reconfig::Strategy>,
) -> MigrationPlanner {
    MigrationPlanner::new(strategy).with_hard(Box::new(PairReachability::new(all_pairs(n))))
}

proptest! {
    // Per-destination repair, no interface budget: tree search must
    // sequence EVERY random connected pair safely (additions-first keeps
    // the source intact while the target builds up), and each emitted
    // intermediate state must hold up under independent replay.
    #[test]
    fn tree_search_keeps_every_intermediate_state_safe(
        n in 4usize..9,
        src_strides in proptest::collection::vec(0usize..16, 0usize..2),
        dst_strides in proptest::collection::vec(0usize..16, 0usize..2),
        chords in proptest::collection::vec((0usize..64, 0usize..64), 0usize..6),
    ) {
        let source = FabricSpec::shortest_path(fabric(n, &src_strides, &[]));
        let target = FabricSpec::shortest_path(fabric(n, &dst_strides, &chords));
        let problem = MigrationProblem::new(n, source, target);
        let planner = planner_with_reachability(n, Box::new(TreeSearch::default()));
        let plan = planner.plan(&problem).unwrap_or_else(|fb| {
            panic!("tree search must sequence an uncapped migration: {:?}", fb.violation)
        });
        prop_assert_eq!(plan.link_ops(), problem.ops().len());
        assert_states_safe(&problem, &plan);
    }

    // Minimal-touch (per-rule) repair can make orderings transiently loop;
    // the planner must then either find a safe ordering (verified by
    // replay) or fall back naming the violated policy.
    #[test]
    fn per_rule_repair_plans_are_safe_or_fallback_names_the_policy(
        n in 4usize..8,
        src_strides in proptest::collection::vec(0usize..16, 0usize..2),
        dst_strides in proptest::collection::vec(0usize..16, 0usize..2),
    ) {
        let source = FabricSpec::shortest_path(fabric(n, &src_strides, &[]));
        let target = FabricSpec::shortest_path(fabric(n, &dst_strides, &[]));
        let mut problem = MigrationProblem::new(n, source, target);
        problem.repair = RuleRepair::PerRule;
        let planner = planner_with_reachability(n, Box::new(TreeSearch { max_states: 3_000 }));
        match planner.plan(&problem) {
            Ok(plan) => assert_states_safe(&problem, &plan),
            Err(fb) => {
                prop_assert!(
                    ["loop-freedom", "pair-reachability", "search-budget"]
                        .contains(&fb.violation.policy.as_str()),
                    "fallback must name the blocking policy, got {:?}", fb.violation
                );
                prop_assert!(fb.states_checked > 0);
            }
        }
    }

    // Determinism: the same problem and seed yield byte-identical plans,
    // for both the seeded random strategy and the deterministic DFS.
    #[test]
    fn plans_are_deterministic_for_a_seed(
        n in 4usize..8,
        seed in 0u64..1000,
        src_strides in proptest::collection::vec(0usize..16, 0usize..2),
        dst_strides in proptest::collection::vec(0usize..16, 0usize..2),
    ) {
        let source = FabricSpec::shortest_path(fabric(n, &src_strides, &[]));
        let target = FabricSpec::shortest_path(fabric(n, &dst_strides, &[]));
        let problem = MigrationProblem::new(n, source, target);
        let random = |seed| planner_with_reachability(n, Box::new(RandomPermutation::new(8, seed)));
        prop_assert_eq!(random(seed).plan(&problem), random(seed).plan(&problem));
        let tree = || planner_with_reachability(n, Box::new(TreeSearch::default()));
        prop_assert_eq!(tree().plan(&problem), tree().plan(&problem));
    }
}

#[test]
fn interface_budget_forces_interleaved_removals() {
    // Both fabrics use 2 out-links per server and the patch panel has no
    // spare ports (max_degree = 2): the adds-first order is infeasible, so
    // the tree search must interleave removals with additions — and every
    // intermediate state must still be safe.
    let source = FabricSpec::shortest_path(topologies::from_permutations(6, &[1, 3], 25.0e9));
    let target = FabricSpec::shortest_path(topologies::from_permutations(6, &[2, 5], 25.0e9));
    let mut problem = MigrationProblem::new(6, source, target);
    problem.max_degree = Some(2);
    let planner = planner_with_reachability(6, Box::new(TreeSearch::default()));
    match planner.plan(&problem) {
        Ok(plan) => {
            // An add appears before the last removal (interleaving).
            let first_add =
                plan.steps.iter().position(|s| matches!(s.op, StepOp::AddLink(_))).unwrap();
            let last_remove =
                plan.steps.iter().rposition(|s| matches!(s.op, StepOp::RemoveLink(_))).unwrap();
            assert!(first_add < last_remove, "degree cap must force interleaving");
            assert_states_safe(&problem, &plan);
        }
        Err(fb) => {
            // A port-constrained migration may genuinely have no safe
            // ordering; the fallback must then name what blocked it.
            assert!(
                ["loop-freedom", "pair-reachability", "interface-capacity", "search-budget"]
                    .contains(&fb.violation.policy.as_str()),
                "unexpected fallback {:?}",
                fb.violation
            );
        }
    }
}

#[test]
fn planner_defaults_smoke() {
    // The planner's defaults: LoopFreedom only, minimize steps.
    let source = FabricSpec::shortest_path(topologies::from_permutations(6, &[1], 25.0e9));
    let target = FabricSpec::shortest_path(topologies::from_permutations(6, &[1, 2], 25.0e9));
    let problem = MigrationProblem::new(6, source, target);
    let plan = MigrationPlanner::new(Box::new(TreeSearch::default())).plan(&problem).unwrap();
    assert!(plan.link_ops() > 0);
    let _ = LoopFreedom; // the default hard policy, re-exported
}
