//! Property tests of the forwarding plan: on any connected fabric, the
//! destination-keyed rule chains must actually deliver every pair's
//! traffic — walk from the source, follow one rule per hop, arrive at the
//! destination's RDMA interface, never loop, and agree with the plan's
//! per-pair relay accounting.

use proptest::prelude::*;
use topoopt_core::Routing;
use topoopt_graph::{topologies, Graph};
use topoopt_rdma::{build_forwarding_plan, ForwardingPlan, NparPartition, WalkOutcome};

/// Walk the rule chain for one pair via the shared [`ForwardingPlan::walk`]
/// oracle (also used by the reconfiguration planner's hard policies);
/// returns the node path taken after checking the per-hop rule invariants.
fn walk_chain(plan: &ForwardingPlan, n: usize, src: usize, dst: usize) -> Vec<usize> {
    let path = match plan.walk(src, dst) {
        WalkOutcome::Delivered(path) => path,
        WalkOutcome::Blackhole(path) => {
            panic!(
                "rule chain {src}->{dst} blackholes: no rule on {} ({path:?})",
                path[path.len() - 1]
            )
        }
        WalkOutcome::Loop(path) => panic!("rule chain {src}->{dst} loops: {path:?}"),
    };
    assert!(path.len() <= n + 1, "rule chain {src}->{dst} runs away: {path:?}");
    for hop in path.windows(2) {
        let rule = plan.rule_towards(hop[0], dst).expect("walked hop must have a rule");
        assert_eq!(rule.on_server, hop[0]);
        assert_eq!(rule.next_hop, hop[1]);
        // Terminal hops address the destination's RDMA partition; every
        // other hop addresses the next relay's forwarding partition.
        if rule.next_hop == dst {
            assert_eq!(rule.next_hop_partition, NparPartition::Rdma);
        } else {
            assert_eq!(rule.next_hop_partition, NparPartition::Forwarding);
        }
    }
    path
}

fn assert_plan_delivers(graph: &Graph, n: usize, plan: &ForwardingPlan) {
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            assert!(plan.has_connection(src, dst), "missing connection {src}->{dst}");
            let path = walk_chain(plan, n, src, dst);
            // Every hop of the walk is a physical edge.
            for w in path.windows(2) {
                assert!(graph.has_edge(w[0], w[1]), "rule uses missing edge {}->{}", w[0], w[1]);
            }
            // The plan's relay count matches the walked path: intermediate
            // servers only.
            assert_eq!(
                plan.relay_count(src, dst),
                Some(path.len() - 2),
                "relay count of {src}->{dst} disagrees with walked path {path:?}"
            );
        }
    }
    // Dedupe invariant: at most one rule per (server, final_dst).
    for server in 0..n {
        let mut dsts: Vec<usize> = plan.rules_on(server).iter().map(|r| r.final_dst).collect();
        let before = dsts.len();
        dsts.sort_unstable();
        dsts.dedup();
        assert_eq!(dsts.len(), before, "duplicate destination rules on server {server}");
    }
}

proptest! {
    // Random connected fabrics: a +1 ring (connectivity) plus random ring
    // permutations and random chords, under shortest-path routing.
    #[test]
    fn rule_chains_deliver_on_random_connected_fabrics(
        n in 3usize..12,
        strides in proptest::collection::vec(2usize..11, 0usize..3),
        chords in proptest::collection::vec((0usize..64, 0usize..64), 0usize..10),
    ) {
        let mut ps: Vec<usize> = vec![1];
        ps.extend(strides.into_iter().map(|s| 1 + s % (n - 1)));
        ps.sort_unstable();
        ps.dedup();
        let mut g = topologies::from_permutations(n, &ps, 25.0e9);
        for (a, b) in chords {
            let (a, b) = (a % n, b % n);
            if a != b {
                g.add_edge(a, b, 25.0e9);
            }
        }
        let plan = build_forwarding_plan(&g, n, &Routing::new());
        assert_plan_delivers(&g, n, &plan);
        // Shortest-path routing: conflicts are benign (equal-length
        // alternatives), so every walk is as short as the routing's path.
        for ((src, dst), &relays) in &plan.relays {
            let hops = topoopt_graph::paths::bfs_shortest_path(&g, *src, *dst)
                .expect("connected fabric")
                .len() - 1;
            prop_assert_eq!(relays, hops - 1);
        }
    }

    // TopologyFinder-flavoured routing: explicit multi-hop rules (coin-change
    // style suffix-consistent decompositions are the common case, but the
    // walk must hold for arbitrary explicit rules too).
    #[test]
    fn rule_chains_deliver_under_explicit_routing(
        n in 4usize..10,
        detours in proptest::collection::vec((0usize..64, 1usize..5), 0usize..8),
    ) {
        let g = topologies::from_permutations(n, &[1], 25.0e9);
        // Explicit +1-ring walks of random length, the rest shortest-path.
        let mut routing = Routing::new();
        for (start, len) in detours {
            let src = start % n;
            let len = len.min(n - 1);
            let dst = (src + len) % n;
            if src == dst {
                continue;
            }
            let path: Vec<usize> = (0..=len).map(|k| (src + k) % n).collect();
            routing.insert(src, dst, path);
        }
        let plan = build_forwarding_plan(&g, n, &routing);
        assert_plan_delivers(&g, n, &plan);
    }
}
