//! Simulated host-based RDMA forwarding (§6, Appendix I).
//!
//! RDMA NICs silently drop RoCEv2 packets whose destination IP is not their
//! own, so a direct-connect fabric where hosts relay traffic needs the NPAR
//! (network partitioning) trick: each physical interface is split into a
//! normal RDMA logical interface (`if1`, kernel-bypassed, has an IP) and a
//! forwarding logical interface (`if2`, no IP, identified by MAC). Relay
//! servers install kernel rules (`iproute`/`arp`/`tc flower`) that match the
//! final destination IP and rewrite the next-hop MAC.
//!
//! This crate rebuilds that control plane in simulation: given a topology
//! and routing table it derives the per-server rule set, verifies that every
//! pair of servers has a working logical RDMA connection, and models the
//! relay overhead (forwarded hops traverse the kernel instead of the NIC's
//! RDMA engine).

pub mod forwarding;
pub mod npar;

pub use forwarding::{
    build_forwarding_plan, DegradedPair, ForwardingPlan, ForwardingRule, RepairMode, RepairReport,
    RuleConflict, WalkOutcome,
};
pub use npar::{LogicalInterface, NparNic, NparPartition};
