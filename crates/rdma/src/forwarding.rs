//! Forwarding-rule construction (the Appendix I walk-through, in
//! simulation).
//!
//! For every routed pair the plan derives: at the source, which port to send
//! on and whether the first hop terminates at the destination's RDMA
//! interface (direct) or at a relay's forwarding interface; at every relay,
//! a `tc flower`-style rule keyed on the final destination that rewrites the
//! next-hop MAC and output port; at the destination, normal RDMA delivery.
//! The relay hops cross the host kernel, which is modelled as a per-hop
//! throughput penalty.
//!
//! Like the real kernel tables, the plan keys forwarding state on the
//! *final destination IP only*: a server holds exactly one rule per
//! destination, shared by every logical connection relayed through it. Pair
//! paths are therefore derived by walking the destination-keyed rules, not
//! by replaying each pair's source-routed intention — when two pairs would
//! demand different next hops for the same destination on the same server,
//! the first-installed rule wins and the disagreement is recorded as a
//! [`RuleConflict`].

use crate::npar::{NparNic, NparPartition};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use topoopt_core::Routing;
use topoopt_graph::paths::bfs_shortest_path;
use topoopt_graph::Graph;

/// One kernel forwarding rule installed on a server. There is exactly one
/// rule per `(on_server, final_dst)` — a destination-IP match, as installed
/// by `tc flower` on the forwarding interface (relays) or by the route
/// table (sources).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForwardingRule {
    /// Server the rule is installed on.
    pub on_server: usize,
    /// Final destination server the rule matches (destination IP match).
    pub final_dst: usize,
    /// Origin server of the *first* logical connection that installed this
    /// rule. The rule itself is destination-keyed shared state: every
    /// connection to `final_dst` relayed through `on_server` uses it.
    pub src: usize,
    /// Next-hop server the packet is re-written towards.
    pub next_hop: usize,
    /// Next-hop MAC: the forwarding partition when the next hop is another
    /// relay, the RDMA partition when the next hop is the destination.
    pub next_hop_partition: NparPartition,
}

/// Two pairs demanded different next hops for the same `(server,
/// final_dst)` slot: a destination-keyed kernel table can hold only one of
/// them, so the later pair's traffic follows the installed rule instead of
/// its own routing-table path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleConflict {
    /// Server whose rule slot was contested.
    pub on_server: usize,
    /// Destination the rule matches.
    pub final_dst: usize,
    /// Next hop of the rule that was kept (first writer wins).
    pub installed_next_hop: usize,
    /// Next hop the later pair's routing path would have needed.
    pub demanded_next_hop: usize,
    /// Source of the pair whose demand lost.
    pub demanding_src: usize,
}

/// Outcome of walking the destination-keyed rule chain from one server
/// towards a final destination (see [`ForwardingPlan::walk`]). Each variant
/// carries the node path taken, starting at the source.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalkOutcome {
    /// The chain terminates at the destination; the path ends at `dst`.
    Delivered(Vec<usize>),
    /// A server without a rule towards `dst` was reached before `dst`: the
    /// packet is dropped there. The path ends at the ruleless server.
    Blackhole(Vec<usize>),
    /// The chain revisited a server: packets cycle forever. The path ends
    /// at the first repeated server (which also appears earlier in it).
    Loop(Vec<usize>),
}

impl WalkOutcome {
    /// True when the chain terminates at the destination.
    pub fn is_delivered(&self) -> bool {
        matches!(self, WalkOutcome::Delivered(_))
    }

    /// The node path the walk took, whatever the outcome.
    pub fn path(&self) -> &[usize] {
        match self {
            WalkOutcome::Delivered(p) | WalkOutcome::Blackhole(p) | WalkOutcome::Loop(p) => p,
        }
    }
}

/// A logical connection that stays broken after a repair pass: its
/// destination-keyed rule chain no longer delivers on the degraded fabric.
/// Mirrors the reconfiguration planner's `MigrationFallback` — an explicit
/// typed record of what could not be fixed, instead of the pair silently
/// disappearing into a zero-throughput entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedPair {
    /// Source of the broken logical connection.
    pub src: usize,
    /// Final destination of the broken logical connection.
    pub dst: usize,
    /// Terminal walk outcome on the repaired table: `"blackhole"` (the
    /// chain reaches a server with no rule, or a dead next-hop link) or
    /// `"loop"` (stale rules cycle).
    pub outcome: String,
    /// Server where the chain dies: the blackholing server, or the first
    /// revisited server of a loop.
    pub at: usize,
}

/// How [`ForwardingPlan::repair`] touches the rule table — the same two
/// controller granularities as the reconfiguration planner's `RuleRepair`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairMode {
    /// Minimal touch: only rules whose next-hop link died are repointed
    /// onto current shortest paths. Untouched rules still encode healthy
    /// paths, and the stale/fresh mixture can leave chains looping — those
    /// pairs come back as [`DegradedPair`] records.
    PerRule,
    /// Every rule towards a destination with at least one broken rule is
    /// resynced to current shortest paths (missing rules are filled).
    /// Loop-free by construction; only reachability can still fail.
    PerDestination,
}

/// Outcome of one [`ForwardingPlan::repair`] pass over a degraded fabric.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairReport {
    /// Rules whose dead next hop was repointed to a live detour.
    pub repaired_rules: usize,
    /// Rules dropped because their destination is unreachable from the
    /// rule's server on the degraded fabric.
    pub dropped_rules: usize,
    /// Total additional relay hops the surviving pairs now cross compared
    /// to their pre-repair chains — the bandwidth-tax cost of the detours.
    pub extra_relays: usize,
    /// Pairs whose chains still do not deliver after the repair, in
    /// `(src, dst)` order.
    pub degraded: Vec<DegradedPair>,
}

/// The complete forwarding plan for a topology + routing table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForwardingPlan {
    /// Rules grouped by the server they are installed on, at most one per
    /// `(server, final_dst)`.
    pub rules: BTreeMap<usize, Vec<ForwardingRule>>,
    /// Per-pair relay counts: how many intermediate servers each logical
    /// RDMA connection crosses, measured along the rule walk the packets
    /// actually take.
    pub relays: BTreeMap<(usize, usize), usize>,
    /// Destination-keyed next-hop disagreements observed while installing
    /// (empty on fabrics whose routing is destination-consistent).
    pub conflicts: Vec<RuleConflict>,
}

impl ForwardingPlan {
    /// Total number of rules (one per `(server, final_dst)` with traffic).
    pub fn num_rules(&self) -> usize {
        self.rules.values().map(|v| v.len()).sum()
    }

    /// Rules installed on one server.
    pub fn rules_on(&self, server: usize) -> &[ForwardingRule] {
        self.rules.get(&server).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The rule a packet for `final_dst` follows on `server`, if any.
    pub fn rule_towards(&self, server: usize, final_dst: usize) -> Option<&ForwardingRule> {
        self.rules_on(server).iter().find(|r| r.final_dst == final_dst)
    }

    /// Install or repoint the `(server, final_dst)` rule to `next_hop`
    /// (repair plumbing; a fresh install keys the rule on the server).
    fn set_rule(&mut self, server: usize, final_dst: usize, next_hop: usize) {
        let partition =
            if next_hop == final_dst { NparPartition::Rdma } else { NparPartition::Forwarding };
        let rules = self.rules.entry(server).or_default();
        match rules.iter_mut().find(|r| r.final_dst == final_dst) {
            Some(r) => {
                r.next_hop = next_hop;
                r.next_hop_partition = partition;
            }
            None => rules.push(ForwardingRule {
                on_server: server,
                final_dst,
                src: server,
                next_hop,
                next_hop_partition: partition,
            }),
        }
    }

    /// Drop the `(server, final_dst)` rule, if installed.
    fn remove_rule(&mut self, server: usize, final_dst: usize) {
        if let Some(rules) = self.rules.get_mut(&server) {
            rules.retain(|r| r.final_dst != final_dst);
        }
    }

    /// Walk the destination-keyed rule chain from `src` towards `dst`,
    /// following one rule per hop exactly as the kernel tables would,
    /// with explicit loop and blackhole detection.
    ///
    /// This is the single chain-termination oracle shared by the
    /// forwarding-plan property tests and the reconfiguration planner's
    /// hard policies: plans freshly built by [`build_forwarding_plan`]
    /// always deliver, but mid-migration rule tables (stale rules mixed
    /// with incremental repairs) can transiently [`WalkOutcome::Loop`] or
    /// [`WalkOutcome::Blackhole`]. Always terminates: the walk stops at
    /// the first revisited server.
    pub fn walk(&self, src: usize, dst: usize) -> WalkOutcome {
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            let Some(rule) = self.rule_towards(cur, dst) else {
                return WalkOutcome::Blackhole(path);
            };
            let next = rule.next_hop;
            let looped = path.contains(&next);
            path.push(next);
            if looped {
                return WalkOutcome::Loop(path);
            }
            cur = next;
        }
        WalkOutcome::Delivered(path)
    }

    /// True if a logical RDMA connection exists between the pair.
    pub fn has_connection(&self, src: usize, dst: usize) -> bool {
        self.relays.contains_key(&(src, dst))
    }

    /// Number of relay servers between the pair (0 = direct circuit).
    pub fn relay_count(&self, src: usize, dst: usize) -> Option<usize> {
        self.relays.get(&(src, dst)).cloned()
    }

    /// Histogram of relay counts over all logical connections: `result[k]`
    /// = number of (src, dst) pairs whose traffic crosses `k` relays.
    pub fn relay_histogram(&self) -> Vec<usize> {
        let mut hist = Vec::new();
        for &relays in self.relays.values() {
            if hist.len() <= relays {
                hist.resize(relays + 1, 0);
            }
            hist[relays] += 1;
        }
        hist
    }

    /// Fraction of logical connections that cross at least one relay
    /// (0.0 when the plan is empty).
    pub fn relayed_fraction(&self) -> f64 {
        if self.relays.is_empty() {
            return 0.0;
        }
        let relayed = self.relays.values().filter(|&&r| r > 0).count();
        relayed as f64 / self.relays.len() as f64
    }

    /// Effective throughput of the pair's logical connection relative to a
    /// direct circuit: each kernel relay multiplies throughput by
    /// `relay_efficiency` (< 1), modelling the measured penalty of
    /// kernel-path forwarding versus NIC offload.
    ///
    /// Contract: self-pairs (`src == dst`) are loopback transfers that
    /// never touch the fabric and return `1.0`; pairs with *no route* in
    /// the plan return `0.0` (no logical connection exists, so its
    /// throughput is zero — use [`Self::has_connection`] to distinguish
    /// "disconnected" from "fully penalized" up front).
    pub fn effective_throughput_factor(
        &self,
        src: usize,
        dst: usize,
        relay_efficiency: f64,
    ) -> f64 {
        if src == dst {
            return 1.0;
        }
        match self.relay_count(src, dst) {
            Some(relays) => relay_efficiency.powi(relays as i32),
            None => 0.0,
        }
    }

    /// Repair the plan in place after links died: rules whose next-hop
    /// link is no longer live in `degraded` are repointed onto current
    /// shortest paths (or dropped when their destination became
    /// unreachable) at the chosen [`RepairMode`] granularity, then every
    /// logical connection is re-walked under the repaired table —
    /// [`Self::walk`] is the loop/blackhole oracle — and its relay count
    /// refreshed to the detour chain it now follows.
    ///
    /// Pairs whose chains still do not deliver are removed from the relay
    /// table (their [`Self::effective_throughput_factor`] becomes `0.0`)
    /// and surfaced as typed [`DegradedPair`] records rather than silently
    /// priced as disconnected. The repair modes mirror the reconfiguration
    /// planner's `RuleRepair` controller granularities; drive dead-link
    /// sequences through that planner when repairs must respect
    /// loop-freedom and reachability at every intermediate step.
    pub fn repair(&mut self, degraded: &Graph, mode: RepairMode) -> RepairReport {
        let mut report = RepairReport::default();
        // Pass 1: find every rule whose next-hop link died.
        let broken: Vec<(usize, usize)> = self
            .rules
            .values()
            .flatten()
            .filter(|r| !degraded.has_edge(r.on_server, r.next_hop))
            .map(|r| (r.on_server, r.final_dst))
            .collect();
        match mode {
            RepairMode::PerRule => {
                for (server, dst) in broken {
                    match bfs_shortest_path(degraded, server, dst) {
                        Some(path) => {
                            self.set_rule(server, dst, path[1]);
                            report.repaired_rules += 1;
                        }
                        None => {
                            self.remove_rule(server, dst);
                            report.dropped_rules += 1;
                        }
                    }
                }
            }
            RepairMode::PerDestination => {
                let mut dests: Vec<usize> = broken.into_iter().map(|(_, d)| d).collect();
                dests.sort_unstable();
                dests.dedup();
                for dst in dests {
                    for server in 0..degraded.num_nodes() {
                        if server == dst {
                            continue;
                        }
                        let installed = self.rule_towards(server, dst).map(|r| r.next_hop);
                        match bfs_shortest_path(degraded, server, dst) {
                            Some(path) => {
                                if installed != Some(path[1]) {
                                    self.set_rule(server, dst, path[1]);
                                    report.repaired_rules += 1;
                                }
                            }
                            None => {
                                if installed.is_some() {
                                    self.remove_rule(server, dst);
                                    report.dropped_rules += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        self.rules.retain(|_, rules| !rules.is_empty());
        // Pass 2: re-walk every logical connection under the repaired
        // table and refresh its relay accounting.
        let pairs: Vec<((usize, usize), usize)> =
            self.relays.iter().map(|(&p, &r)| (p, r)).collect();
        for ((src, dst), old_relays) in pairs {
            let out = self.walk(src, dst);
            match &out {
                WalkOutcome::Delivered(path) => {
                    let relays = path.len().saturating_sub(2);
                    report.extra_relays += relays.saturating_sub(old_relays);
                    self.relays.insert((src, dst), relays);
                }
                WalkOutcome::Blackhole(path) | WalkOutcome::Loop(path) => {
                    report.degraded.push(DegradedPair {
                        src,
                        dst,
                        outcome: if matches!(out, WalkOutcome::Loop(_)) {
                            "loop".to_string()
                        } else {
                            "blackhole".to_string()
                        },
                        at: *path.last().unwrap_or(&src),
                    });
                    self.relays.remove(&(src, dst));
                }
            }
        }
        report
    }
}

/// Build the forwarding plan for every ordered server pair of the fabric,
/// using the supplied routing (falling back to shortest paths).
///
/// Rules are installed destination-keyed, first writer wins (pairs are
/// processed in `(src, dst)` lexical order). Each pair's relay count is
/// measured along the walk its packets actually take under those shared
/// rules, which can differ from its own routing path when a
/// [`RuleConflict`] was recorded.
pub fn build_forwarding_plan(
    graph: &Graph,
    num_servers: usize,
    routing: &Routing,
) -> ForwardingPlan {
    // (server, final_dst) -> (next_hop, installing src).
    let mut next_hop: BTreeMap<(usize, usize), (usize, usize)> = BTreeMap::new();
    let mut plan = ForwardingPlan::default();
    for src in 0..num_servers {
        for dst in 0..num_servers {
            if src == dst {
                continue;
            }
            let Some(intended) = routing.path_or_shortest(graph, src, dst) else {
                continue;
            };
            // Walk the destination-keyed rules from src, installing this
            // pair's intended next hop wherever no rule exists yet. Every
            // installed rule's successor chain is itself fully installed
            // (its installer walked it to the destination), so the `None`
            // arm can only be reached while the walk still tracks the
            // intended path.
            let mut cur = src;
            let mut pos = 0; // index of `cur` in `intended` while tracking it
            let mut on_intended = true;
            let mut hops = 0usize;
            while cur != dst {
                hops += 1;
                // Hard asserts, not debug: a non-simple explicit routing
                // path (Routing::insert validates endpoints only) would
                // otherwise hang or mis-index the walk in release builds.
                assert!(
                    hops <= graph.num_nodes(),
                    "forwarding walk for ({src},{dst}) cycled — non-simple routing path?"
                );
                let nh = match next_hop.get(&(cur, dst)) {
                    Some(&(nh, _)) => {
                        if on_intended && intended[pos + 1] != nh {
                            plan.conflicts.push(RuleConflict {
                                on_server: cur,
                                final_dst: dst,
                                installed_next_hop: nh,
                                demanded_next_hop: intended[pos + 1],
                                demanding_src: src,
                            });
                        }
                        nh
                    }
                    None => {
                        assert!(
                            on_intended,
                            "forwarding walk for ({src},{dst}) reached ruleless node {cur} off \
                             its routing path — non-simple routing path?"
                        );
                        let nh = intended[pos + 1];
                        next_hop.insert((cur, dst), (nh, src));
                        nh
                    }
                };
                if on_intended && intended[pos + 1] == nh {
                    pos += 1;
                } else {
                    on_intended = false;
                }
                cur = nh;
            }
            plan.relays.insert((src, dst), hops.saturating_sub(1));
        }
    }
    // Materialize the deduplicated rule set, grouped by server.
    for (&(server, final_dst), &(nh, installer)) in &next_hop {
        plan.rules.entry(server).or_default().push(ForwardingRule {
            on_server: server,
            final_dst,
            src: installer,
            next_hop: nh,
            next_hop_partition: if nh == final_dst {
                NparPartition::Rdma
            } else {
                NparPartition::Forwarding
            },
        });
    }
    plan
}

/// The NICs of a `num_servers × degree` fabric, split per NPAR.
pub fn split_all_nics(num_servers: usize, degree: usize) -> Vec<NparNic> {
    (0..num_servers).flat_map(|s| (0..degree).map(move |p| NparNic::new(s, p))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use topoopt_graph::topologies;

    #[test]
    fn direct_neighbours_need_no_relay() {
        let g = topologies::from_permutations(12, &[1, 5], 25.0e9);
        let plan = build_forwarding_plan(&g, 12, &Routing::new());
        assert_eq!(plan.relay_count(0, 1), Some(0));
        assert_eq!(plan.relay_count(0, 5), Some(0));
        assert!(plan.has_connection(0, 7));
    }

    #[test]
    fn appendix_i_chain_installs_relay_rules() {
        // A 4-server chain A=0, B=1, C=2, D=3 (the Appendix I walk-through):
        // the A->D connection relays through B and C.
        let mut g = topoopt_graph::Graph::new(4);
        for i in 0..3 {
            g.add_bidi_edge(i, i + 1, 25.0e9);
        }
        let plan = build_forwarding_plan(&g, 4, &Routing::new());
        assert_eq!(plan.relay_count(0, 3), Some(2));
        // B (server 1) has a rule matching final destination 3, rewriting to
        // C's forwarding MAC; C has one rewriting to D's RDMA MAC.
        let b_rule = plan.rules_on(1).iter().find(|r| r.src == 0 && r.final_dst == 3).unwrap();
        assert_eq!(b_rule.next_hop, 2);
        assert_eq!(b_rule.next_hop_partition, NparPartition::Forwarding);
        let c_rule = plan.rules_on(2).iter().find(|r| r.src == 0 && r.final_dst == 3).unwrap();
        assert_eq!(c_rule.next_hop, 3);
        assert_eq!(c_rule.next_hop_partition, NparPartition::Rdma);
    }

    #[test]
    fn relay_rules_are_deduplicated_per_destination() {
        // On a +1 ring every connection to server 5 from 0..4 crosses the
        // same relays; a destination-keyed kernel holds ONE rule for 5 per
        // relay, not one per (src, dst) pair.
        let g = topologies::from_permutations(6, &[1], 25.0e9);
        let plan = build_forwarding_plan(&g, 6, &Routing::new());
        for server in 0..6 {
            let mut dsts: Vec<usize> = plan.rules_on(server).iter().map(|r| r.final_dst).collect();
            let before = dsts.len();
            dsts.sort_unstable();
            dsts.dedup();
            assert_eq!(dsts.len(), before, "server {server} holds duplicate rules");
        }
        // Appendix I accounting: every server needs one rule per reachable
        // destination (n-1 of them) = 6 * 5 rules, not sum over all pair
        // paths.
        assert_eq!(plan.num_rules(), 6 * 5);
        assert!(plan.conflicts.is_empty());
    }

    #[test]
    fn conflicting_routing_paths_are_recorded_and_resolved_first_wins() {
        // Node 1 can reach 3 directly or via 2; two explicit routes demand
        // different next hops at server 1 for destination 3.
        let mut g = topoopt_graph::Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(1, 3, 1.0);
        let mut routing = Routing::new();
        routing.insert(0, 3, vec![0, 1, 2, 3]); // installs (1,3) -> 2
        routing.insert(1, 3, vec![1, 3]); // demands (1,3) -> 3: conflict
        let plan = build_forwarding_plan(&g, 4, &routing);
        assert_eq!(plan.conflicts.len(), 1);
        let c = &plan.conflicts[0];
        assert_eq!((c.on_server, c.final_dst), (1, 3));
        assert_eq!(c.installed_next_hop, 2);
        assert_eq!(c.demanded_next_hop, 3);
        assert_eq!(c.demanding_src, 1);
        // The installed rule wins, so 1 -> 3 actually relays through 2.
        assert_eq!(plan.rule_towards(1, 3).unwrap().next_hop, 2);
        assert_eq!(plan.relay_count(1, 3), Some(1));
    }

    #[test]
    fn all_pairs_have_logical_connections_on_connected_fabric() {
        let g = topologies::from_permutations(12, &[1, 5, 7], 25.0e9);
        let plan = build_forwarding_plan(&g, 12, &Routing::new());
        for s in 0..12 {
            for d in 0..12 {
                if s != d {
                    assert!(plan.has_connection(s, d), "missing connection {s}->{d}");
                }
            }
        }
        assert!(plan.num_rules() > 0);
    }

    #[test]
    fn relay_histogram_counts_pairs_by_relay_count() {
        // 4-chain: 6 direct pairs (0-1, 1-2, 2-3 both ways), 4 one-relay,
        // 2 two-relay.
        let mut g = topoopt_graph::Graph::new(4);
        for i in 0..3 {
            g.add_bidi_edge(i, i + 1, 25.0e9);
        }
        let plan = build_forwarding_plan(&g, 4, &Routing::new());
        assert_eq!(plan.relay_histogram(), vec![6, 4, 2]);
        assert!((plan.relayed_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(ForwardingPlan::default().relay_histogram(), Vec::<usize>::new());
        assert_eq!(ForwardingPlan::default().relayed_fraction(), 0.0);
    }

    #[test]
    fn throughput_factor_decays_with_relays() {
        let mut g = topoopt_graph::Graph::new(4);
        for i in 0..3 {
            g.add_bidi_edge(i, i + 1, 25.0e9);
        }
        let plan = build_forwarding_plan(&g, 4, &Routing::new());
        let direct = plan.effective_throughput_factor(0, 1, 0.9);
        let two_relays = plan.effective_throughput_factor(0, 3, 0.9);
        assert_eq!(direct, 1.0);
        assert!((two_relays - 0.81).abs() < 1e-12);
    }

    #[test]
    fn self_pairs_are_loopback_not_disconnected() {
        let mut g = topoopt_graph::Graph::new(3);
        g.add_bidi_edge(0, 1, 25.0e9);
        let plan = build_forwarding_plan(&g, 3, &Routing::new());
        // A server talking to itself never touches the fabric: full rate.
        assert_eq!(plan.effective_throughput_factor(1, 1, 0.5), 1.0);
        // Server 2 is isolated: no logical connection, zero throughput.
        assert!(!plan.has_connection(0, 2));
        assert_eq!(plan.effective_throughput_factor(0, 2, 0.5), 0.0);
    }

    #[test]
    fn split_all_nics_counts() {
        let nics = split_all_nics(12, 4);
        assert_eq!(nics.len(), 48);
    }

    fn rule(on: usize, dst: usize, nh: usize) -> ForwardingRule {
        ForwardingRule {
            on_server: on,
            final_dst: dst,
            src: on,
            next_hop: nh,
            next_hop_partition: if nh == dst {
                NparPartition::Rdma
            } else {
                NparPartition::Forwarding
            },
        }
    }

    #[test]
    fn walk_delivers_along_installed_chain() {
        let mut g = topoopt_graph::Graph::new(4);
        for i in 0..3 {
            g.add_bidi_edge(i, i + 1, 25.0e9);
        }
        let plan = build_forwarding_plan(&g, 4, &Routing::new());
        assert_eq!(plan.walk(0, 3), WalkOutcome::Delivered(vec![0, 1, 2, 3]));
        assert!(plan.walk(0, 3).is_delivered());
        // Self-pairs are loopback: delivered without touching the fabric.
        assert_eq!(plan.walk(2, 2), WalkOutcome::Delivered(vec![2]));
    }

    #[test]
    fn walk_detects_blackhole_at_ruleless_server() {
        // 0 forwards towards 3 via 1, but 1 holds no rule for 3 (a stale
        // table mid-migration): the packet dies on 1.
        let mut plan = ForwardingPlan::default();
        plan.rules.insert(0, vec![rule(0, 3, 1)]);
        let out = plan.walk(0, 3);
        assert_eq!(out, WalkOutcome::Blackhole(vec![0, 1]));
        assert!(!out.is_delivered());
        assert_eq!(out.path(), &[0, 1]);
    }

    #[test]
    fn repair_reroutes_around_a_dead_link() {
        // 4-ring plus a reverse chord 0->3->2->1 so every pair survives
        // losing 0->1: rules that sent traffic over the dead link repoint
        // onto the longer reverse chains.
        let mut g = topoopt_graph::Graph::new(4);
        for i in 0..4 {
            g.add_bidi_edge(i, (i + 1) % 4, 25.0e9);
        }
        let mut plan = build_forwarding_plan(&g, 4, &Routing::new());
        assert_eq!(plan.relay_count(0, 1), Some(0));
        let mut degraded = g.clone();
        let dead = degraded
            .edges()
            .find(|(_, e)| e.src == 0 && e.dst == 1)
            .map(|(id, _)| id)
            .expect("0->1 is live");
        degraded.remove_edge(dead);
        let report = plan.repair(&degraded, RepairMode::PerDestination);
        assert!(report.repaired_rules > 0, "rules over 0->1 must be repointed");
        assert_eq!(report.dropped_rules, 0, "the degraded ring is still connected");
        assert!(report.degraded.is_empty(), "every pair survives one link loss: {report:?}");
        // 0 -> 1 now detours the long way round: 0 -> 3 -> 2 -> 1.
        assert_eq!(plan.walk(0, 1), WalkOutcome::Delivered(vec![0, 3, 2, 1]));
        assert_eq!(plan.relay_count(0, 1), Some(2));
        assert!(report.extra_relays >= 2, "the detour costs relays: {report:?}");
        // No repaired rule points over a dead link.
        for rules in plan.rules.values() {
            for r in rules {
                assert!(degraded.has_edge(r.on_server, r.next_hop));
            }
        }
    }

    #[test]
    fn per_rule_repair_can_loop_and_reports_it_per_destination_cannot() {
        // Same bidirectional 4-ring, same dead link. The minimal-touch
        // repair repoints (0,1)->3 while the stale healthy rule (3,1)->0
        // stays installed: the chain 0->3->0 cycles, and the walk-based
        // audit surfaces it as a typed loop record instead of delivering.
        let mut g = topoopt_graph::Graph::new(4);
        for i in 0..4 {
            g.add_bidi_edge(i, (i + 1) % 4, 25.0e9);
        }
        let mut plan = build_forwarding_plan(&g, 4, &Routing::new());
        let mut degraded = g.clone();
        let dead = degraded
            .edges()
            .find(|(_, e)| e.src == 0 && e.dst == 1)
            .map(|(id, _)| id)
            .expect("0->1 is live");
        degraded.remove_edge(dead);
        let report = plan.repair(&degraded, RepairMode::PerRule);
        let loops: Vec<(usize, usize)> = report
            .degraded
            .iter()
            .filter(|d| d.outcome == "loop")
            .map(|d| (d.src, d.dst))
            .collect();
        assert!(
            loops.contains(&(0, 1)),
            "stale/fresh rule mixture must cycle for 0->1: {report:?}"
        );
        // Looping pairs are disconnected in the relay table, not priced
        // as delivered over a melting chain.
        assert!(!plan.has_connection(0, 1));
    }

    #[test]
    fn repair_surfaces_unreachable_pairs_as_degraded_records() {
        // Directed 3-ring: losing 0->1 severs every chain that crossed it;
        // no detour exists, so the affected pairs become typed degraded
        // records (and zero-throughput), not silent zeros.
        let g = topologies::from_permutations(3, &[1], 25.0e9);
        let mut plan = build_forwarding_plan(&g, 3, &Routing::new());
        let mut degraded = g.clone();
        let dead = degraded
            .edges()
            .find(|(_, e)| e.src == 0 && e.dst == 1)
            .map(|(id, _)| id)
            .expect("0->1 is live");
        degraded.remove_edge(dead);
        let report = plan.repair(&degraded, RepairMode::PerRule);
        // Server 0 lost its only egress: both its rules drop.
        assert_eq!(report.dropped_rules, 2);
        assert_eq!(report.repaired_rules, 0);
        let broken: Vec<(usize, usize)> = report.degraded.iter().map(|d| (d.src, d.dst)).collect();
        // 0's own pairs break, and so does (2,1), whose chain relayed
        // through server 0 over the dead link.
        assert_eq!(broken, vec![(0, 1), (0, 2), (2, 1)], "{report:?}");
        for d in &report.degraded {
            assert_eq!(d.outcome, "blackhole");
            assert_eq!(d.at, 0, "every broken chain dies on the ruleless server 0");
        }
        // Degraded pairs are priced as disconnected — but visibly so.
        assert_eq!(plan.effective_throughput_factor(0, 1, 0.9), 0.0);
        assert!(!plan.has_connection(0, 1));
        // Surviving pairs keep delivering.
        assert_eq!(plan.walk(1, 0), WalkOutcome::Delivered(vec![1, 2, 0]));
        assert_eq!(plan.relay_count(1, 0), Some(1));
    }

    #[test]
    fn walk_detects_rule_loop() {
        // Stale rules mixed with a repaired one: 1 -> 2 -> 3 -> 1 for
        // destination 0. The walk stops at the first revisited server.
        let mut plan = ForwardingPlan::default();
        plan.rules.insert(1, vec![rule(1, 0, 2)]);
        plan.rules.insert(2, vec![rule(2, 0, 3)]);
        plan.rules.insert(3, vec![rule(3, 0, 1)]);
        let out = plan.walk(1, 0);
        assert_eq!(out, WalkOutcome::Loop(vec![1, 2, 3, 1]));
        assert!(!out.is_delivered());
    }
}
