//! Forwarding-rule construction (the Appendix I walk-through, in
//! simulation).
//!
//! For every routed pair the plan derives: at the source, which port to send
//! on and whether the first hop terminates at the destination's RDMA
//! interface (direct) or at a relay's forwarding interface; at every relay,
//! a `tc flower`-style rule keyed on the final destination that rewrites the
//! next-hop MAC and output port; at the destination, normal RDMA delivery.
//! The relay hops cross the host kernel, which is modelled as a per-hop
//! throughput penalty.

use crate::npar::{NparNic, NparPartition};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use topoopt_core::Routing;
use topoopt_graph::Graph;

/// One kernel forwarding rule installed on a relay server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForwardingRule {
    /// Server the rule is installed on.
    pub on_server: usize,
    /// Final destination server the rule matches (destination IP match).
    pub final_dst: usize,
    /// Origin server of the logical connection this rule belongs to.
    pub src: usize,
    /// Next-hop server the packet is re-written towards.
    pub next_hop: usize,
    /// Next-hop MAC: the forwarding partition when the next hop is another
    /// relay, the RDMA partition when the next hop is the destination.
    pub next_hop_partition: NparPartition,
}

/// The complete forwarding plan for a topology + routing table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForwardingPlan {
    /// Rules grouped by the server they are installed on.
    pub rules: BTreeMap<usize, Vec<ForwardingRule>>,
    /// Per-pair relay counts: how many intermediate servers each logical
    /// RDMA connection crosses.
    pub relays: BTreeMap<(usize, usize), usize>,
}

impl ForwardingPlan {
    /// Total number of rules.
    pub fn num_rules(&self) -> usize {
        self.rules.values().map(|v| v.len()).sum()
    }

    /// Rules installed on one server.
    pub fn rules_on(&self, server: usize) -> &[ForwardingRule] {
        self.rules.get(&server).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// True if a logical RDMA connection exists between the pair.
    pub fn has_connection(&self, src: usize, dst: usize) -> bool {
        self.relays.contains_key(&(src, dst))
    }

    /// Number of relay servers between the pair (0 = direct circuit).
    pub fn relay_count(&self, src: usize, dst: usize) -> Option<usize> {
        self.relays.get(&(src, dst)).cloned()
    }

    /// Effective throughput of the pair's logical connection relative to a
    /// direct circuit: each kernel relay multiplies throughput by
    /// `relay_efficiency` (< 1), modelling the measured penalty of
    /// kernel-path forwarding versus NIC offload.
    pub fn effective_throughput_factor(
        &self,
        src: usize,
        dst: usize,
        relay_efficiency: f64,
    ) -> f64 {
        match self.relay_count(src, dst) {
            Some(relays) => relay_efficiency.powi(relays as i32),
            None => 0.0,
        }
    }
}

/// Build the forwarding plan for every ordered server pair of the fabric,
/// using the supplied routing (falling back to shortest paths).
pub fn build_forwarding_plan(
    graph: &Graph,
    num_servers: usize,
    routing: &Routing,
) -> ForwardingPlan {
    let mut plan = ForwardingPlan::default();
    for src in 0..num_servers {
        for dst in 0..num_servers {
            if src == dst {
                continue;
            }
            let Some(path) = routing.path_or_shortest(graph, src, dst) else {
                continue;
            };
            let relays = path.len().saturating_sub(2);
            plan.relays.insert((src, dst), relays);
            // Install a rule at every hop except the destination. The rule on
            // the source just selects the egress port; rules on relays match
            // the final destination and rewrite the MAC.
            for (idx, window) in path.windows(2).enumerate() {
                let here = window[0];
                let next = window[1];
                let is_last_hop = idx + 2 == path.len();
                plan.rules.entry(here).or_default().push(ForwardingRule {
                    on_server: here,
                    final_dst: dst,
                    src,
                    next_hop: next,
                    next_hop_partition: if is_last_hop {
                        NparPartition::Rdma
                    } else {
                        NparPartition::Forwarding
                    },
                });
            }
        }
    }
    plan
}

/// The NICs of a `num_servers × degree` fabric, split per NPAR.
pub fn split_all_nics(num_servers: usize, degree: usize) -> Vec<NparNic> {
    (0..num_servers).flat_map(|s| (0..degree).map(move |p| NparNic::new(s, p))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use topoopt_graph::topologies;

    #[test]
    fn direct_neighbours_need_no_relay() {
        let g = topologies::from_permutations(12, &[1, 5], 25.0e9);
        let plan = build_forwarding_plan(&g, 12, &Routing::new());
        assert_eq!(plan.relay_count(0, 1), Some(0));
        assert_eq!(plan.relay_count(0, 5), Some(0));
        assert!(plan.has_connection(0, 7));
    }

    #[test]
    fn appendix_i_chain_installs_relay_rules() {
        // A 4-server chain A=0, B=1, C=2, D=3 (the Appendix I walk-through):
        // the A->D connection relays through B and C.
        let mut g = topoopt_graph::Graph::new(4);
        for i in 0..3 {
            g.add_bidi_edge(i, i + 1, 25.0e9);
        }
        let plan = build_forwarding_plan(&g, 4, &Routing::new());
        assert_eq!(plan.relay_count(0, 3), Some(2));
        // B (server 1) has a rule matching final destination 3, rewriting to
        // C's forwarding MAC; C has one rewriting to D's RDMA MAC.
        let b_rule = plan.rules_on(1).iter().find(|r| r.src == 0 && r.final_dst == 3).unwrap();
        assert_eq!(b_rule.next_hop, 2);
        assert_eq!(b_rule.next_hop_partition, NparPartition::Forwarding);
        let c_rule = plan.rules_on(2).iter().find(|r| r.src == 0 && r.final_dst == 3).unwrap();
        assert_eq!(c_rule.next_hop, 3);
        assert_eq!(c_rule.next_hop_partition, NparPartition::Rdma);
    }

    #[test]
    fn all_pairs_have_logical_connections_on_connected_fabric() {
        let g = topologies::from_permutations(12, &[1, 5, 7], 25.0e9);
        let plan = build_forwarding_plan(&g, 12, &Routing::new());
        for s in 0..12 {
            for d in 0..12 {
                if s != d {
                    assert!(plan.has_connection(s, d), "missing connection {s}->{d}");
                }
            }
        }
        assert!(plan.num_rules() > 0);
    }

    #[test]
    fn throughput_factor_decays_with_relays() {
        let mut g = topoopt_graph::Graph::new(4);
        for i in 0..3 {
            g.add_bidi_edge(i, i + 1, 25.0e9);
        }
        let plan = build_forwarding_plan(&g, 4, &Routing::new());
        let direct = plan.effective_throughput_factor(0, 1, 0.9);
        let two_relays = plan.effective_throughput_factor(0, 3, 0.9);
        assert_eq!(direct, 1.0);
        assert!((two_relays - 0.81).abs() < 1e-12);
        assert_eq!(plan.effective_throughput_factor(3, 3, 0.9), 0.0);
    }

    #[test]
    fn split_all_nics_counts() {
        let nics = split_all_nics(12, 4);
        assert_eq!(nics.len(), 48);
    }
}
