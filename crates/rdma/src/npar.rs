//! NPAR (network partitioning) model: one physical interface, two logical
//! interfaces.

use serde::{Deserialize, Serialize};

/// Which logical partition of a physical port a packet is addressed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NparPartition {
    /// `if1`: the RDMA-capable interface with an IP address; traffic to it
    /// is consumed by the NIC's RDMA engine (kernel bypass).
    Rdma,
    /// `if2`: the forwarding interface without an IP; traffic to its MAC is
    /// delivered to the host kernel for relaying.
    Forwarding,
}

/// One logical interface of a server's NIC port.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LogicalInterface {
    /// Owning server id.
    pub server: usize,
    /// Physical port index on the server (`0..degree`).
    pub port: usize,
    /// Which partition.
    pub partition: NparPartition,
}

impl LogicalInterface {
    /// Synthetic MAC address, unique per logical interface.
    pub fn mac(&self) -> String {
        let p = match self.partition {
            NparPartition::Rdma => 1,
            NparPartition::Forwarding => 2,
        };
        format!(
            "02:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            p,
            (self.server >> 8) & 0xff,
            self.server & 0xff,
            (self.port >> 8) & 0xff,
            self.port & 0xff
        )
    }

    /// Synthetic IP address; only the RDMA partition has one.
    pub fn ip(&self) -> Option<String> {
        match self.partition {
            NparPartition::Rdma => Some(format!(
                "10.{}.{}.{}",
                (self.server >> 8) & 0xff,
                self.server & 0xff,
                self.port + 1
            )),
            NparPartition::Forwarding => None,
        }
    }
}

/// A server NIC port split into its two logical interfaces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NparNic {
    /// RDMA partition.
    pub rdma: LogicalInterface,
    /// Forwarding partition.
    pub forwarding: LogicalInterface,
}

impl NparNic {
    /// Split port `port` of `server`.
    pub fn new(server: usize, port: usize) -> Self {
        NparNic {
            rdma: LogicalInterface { server, port, partition: NparPartition::Rdma },
            forwarding: LogicalInterface { server, port, partition: NparPartition::Forwarding },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdma_partition_has_ip_forwarding_does_not() {
        let nic = NparNic::new(3, 1);
        assert!(nic.rdma.ip().is_some());
        assert!(nic.forwarding.ip().is_none());
    }

    #[test]
    fn macs_are_unique_across_servers_ports_and_partitions() {
        let mut macs = std::collections::BTreeSet::new();
        for server in 0..12 {
            for port in 0..4 {
                let nic = NparNic::new(server, port);
                assert!(macs.insert(nic.rdma.mac()));
                assert!(macs.insert(nic.forwarding.mac()));
            }
        }
        assert_eq!(macs.len(), 12 * 4 * 2);
    }

    #[test]
    fn ip_encodes_server_and_port() {
        let nic = NparNic::new(260, 2);
        assert_eq!(nic.rdma.ip().unwrap(), "10.1.4.3");
    }
}
