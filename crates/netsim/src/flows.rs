//! Flow-set builders: turn AllReduce plans and model-parallel demand
//! matrices into routed [`FlowSpec`]s.

use crate::fluid::FlowSpec;
use crate::network::SimNetwork;
use topoopt_collectives::ring::{ring_bytes_per_node, RingPermutation};
use topoopt_graph::TrafficMatrix;

/// How one AllReduce group's traffic is laid onto rings.
#[derive(Debug, Clone)]
pub struct AllReducePlan {
    /// The ring permutations the group's bytes are load-balanced over (one
    /// per allocated interface for TopoOpt; a single natural +1 ring for the
    /// switched baselines).
    pub permutations: Vec<RingPermutation>,
    /// Total parameter bytes the group synchronises per iteration.
    pub bytes: f64,
}

impl AllReducePlan {
    /// A single natural (+1) ring over `members` — the default AllReduce
    /// layout for switched fabrics.
    pub fn natural_ring(members: Vec<usize>, bytes: f64) -> Self {
        AllReducePlan { permutations: vec![RingPermutation::new(members, 1)], bytes }
    }
}

/// Build the flows of one AllReduce plan on `net`: the bytes are split
/// evenly across the plan's permutations; every ring edge becomes one flow
/// of `2·share·(k-1)/k` bytes routed over the network.
pub fn allreduce_flows(net: &SimNetwork, plan: &AllReducePlan) -> Vec<FlowSpec> {
    let mut flows = Vec::new();
    if plan.permutations.is_empty() || plan.bytes <= 0.0 {
        return flows;
    }
    let share = plan.bytes / plan.permutations.len() as f64;
    for perm in &plan.permutations {
        let k = perm.len();
        if k < 2 {
            continue;
        }
        let per_node = ring_bytes_per_node(share, k);
        for (src, dst) in perm.edges() {
            if let Some(path) = net.path(src, dst) {
                flows.push(
                    FlowSpec::new(path, per_node).with_relay_factor(net.relay_factor(src, dst)),
                );
            } else {
                // Unroutable on this fabric (e.g. forwarding disabled and no
                // direct circuit): represented as an infinite-cost flow by
                // giving it an empty-capacity single-hop virtual path through
                // itself — callers detect it via the missing route instead.
                flows.push(FlowSpec {
                    src,
                    dst,
                    bytes: per_node,
                    path: vec![src, dst],
                    start_s: 0.0,
                    relay_factor: 1.0,
                });
            }
        }
    }
    flows
}

/// Build one flow per non-zero entry of the model-parallel demand matrix,
/// routed over the network.
pub fn mp_flows(net: &SimNetwork, mp: &TrafficMatrix) -> Vec<FlowSpec> {
    let mut flows = Vec::new();
    for (src, dst, bytes) in mp.entries_desc() {
        if let Some(path) = net.path(src, dst) {
            flows.push(FlowSpec::new(path, bytes).with_relay_factor(net.relay_factor(src, dst)));
        } else {
            flows.push(FlowSpec {
                src,
                dst,
                bytes,
                path: vec![src, dst],
                start_s: 0.0,
                relay_factor: 1.0,
            });
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SimNetwork;
    use topoopt_graph::topologies;

    #[test]
    fn natural_ring_plan_builds_one_flow_per_edge() {
        let g = topologies::ideal_switch(8, 100.0e9);
        let net = SimNetwork::without_rules(g, 8);
        let plan = AllReducePlan::natural_ring((0..8).collect(), 1.0e9);
        let flows = allreduce_flows(&net, &plan);
        assert_eq!(flows.len(), 8);
        // Each flow carries 2 * (1/1) GB * 7/8.
        let expected = ring_bytes_per_node(1.0e9, 8);
        for f in &flows {
            assert!((f.bytes - expected).abs() < 1.0);
            assert!(f.hops() == 2); // server -> hub -> server
        }
    }

    #[test]
    fn multi_permutation_plan_splits_bytes() {
        let g = topologies::from_permutations(16, &[1, 3, 7], 25.0e9);
        let net = SimNetwork::without_rules(g, 16);
        let plan = AllReducePlan {
            permutations: vec![
                RingPermutation::new((0..16).collect(), 1),
                RingPermutation::new((0..16).collect(), 3),
                RingPermutation::new((0..16).collect(), 7),
            ],
            bytes: 3.0e9,
        };
        let flows = allreduce_flows(&net, &plan);
        assert_eq!(flows.len(), 48);
        // Every ring edge has a direct physical link, so each flow is 1 hop.
        assert!(flows.iter().all(|f| f.hops() == 1));
        let single = allreduce_flows(&net, &AllReducePlan::natural_ring((0..16).collect(), 3.0e9));
        assert!(flows[0].bytes < single[0].bytes);
    }

    #[test]
    fn mp_flows_follow_routing() {
        let g = topologies::from_permutations(8, &[1], 25.0e9);
        let net = SimNetwork::without_rules(g, 8);
        let mut mp = TrafficMatrix::new(8);
        mp.set(0, 3, 5.0e6);
        mp.set(3, 0, 5.0e6);
        let flows = mp_flows(&net, &mp);
        assert_eq!(flows.len(), 2);
        let f03 = flows.iter().find(|f| f.src == 0 && f.dst == 3).unwrap();
        assert_eq!(f03.hops(), 3); // 0 -> 1 -> 2 -> 3 on a +1 ring
    }

    #[test]
    fn empty_plan_or_empty_matrix_produce_no_flows() {
        let g = topologies::ideal_switch(4, 1.0e9);
        let net = SimNetwork::without_rules(g, 4);
        assert!(
            allreduce_flows(&net, &AllReducePlan { permutations: vec![], bytes: 1.0 }).is_empty()
        );
        assert!(mp_flows(&net, &TrafficMatrix::new(4)).is_empty());
    }
}
