//! The simulated network: a physical topology, its routing rules, and the
//! set of server nodes.

use topoopt_core::Routing;
use topoopt_graph::paths::{bfs_shortest_path, path_length_cdf};
use topoopt_graph::Graph;
use topoopt_rdma::ForwardingPlan;

/// The kernel-relay penalty of host-based RDMA forwarding (§6, Appendix I):
/// the NPAR forwarding plan of the fabric plus the measured per-relay
/// throughput multiplier.
#[derive(Debug, Clone)]
pub struct RelayOverhead {
    /// Destination-keyed forwarding rules derived from the fabric's
    /// topology and routing (`topoopt_rdma::build_forwarding_plan`).
    pub plan: ForwardingPlan,
    /// Per-relay-hop throughput multiplier (< 1 models the kernel path's
    /// penalty versus NIC offload; 1.0 = relaying is free).
    pub relay_efficiency: f64,
}

/// A network under simulation. Servers are nodes `0..num_servers`; any
/// further nodes are switches (fat-tree) or hubs (ideal switch).
#[derive(Debug, Clone)]
pub struct SimNetwork {
    /// Physical topology with per-link capacities.
    pub graph: Graph,
    /// Number of server nodes.
    pub num_servers: usize,
    /// Explicit routing rules (TopoOpt installs coin-change + shortest-path
    /// rules); pairs without a rule fall back to BFS shortest path.
    pub routing: Routing,
    /// Per-hop propagation delay in seconds (1 µs in the paper's
    /// simulations).
    pub per_hop_latency_s: f64,
    /// Whether servers may relay traffic for other servers (host-based
    /// forwarding). When false, a flow whose shortest path crosses another
    /// server is considered unroutable on this fabric (SiP-ML's behaviour).
    pub host_forwarding: bool,
    /// RDMA forwarding-plane penalty model. `None` (the default) prices
    /// relaying as free — switched baselines and the pre-§6 abstract
    /// fabrics.
    pub relay: Option<RelayOverhead>,
}

impl SimNetwork {
    /// Create a network with default 1 µs per-hop latency and host
    /// forwarding enabled.
    pub fn new(graph: Graph, num_servers: usize, routing: Routing) -> Self {
        SimNetwork {
            graph,
            num_servers,
            routing,
            per_hop_latency_s: 1.0e-6,
            host_forwarding: true,
            relay: None,
        }
    }

    /// Create a network without explicit routing rules (all paths fall back
    /// to shortest path) — used for the switched baselines.
    pub fn without_rules(graph: Graph, num_servers: usize) -> Self {
        Self::new(graph, num_servers, Routing::new())
    }

    /// Disable host-based forwarding (SiP-ML / OCS-reconfig-noFW).
    pub fn with_host_forwarding(mut self, enabled: bool) -> Self {
        self.host_forwarding = enabled;
        self
    }

    /// Attach the RDMA forwarding plane: flows between relayed server pairs
    /// are rate-capped by `relay_efficiency` per kernel relay (see
    /// [`crate::fluid::FlowSpec::relay_factor`]).
    pub fn with_relay_overhead(mut self, plan: ForwardingPlan, relay_efficiency: f64) -> Self {
        self.relay = Some(RelayOverhead { plan, relay_efficiency });
        self
    }

    /// Rate multiplier of the logical connection between two servers:
    /// `relay_efficiency ^ relays` under the attached forwarding plan, 1.0
    /// when no plan is attached (or for self-pairs). Pairs the plan has no
    /// route for return 0.0 (their flows are stuck at rate zero, the
    /// fluid-level equivalent of "no logical RDMA connection").
    pub fn relay_factor(&self, src: usize, dst: usize) -> f64 {
        match &self.relay {
            Some(r) => r.plan.effective_throughput_factor(src, dst, r.relay_efficiency),
            None => 1.0,
        }
    }

    /// Path between two servers, applying the host-forwarding policy: when
    /// forwarding is disabled, only paths whose intermediate nodes are all
    /// switches (ids `>= num_servers`) are allowed.
    pub fn path(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        let p = self.routing.path_or_shortest(&self.graph, src, dst)?;
        if !self.host_forwarding {
            let relayed_through_host =
                p[1..p.len().saturating_sub(1)].iter().any(|&v| v < self.num_servers);
            if relayed_through_host {
                return None;
            }
        }
        Some(p)
    }

    /// Hop-count CDF between all node pairs of the *server-only* subgraph
    /// seen through routing (Figure 14). Pairs without a path are skipped.
    pub fn server_path_length_cdf(&self) -> Vec<usize> {
        // When explicit routing rules exist, measure those; otherwise fall
        // back to graph shortest paths.
        if !self.routing.is_empty() {
            let mut v: Vec<usize> = Vec::new();
            for s in 0..self.num_servers {
                for d in 0..self.num_servers {
                    if s == d {
                        continue;
                    }
                    if let Some(p) = self.routing.path(s, d) {
                        v.push(p.len() - 1);
                    } else if let Some(p) = bfs_shortest_path(&self.graph, s, d) {
                        v.push(p.len() - 1);
                    }
                }
            }
            v.sort_unstable();
            v
        } else {
            path_length_cdf(&self.graph).into_iter().collect()
        }
    }

    /// Average server-to-server path length in hops.
    pub fn average_server_path_length(&self) -> f64 {
        let cdf = self.server_path_length_cdf();
        if cdf.is_empty() {
            0.0
        } else {
            cdf.iter().sum::<usize>() as f64 / cdf.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topoopt_graph::topologies;

    #[test]
    fn shortest_path_fallback_works() {
        let g = topologies::from_permutations(8, &[1], 10.0e9);
        let net = SimNetwork::without_rules(g, 8);
        let p = net.path(0, 3).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3]);
    }

    #[test]
    fn forwarding_policy_blocks_host_relays() {
        let g = topologies::from_permutations(8, &[1], 10.0e9);
        let net = SimNetwork::without_rules(g, 8).with_host_forwarding(false);
        // 0 -> 3 requires relaying through servers 1 and 2: not allowed.
        assert!(net.path(0, 3).is_none());
        // Direct neighbours are fine.
        assert!(net.path(0, 1).is_some());
    }

    #[test]
    fn switch_relays_are_allowed_without_host_forwarding() {
        let g = topologies::ideal_switch(4, 100.0e9);
        let net = SimNetwork::without_rules(g, 4).with_host_forwarding(false);
        // 0 -> 2 goes through the hub (node 4, a switch): allowed.
        let p = net.path(0, 2).unwrap();
        assert_eq!(p, vec![0, 4, 2]);
    }

    #[test]
    fn explicit_rules_take_precedence() {
        let g = topologies::from_permutations(6, &[1, 5], 10.0e9);
        let mut routing = Routing::new();
        routing.insert(0, 2, vec![0, 1, 2]);
        let net = SimNetwork::new(g, 6, routing);
        assert_eq!(net.path(0, 2).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn path_length_cdf_is_sorted() {
        let g = topologies::from_permutations(16, &[1, 3, 7], 10.0e9);
        let net = SimNetwork::without_rules(g, 16);
        let cdf = net.server_path_length_cdf();
        assert!(!cdf.is_empty());
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!(net.average_server_path_length() >= 1.0);
    }
}
