//! Simulation of one training iteration on a dedicated network.
//!
//! An iteration consists of the busiest server's compute time plus the
//! completion time of all of the iteration's network transfers (AllReduce
//! ring flows and model-parallel flows), simulated together under max-min
//! fair sharing. This matches the no-overlap formulation the paper uses for
//! its analysis (§5.4, Eq. 1) while still capturing contention between the
//! two traffic classes, multi-hop forwarding, and load imbalance.

use crate::flows::{allreduce_flows, mp_flows, AllReducePlan};
use crate::fluid::{simulate_flows, FluidResult};
use crate::network::SimNetwork;
use serde::{Deserialize, Serialize};
use topoopt_strategy::TrafficDemands;

/// Simulation parameters of one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationParams {
    /// Compute time of the busiest server (seconds), typically taken from
    /// the strategy cost model.
    pub compute_s: f64,
}

/// Result of simulating one iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationResult {
    /// Compute portion (input, echoed back).
    pub compute_s: f64,
    /// Communication completion time (seconds): when the last AllReduce or
    /// MP flow finished.
    pub comm_s: f64,
    /// Total iteration time (compute + communication).
    pub total_s: f64,
    /// Bandwidth tax of the iteration's traffic (carried / demanded bytes).
    pub bandwidth_tax: f64,
    /// Sorted per-link carried bytes (Figure 15's CDF).
    pub link_traffic_cdf: Vec<f64>,
    /// True if some transfer could not be routed (e.g. forwarding disabled
    /// on a direct-connect fabric without the needed circuit).
    pub unroutable: bool,
}

/// Simulate one training iteration of a job whose demands are `demands`,
/// with the AllReduce traffic laid out according to `plans` (one entry per
/// AllReduce group).
pub fn simulate_iteration(
    net: &SimNetwork,
    demands: &TrafficDemands,
    plans: &[AllReducePlan],
    params: &IterationParams,
) -> IterationResult {
    let mut flows = Vec::new();
    for plan in plans {
        flows.extend(allreduce_flows(net, plan));
    }
    flows.extend(mp_flows(net, &demands.mp));

    let result: FluidResult = simulate_flows(&net.graph, &flows, net.per_hop_latency_s);
    let unroutable = result.completion_s.iter().any(|c| c.is_infinite());
    let comm_s = if unroutable { f64::INFINITY } else { result.makespan_s };
    IterationResult {
        compute_s: params.compute_s,
        comm_s,
        total_s: params.compute_s + comm_s,
        bandwidth_tax: result.bandwidth_tax(),
        link_traffic_cdf: result.link_traffic_cdf(),
        unroutable,
    }
}

/// Default AllReduce plans for a switched fabric: every group runs a single
/// natural ring.
pub fn natural_ring_plans(demands: &TrafficDemands) -> Vec<AllReducePlan> {
    demands
        .allreduce_groups
        .iter()
        .map(|g| AllReducePlan::natural_ring(g.members.clone(), g.bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SimNetwork;
    use topoopt_core::topology_finder::{topology_finder, TopologyFinderInput};
    use topoopt_core::totient::TotientPermsConfig;
    use topoopt_graph::matching::MatchingAlgo;
    use topoopt_graph::topologies;
    use topoopt_models::zoo::build_dlrm;
    use topoopt_models::DlrmConfig;
    use topoopt_strategy::{extract_traffic, ParallelizationStrategy};

    fn dlrm_demands(n: usize) -> TrafficDemands {
        let m = build_dlrm(&DlrmConfig::shared());
        let s = ParallelizationStrategy::hybrid_embeddings_round_robin(&m, n);
        extract_traffic(&m, &s, 4)
    }

    fn topoopt_network(
        demands: &TrafficDemands,
        n: usize,
        d: usize,
        bps: f64,
    ) -> (SimNetwork, Vec<AllReducePlan>) {
        let out = topology_finder(&TopologyFinderInput {
            num_servers: n,
            degree: d,
            link_bps: bps,
            demands,
            totient: TotientPermsConfig::default(),
            matching: MatchingAlgo::Auto,
            mp_shortest_path: false,
            availability_aware: false,
        });
        let plans: Vec<AllReducePlan> = out
            .groups
            .iter()
            .map(|g| AllReducePlan { permutations: g.permutations(), bytes: g.bytes })
            .collect();
        (SimNetwork::new(out.graph, n, out.routing), plans)
    }

    #[test]
    fn iteration_time_includes_compute_and_comm() {
        let n = 16;
        let demands = dlrm_demands(n);
        let g = topologies::ideal_switch(n, 400.0e9);
        let net = SimNetwork::without_rules(g, n);
        let plans = natural_ring_plans(&demands);
        let r = simulate_iteration(&net, &demands, &plans, &IterationParams { compute_s: 0.05 });
        assert!(r.comm_s > 0.0 && r.comm_s.is_finite());
        assert!((r.total_s - (0.05 + r.comm_s)).abs() < 1e-12);
        assert!(!r.unroutable);
    }

    #[test]
    fn ideal_switch_has_unit_bandwidth_tax() {
        let n = 16;
        let demands = dlrm_demands(n);
        let g = topologies::ideal_switch(n, 400.0e9);
        let net = SimNetwork::without_rules(g, n);
        let plans = natural_ring_plans(&demands);
        let r = simulate_iteration(&net, &demands, &plans, &IterationParams { compute_s: 0.0 });
        // Every path is server -> hub -> server: 2 physical hops, but the
        // hub is a switch, so hosts never relay. The conventional bandwidth
        // tax counts host-relayed bytes; in our accounting the switched path
        // doubles the carried bytes, so compare fabrics with the same
        // convention (see fig13 harness). Here we only check it is finite
        // and at least 1.
        assert!(r.bandwidth_tax >= 1.0);
        assert!(r.bandwidth_tax.is_finite());
    }

    #[test]
    fn topoopt_beats_cost_equivalent_single_link_fabric_for_dlrm() {
        // TopoOpt with d=4 x 25G per server vs a "Fat-tree-like" fabric
        // where each server has a single 25G link to a big switch (the
        // cost-equivalent comparison of §5.3 at the B' chosen by the cost
        // model). TopoOpt should finish its communication faster.
        let n = 16;
        let demands = dlrm_demands(n);
        let (topo_net, plans) = topoopt_network(&demands, n, 4, 25.0e9);
        let topo =
            simulate_iteration(&topo_net, &demands, &plans, &IterationParams { compute_s: 0.0 });

        let ft = topologies::ideal_switch(n, 25.0e9);
        let ft_net = SimNetwork::without_rules(ft, n);
        let ft_plans = natural_ring_plans(&demands);
        let fat =
            simulate_iteration(&ft_net, &demands, &ft_plans, &IterationParams { compute_s: 0.0 });
        assert!(
            topo.comm_s < fat.comm_s,
            "TopoOpt {} should beat single-link fabric {}",
            topo.comm_s,
            fat.comm_s
        );
    }

    #[test]
    fn topoopt_close_to_ideal_switch_same_total_bandwidth() {
        // Figure 11: for mostly-data-parallel traffic TopoOpt tracks the
        // Ideal Switch with the same per-server bandwidth (d*B).
        let n = 16;
        let m = build_dlrm(&DlrmConfig::shared());
        let s = ParallelizationStrategy::pure_data_parallel(&m, n);
        let demands = extract_traffic(&m, &s, 4);
        let (topo_net, plans) = topoopt_network(&demands, n, 4, 25.0e9);
        let topo =
            simulate_iteration(&topo_net, &demands, &plans, &IterationParams { compute_s: 0.0 });
        let ideal = {
            let g = topologies::ideal_switch(n, 100.0e9);
            let net = SimNetwork::without_rules(g, n);
            simulate_iteration(
                &net,
                &demands,
                &natural_ring_plans(&demands),
                &IterationParams { compute_s: 0.0 },
            )
        };
        assert!(topo.comm_s < ideal.comm_s * 2.0);
        assert!(ideal.comm_s < topo.comm_s * 2.0);
    }

    #[test]
    fn disabling_forwarding_makes_multi_hop_transfers_unroutable() {
        let n = 16;
        let demands = dlrm_demands(n);
        let (net, plans) = topoopt_network(&demands, n, 2, 25.0e9);
        let no_fw = net.clone().with_host_forwarding(false);
        let r = simulate_iteration(&no_fw, &demands, &plans, &IterationParams { compute_s: 0.0 });
        // With degree 2 the MP all-to-all needs relays; disabling forwarding
        // leaves some transfers unroutable.
        assert!(r.unroutable);
        assert!(r.total_s.is_infinite());
    }

    #[test]
    fn relay_overhead_slows_relayed_iterations_and_unit_efficiency_is_free() {
        // Degree 2 forces most MP pairs through relays, so the kernel
        // penalty is makespan-critical.
        let n = 16;
        let demands = dlrm_demands(n);
        let (net, plans) = topoopt_network(&demands, n, 2, 25.0e9);
        let plan = topoopt_rdma::build_forwarding_plan(&net.graph, n, &net.routing);
        assert!(plan.relayed_fraction() > 0.0, "fabric should have relayed pairs");
        let base = simulate_iteration(&net, &demands, &plans, &IterationParams { compute_s: 0.0 });
        let free = simulate_iteration(
            &net.clone().with_relay_overhead(plan.clone(), 1.0),
            &demands,
            &plans,
            &IterationParams { compute_s: 0.0 },
        );
        // relay_efficiency = 1.0 is bit-identical to the plan-less fabric.
        assert_eq!(base, free);
        let taxed = simulate_iteration(
            &net.clone().with_relay_overhead(plan, 0.3),
            &demands,
            &plans,
            &IterationParams { compute_s: 0.0 },
        );
        assert!(
            taxed.comm_s > base.comm_s,
            "kernel relays at 30% efficiency must slow the iteration: {} vs {}",
            taxed.comm_s,
            base.comm_s
        );
    }

    #[test]
    fn bandwidth_tax_grows_with_mp_share() {
        let n = 16;
        let m_small = build_dlrm(&DlrmConfig::all_to_all(32));
        let m_large = build_dlrm(&DlrmConfig::all_to_all(512));
        let tax = |m: &topoopt_models::DnnModel| {
            let s = ParallelizationStrategy::hybrid_embeddings_round_robin(m, n);
            let demands = extract_traffic(m, &s, 4);
            let (net, plans) = topoopt_network(&demands, n, 4, 25.0e9);
            simulate_iteration(&net, &demands, &plans, &IterationParams { compute_s: 0.0 })
                .bandwidth_tax
        };
        assert!(tax(&m_large) >= tax(&m_small));
    }
}
