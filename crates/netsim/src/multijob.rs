//! Shared-cluster simulation (§5.6): several jobs, each on its own set of
//! servers, sharing (or not sharing) the physical fabric.
//!
//! On TopoOpt every job gets a dedicated shard of optical ports, so jobs
//! never contend; on a Fat-tree the jobs' flows compete inside the shared
//! core. Both cases are handled by simply simulating all jobs' flows on the
//! same graph — for TopoOpt that graph is the union of disjoint per-job
//! topologies.

use crate::flows::{allreduce_flows, mp_flows, AllReducePlan};
use crate::fluid::{simulate_flows, FlowSpec};
use crate::network::SimNetwork;
use serde::{Deserialize, Serialize};
use topoopt_collectives::ring::RingPermutation;
use topoopt_graph::TrafficMatrix;
use topoopt_strategy::TrafficDemands;

/// One job in a shared cluster: its flows (already mapped to global server
/// ids) and its compute time.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job label (model name).
    pub name: String,
    /// The job's network flows for one iteration, over global node ids.
    pub flows: Vec<FlowSpec>,
    /// Compute time of the job's busiest server.
    pub compute_s: f64,
}

/// Result of one shared-cluster round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedClusterResult {
    /// Per-job iteration times (compute + that job's own communication
    /// completion), in the order the jobs were supplied.
    pub per_job_total_s: Vec<f64>,
    /// Mean iteration time across jobs.
    pub average_s: f64,
    /// 99th-percentile iteration time across jobs (Figure 16b).
    pub p99_s: f64,
}

/// Remap a job's local traffic demands onto global server ids and build its
/// flows on the shared network. `server_map[i]` is the global id of the
/// job's local server `i`.
pub fn build_job_flows(
    net: &SimNetwork,
    demands: &TrafficDemands,
    plans: &[AllReducePlan],
    server_map: &[usize],
) -> Vec<FlowSpec> {
    assert_eq!(demands.num_servers, server_map.len());
    // Remap the MP matrix.
    let mut mp = TrafficMatrix::new(net.num_servers);
    for (src, dst, bytes) in demands.mp.entries_desc() {
        mp.add(server_map[src], server_map[dst], bytes);
    }
    // Remap the AllReduce plans.
    let global_plans: Vec<AllReducePlan> = plans
        .iter()
        .map(|p| AllReducePlan {
            bytes: p.bytes,
            permutations: p
                .permutations
                .iter()
                .map(|perm| {
                    RingPermutation::new(
                        perm.members.iter().map(|&m| server_map[m]).collect(),
                        perm.stride,
                    )
                })
                .collect(),
        })
        .collect();
    let mut flows = Vec::new();
    for p in &global_plans {
        flows.extend(allreduce_flows(net, p));
    }
    flows.extend(mp_flows(net, &mp));
    flows
}

/// Simulate one round of a shared cluster: all jobs' flows coexist on the
/// fabric; each job's iteration time is its compute time plus the completion
/// of the last of its own flows.
pub fn simulate_shared_cluster(net: &SimNetwork, jobs: &[JobSpec]) -> SharedClusterResult {
    let all_flows: Vec<FlowSpec> = jobs.iter().flat_map(|j| j.flows.clone()).collect();
    let sim = simulate_flows(&net.graph, &all_flows, net.per_hop_latency_s);

    let mut per_job = Vec::with_capacity(jobs.len());
    let mut idx = 0usize;
    for job in jobs {
        let mut comm = 0.0f64;
        for _ in 0..job.flows.len() {
            comm = comm.max(sim.completion_s[idx]);
            idx += 1;
        }
        per_job.push(job.compute_s + comm);
    }
    let average =
        if per_job.is_empty() { 0.0 } else { per_job.iter().sum::<f64>() / per_job.len() as f64 };
    let p99 = percentile(&per_job, 0.99);
    SharedClusterResult { per_job_total_s: per_job, average_s: average, p99_s: p99 }
}

/// Percentile (nearest-rank) of a slice.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
    v[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use topoopt_graph::topologies;

    fn small_demands(n: usize, bytes: f64) -> TrafficDemands {
        TrafficDemands {
            num_servers: n,
            allreduce_groups: vec![topoopt_strategy::AllReduceGroup {
                members: (0..n).collect(),
                bytes,
            }],
            mp: TrafficMatrix::new(n),
            samples_per_server: 1.0,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 0.5), 50.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
    }

    #[test]
    fn disjoint_shards_do_not_interfere() {
        // Two 4-server jobs on disjoint rings of a direct-connect fabric.
        let mut g = topoopt_graph::Graph::new(8);
        for base in [0usize, 4] {
            for i in 0..4 {
                g.add_edge(base + i, base + (i + 1) % 4, 100.0e9);
            }
        }
        let net = SimNetwork::without_rules(g, 8);
        let demands = small_demands(4, 1.0e9);
        let plans = vec![AllReducePlan::natural_ring((0..4).collect(), 1.0e9)];
        let job_a = JobSpec {
            name: "a".into(),
            flows: build_job_flows(&net, &demands, &plans, &[0, 1, 2, 3]),
            compute_s: 0.0,
        };
        let job_b = JobSpec {
            name: "b".into(),
            flows: build_job_flows(&net, &demands, &plans, &[4, 5, 6, 7]),
            compute_s: 0.0,
        };
        let both = simulate_shared_cluster(&net, &[job_a.clone(), job_b.clone()]);
        let solo = simulate_shared_cluster(&net, &[job_a]);
        assert!((both.per_job_total_s[0] - solo.per_job_total_s[0]).abs() < 1e-9);
    }

    #[test]
    fn sharing_one_fabric_slows_jobs_down() {
        // Two jobs whose rings share the same hub links contend.
        let g = topologies::ideal_switch(8, 50.0e9);
        let net = SimNetwork::without_rules(g, 8);
        let demands = small_demands(8, 1.0e9);
        let plans = vec![AllReducePlan::natural_ring((0..8).collect(), 1.0e9)];
        let map: Vec<usize> = (0..8).collect();
        let job = JobSpec {
            name: "j".into(),
            flows: build_job_flows(&net, &demands, &plans, &map),
            compute_s: 0.0,
        };
        let solo = simulate_shared_cluster(&net, std::slice::from_ref(&job));
        let loaded = simulate_shared_cluster(&net, &[job.clone(), job.clone(), job]);
        assert!(loaded.average_s > solo.average_s * 1.5);
        assert!(loaded.p99_s >= loaded.average_s);
    }

    #[test]
    fn per_job_results_align_with_input_order() {
        let g = topologies::ideal_switch(4, 100.0e9);
        let net = SimNetwork::without_rules(g, 4);
        let demands = small_demands(4, 1.0e9);
        let plans = vec![AllReducePlan::natural_ring((0..4).collect(), 1.0e9)];
        let busy = JobSpec {
            name: "busy".into(),
            flows: build_job_flows(&net, &demands, &plans, &[0, 1, 2, 3]),
            compute_s: 0.0,
        };
        let idle = JobSpec { name: "idle".into(), flows: vec![], compute_s: 0.25 };
        let r = simulate_shared_cluster(&net, &[busy, idle]);
        assert_eq!(r.per_job_total_s.len(), 2);
        assert!((r.per_job_total_s[1] - 0.25).abs() < 1e-12);
        assert!(r.per_job_total_s[0] > 0.0);
    }
}
