//! Shared-cluster simulation (§5.6): several jobs, each on its own set of
//! servers, sharing (or not sharing) the physical fabric.
//!
//! On TopoOpt every job gets a dedicated shard of optical ports, so jobs
//! never contend; on a Fat-tree the jobs' flows compete inside the shared
//! core. Both cases are handled by simply simulating all jobs' flows on the
//! same graph — for TopoOpt that graph is the union of disjoint per-job
//! topologies.
//!
//! Two layers live here:
//!
//! * [`simulate_shared_cluster`] — one *round*: a static set of co-resident
//!   jobs, each contributing one iteration's flows (offset by the job's
//!   [`JobSpec::arrival_s`]), simulated together on the fluid engine.
//! * [`simulate_dynamic_cluster`] — the dynamic layer: jobs arrive over
//!   time, queue for servers ([`topoopt_cluster::ClusterShards`]), train for
//!   a number of iterations, and depart. On a partitioned TopoOpt fabric
//!   every transition rewires the patch panel through the Active/Look-ahead
//!   provisioner ([`topoopt_cluster::LookaheadProvisioner`]), so a job pays
//!   the `switch_over_delay` that pre-provisioning could not hide.

use crate::arena::{dense_u32, LinkId};
use crate::engine::{EngineStats, FaultEvent, FlowId, FluidEngine};
use crate::flows::{allreduce_flows, mp_flows, AllReducePlan};
use crate::fluid::{simulate_flows, FlowSpec, LinkKey};
use crate::network::SimNetwork;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use topoopt_cluster::{ClusterShards, LookaheadProvisioner, TransitionRecord, TransitionSchedule};
use topoopt_collectives::ring::RingPermutation;
use topoopt_graph::{Graph, TrafficMatrix};
use topoopt_strategy::TrafficDemands;

/// Typed dense job index: position of a job in the slice handed to the
/// simulator. All internal bookkeeping — running-job records, the shared
/// round core, per-job completion scans — is keyed by `JobId`; job *names*
/// live only in the report-side tables ([`DynamicJobOutcome::name`]), so
/// the hot loops never hash or clone a string per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

impl JobId {
    /// Checked constructor from a job's position in the input slice: the
    /// dense-id counterpart of `arena::dense_u32`, so `topoopt-lint`'s
    /// `truncating-cast` rule can require all `JobId` construction to go
    /// through a bounds check instead of a silent `as u32`.
    pub fn from_usize(i: usize) -> Self {
        JobId(dense_u32(i))
    }

    /// The job's position in the input slice (and every per-job array).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One job in a shared cluster: its flows (already mapped to global server
/// ids) and its compute time.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job label (model name).
    pub name: String,
    /// The job's network flows for one iteration, over global node ids.
    pub flows: Vec<FlowSpec>,
    /// Compute time of the job's busiest server.
    pub compute_s: f64,
    /// When the job's round starts relative to the simulation origin; its
    /// flows are offset by this amount and its communication time is
    /// measured from here. 0 reproduces the static all-start-together round.
    pub arrival_s: f64,
}

impl JobSpec {
    /// A job whose round starts at time zero.
    pub fn new(name: impl Into<String>, flows: Vec<FlowSpec>, compute_s: f64) -> Self {
        JobSpec { name: name.into(), flows, compute_s, arrival_s: 0.0 }
    }

    /// Same job, starting its round at `arrival_s`.
    pub fn with_arrival(mut self, arrival_s: f64) -> Self {
        self.arrival_s = arrival_s;
        self
    }
}

/// Result of one shared-cluster round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedClusterResult {
    /// Per-job iteration times (compute + that job's own communication
    /// completion), in the order the jobs were supplied.
    pub per_job_total_s: Vec<f64>,
    /// Mean iteration time across jobs.
    pub average_s: f64,
    /// 99th-percentile iteration time across jobs (Figure 16b).
    pub p99_s: f64,
}

/// Remap a job's local traffic demands onto global server ids and build its
/// flows on the shared network. `server_map[i]` is the global id of the
/// job's local server `i`.
pub fn build_job_flows(
    net: &SimNetwork,
    demands: &TrafficDemands,
    plans: &[AllReducePlan],
    server_map: &[usize],
) -> Vec<FlowSpec> {
    assert_eq!(demands.num_servers, server_map.len());
    // Remap the MP matrix.
    let mut mp = TrafficMatrix::new(net.num_servers);
    for (src, dst, bytes) in demands.mp.entries_desc() {
        mp.add(server_map[src], server_map[dst], bytes);
    }
    // Remap the AllReduce plans.
    let global_plans: Vec<AllReducePlan> = plans
        .iter()
        .map(|p| AllReducePlan {
            bytes: p.bytes,
            permutations: p
                .permutations
                .iter()
                .map(|perm| {
                    RingPermutation::new(
                        perm.members.iter().map(|&m| server_map[m]).collect(),
                        perm.stride,
                    )
                })
                .collect(),
        })
        .collect();
    let mut flows = Vec::new();
    for p in &global_plans {
        flows.extend(allreduce_flows(net, p));
    }
    flows.extend(mp_flows(net, &mp));
    flows
}

/// Simulate one round of a shared cluster: all jobs' flows coexist on the
/// fabric; each job's iteration time is its compute time plus the completion
/// of the last of its own flows (measured from the job's arrival).
///
/// The independent per-job flow sets are constructed in parallel with
/// rayon; the engine then simulates them together, re-rating only the
/// connected component each completion touches — disjoint TopoOpt shards
/// never pay for each other's events.
pub fn simulate_shared_cluster(net: &SimNetwork, jobs: &[JobSpec]) -> SharedClusterResult {
    simulate_shared_cluster_stats(net, jobs).0
}

/// [`simulate_shared_cluster`] returning the fluid engine's work counters
/// alongside the result, so scale experiments can report how much
/// incremental/sharded recomputation the round actually cost (events,
/// waterfills, largest re-rated component).
pub fn simulate_shared_cluster_stats(
    net: &SimNetwork,
    jobs: &[JobSpec],
) -> (SharedClusterResult, EngineStats) {
    let per_job_flows: Vec<Vec<FlowSpec>> = jobs
        .par_iter()
        .map(|job| {
            job.flows
                .iter()
                .map(|f| {
                    let mut f = f.clone();
                    f.start_s += job.arrival_s;
                    f
                })
                .collect()
        })
        .collect();
    let arrivals: Vec<f64> = jobs.iter().map(|j| j.arrival_s).collect();
    let computes: Vec<f64> = jobs.iter().map(|j| j.compute_s).collect();
    shared_round_times(net, per_job_flows, &arrivals, &computes)
}

/// Name-free shared-round core: each job is purely its [`JobId`] position
/// in the three parallel arrays (`flows_by_job[jid]` already offset by the
/// job's arrival, `arrivals[jid]`, `computes[jid]`), and each job's round
/// time is its compute plus the completion of the last of its own flows,
/// measured from its arrival.
///
/// Routes through a one-window [`SharedFabricEngine`]: every job is
/// admitted and the whole window re-rated, which is bit-identical to the
/// historical rebuild core ([`shared_round_times_rebuild`], kept as the
/// equivalence oracle and bench baseline) — same arena, same flow order,
/// same event sequence — while exercising the exact admit/restart/run
/// machinery the dynamic layer reuses across windows.
pub(crate) fn shared_round_times(
    net: &SimNetwork,
    flows_by_job: Vec<Vec<FlowSpec>>,
    arrivals: &[f64],
    computes: &[f64],
) -> (SharedClusterResult, EngineStats) {
    shared_round_times_with_faults(net, flows_by_job, arrivals, computes, &[])
}

/// [`shared_round_times`] on a degraded fabric: `faults` is the health
/// history in effect when the round starts (dead links, stragglers),
/// entering the window through the engine's event queue at offset 0 —
/// exactly how the persistent dynamic engine absorbed them.
pub(crate) fn shared_round_times_with_faults(
    net: &SimNetwork,
    flows_by_job: Vec<Vec<FlowSpec>>,
    arrivals: &[f64],
    computes: &[f64],
    faults: &[FaultEvent],
) -> (SharedClusterResult, EngineStats) {
    let mut sim = SharedFabricEngine::new(net);
    for &fault in faults {
        sim.inject_fault(fault);
    }
    let handles: Vec<usize> = flows_by_job
        .into_iter()
        .zip(computes)
        .map(|(flows, &compute_s)| sim.admit(flows, compute_s))
        .collect();
    sim.run_window();
    let per_job: Vec<f64> =
        handles.iter().zip(arrivals).map(|(&h, &a)| sim.round_total_from(h, a)).collect();
    (summarize_round(per_job), sim.engine_stats())
}

/// The historical rebuild-per-call round core: a fresh engine, every link
/// re-interned, every job's flows re-added, one monolithic-or-sharded run.
/// [`shared_round_times`] (and the dynamic loop's persistent window path)
/// must stay bit-identical to this; proptests in `tests/dynamic.rs` replay
/// random traces through both, and `benches/scale.rs` uses it as the
/// baseline the persistent engine is gated ≥5x against.
pub(crate) fn shared_round_times_rebuild(
    net: &SimNetwork,
    flows_by_job: Vec<Vec<FlowSpec>>,
    arrivals: &[f64],
    computes: &[f64],
    faults: &[FaultEvent],
) -> (SharedClusterResult, EngineStats) {
    let counts: Vec<usize> = flows_by_job.iter().map(|f| f.len()).collect();
    let mut engine = FluidEngine::new(&net.graph, net.per_hop_latency_s);
    for flows in flows_by_job {
        for f in flows {
            engine.add_flow(f);
        }
    }
    // Replay the cumulative health history (in injection order) as direct
    // state before the run: every flow is still pending, so this sets
    // effective capacities and straggler factors without any recompute —
    // the same degraded fabric the persistent engine carries across
    // windows, rebuilt from scratch.
    for &fault in faults {
        engine.apply_fault_now(fault);
    }
    engine.run();

    let mut per_job = Vec::with_capacity(counts.len());
    let mut idx = 0usize;
    for jid in 0..counts.len() {
        let mut comm = 0.0f64;
        for _ in 0..counts[jid] {
            comm = comm.max(engine.completion_s(idx) - arrivals[jid]);
            idx += 1;
        }
        per_job.push(computes[jid] + comm.max(0.0));
    }
    (summarize_round(per_job), engine.stats())
}

/// Mean / p99 summary over per-job round times.
fn summarize_round(per_job: Vec<f64>) -> SharedClusterResult {
    let average =
        if per_job.is_empty() { 0.0 } else { per_job.iter().sum::<f64>() / per_job.len() as f64 };
    let p99 = percentile(&per_job, 0.99);
    SharedClusterResult { per_job_total_s: per_job, average_s: average, p99_s: p99 }
}

/// Percentile (nearest-rank) of a slice.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(f64::total_cmp);
    let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
    v[rank - 1]
}

// ---------------------------------------------------------------------------
// Persistent shared-fabric engine: one FluidEngine across event windows.
// ---------------------------------------------------------------------------

/// Work counters for the dynamic layer's shared-fabric windows — the
/// observable payoff of window-level reuse. Engine-level counters (events,
/// waterfills, flows re-rated, largest component) are cumulative across
/// every window of the run; the window counters split how many
/// arrival/departure windows were served incrementally (at least one
/// resident job kept its cached round time) versus fully rebuilt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynamicEngineStats {
    /// Shared-fabric re-rate windows executed (arrivals + departures).
    pub windows: usize,
    /// Windows where at least one resident job reused its cached rate.
    pub windows_incremental: usize,
    /// Windows where every resident job had to be re-rated.
    pub windows_rebuilt: usize,
    /// Job-window re-ratings actually simulated.
    pub jobs_rerated: usize,
    /// Job-windows served from the per-component cache.
    pub jobs_reused: usize,
    /// Engine events processed across all windows.
    pub events: usize,
    /// Water-filling passes across all windows.
    pub waterfills: usize,
    /// Flows re-rated across all waterfills.
    pub flows_rerated: usize,
    /// Largest connected component ever re-waterfilled at once.
    pub max_component: usize,
}

/// One resident job inside a [`SharedFabricEngine`].
struct SharedSlot {
    /// The job's engine flow ids, ascending (admission order).
    flow_ids: Vec<FlowId>,
    /// Distinct links the job's flows touch, sorted — the job-level
    /// component index used to decide which residents an event window
    /// actually perturbs.
    links: Vec<LinkId>,
    compute_s: f64,
    /// Cached max completion over the job's flows from its last simulated
    /// window (−∞ when the job has no flows; +∞ when unroutable).
    comm_s: f64,
    /// Component id assigned by the last window (`u32::MAX` before the
    /// first).
    component: u32,
    /// Must be re-simulated next window (new arrival, or a component mate
    /// departed).
    dirty: bool,
}

/// Long-lived shared-fabric round simulator: one [`FluidEngine`] survives
/// across the dynamic cluster's event windows, so links intern once per
/// cluster lifetime, admission adds only the new job's flows
/// ([`FluidEngine::add_flow_parked`]), departure retires them
/// ([`FluidEngine::remove_flows`]), and each window restarts and re-rates
/// only the connected components the arrival/departure touched — every
/// other resident keeps its cached round time.
///
/// # Why the cache is exact
///
/// Each window simulates one round with every resident's flows starting at
/// their intra-round offsets on a clock rewound to zero, exactly like the
/// rebuild core. Disjoint components share no links, hence no float
/// operations: a component's completion times are a pure function of its
/// own flows and link capacities, so re-simulating an untouched component
/// would reproduce its cached values bit for bit. Job-level components
/// (over each job's distinct link set) are coarser than flow-level ones,
/// which keeps the dirty-propagation sound: any job sharing a link —
/// transitively — with a dirty job is re-rated too. The proptests in
/// `tests/dynamic.rs` hold this to `to_bits` equality against
/// [`shared_round_times_rebuild`].
pub(crate) struct SharedFabricEngine {
    engine: FluidEngine,
    per_hop_latency_s: f64,
    /// Resident jobs; handles are stable indices (freed slots are reused).
    slots: Vec<Option<SharedSlot>>,
    free: Vec<usize>,
    /// Cumulative window counters (engine counters live in `engine`).
    windows: DynamicEngineStats,
    /// Epoch-stamped scratch for the per-window job-component union-find.
    link_slot: Vec<u32>,
    link_stamp: Vec<u64>,
    epoch: u64,
    uf: Vec<u32>,
    /// Fault events injected since the last window; drained into the
    /// engine's event queue (offset 0) when the next window runs.
    pending_faults: Vec<FaultEvent>,
}

impl SharedFabricEngine {
    /// A persistent engine over the shared fabric; links intern here, once.
    pub fn new(net: &SimNetwork) -> Self {
        SharedFabricEngine {
            engine: FluidEngine::new(&net.graph, net.per_hop_latency_s),
            per_hop_latency_s: net.per_hop_latency_s,
            slots: Vec::new(),
            free: Vec::new(),
            windows: DynamicEngineStats::default(),
            link_slot: Vec::new(),
            link_stamp: Vec::new(),
            epoch: 0,
            uf: Vec::new(),
            pending_faults: Vec::new(),
        }
    }

    /// Inject a fabric fault (or recovery): every resident the fault can
    /// touch — a job crossing an affected link, or sourcing flows at a
    /// straggling server — is marked dirty, and the event itself enters the
    /// engine's queue at the start of the next window. Residents in other
    /// components keep their cached round times: their rates are a pure
    /// function of links the fault did not change.
    pub fn inject_fault(&mut self, fault: FaultEvent) {
        let lids = self.engine.fault_link_ids(&fault);
        let engine = &self.engine;
        for slot in self.slots.iter_mut().flatten() {
            let hit = match fault {
                FaultEvent::Straggler { server, .. } => {
                    slot.flow_ids.iter().any(|&f| engine.flow_src(f) == server)
                }
                _ => lids.iter().any(|lid| slot.links.binary_search(lid).is_ok()),
            };
            if hit {
                slot.dirty = true;
            }
        }
        self.pending_faults.push(fault);
    }

    /// Whether injected faults are still waiting for a window to absorb
    /// them (the dynamic loop forces a window even with no dirty resident,
    /// so admission probes never read stale health state).
    pub fn has_pending_faults(&self) -> bool {
        !self.pending_faults.is_empty()
    }

    /// Admit a job: park its flows in the engine (paths intern now, no
    /// events yet) and mark it dirty for the next window. Returns a stable
    /// slot handle.
    pub fn admit(&mut self, flows: Vec<FlowSpec>, compute_s: f64) -> usize {
        let mut flow_ids = Vec::with_capacity(flows.len());
        for f in flows {
            flow_ids.push(self.engine.add_flow_parked(f));
        }
        let mut links: Vec<LinkId> =
            flow_ids.iter().flat_map(|&f| self.engine.span(f).iter().copied()).collect();
        links.sort_unstable();
        links.dedup();
        let slot = SharedSlot {
            flow_ids,
            links,
            compute_s,
            comm_s: f64::NEG_INFINITY,
            component: u32::MAX,
            dirty: true,
        };
        match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        }
    }

    /// Retire a departing job: its component mates lose a contender (they
    /// re-rate next window), its flows leave the engine.
    pub fn retire(&mut self, handle: usize) {
        let slot = self.slots[handle].take().expect("retire of a live slot");
        if slot.component != u32::MAX {
            for s in self.slots.iter_mut().flatten() {
                if s.component == slot.component {
                    s.dirty = true;
                }
            }
        }
        self.engine.remove_flows(&slot.flow_ids);
        self.free.push(handle);
    }

    /// Simulate one event window: partition residents into job-level
    /// components over shared links, propagate dirtiness within each
    /// component, restart and re-rate exactly the dirty components'
    /// flows, and refresh their cached round times. Untouched components
    /// cost nothing — not even a restarted arrival event.
    pub fn run_window(&mut self) {
        // Job-level union-find over each slot's distinct link list,
        // epoch-stamped so the link→slot map never refills.
        let n = self.slots.len();
        self.epoch += 1;
        let epoch = self.epoch;
        let links_total = self.engine.link_count();
        if self.link_stamp.len() < links_total {
            self.link_stamp.resize(links_total, 0);
            self.link_slot.resize(links_total, 0);
        }
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize]; // path halving
                x = parent[x as usize];
            }
            x
        }
        let uf = &mut self.uf;
        uf.clear();
        uf.extend(0..dense_u32(n));
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            for &lid in &slot.links {
                let l = lid as usize;
                if self.link_stamp[l] != epoch {
                    self.link_stamp[l] = epoch;
                    self.link_slot[l] = dense_u32(i);
                } else {
                    let a = find(uf, dense_u32(i));
                    let b = find(uf, self.link_slot[l]);
                    if a != b {
                        uf[a as usize] = b;
                    }
                }
            }
        }
        // Dense component ids in ascending first-member order, then
        // propagate dirtiness to whole components.
        let mut component_of_root: Vec<u32> = vec![u32::MAX; n];
        let mut comp_dirty: Vec<bool> = Vec::new();
        let mut total_jobs = 0usize;
        for i in 0..n {
            let Some(slot) = &self.slots[i] else { continue };
            total_jobs += 1;
            let root = find(uf, dense_u32(i)) as usize;
            if component_of_root[root] == u32::MAX {
                component_of_root[root] = dense_u32(comp_dirty.len());
                comp_dirty.push(false);
            }
            let cid = component_of_root[root];
            comp_dirty[cid as usize] = comp_dirty[cid as usize] || slot.dirty;
            let slot = self.slots[i].as_mut().expect("checked above");
            slot.component = cid;
        }
        // Collect the dirty components' flows, ascending (admission order),
        // reproducing the rebuild core's flow ordering per component.
        let mut dirty_flows: Vec<FlowId> = Vec::new();
        let mut dirty_jobs = 0usize;
        for slot in self.slots.iter_mut().flatten() {
            if comp_dirty[slot.component as usize] {
                slot.dirty = true;
                dirty_jobs += 1;
                dirty_flows.extend(slot.flow_ids.iter().copied());
            }
        }
        self.windows.windows += 1;
        self.windows.jobs_rerated += dirty_jobs;
        self.windows.jobs_reused += total_jobs - dirty_jobs;
        if dirty_jobs < total_jobs || dirty_flows.is_empty() {
            self.windows.windows_incremental += 1;
        } else {
            self.windows.windows_rebuilt += 1;
        }
        if dirty_flows.is_empty() && self.pending_faults.is_empty() {
            return; // the whole window served from cache
        }
        dirty_flows.sort_unstable();
        self.engine.restart_flows(&dirty_flows);
        // Faults enter through the queue at the window origin. Restarted
        // arrivals carry lower sequence numbers, so the t=0 batch orders
        // arrivals before faults — exactly like the rebuild oracle, which
        // adds every flow before scheduling the window's faults.
        for fault in std::mem::take(&mut self.pending_faults) {
            self.engine.schedule_fault(0.0, fault);
        }
        self.engine.run();
        for slot in self.slots.iter_mut().flatten() {
            if !slot.dirty {
                continue;
            }
            let mut comm = f64::NEG_INFINITY;
            for &f in &slot.flow_ids {
                comm = comm.max(self.engine.completion_s(f));
            }
            slot.comm_s = comm;
            slot.dirty = false;
        }
    }

    /// Round time of a resident job: compute plus its cached communication
    /// completion (from the window origin).
    pub fn round_total_s(&self, handle: usize) -> f64 {
        self.round_total_from(handle, 0.0)
    }

    /// Round time measured from `arrival_s` inside the window (static
    /// shared rounds stagger jobs; the dynamic loop always passes 0).
    pub fn round_total_from(&self, handle: usize, arrival_s: f64) -> f64 {
        let slot = self.slots[handle].as_ref().expect("round time of a live slot");
        slot.compute_s + (slot.comm_s - arrival_s).max(0.0)
    }

    /// Round time the job would see alone on the fabric — the admission
    /// feasibility probe. Simulated on a throwaway engine whose capacities
    /// are read back from the persistent arena but restricted to the
    /// job's own links: rates depend only on span links, so this is
    /// bit-identical to a solo round on the full fabric without paying a
    /// full-fabric rebuild per admission.
    pub fn solo_total_s(&self, flows: &[FlowSpec], compute_s: f64) -> f64 {
        let mut caps: BTreeMap<LinkKey, f64> = BTreeMap::new();
        for f in flows {
            for w in f.path.windows(2) {
                let key = (w[0], w[1]);
                caps.entry(key).or_insert_with(|| self.engine.capacity_of(key));
            }
        }
        let mut probe = FluidEngine::from_capacities(caps, self.per_hop_latency_s);
        // Capacities read back above are post-fault effective values; the
        // probe also inherits straggler factors so a degraded fabric prices
        // admissions at what the job would really get.
        probe.set_straggler_factors(self.engine.straggler_factors().clone());
        for f in flows {
            probe.add_flow(f.clone());
        }
        probe.run();
        let mut comm = 0.0f64;
        for id in 0..flows.len() {
            comm = comm.max(probe.completion_s(id));
        }
        compute_s + comm.max(0.0)
    }

    /// Cumulative engine counters (events, waterfills, …) across windows.
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Combined window + engine counters for the run so far.
    pub fn stats(&self) -> DynamicEngineStats {
        let e = self.engine.stats();
        DynamicEngineStats {
            events: e.events,
            waterfills: e.waterfills,
            flows_rerated: e.flows_rerated,
            max_component: e.max_component,
            ..self.windows
        }
    }
}

// ---------------------------------------------------------------------------
// Dynamic shared cluster: arrivals, departures, and fabric reconfiguration.
// ---------------------------------------------------------------------------

/// One job request in the dynamic shared-cluster simulation, over *local*
/// server ids `0..servers`; the simulator assigns the global shard.
#[derive(Debug, Clone)]
pub struct DynamicJobSpec {
    /// Job label (model name).
    pub name: String,
    /// Servers the job requests.
    pub servers: usize,
    /// The job's traffic demands over local ids.
    pub demands: TrafficDemands,
    /// AllReduce layout over local ids.
    pub plans: Vec<AllReducePlan>,
    /// The job's dedicated fabric over local ids (TopoOpt partitioned
    /// clusters); `None` when the cluster fabric is shared (fat-tree).
    pub topology: Option<Graph>,
    /// Compute time of the busiest server per iteration.
    pub compute_s: f64,
    /// When the job is submitted.
    pub arrival_s: f64,
    /// Training iterations before the job departs.
    pub iterations: usize,
}

/// Which physical fabric the dynamic cluster runs on.
#[derive(Debug, Clone)]
pub enum DynamicFabric {
    /// TopoOpt: each job trains on its own disjoint shard topology
    /// (provided per job via [`DynamicJobSpec::topology`]), rewired through
    /// the look-ahead provisioner at every job transition.
    Partitioned,
    /// A fixed shared fabric (ideal switch / fat-tree) all co-resident jobs
    /// contend on; no rewiring between jobs.
    Shared(Graph),
}

/// Planner callback for [`MigrationMode::Planned`]: given the stale wiring
/// left on the job's shard by departed jobs (over the job's *local* server
/// ids; `None` when the shard is dark) and the job's target topology, return
/// the per-step rewiring schedule. A planner that cannot sequence the
/// migration safely should return an atomic schedule with
/// [`TransitionSchedule::fallback`] naming the violated policy.
pub type MigrationPlanFn = Arc<dyn Fn(Option<&Graph>, &Graph) -> TransitionSchedule + Send + Sync>;

/// How a partitioned-fabric transition rewires the patch panel.
#[derive(Clone, Default)]
pub enum MigrationMode {
    /// Teleport the shard topology: one opaque step of
    /// [`DynamicClusterParams::provisioning_time_s`] (the historical
    /// behavior, and the default).
    #[default]
    Atomic,
    /// Sequence each transition through a migration planner (see the
    /// `topoopt-reconfig` crate): per-link unplug/replug steps whose
    /// schedule the callback decides, with the stale source wiring tracked
    /// across shard reuse.
    Planned(MigrationPlanFn),
}

impl std::fmt::Debug for MigrationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrationMode::Atomic => f.write_str("Atomic"),
            MigrationMode::Planned(_) => f.write_str("Planned(..)"),
        }
    }
}

/// How the shared-fabric rates are maintained across event windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SharedEngineMode {
    /// One long-lived [`FluidEngine`] across the run: admission parks the
    /// new job's flows, departure retires them, and each window re-rates
    /// only the link-sharing components the event touched. Bit-identical
    /// to [`SharedEngineMode::Rebuild`] (and the default).
    #[default]
    Persistent,
    /// Rebuild the engine from scratch every arrival/departure window —
    /// the historical behavior, kept as the equivalence reference and the
    /// bench baseline.
    Rebuild,
}

/// Parameters of the dynamic shared-cluster simulation.
#[derive(Debug, Clone)]
pub struct DynamicClusterParams {
    /// Total servers in the cluster.
    pub total_servers: usize,
    /// The cluster fabric.
    pub fabric: DynamicFabric,
    /// Patch-panel rewiring time for one job topology (only paid on
    /// [`DynamicFabric::Partitioned`]; hidden when the look-ahead bank
    /// finished wiring before the job starts).
    pub provisioning_time_s: f64,
    /// Per-hop propagation latency.
    pub per_hop_latency_s: f64,
    /// How partitioned-fabric transitions rewire the patch panel
    /// ([`MigrationMode::Atomic`] reproduces the historical opaque swap).
    pub migration: MigrationMode,
    /// Shared-fabric rate maintenance: persistent incremental engine
    /// (default) or the rebuild-per-window reference.
    pub shared_engine: SharedEngineMode,
    /// Override for the event-loop guard (`4 * jobs + faults + 16` when
    /// `None`). Only tests cap it; a run cut off by the cap reports
    /// [`DynamicClusterResult::truncated`].
    pub window_cap: Option<usize>,
    /// Fabric fault schedule: each injection fires at its `time_s`,
    /// between (never splitting) arrival/departure windows, and re-rates
    /// the co-resident jobs it touches. Applies to the shared fabric;
    /// a partitioned cluster's per-job shards ignore it.
    pub faults: Vec<FaultInjection>,
}

/// One scheduled fabric fault (or recovery) in a dynamic run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjection {
    /// When the fault fires on the cluster clock.
    pub time_s: f64,
    /// What fails (or recovers); see [`FaultEvent`].
    pub event: FaultEvent,
}

/// Per-job outcome of a dynamic run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicJobOutcome {
    /// Job label.
    pub name: String,
    /// Submission time (input, echoed back).
    pub arrival_s: f64,
    /// When servers were granted (end of queueing).
    pub admitted_s: f64,
    /// Switch-over delay paid waiting for the patch panel (0 when the
    /// look-ahead bank was pre-wired in time, or on a shared fabric).
    pub switch_over_delay_s: f64,
    /// When training actually started (`admitted_s + switch_over_delay_s`).
    pub start_s: f64,
    /// When the job departed (infinite if it never finished).
    pub finish_s: f64,
    /// Average iteration time over the job's lifetime.
    pub iteration_s: f64,
    /// False if the job was still queued/running when the run was cut off.
    pub completed: bool,
    /// The patch-panel transition that admitted this job: the executed
    /// schedule with per-step rewiring timestamps ([`TransitionRecord`]).
    /// `None` on a shared fabric (no rewiring) or if the job never started.
    pub rewiring: Option<TransitionRecord>,
}

impl DynamicJobOutcome {
    /// Job completion time: submission to departure.
    pub fn jct_s(&self) -> f64 {
        self.finish_s - self.arrival_s
    }

    /// Time spent waiting for servers.
    pub fn queue_delay_s(&self) -> f64 {
        self.admitted_s - self.arrival_s
    }
}

/// Result of a dynamic shared-cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicClusterResult {
    /// Per-job outcomes, in input order.
    pub jobs: Vec<DynamicJobOutcome>,
    /// When the last job departed.
    pub makespan_s: f64,
    /// 1×2-switch flips performed by the provisioner.
    pub flips: usize,
    /// Mean job completion time over completed jobs.
    pub mean_jct_s: f64,
    /// 99th-percentile job completion time over completed jobs.
    pub p99_jct_s: f64,
    /// Mean queueing delay over completed jobs.
    pub mean_queue_delay_s: f64,
    /// Mean switch-over delay over completed jobs.
    pub mean_switch_over_s: f64,
    /// Transitions executed with a planner-produced per-step schedule.
    pub planned_transitions: usize,
    /// Transitions where the planner fell back to the atomic swap (the
    /// fallback string on the job's [`TransitionRecord`] names the policy).
    pub fallback_transitions: usize,
    /// True when the event-loop guard cut the run off with jobs still
    /// queued or running (those jobs end `completed: false`). Never set
    /// with the default guard, which exceeds the maximum possible event
    /// count; only a [`DynamicClusterParams::window_cap`] can trip it.
    pub truncated: bool,
    /// Shared-fabric engine work counters (all zero on a partitioned
    /// fabric, which never re-rates windows).
    pub engine: DynamicEngineStats,
}

/// A job currently training (dense [`JobId`] reference, no name).
struct RunningJob {
    job: JobId,
    shard: usize,
    servers: Vec<usize>,
    remaining_iters: f64,
    iter_s: f64,
    settled_s: f64,
    /// Resident handle in the persistent [`SharedFabricEngine`] (`None` on
    /// a partitioned fabric or in rebuild mode).
    slot: Option<usize>,
}

/// Simulate a dynamic shared cluster: jobs queue FIFO for server shards,
/// train `iterations` iterations, and depart, releasing their servers.
///
/// On [`DynamicFabric::Partitioned`] each admission rewires the patch panel
/// for the job's own topology. Look-ahead ports are per server interface
/// and shards are disjoint, so wiring different jobs' shards proceeds in
/// parallel: a job's look-ahead wiring starts at its submission and runs
/// while earlier jobs train, so the job only pays the portion of
/// `provisioning_time_s` that its queueing time did not hide (a job
/// admitted to an idle cluster pays it all — there is nothing to hide
/// behind). On [`DynamicFabric::Shared`] jobs contend on one fabric: every
/// arrival/departure re-simulates the co-resident set's iteration times,
/// between events progress is linear (a job-level fluid model, mirroring
/// the flow-level engine one layer down).
pub fn simulate_dynamic_cluster(
    jobs: &[DynamicJobSpec],
    params: &DynamicClusterParams,
) -> DynamicClusterResult {
    let shared_net = match &params.fabric {
        DynamicFabric::Shared(g) => {
            let mut net = SimNetwork::without_rules(g.clone(), params.total_servers);
            net.per_hop_latency_s = params.per_hop_latency_s;
            Some(net)
        }
        DynamicFabric::Partitioned => None,
    };
    // The long-lived shared-fabric engine (tentpole): links intern once
    // here, and every event window re-rates only what it touched.
    let mut persist: Option<SharedFabricEngine> = match (&shared_net, params.shared_engine) {
        (Some(net), SharedEngineMode::Persistent) => Some(SharedFabricEngine::new(net)),
        _ => None,
    };
    let mut ref_stats = DynamicEngineStats::default();

    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| jobs[a].arrival_s.total_cmp(&jobs[b].arrival_s).then_with(|| a.cmp(&b)));

    let mut fault_order: Vec<usize> = (0..params.faults.len()).collect();
    fault_order.sort_by(|&a, &b| {
        params.faults[a].time_s.total_cmp(&params.faults[b].time_s).then_with(|| a.cmp(&b))
    });
    let mut next_fault = 0usize;
    // Rebuild mode has no persistent engine to carry fabric health across
    // windows, so the cumulative injection history is replayed onto every
    // fresh engine instead.
    let mut fault_log: Vec<FaultEvent> = Vec::new();

    let mut outcomes: Vec<DynamicJobOutcome> = jobs
        .iter()
        .map(|j| DynamicJobOutcome {
            name: j.name.clone(),
            arrival_s: j.arrival_s,
            admitted_s: f64::INFINITY,
            switch_over_delay_s: 0.0,
            start_s: f64::INFINITY,
            finish_s: f64::INFINITY,
            iteration_s: f64::INFINITY,
            completed: false,
            rewiring: None,
        })
        .collect();

    let mut shards = ClusterShards::new(params.total_servers);
    // Stale wiring (global server ids) left behind by departed jobs; only
    // maintained in planned-migration mode, where the planner needs the
    // source fabric of each shard migration. Atomic mode never reads it.
    let planned_mode = matches!(params.migration, MigrationMode::Planned(_));
    let mut stale_links = Graph::new(params.total_servers);
    let mut provisioner = LookaheadProvisioner::new(params.provisioning_time_s);
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut next_arrival = 0usize;
    let mut running: Vec<RunningJob> = Vec::new();
    let mut now = 0.0f64;
    let mut guard = 0usize;
    // Each loop iteration processes exactly one arrival, one departure, or
    // one same-instant fault batch, so the default guard can never
    // legitimately exhaust; see `truncated`.
    let max_events = params.window_cap.unwrap_or(4 * jobs.len() + params.faults.len() + 16);
    let mut exhausted = true;

    while guard < max_events {
        guard += 1;
        let arrival_t = order.get(next_arrival).map(|&j| jobs[j].arrival_s);
        let departure = running
            .iter()
            .enumerate()
            .filter(|(_, r)| r.iter_s.is_finite() && r.iter_s > 0.0)
            .map(|(k, r)| (r.settled_s + r.remaining_iters * r.iter_s, k))
            .min_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));

        // Faults due no later than the next arrival/departure fire first,
        // as one batch per instant: co-resident jobs see the degraded
        // fabric for the remainder of the window they are in.
        let fault_due =
            fault_order.get(next_fault).map(|&i| params.faults[i].time_s).filter(|&ft| {
                arrival_t.is_none_or(|a| ft <= a)
                    && departure.is_none_or(|(d, _)| ft <= d)
                    && (arrival_t.is_some() || departure.is_some() || !running.is_empty())
            });
        if let Some(ft) = fault_due {
            now = now.max(ft);
            settle_running(&mut running, now);
            while let Some(&i) = fault_order.get(next_fault) {
                if params.faults[i].time_s.total_cmp(&ft) != std::cmp::Ordering::Equal {
                    break;
                }
                match persist.as_mut() {
                    Some(sim) => sim.inject_fault(params.faults[i].event),
                    None => fault_log.push(params.faults[i].event),
                }
                next_fault += 1;
            }
            if let Some(net) = shared_net.as_ref() {
                match persist.as_mut() {
                    Some(sim) => refresh_shared_rates_persistent(sim, &mut running, now),
                    None => refresh_shared_rates_reference(
                        jobs,
                        net,
                        &mut running,
                        now,
                        &mut ref_stats,
                        &fault_log,
                    ),
                }
            }
            continue;
        }

        match (arrival_t, departure) {
            (None, None) => {
                exhausted = false;
                break;
            }
            // Departures at the same instant run first so freed servers are
            // visible to the arriving job.
            (arr, Some((dep_t, k))) if arr.map(|a| dep_t <= a).unwrap_or(true) => {
                now = now.max(dep_t);
                settle_running(&mut running, now);
                let done = running.swap_remove(k);
                let j = done.job.index();
                let job = &jobs[j];
                outcomes[j].finish_s = now;
                outcomes[j].completed = true;
                outcomes[j].iteration_s = if job.iterations > 0 {
                    (now - outcomes[j].start_s) / job.iterations as f64
                } else {
                    0.0
                };
                shards.release(done.shard);
                if let (Some(sim), Some(slot)) = (persist.as_mut(), done.slot) {
                    sim.retire(slot);
                }
                if planned_mode {
                    // The departed job's wiring stays plugged until another
                    // job's migration tears it down.
                    if let Some(topo) = &job.topology {
                        for (_, e) in topo.edges() {
                            stale_links.add_edge(
                                done.servers[e.src],
                                done.servers[e.dst],
                                e.capacity_bps,
                            );
                        }
                    }
                }
                admit_queued(
                    jobs,
                    params,
                    shared_net.as_ref(),
                    &mut persist,
                    &mut shards,
                    &mut provisioner,
                    &mut stale_links,
                    &mut queue,
                    &mut running,
                    &mut outcomes,
                    now,
                    &fault_log,
                );
                if let Some(net) = shared_net.as_ref() {
                    match persist.as_mut() {
                        Some(sim) => refresh_shared_rates_persistent(sim, &mut running, now),
                        None => refresh_shared_rates_reference(
                            jobs,
                            net,
                            &mut running,
                            now,
                            &mut ref_stats,
                            &fault_log,
                        ),
                    }
                }
            }
            (Some(arr_t), _) => {
                now = now.max(arr_t);
                queue.push_back(order[next_arrival]);
                next_arrival += 1;
                let admitted = admit_queued(
                    jobs,
                    params,
                    shared_net.as_ref(),
                    &mut persist,
                    &mut shards,
                    &mut provisioner,
                    &mut stale_links,
                    &mut queue,
                    &mut running,
                    &mut outcomes,
                    now,
                    &fault_log,
                );
                if admitted {
                    if let Some(net) = shared_net.as_ref() {
                        match persist.as_mut() {
                            Some(sim) => refresh_shared_rates_persistent(sim, &mut running, now),
                            None => refresh_shared_rates_reference(
                                jobs,
                                net,
                                &mut running,
                                now,
                                &mut ref_stats,
                                &fault_log,
                            ),
                        }
                    }
                }
            }
            (None, Some(_)) => unreachable!("departure arm above covers this"),
        }
    }

    let truncated =
        exhausted && (next_arrival < order.len() || !running.is_empty() || !queue.is_empty());
    debug_assert!(
        !truncated || params.window_cap.is_some(),
        "default event guard exhausted with work pending: each loop iteration \
         processes exactly one arrival or departure, so 4*jobs+16 cannot run out"
    );
    let engine_stats = persist.as_ref().map(|sim| sim.stats()).unwrap_or(ref_stats);

    let completed: Vec<&DynamicJobOutcome> = outcomes.iter().filter(|o| o.completed).collect();
    let mean = |f: &dyn Fn(&DynamicJobOutcome) -> f64| {
        if completed.is_empty() {
            0.0
        } else {
            completed.iter().map(|o| f(o)).sum::<f64>() / completed.len() as f64
        }
    };
    let jcts: Vec<f64> = completed.iter().map(|o| o.jct_s()).collect();
    let makespan = completed.iter().map(|o| o.finish_s).fold(0.0, f64::max);
    let transition = |f: &dyn Fn(&TransitionRecord) -> bool| {
        outcomes.iter().filter(|o| o.rewiring.as_ref().is_some_and(f)).count()
    };
    DynamicClusterResult {
        makespan_s: makespan,
        flips: provisioner.flips,
        mean_jct_s: mean(&|o| o.jct_s()),
        p99_jct_s: percentile(&jcts, 0.99),
        mean_queue_delay_s: mean(&|o| o.queue_delay_s()),
        mean_switch_over_s: mean(&|o| o.switch_over_delay_s),
        planned_transitions: transition(&|r| r.schedule.planned),
        fallback_transitions: transition(&|r| r.schedule.fallback.is_some()),
        truncated,
        engine: engine_stats,
        jobs: outcomes,
    }
}

/// Linearly advance every running job's progress to `now`.
fn settle_running(running: &mut [RunningJob], now: f64) {
    for r in running.iter_mut() {
        if r.iter_s.is_finite() && r.iter_s > 0.0 && now > r.settled_s {
            r.remaining_iters = (r.remaining_iters - (now - r.settled_s) / r.iter_s).max(0.0);
        }
        r.settled_s = now.max(r.settled_s);
    }
}

/// Admit queued jobs FIFO while shards are available. Infeasible requests —
/// a size the cluster can never satisfy, or a job whose iteration time is
/// undefined (no topology / unroutable transfers on a partitioned fabric) —
/// are rejected on the spot instead of holding servers or blocking the
/// queue head forever; they end the run with `completed: false`. Jobs with
/// zero work depart the instant they start. Returns true if any job
/// started.
#[allow(clippy::too_many_arguments)]
fn admit_queued(
    jobs: &[DynamicJobSpec],
    params: &DynamicClusterParams,
    shared_net: Option<&SimNetwork>,
    persist: &mut Option<SharedFabricEngine>,
    shards: &mut ClusterShards,
    provisioner: &mut LookaheadProvisioner,
    stale_links: &mut Graph,
    queue: &mut VecDeque<usize>,
    running: &mut Vec<RunningJob>,
    outcomes: &mut [DynamicJobOutcome],
    now: f64,
    fault_log: &[FaultEvent],
) -> bool {
    let mut admitted_any = false;
    while let Some(&j) = queue.front() {
        if jobs[j].servers == 0 || jobs[j].servers > shards.total_servers() {
            // No future departure can make this allocatable: reject rather
            // than head-of-line-block every job behind it.
            queue.pop_front();
            continue;
        }
        let Some((shard, servers)) = shards.allocate(jobs[j].servers) else { break };
        queue.pop_front();
        outcomes[j].admitted_s = now;

        let (start, delay) = match params.fabric {
            DynamicFabric::Partitioned => {
                // The job's shard is disjoint from everyone else's, so its
                // look-ahead ports started wiring at submission, hidden
                // behind the queueing time; the flip costs whatever wiring
                // is still outstanding when servers free up.
                let schedule = match (&params.migration, &jobs[j].topology) {
                    (MigrationMode::Planned(planner), Some(topo)) => {
                        let previous = take_stale_shard(stale_links, &servers);
                        planner(previous.as_ref(), topo)
                    }
                    _ => TransitionSchedule::atomic(params.provisioning_time_s),
                };
                provisioner.start_provisioning_for(schedule.total_s());
                provisioner.advance((now - jobs[j].arrival_s).max(0.0));
                let delay = provisioner.flip();
                outcomes[j].rewiring = Some(TransitionRecord {
                    wiring_started_s: jobs[j].arrival_s,
                    schedule,
                    residual_s: delay,
                });
                (now + delay, delay)
            }
            DynamicFabric::Shared(_) => (now, 0.0),
        };
        outcomes[j].switch_over_delay_s = delay;
        outcomes[j].start_s = start;

        let mut shared_flows: Option<Vec<FlowSpec>> = None;
        let iter_s = match shared_net {
            // Contended fabrics are re-rated for the whole co-resident set
            // right after admission (see the refresh functions); seed with
            // the solo estimate. The persistent engine probes feasibility
            // on the job's own links instead of rebuilding the full
            // fabric — bit-identical, rates only see span links.
            Some(net) => match persist.as_mut() {
                Some(sim) => {
                    let flows = build_job_flows(net, &jobs[j].demands, &jobs[j].plans, &servers);
                    let total = sim.solo_total_s(&flows, jobs[j].compute_s);
                    shared_flows = Some(flows);
                    total
                }
                None => shared_iteration_s(net, &jobs[j], &servers, fault_log),
            },
            None => solo_iteration_s(&jobs[j], params.per_hop_latency_s),
        };
        if !iter_s.is_finite() {
            // The job could train forever without finishing an iteration;
            // release the shard instead of stranding it.
            shards.release(shard);
            continue;
        }
        admitted_any = true;
        if iter_s <= 0.0 || jobs[j].iterations == 0 {
            // Zero work: depart the instant training would have started.
            outcomes[j].finish_s = start;
            outcomes[j].iteration_s = 0.0;
            outcomes[j].completed = true;
            shards.release(shard);
            continue;
        }
        // Only jobs that will actually train become engine residents.
        let slot = match (persist.as_mut(), shared_flows) {
            (Some(sim), Some(flows)) => Some(sim.admit(flows, jobs[j].compute_s)),
            _ => None,
        };
        running.push(RunningJob {
            job: JobId::from_usize(j),
            shard,
            servers,
            remaining_iters: jobs[j].iterations as f64,
            iter_s,
            settled_s: start,
            slot,
        });
    }
    admitted_any
}

/// Extract the stale wiring sitting on a freshly allocated shard: every
/// stale link with *both* endpoints inside the shard, relabeled to the
/// job's local server ids — the source fabric the migration planner tears
/// down. All stale links touching the shard (including half-in links whose
/// other end belongs to servers elsewhere) are unplugged from the ledger:
/// the shard's interfaces are being rewired either way. Returns `None`
/// when the shard is dark (no stale wiring to migrate from).
fn take_stale_shard(stale_links: &mut Graph, servers: &[usize]) -> Option<Graph> {
    let mut local = vec![usize::MAX; stale_links.num_nodes()];
    for (l, &g) in servers.iter().enumerate() {
        local[g] = l;
    }
    let mut sub = Graph::new(servers.len());
    let mut unplug = Vec::new();
    for (id, e) in stale_links.edges() {
        let (s, d) = (local[e.src], local[e.dst]);
        if s != usize::MAX && d != usize::MAX {
            sub.add_edge(s, d, e.capacity_bps);
        }
        if s != usize::MAX || d != usize::MAX {
            unplug.push(id);
        }
    }
    for id in unplug {
        stale_links.remove_edge(id);
    }
    if sub.num_edges() == 0 {
        None
    } else {
        Some(sub)
    }
}

/// Iteration time of a job alone on its own shard topology (infinite when
/// the job has no topology or some transfer is unroutable on it). This is
/// the per-iteration cost [`simulate_dynamic_cluster`] charges a job on a
/// partitioned fabric; exposed so experiments can calibrate arrival rates
/// against the exact same number.
pub fn solo_iteration_s(job: &DynamicJobSpec, per_hop_latency_s: f64) -> f64 {
    let Some(topo) = &job.topology else {
        return f64::INFINITY; // partitioned fabric but no topology supplied
    };
    let mut net = SimNetwork::without_rules(topo.clone(), job.servers);
    net.per_hop_latency_s = per_hop_latency_s;
    let mut flows = Vec::new();
    for p in &job.plans {
        flows.extend(allreduce_flows(&net, p));
    }
    flows.extend(mp_flows(&net, &job.demands.mp));
    let sim = simulate_flows(&net.graph, &flows, net.per_hop_latency_s);
    if sim.completion_s.iter().any(|c| c.is_infinite()) {
        return f64::INFINITY;
    }
    job.compute_s + sim.makespan_s
}

/// Iteration time of a job alone on the shared fabric (used as the seed
/// before the co-resident set is re-rated). Goes through the name-free
/// [`shared_round_times`] core: no `JobSpec` (and no job-name clone) is
/// materialised per admission event.
fn shared_iteration_s(
    net: &SimNetwork,
    job: &DynamicJobSpec,
    servers: &[usize],
    faults: &[FaultEvent],
) -> f64 {
    let flows = build_job_flows(net, &job.demands, &job.plans, servers);
    let (r, _) = shared_round_times_with_faults(net, vec![flows], &[0.0], &[job.compute_s], faults);
    r.per_job_total_s[0]
}

/// Window refresh on the persistent engine: settle progress, run one event
/// window (only the components the arrival/departure touched re-rate), and
/// read every resident's round time — cached or freshly simulated, the
/// values are bit-identical to a full rebuild.
fn refresh_shared_rates_persistent(
    sim: &mut SharedFabricEngine,
    running: &mut [RunningJob],
    now: f64,
) {
    if running.is_empty() && !sim.has_pending_faults() {
        // With pending faults the window still runs: the engine must
        // absorb the new health state before the next admission probe.
        return;
    }
    settle_running(running, now);
    sim.run_window();
    for r in running.iter_mut() {
        r.iter_s = sim.round_total_s(r.slot.expect("shared-fabric resident without a slot"));
    }
}

/// Rebuild-per-window reference: re-simulate the whole co-resident set on a
/// fresh engine and refresh every running job's iteration time (progress
/// must already be settled to `now`). Jobs are handled purely as [`JobId`]
/// indices; kept as the equivalence oracle for the persistent path and as
/// the bench baseline.
fn refresh_shared_rates_reference(
    jobs: &[DynamicJobSpec],
    net: &SimNetwork,
    running: &mut [RunningJob],
    now: f64,
    stats: &mut DynamicEngineStats,
    faults: &[FaultEvent],
) {
    if running.is_empty() {
        return;
    }
    settle_running(running, now);
    let flows_by_job: Vec<Vec<FlowSpec>> = running
        .iter()
        .map(|r| {
            let job = &jobs[r.job.index()];
            build_job_flows(net, &job.demands, &job.plans, &r.servers)
        })
        .collect();
    let arrivals = vec![0.0; running.len()];
    let computes: Vec<f64> = running.iter().map(|r| jobs[r.job.index()].compute_s).collect();
    let (result, engine) =
        shared_round_times_rebuild(net, flows_by_job, &arrivals, &computes, faults);
    stats.windows += 1;
    stats.windows_rebuilt += 1;
    stats.jobs_rerated += running.len();
    stats.events += engine.events;
    stats.waterfills += engine.waterfills;
    stats.flows_rerated += engine.flows_rerated;
    stats.max_component = stats.max_component.max(engine.max_component);
    for (r, &iter_s) in running.iter_mut().zip(result.per_job_total_s.iter()) {
        r.iter_s = iter_s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topoopt_graph::topologies;

    fn small_demands(n: usize, bytes: f64) -> TrafficDemands {
        TrafficDemands {
            num_servers: n,
            allreduce_groups: vec![topoopt_strategy::AllReduceGroup {
                members: (0..n).collect(),
                bytes,
            }],
            mp: TrafficMatrix::new(n),
            samples_per_server: 1.0,
        }
    }

    fn ring_graph(n: usize, cap: f64) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n, cap);
        }
        g
    }

    fn dynamic_job(name: &str, n: usize, arrival_s: f64, iterations: usize) -> DynamicJobSpec {
        DynamicJobSpec {
            name: name.into(),
            servers: n,
            demands: small_demands(n, 1.0e9),
            plans: vec![AllReducePlan::natural_ring((0..n).collect(), 1.0e9)],
            topology: Some(ring_graph(n, 100.0e9)),
            compute_s: 0.0,
            arrival_s,
            iterations,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 0.5), 50.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
    }

    #[test]
    fn disjoint_shards_do_not_interfere() {
        // Two 4-server jobs on disjoint rings of a direct-connect fabric.
        let mut g = topoopt_graph::Graph::new(8);
        for base in [0usize, 4] {
            for i in 0..4 {
                g.add_edge(base + i, base + (i + 1) % 4, 100.0e9);
            }
        }
        let net = SimNetwork::without_rules(g, 8);
        let demands = small_demands(4, 1.0e9);
        let plans = vec![AllReducePlan::natural_ring((0..4).collect(), 1.0e9)];
        let job_a = JobSpec::new("a", build_job_flows(&net, &demands, &plans, &[0, 1, 2, 3]), 0.0);
        let job_b = JobSpec::new("b", build_job_flows(&net, &demands, &plans, &[4, 5, 6, 7]), 0.0);
        let both = simulate_shared_cluster(&net, &[job_a.clone(), job_b.clone()]);
        let solo = simulate_shared_cluster(&net, &[job_a]);
        assert!((both.per_job_total_s[0] - solo.per_job_total_s[0]).abs() < 1e-9);
    }

    #[test]
    fn sharing_one_fabric_slows_jobs_down() {
        // Two jobs whose rings share the same hub links contend.
        let g = topologies::ideal_switch(8, 50.0e9);
        let net = SimNetwork::without_rules(g, 8);
        let demands = small_demands(8, 1.0e9);
        let plans = vec![AllReducePlan::natural_ring((0..8).collect(), 1.0e9)];
        let map: Vec<usize> = (0..8).collect();
        let job = JobSpec::new("j", build_job_flows(&net, &demands, &plans, &map), 0.0);
        let solo = simulate_shared_cluster(&net, std::slice::from_ref(&job));
        let loaded = simulate_shared_cluster(&net, &[job.clone(), job.clone(), job]);
        assert!(loaded.average_s > solo.average_s * 1.5);
        assert!(loaded.p99_s >= loaded.average_s);
    }

    #[test]
    fn per_job_results_align_with_input_order() {
        let g = topologies::ideal_switch(4, 100.0e9);
        let net = SimNetwork::without_rules(g, 4);
        let demands = small_demands(4, 1.0e9);
        let plans = vec![AllReducePlan::natural_ring((0..4).collect(), 1.0e9)];
        let busy =
            JobSpec::new("busy", build_job_flows(&net, &demands, &plans, &[0, 1, 2, 3]), 0.0);
        let idle = JobSpec::new("idle", vec![], 0.25);
        let r = simulate_shared_cluster(&net, &[busy, idle]);
        assert_eq!(r.per_job_total_s.len(), 2);
        assert!((r.per_job_total_s[1] - 0.25).abs() < 1e-12);
        assert!(r.per_job_total_s[0] > 0.0);
    }

    #[test]
    fn staggered_arrivals_measure_comm_from_each_jobs_start() {
        // Two jobs on disjoint rings started 5 s apart see identical
        // iteration times: arrival offsets must not leak into them.
        let mut g = topoopt_graph::Graph::new(8);
        for base in [0usize, 4] {
            for i in 0..4 {
                g.add_edge(base + i, base + (i + 1) % 4, 100.0e9);
            }
        }
        let net = SimNetwork::without_rules(g, 8);
        let demands = small_demands(4, 1.0e9);
        let plans = vec![AllReducePlan::natural_ring((0..4).collect(), 1.0e9)];
        let early =
            JobSpec::new("early", build_job_flows(&net, &demands, &plans, &[0, 1, 2, 3]), 0.0);
        let late =
            JobSpec::new("late", build_job_flows(&net, &demands, &plans, &[4, 5, 6, 7]), 0.0)
                .with_arrival(5.0);
        let r = simulate_shared_cluster(&net, &[early, late]);
        assert!((r.per_job_total_s[0] - r.per_job_total_s[1]).abs() < 1e-9);
    }

    #[test]
    fn dynamic_partitioned_cluster_runs_jobs_through_the_provisioner() {
        // 8 servers, 4 per job, so two jobs run concurrently and the third
        // queues. Provisioning is instantaneous here.
        let jobs = vec![
            dynamic_job("a", 4, 0.0, 10),
            dynamic_job("b", 4, 0.0, 10),
            dynamic_job("c", 4, 0.0, 10),
        ];
        let params = DynamicClusterParams {
            total_servers: 8,
            fabric: DynamicFabric::Partitioned,
            provisioning_time_s: 0.0,
            per_hop_latency_s: 0.0,
            migration: MigrationMode::Atomic,
            shared_engine: SharedEngineMode::Persistent,
            window_cap: None,
            faults: vec![],
        };
        let r = simulate_dynamic_cluster(&jobs, &params);
        assert!(r.jobs.iter().all(|o| o.completed));
        assert_eq!(r.flips, 3);
        // a and b start immediately; c queues behind them.
        assert_eq!(r.jobs[0].admitted_s, 0.0);
        assert_eq!(r.jobs[1].admitted_s, 0.0);
        assert!(r.jobs[2].queue_delay_s() > 0.0);
        assert!((r.jobs[2].admitted_s - r.jobs[0].finish_s.min(r.jobs[1].finish_s)).abs() < 1e-9);
        assert!(r.makespan_s >= r.jobs[2].finish_s - 1e-9);
        assert!(r.mean_jct_s > 0.0 && r.p99_jct_s >= r.mean_jct_s - 1e-12);
    }

    #[test]
    fn queueing_hides_provisioning_time() {
        // Job c waits in the queue much longer than the patch panel needs,
        // so its look-ahead wiring finishes before servers free up: the
        // flip is free. A cold job b arriving at a busy panel pays.
        let mut jobs = vec![
            dynamic_job("a", 8, 0.0, 10),
            dynamic_job("b", 8, 0.0, 10),
            dynamic_job("c", 8, 0.0, 10),
        ];
        jobs[1].arrival_s = 0.0;
        jobs[2].arrival_s = 0.0;
        let solo_iter = {
            let params = DynamicClusterParams {
                total_servers: 8,
                fabric: DynamicFabric::Partitioned,
                provisioning_time_s: 0.0,
                per_hop_latency_s: 0.0,
                migration: MigrationMode::Atomic,
                shared_engine: SharedEngineMode::Persistent,
                window_cap: None,
                faults: vec![],
            };
            let r = simulate_dynamic_cluster(&jobs[..1], &params);
            r.jobs[0].finish_s
        };
        let provisioning = solo_iter * 0.5; // hidden by one job's runtime
        let params = DynamicClusterParams {
            total_servers: 8,
            fabric: DynamicFabric::Partitioned,
            provisioning_time_s: provisioning,
            per_hop_latency_s: 0.0,
            migration: MigrationMode::Atomic,
            shared_engine: SharedEngineMode::Persistent,
            window_cap: None,
            faults: vec![],
        };
        let r = simulate_dynamic_cluster(&jobs, &params);
        assert!(r.jobs.iter().all(|o| o.completed));
        // First job pays the full cold wiring, the queued ones hide it.
        assert!((r.jobs[0].switch_over_delay_s - provisioning).abs() < 1e-9);
        assert!(r.jobs[2].switch_over_delay_s < provisioning - 1e-9);
    }

    #[test]
    fn infeasible_jobs_are_rejected_without_blocking_the_queue() {
        // Job 0 wants more servers than the cluster has; job 1 has no
        // topology on a partitioned fabric (infinite iteration time); job 2
        // has zero iterations; job 3 is a normal job queued behind them all.
        let mut oversized = dynamic_job("oversized", 16, 0.0, 5);
        oversized.servers = 16; // cluster only has 8
        let mut unroutable = dynamic_job("unroutable", 4, 0.0, 5);
        unroutable.topology = None;
        let instant = dynamic_job("instant", 4, 0.0, 0);
        let normal = dynamic_job("normal", 4, 0.0, 5);
        let params = DynamicClusterParams {
            total_servers: 8,
            fabric: DynamicFabric::Partitioned,
            provisioning_time_s: 0.0,
            per_hop_latency_s: 0.0,
            migration: MigrationMode::Atomic,
            shared_engine: SharedEngineMode::Persistent,
            window_cap: None,
            faults: vec![],
        };
        let r = simulate_dynamic_cluster(&[oversized, unroutable, instant, normal], &params);
        assert!(!r.jobs[0].completed);
        assert!(!r.jobs[1].completed);
        assert!(r.jobs[2].completed && r.jobs[2].finish_s == 0.0);
        assert!(r.jobs[3].completed, "a normal job must not starve behind infeasible ones");
        assert!(r.jobs[3].finish_s.is_finite() && r.jobs[3].finish_s > 0.0);
    }

    #[test]
    fn shared_fabric_contention_slows_dynamic_jobs() {
        let mk = |fabric: DynamicFabric| {
            let jobs = vec![dynamic_job("a", 4, 0.0, 5), dynamic_job("b", 4, 0.0, 5)];
            let params = DynamicClusterParams {
                total_servers: 8,
                fabric,
                provisioning_time_s: 0.0,
                per_hop_latency_s: 0.0,
                migration: MigrationMode::Atomic,
                shared_engine: SharedEngineMode::Persistent,
                window_cap: None,
                faults: vec![],
            };
            simulate_dynamic_cluster(&jobs, &params)
        };
        let partitioned = mk(DynamicFabric::Partitioned);
        // One ring over all 8 servers: each job's wrap-around flow is
        // relayed through the other job's links, so co-residents contend
        // (and a departure speeds the survivor up via re-rating).
        let shared = mk(DynamicFabric::Shared(ring_graph(8, 100.0e9)));
        assert!(shared.jobs.iter().all(|o| o.completed));
        assert!(shared.mean_jct_s > partitioned.mean_jct_s * 1.2);
    }

    #[test]
    fn atomic_mode_records_one_opaque_step_per_transition() {
        let jobs = vec![dynamic_job("a", 4, 0.0, 5), dynamic_job("b", 4, 0.0, 5)];
        let params = DynamicClusterParams {
            total_servers: 8,
            fabric: DynamicFabric::Partitioned,
            provisioning_time_s: 0.5,
            per_hop_latency_s: 0.0,
            migration: MigrationMode::Atomic,
            shared_engine: SharedEngineMode::Persistent,
            window_cap: None,
            faults: vec![],
        };
        let r = simulate_dynamic_cluster(&jobs, &params);
        assert_eq!(r.planned_transitions, 0);
        assert_eq!(r.fallback_transitions, 0);
        for o in &r.jobs {
            let rec = o.rewiring.as_ref().expect("partitioned admissions record the transition");
            assert!(!rec.schedule.planned);
            assert_eq!(rec.schedule.steps(), 1);
            assert_eq!(rec.schedule.total_s(), 0.5);
            assert_eq!(rec.residual_s, o.switch_over_delay_s);
            assert_eq!(rec.wiring_started_s, o.arrival_s);
        }
    }

    #[test]
    fn planned_mode_with_equal_total_matches_atomic_timing() {
        // A planner that splits the same total rewiring time into per-link
        // steps changes the transition's *accounting*, not its end time: the
        // provisioner hides the same amount behind queueing either way.
        let jobs = || {
            vec![
                dynamic_job("a", 8, 0.0, 10),
                dynamic_job("b", 8, 0.0, 10),
                dynamic_job("c", 8, 0.0, 10),
            ]
        };
        let mk = |migration: MigrationMode| {
            let params = DynamicClusterParams {
                total_servers: 8,
                fabric: DynamicFabric::Partitioned,
                provisioning_time_s: 0.4,
                per_hop_latency_s: 0.0,
                migration,
                shared_engine: SharedEngineMode::Persistent,
                window_cap: None,
                faults: vec![],
            };
            simulate_dynamic_cluster(&jobs(), &params)
        };
        let atomic = mk(MigrationMode::Atomic);
        let planned = mk(MigrationMode::Planned(Arc::new(|_prev, target: &Graph| {
            // One evenly spaced step per target link, same 0.4 s total.
            let n = target.num_edges().max(1);
            TransitionSchedule::planned((1..=n).map(|i| 0.4 * i as f64 / n as f64).collect())
        })));
        assert_eq!(planned.planned_transitions, 3);
        assert_eq!(planned.fallback_transitions, 0);
        for (a, p) in atomic.jobs.iter().zip(planned.jobs.iter()) {
            assert!((a.switch_over_delay_s - p.switch_over_delay_s).abs() < 1e-12);
            assert!((a.finish_s - p.finish_s).abs() < 1e-9);
            let rec = p.rewiring.as_ref().unwrap();
            assert_eq!(rec.schedule.steps(), 8, "one step per ring link");
            assert_eq!(rec.step_times_s().len(), 8);
        }
        assert!((atomic.mean_jct_s - planned.mean_jct_s).abs() < 1e-9);
    }

    #[test]
    fn planned_mode_hands_the_planner_the_stale_shard_wiring() {
        use std::sync::Mutex;
        // a trains on all 8 servers and departs; b (arriving later) reuses
        // the shard, so its migration starts from a's ring — relabeled to
        // b's local ids. The first admission sees a dark shard.
        type SeenWirings = Vec<Option<Vec<(usize, usize)>>>;
        let seen: Arc<Mutex<SeenWirings>> = Arc::new(Mutex::new(Vec::new()));
        let seen_cb = Arc::clone(&seen);
        let jobs = vec![dynamic_job("a", 8, 0.0, 2), dynamic_job("b", 8, 1.0e6, 2)];
        let params = DynamicClusterParams {
            total_servers: 8,
            fabric: DynamicFabric::Partitioned,
            provisioning_time_s: 0.1,
            per_hop_latency_s: 0.0,
            migration: MigrationMode::Planned(Arc::new(move |prev, target: &Graph| {
                seen_cb
                    .lock()
                    .unwrap()
                    .push(prev.map(|g| g.edges().map(|(_, e)| (e.src, e.dst)).collect()));
                TransitionSchedule::planned(vec![0.1 * target.num_edges() as f64])
            })),
            shared_engine: SharedEngineMode::Persistent,
            window_cap: None,
            faults: vec![],
        };
        let r = simulate_dynamic_cluster(&jobs, &params);
        assert!(r.jobs.iter().all(|o| o.completed));
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2);
        assert!(seen[0].is_none(), "first job migrates from a dark shard");
        let stale = seen[1].as_ref().expect("second job must see a's stale ring");
        let mut expected: Vec<(usize, usize)> = (0..8).map(|i| (i, (i + 1) % 8)).collect();
        let mut got = stale.clone();
        expected.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expected, "stale wiring is a's ring over local ids");
    }

    #[test]
    fn planner_fallbacks_are_counted() {
        let jobs = vec![dynamic_job("a", 4, 0.0, 3), dynamic_job("b", 4, 0.0, 3)];
        let params = DynamicClusterParams {
            total_servers: 8,
            fabric: DynamicFabric::Partitioned,
            provisioning_time_s: 0.2,
            per_hop_latency_s: 0.0,
            migration: MigrationMode::Planned(Arc::new(|_, _: &Graph| TransitionSchedule {
                step_offsets_s: vec![0.2],
                planned: false,
                fallback: Some("loop-freedom: synthetic".into()),
            })),
            shared_engine: SharedEngineMode::Persistent,
            window_cap: None,
            faults: vec![],
        };
        let r = simulate_dynamic_cluster(&jobs, &params);
        assert_eq!(r.planned_transitions, 0);
        assert_eq!(r.fallback_transitions, 2);
    }
}
