//! Flow-level (fluid) network simulator — the reproduction's counterpart to
//! the paper's FlexNetPacket (htsim-based) simulator.
//!
//! A per-packet simulator is substituted by an event-driven fluid model with
//! max-min fair bandwidth sharing: every active flow follows its fixed path;
//! link capacity is divided max-min fairly among the flows crossing it; the
//! simulation advances from event to event. This captures the first-order
//! effects the paper's evaluation depends on — contention, path length
//! (bandwidth tax of host-based forwarding), multi-job interference, and
//! reconfiguration downtime — at a cost that lets the benchmark harness
//! sweep hundreds of configurations.
//!
//! # Engine design
//!
//! The core is [`engine::FluidEngine`], an event-driven simulator with an
//! explicit priority queue of *flow arrival*, *flow completion*, and
//! *fabric reconfiguration* events. Between events every rate is constant,
//! so flow progress is settled lazily. The crucial property exploited for
//! scale is locality of max-min fairness: an event can only change the
//! rates of flows in the connected component of the flow/link sharing
//! graph it touches, so the engine re-waterfills exactly that component
//! and leaves all other flows — and their scheduled completion events —
//! untouched. On a sharded shared cluster (Figure 16) each job is its own
//! component, turning every event from O(all flows) into O(one job). The
//! pre-engine from-scratch loop survives as
//! [`fluid::simulate_flows_reference`], the oracle for the equivalence
//! proptests (`tests/engine.rs`) and the baseline of the `fluid` Criterion
//! bench; both allocators implement one water-filling algorithm.
//!
//! # Flat storage and sharded event loops
//!
//! Internally the engine runs on arena/index-based flat storage: links are
//! interned once into a dense `LinkId(u32)` arena (`Vec`-backed
//! capacities, byte counters, and flows-on-link adjacency), and each
//! flow's path is resolved to link ids at `add_flow` time into a
//! CSR-style flat buffer, so event handling and water-filling do zero
//! tree/hash lookups on the hot path. `BTreeMap`-ordered semantics are
//! kept only at the API boundary and as the arena's key-sorted id list,
//! which pins the order of every order-sensitive float reduction — the
//! flat core is bit-identical to the map-keyed one. On top, a fresh
//! engine whose flows split into disjoint connected components shards
//! into parallel per-component event loops (own heap, own clock) with a
//! deterministic, bit-identical merge. See the [`engine`] and
//! `arena` module docs for the determinism contracts.
//!
//! # Modules
//!
//! * [`engine`] — the event-driven incremental fluid engine.
//! * [`fluid`] — flow/result types, the shared water-filling allocator, the
//!   [`fluid::simulate_flows`] compatibility wrapper, and the reference
//!   from-scratch loop.
//! * [`flows`] — builders that turn AllReduce plans and MP demand matrices
//!   into flow sets routed over a concrete topology.
//! * [`network`] — the simulated network: topology + routing + server set.
//! * [`iteration`] — one training iteration (compute + AllReduce + MP) on a
//!   dedicated network, with bandwidth-tax accounting (Figures 11–15).
//! * [`reconfig`] — windowed OCS-reconfig simulation with reconfiguration
//!   latency and optional host forwarding (Figure 17), driven through the
//!   engine's `run_until` windows.
//! * [`multijob`] — shared-cluster simulation (Figure 16), plus the dynamic
//!   layer: job arrivals/departures over [`topoopt_cluster::ClusterShards`]
//!   with the Active/Look-ahead provisioner rewiring the fabric between
//!   jobs (`fig16_dynamic`).

pub(crate) mod arena;
pub mod engine;
pub mod flows;
pub mod fluid;
pub mod iteration;
pub mod multijob;
pub mod network;
pub mod reconfig;

pub use engine::{EngineStats, FaultEvent, FluidEngine};
pub use flows::{allreduce_flows, mp_flows, AllReducePlan};
pub use fluid::{simulate_flows, simulate_flows_reference, FlowSpec, FluidResult};
pub use iteration::{simulate_iteration, IterationParams, IterationResult};
pub use multijob::{
    simulate_dynamic_cluster, simulate_shared_cluster, simulate_shared_cluster_stats,
    DynamicClusterParams, DynamicClusterResult, DynamicEngineStats, DynamicFabric,
    DynamicJobOutcome, DynamicJobSpec, FaultInjection, JobId, JobSpec, MigrationMode,
    MigrationPlanFn, SharedClusterResult, SharedEngineMode,
};
pub use network::{RelayOverhead, SimNetwork};
pub use reconfig::{simulate_reconfigurable_iteration, ReconfigParams, ReconfigResult};
