//! Flow-level (fluid) network simulator — the reproduction's counterpart to
//! the paper's FlexNetPacket (htsim-based) simulator.
//!
//! A per-packet simulator is substituted by an event-driven fluid model with
//! max-min fair bandwidth sharing: every active flow follows its fixed path;
//! link capacity is divided max-min fairly among the flows crossing it; the
//! simulation advances from flow completion to flow completion. This
//! captures the first-order effects the paper's evaluation depends on —
//! contention, path length (bandwidth tax of host-based forwarding),
//! multi-job interference, and reconfiguration downtime — at a cost that
//! lets the benchmark harness sweep hundreds of configurations.
//!
//! * [`fluid`] — the water-filling rate allocator and completion-event loop.
//! * [`flows`] — builders that turn AllReduce plans and MP demand matrices
//!   into flow sets routed over a concrete topology.
//! * [`network`] — the simulated network: topology + routing + server set.
//! * [`iteration`] — one training iteration (compute + AllReduce + MP) on a
//!   dedicated network, with bandwidth-tax accounting (Figures 11–15).
//! * [`reconfig`] — windowed OCS-reconfig simulation with reconfiguration
//!   latency and optional host forwarding (Figure 17).
//! * [`multijob`] — shared-cluster simulation (Figure 16).

pub mod flows;
pub mod fluid;
pub mod iteration;
pub mod multijob;
pub mod network;
pub mod reconfig;

pub use flows::{allreduce_flows, mp_flows, AllReducePlan};
pub use fluid::{simulate_flows, FlowSpec, FluidResult};
pub use iteration::{simulate_iteration, IterationParams, IterationResult};
pub use multijob::{simulate_shared_cluster, JobSpec, SharedClusterResult};
pub use network::SimNetwork;
pub use reconfig::{simulate_reconfigurable_iteration, ReconfigParams, ReconfigResult};
