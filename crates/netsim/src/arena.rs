//! Interned flat link storage and the index-based water-filler — the hot
//! core of the event engine.
//!
//! [`LinkArena`] interns every directed link the engine ever sees into a
//! dense [`LinkId`] (`u32`), so the event path stores capacities, byte
//! counters, and flow-on-link adjacency in plain `Vec`s indexed by id —
//! zero tree or hash lookups per event. The `BTreeMap`-ordered semantics of
//! the original map-keyed code survive only at the API boundary and in one
//! place here: the arena maintains a key-sorted id list
//! ([`LinkArena::ids_by_key`]) so order-sensitive reductions visit links in
//! exactly the order the map-keyed code did.
//!
//! # Determinism contract
//!
//! Float addition does not commute at the last ulp, so every reduction over
//! links must fix its iteration order to stay bit-stable run-over-run and
//! byte-identical to the committed artifacts:
//!
//! * the carried-bytes summary sums per-link byte counters in ascending
//!   `LinkKey` order via [`LinkArena::ids_by_key`] (O(links), no
//!   allocation — the sorted key set is maintained incrementally at intern
//!   time instead of being rebuilt per call);
//! * [`waterfill_ids`] scans candidate bottleneck links in ascending
//!   `LinkKey` order (the order `waterfill_slices` iterates its `BTreeMap`s
//!   in) and freezes flows in the same position order, so the flat and
//!   map-keyed water-fillers produce bit-identical rates;
//! * results must not depend on thread count: the water-filler is a pure
//!   function of the arena and the spans, safe to run concurrently per
//!   component with rates applied in deterministic component order.

use crate::fluid::LinkKey;
use std::collections::HashMap;

/// Dense index of an interned directed link.
pub(crate) type LinkId = u32;

/// Checked narrowing for every dense `u32` index the engine constructs
/// (link ids, union-find slots, CSR positions, shard numbers). `usize as
/// u32` truncates silently past 4 billion; this is the one audited place
/// where the bound is actually enforced, so `topoopt-lint`'s
/// `truncating-cast` rule can require all id construction to funnel here.
#[inline]
pub(crate) fn dense_u32(i: usize) -> u32 {
    // lint:allow(panic-in-engine): the single audited bounds check for id
    // narrowing — a fabric with more than u32::MAX links/flows/shards is a
    // caller bug, not an event-path condition.
    u32::try_from(i).expect("dense index exceeds u32::MAX")
}

/// Dense arena of directed links: capacities and keys indexed by
/// [`LinkId`], with a hash index for interning and a key-sorted id list for
/// order-sensitive reductions.
#[derive(Debug, Clone, Default)]
pub(crate) struct LinkArena {
    /// `LinkId -> (src, dst)` node pair.
    keys: Vec<LinkKey>,
    /// `LinkId ->` aggregated capacity in bps (0.0 for links interned from
    /// a path but absent from the fabric: flows routed over them get rate 0).
    caps: Vec<f64>,
    /// `(src, dst) -> LinkId` interning index.
    index: HashMap<LinkKey, LinkId>,
    /// Every id, ordered by ascending `LinkKey` (see the determinism
    /// contract in the module docs). Maintained incrementally on intern.
    by_key: Vec<LinkId>,
}

impl LinkArena {
    /// Build from `(key, capacity)` pairs in ascending key order (e.g. a
    /// `BTreeMap` iteration). Ids are assigned in key order, so `by_key` is
    /// the identity until later interns insert out-of-order links.
    pub fn from_sorted_capacities(entries: impl IntoIterator<Item = (LinkKey, f64)>) -> Self {
        let mut arena = LinkArena::default();
        for (key, cap) in entries {
            debug_assert!(
                arena.keys.last().map(|&k| k < key).unwrap_or(true),
                "capacity entries must arrive in strictly ascending key order"
            );
            let id = dense_u32(arena.keys.len());
            arena.keys.push(key);
            arena.caps.push(cap);
            arena.index.insert(key, id);
            arena.by_key.push(id);
        }
        arena
    }

    /// Number of interned links.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// The `(src, dst)` pair of a link.
    pub fn key(&self, id: LinkId) -> LinkKey {
        self.keys[id as usize]
    }

    /// Capacity of a link in bps.
    pub fn cap(&self, id: LinkId) -> f64 {
        self.caps[id as usize]
    }

    /// Overwrite one link's capacity (fabric reconfiguration).
    pub fn set_cap(&mut self, id: LinkId, cap: f64) {
        self.caps[id as usize] = cap;
    }

    /// Zero every capacity (links absent from a reconfigured fabric carry
    /// nothing, matching the map-keyed `unwrap_or(0.0)` semantics).
    pub fn zero_caps(&mut self) {
        for c in &mut self.caps {
            *c = 0.0;
        }
    }

    /// Id of an already-interned link.
    pub fn lookup(&self, key: LinkKey) -> Option<LinkId> {
        self.index.get(&key).copied()
    }

    /// Intern a link, returning its id; new links start at capacity 0.0.
    pub fn intern(&mut self, key: LinkKey) -> LinkId {
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = dense_u32(self.keys.len());
        self.keys.push(key);
        self.caps.push(0.0);
        self.index.insert(key, id);
        let pos = self
            .by_key
            .binary_search_by(|&other| self.keys[other as usize].cmp(&key))
            .expect_err("key was not in the index, so it cannot be in by_key");
        self.by_key.insert(pos, id);
        id
    }

    /// Every id in ascending `LinkKey` order — the iteration order of the
    /// old `BTreeMap`-keyed code, kept so sums and scans stay bit-identical.
    pub fn ids_by_key(&self) -> &[LinkId] {
        &self.by_key
    }
}

/// Pooled per-call buffers for [`waterfill_ids_with`]: a water-filling pass
/// allocates nothing when driven through a scratch that has warmed up to the
/// workload's component size. The engine keeps one for its sequential
/// recompute path so steady-state event handling (and the dynamic cluster's
/// per-window re-rating) reuses the same heap blocks window after window.
/// Every buffer is fully rewritten per call, so reuse cannot change results.
#[derive(Debug, Clone, Default)]
pub(crate) struct WaterfillScratch {
    touched: Vec<LinkId>,
    caps: Vec<f64>,
    span_slots: Vec<Vec<u32>>,
    flows_on: Vec<Vec<u32>>,
    residual: Vec<f64>,
    unfixed: Vec<usize>,
    fixed: Vec<bool>,
    frozen: Vec<u32>,
}

/// [`waterfill_ids_with`] over a throwaway scratch — convenience for tests
/// and one-shot callers.
#[cfg(test)]
pub(crate) fn waterfill_ids(
    links: &LinkArena,
    spans: &[&[LinkId]],
    relay_factors: &[f64],
) -> Vec<f64> {
    waterfill_ids_with(links, spans, relay_factors, &mut WaterfillScratch::default())
}

/// Progressive-filling max-min fair allocation over interned link ids — the
/// flat-index equivalent of [`crate::fluid::waterfill_slices`], returning
/// rates (bps) aligned with `spans` positions.
///
/// `spans[k]` holds the link ids flow `k` traverses, one entry per path
/// window *including duplicates* (a path revisiting a link counts once per
/// crossing in the link's fair share, like the map-keyed code), and
/// `relay_factors[k]` its kernel-relay cap multiplier. The candidate
/// bottleneck scan visits touched links in ascending `LinkKey` order and
/// flows freeze in position order, replicating the map-keyed float
/// operation order exactly — the allocations are bit-identical, which is
/// what keeps the committed BENCH artifacts byte-stable across the flat
/// refactor (see the unit tests below, which assert `f64::to_bits`
/// equality against `waterfill_slices`).
pub(crate) fn waterfill_ids_with(
    links: &LinkArena,
    spans: &[&[LinkId]],
    relay_factors: &[f64],
    scratch: &mut WaterfillScratch,
) -> Vec<f64> {
    debug_assert_eq!(spans.len(), relay_factors.len());
    let n = spans.len();
    let WaterfillScratch { touched, caps, span_slots, flows_on, residual, unfixed, fixed, frozen } =
        scratch;
    // Absolute rate caps for relayed logical connections; fabrics without
    // relay overhead skip the bookkeeping (same fast path as the map code).
    let any_capped = relay_factors.iter().any(|&f| f < 1.0);
    caps.clear();
    if any_capped {
        caps.extend(spans.iter().zip(relay_factors).map(|(span, &f)| {
            if f >= 1.0 {
                f64::INFINITY
            } else {
                let bottleneck = span.iter().map(|&id| links.cap(id)).fold(f64::INFINITY, f64::min);
                if bottleneck.is_finite() {
                    f.max(0.0) * bottleneck
                } else {
                    f64::INFINITY // zero-hop path: never rated anyway
                }
            }
        }));
    }

    // Touched links as dense slots, ordered by ascending LinkKey so the
    // most-constrained-link scan retraces the BTreeMap iteration.
    touched.clear();
    touched.extend(spans.iter().flat_map(|s| s.iter().copied()));
    touched.sort_unstable_by_key(|&id| links.key(id));
    touched.dedup();
    let t = touched.len();
    let slot_of = |touched: &[LinkId], id: LinkId| -> usize {
        touched
            .binary_search_by(|&other| links.key(other).cmp(&links.key(id)))
            // lint:allow(panic-in-engine): `touched` was built from exactly
            // these spans three lines up, so every span link is present.
            .expect("every span link is in the touched set")
    };
    // Per-flow slot lists mirror the spans (duplicates preserved). Inner
    // vectors are pooled: only the first `n` are used, each cleared first.
    if span_slots.len() < n {
        span_slots.resize_with(n, Vec::new);
    }
    if flows_on.len() < t {
        flows_on.resize_with(t, Vec::new);
    }
    for (pos, span) in spans.iter().enumerate() {
        let slots = &mut span_slots[pos];
        slots.clear();
        slots.extend(span.iter().map(|&id| dense_u32(slot_of(touched, id))));
    }
    let span_slots: &[Vec<u32>] = &span_slots[..n];

    residual.clear();
    residual.extend(touched.iter().map(|&id| links.cap(id)));
    let flows_on = &mut flows_on[..t];
    for f in flows_on.iter_mut() {
        f.clear();
    }
    for (pos, slots) in span_slots.iter().enumerate() {
        for &sl in slots {
            flows_on[sl as usize].push(dense_u32(pos));
        }
    }
    unfixed.clear();
    unfixed.extend(flows_on.iter().map(|v| v.len()));

    let mut rates = vec![0.0f64; n];
    fixed.clear();
    fixed.resize(n, false);
    let mut remaining_flows = n;
    while remaining_flows > 0 {
        // Most constrained link: min residual / #unfixed flows, scanning
        // slots in key order with a strict `<` so ties resolve to the
        // lowest key — exactly the map-keyed scan.
        let mut best: Option<(usize, f64)> = None;
        for sl in 0..t {
            let count = unfixed[sl];
            if count == 0 {
                continue;
            }
            let share = residual[sl] / count as f64;
            if best.map(|(_, b)| share < b).unwrap_or(true) {
                best = Some((sl, share));
            }
        }
        // Most constrained per-flow rate cap, ties by position.
        let mut best_cap: Option<(usize, f64)> = None;
        for (pos, &cap) in caps.iter().enumerate() {
            if fixed[pos] || cap.is_infinite() {
                continue;
            }
            if best_cap.map(|(_, b)| cap < b).unwrap_or(true) {
                best_cap = Some((pos, cap));
            }
        }
        // A capped flow freezes at its cap only when strictly below the
        // bottleneck fair share (ties defer to link freezing).
        if let Some((pos, cap)) = best_cap {
            let link_share = best.map(|(_, s)| s.max(0.0)).unwrap_or(f64::INFINITY);
            if cap < link_share {
                let cap = cap.max(0.0);
                rates[pos] = cap;
                fixed[pos] = true;
                remaining_flows -= 1;
                for &sl in &span_slots[pos] {
                    let sl = sl as usize;
                    residual[sl] = (residual[sl] - cap).max(0.0);
                    unfixed[sl] = unfixed[sl].saturating_sub(1);
                }
                continue;
            }
        }
        let Some((bottleneck, share)) = best else {
            // Remaining flows traverse no links (zero-hop spans); their
            // rates stay 0.0, matching the map-keyed fallback.
            break;
        };
        let share = share.max(0.0);
        // Freeze every unfixed flow crossing the bottleneck at `share`, in
        // registration (position) order.
        frozen.clear();
        frozen.extend(flows_on[bottleneck].iter().copied().filter(|&p| !fixed[p as usize]));
        for &pos in frozen.iter() {
            let pos = pos as usize;
            if fixed[pos] {
                continue; // listed twice on the bottleneck (path revisit)
            }
            rates[pos] = share;
            fixed[pos] = true;
            remaining_flows -= 1;
            for &sl in &span_slots[pos] {
                let sl = sl as usize;
                residual[sl] = (residual[sl] - share).max(0.0);
                unfixed[sl] = unfixed[sl].saturating_sub(1);
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::waterfill_slices;
    use std::collections::BTreeMap;

    /// Intern every window of every path and return the flat spans.
    fn intern_paths(arena: &mut LinkArena, paths: &[Vec<usize>]) -> Vec<Vec<LinkId>> {
        paths.iter().map(|p| p.windows(2).map(|w| arena.intern((w[0], w[1]))).collect()).collect()
    }

    /// Assert the flat water-filler matches the map-keyed one bit-for-bit.
    fn assert_bit_identical(
        capacity: &BTreeMap<LinkKey, f64>,
        paths: &[Vec<usize>],
        factors: &[f64],
    ) {
        let mut arena = LinkArena::from_sorted_capacities(capacity.iter().map(|(&k, &v)| (k, v)));
        let spans = intern_paths(&mut arena, paths);
        let span_refs: Vec<&[LinkId]> = spans.iter().map(|s| s.as_slice()).collect();
        let flat = waterfill_ids(&arena, &span_refs, factors);

        let active: Vec<usize> = (0..paths.len()).collect();
        let path_refs: Vec<&[usize]> = paths.iter().map(|p| p.as_slice()).collect();
        let map_rates = waterfill_slices(capacity, &active, &path_refs, factors);
        for (pos, &rate) in flat.iter().enumerate() {
            let expected = map_rates.get(&pos).copied().unwrap_or(0.0);
            assert_eq!(
                rate.to_bits(),
                expected.to_bits(),
                "flow {pos}: flat {rate} vs map {expected}"
            );
        }
    }

    /// Deterministic pseudo-random sequence for test-case generation.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self, bound: usize) -> usize {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((self.0 >> 33) as usize) % bound.max(1)
        }
    }

    #[test]
    fn intern_keeps_ids_stable_and_by_key_sorted() {
        let mut arena = LinkArena::from_sorted_capacities(vec![((0, 1), 10.0), ((2, 3), 20.0)]);
        assert_eq!(arena.intern((0, 1)), 0);
        let late = arena.intern((1, 2)); // out of key order
        assert_eq!(late, 2);
        assert_eq!(arena.cap(late), 0.0);
        assert_eq!(arena.lookup((2, 3)), Some(1));
        let keys: Vec<LinkKey> = arena.ids_by_key().iter().map(|&id| arena.key(id)).collect();
        assert_eq!(keys, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn matches_map_waterfill_on_shared_bottleneck() {
        let mut capacity = BTreeMap::new();
        capacity.insert((0, 1), 100.0);
        capacity.insert((1, 2), 10.0);
        let paths = vec![vec![0, 1, 2], vec![0, 1]];
        assert_bit_identical(&capacity, &paths, &[1.0, 1.0]);
    }

    #[test]
    fn matches_map_waterfill_with_relay_caps_and_missing_links() {
        let mut capacity = BTreeMap::new();
        capacity.insert((0, 1), 100.0);
        capacity.insert((1, 2), 40.0);
        // Path over the absent (2, 3) link gets rate 0; the relayed flow is
        // capped below its fair share.
        let paths = vec![vec![0, 1, 2, 3], vec![0, 1, 2], vec![0, 1]];
        assert_bit_identical(&capacity, &paths, &[1.0, 0.25, 1.0]);
    }

    #[test]
    fn matches_map_waterfill_on_revisiting_path() {
        let mut capacity = BTreeMap::new();
        capacity.insert((0, 1), 90.0);
        capacity.insert((1, 0), 90.0);
        // 0 -> 1 -> 0 -> 1 crosses (0, 1) twice: counts twice in its share.
        let paths = vec![vec![0, 1, 0, 1], vec![0, 1]];
        assert_bit_identical(&capacity, &paths, &[1.0, 1.0]);
    }

    #[test]
    fn matches_map_waterfill_on_random_ring_workloads() {
        let mut rng = Lcg(7);
        for case in 0..50 {
            let n = 4 + rng.next(12);
            let mut capacity = BTreeMap::new();
            for i in 0..n {
                capacity.insert((i, (i + 1) % n), 50.0 + rng.next(200) as f64);
            }
            let flows = 2 + rng.next(2 * n);
            let mut paths = Vec::new();
            let mut factors = Vec::new();
            for _ in 0..flows {
                let start = rng.next(n);
                let hops = 1 + rng.next(n - 1);
                let path: Vec<usize> = (0..=hops).map(|k| (start + k) % n).collect();
                paths.push(path);
                factors.push(if rng.next(4) == 0 { rng.next(100) as f64 / 100.0 } else { 1.0 });
            }
            assert_bit_identical(&capacity, &paths, &factors);
            let _ = case;
        }
    }
}
