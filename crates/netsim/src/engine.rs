//! Event-driven incremental fluid engine.
//!
//! The engine advances the simulation from event to event over an explicit
//! priority queue of three event kinds:
//!
//! * **flow arrival** — a flow's `start_s` is reached and it joins the
//!   active set;
//! * **flow completion** — a flow's predicted finish time fires (stale
//!   predictions are lazily invalidated by a per-flow version counter);
//! * **fabric reconfiguration** — the link-capacity map is swapped at a
//!   scheduled instant (OCS/patch-panel rewiring between jobs).
//!
//! The key optimisation over the from-scratch loop
//! ([`crate::fluid::simulate_flows_reference`]) is *incremental* max-min
//! recomputation: an event can only change the rates of flows that share a
//! link — transitively — with the flows it touches, i.e. the connected
//! component of the flow/link sharing graph around the event. The engine
//! re-waterfills exactly that component and leaves every other flow's rate
//! (and its already-scheduled completion event) untouched. On a sharded
//! shared cluster (Figure 16), where each job's flows live on a disjoint
//! slice of the fabric, this turns every event from an O(all flows)
//! recomputation into an O(one job) one; [`EngineStats::max_component`]
//! makes the effect observable. When one event batch touches *several*
//! disjoint components — a wave of t = 0 arrivals across all shards, or a
//! fabric reconfiguration — their water-filling passes additionally run on
//! separate rayon threads, with rates applied in deterministic component
//! order afterwards.
//!
//! Rates between events are constant, so flow progress is settled lazily:
//! each flow remembers the last instant its remaining bytes were reconciled
//! and is only touched when its component is re-waterfilled, when it
//! completes, or when [`FluidEngine::run_until`] settles the world at a
//! window boundary.

use crate::fluid::{
    link_capacities, sum_link_bytes, waterfill_slices, FlowSpec, FluidResult, LinkKey,
    COMPLETION_EPS_BYTES,
};
use rayon::prelude::*;
use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};
use topoopt_graph::Graph;

/// Index of a flow inside a [`FluidEngine`], in insertion order.
pub type FlowId = usize;

/// Lifecycle of one engine flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlowState {
    /// Not yet started (waiting for its arrival event).
    Pending,
    /// Transferring bytes.
    Active,
    /// Finished (or declared unroutable at the end of the run).
    Done,
}

#[derive(Debug, Clone)]
struct EngineFlow {
    spec: FlowSpec,
    state: FlowState,
    remaining_bytes: f64,
    rate_bps: f64,
    /// Last instant `remaining_bytes` / `link_bytes` were reconciled.
    settled_s: f64,
    /// Bumped on every rate change; stale completion events carry an older
    /// version and are skipped when popped.
    version: u64,
    completion_s: f64,
}

#[derive(Debug, Clone)]
enum EventKind {
    Arrival(FlowId),
    Completion { flow: FlowId, version: u64 },
    Reconfigure(usize),
}

#[derive(Debug, Clone)]
struct Event {
    time_s: f64,
    /// Insertion order, breaking time ties deterministically.
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time_s.total_cmp(&other.time_s).then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Counters describing how much work a run did — the observable payoff of
/// incremental recomputation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events processed (stale completion events excluded).
    pub events: usize,
    /// Water-filling passes executed.
    pub waterfills: usize,
    /// Total flows re-rated across all water-filling passes. The
    /// from-scratch loop would re-rate every active flow at every event.
    pub flows_rerated: usize,
    /// Largest connected component ever re-waterfilled at once.
    pub max_component: usize,
    /// Fabric reconfigurations applied.
    pub reconfigurations: usize,
}

/// Event-driven max-min fluid simulator with incremental rate updates.
#[derive(Debug, Clone)]
pub struct FluidEngine {
    capacity: BTreeMap<LinkKey, f64>,
    per_hop_latency_s: f64,
    flows: Vec<EngineFlow>,
    /// Active flows crossing each link, one entry per traversal.
    active_on_link: BTreeMap<LinkKey, Vec<FlowId>>,
    events: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    now_s: f64,
    link_bytes: HashMap<LinkKey, f64>,
    pending_reconfigs: Vec<BTreeMap<LinkKey, f64>>,
    stats: EngineStats,
}

impl FluidEngine {
    /// Engine over `graph`'s aggregated directed-link capacities, with a
    /// fixed per-hop propagation delay added to every completion time.
    pub fn new(graph: &Graph, per_hop_latency_s: f64) -> Self {
        Self::from_capacities(link_capacities(graph), per_hop_latency_s)
    }

    /// Engine over an explicit link-capacity map (bps per directed pair).
    pub fn from_capacities(capacity: BTreeMap<LinkKey, f64>, per_hop_latency_s: f64) -> Self {
        FluidEngine {
            capacity,
            per_hop_latency_s,
            flows: Vec::new(),
            active_on_link: BTreeMap::new(),
            events: BinaryHeap::new(),
            next_seq: 0,
            now_s: 0.0,
            link_bytes: HashMap::new(),
            pending_reconfigs: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    /// Current simulation clock.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Work counters for this run so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Add a flow; its arrival event fires at `spec.start_s` (clamped to the
    /// current clock if that instant already passed). Flows with zero hops
    /// or zero bytes complete immediately, matching the reference loop.
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        let id = self.flows.len();
        let remaining = spec.bytes.max(0.0);
        let mut flow = EngineFlow {
            state: FlowState::Pending,
            remaining_bytes: remaining,
            rate_bps: 0.0,
            settled_s: spec.start_s,
            version: 0,
            completion_s: 0.0,
            spec,
        };
        if flow.spec.hops() == 0 {
            flow.state = FlowState::Done;
            flow.completion_s = flow.spec.start_s;
        } else if remaining <= 0.0 {
            flow.state = FlowState::Done;
            flow.completion_s = 0.0;
        } else {
            let t = flow.spec.start_s.max(self.now_s);
            self.push_event(t, EventKind::Arrival(id));
        }
        self.flows.push(flow);
        id
    }

    /// Schedule a fabric reconfiguration: at `time_s` the link-capacity map
    /// is replaced by `graph`'s and every active flow is re-rated.
    pub fn schedule_reconfig(&mut self, time_s: f64, graph: &Graph) {
        self.schedule_reconfig_capacities(time_s, link_capacities(graph));
    }

    /// [`Self::schedule_reconfig`] with an explicit capacity map.
    pub fn schedule_reconfig_capacities(&mut self, time_s: f64, capacity: BTreeMap<LinkKey, f64>) {
        let idx = self.pending_reconfigs.len();
        self.pending_reconfigs.push(capacity);
        let t = time_s.max(self.now_s);
        self.push_event(t, EventKind::Reconfigure(idx));
    }

    /// Process every event; flows still active afterwards (zero-rate on a
    /// zero-capacity link) are declared unroutable with infinite completion.
    pub fn run(&mut self) {
        self.run_until(f64::INFINITY);
        for flow in &mut self.flows {
            if flow.state != FlowState::Done {
                flow.state = FlowState::Done;
                flow.completion_s = f64::INFINITY;
            }
        }
        self.active_on_link.clear();
    }

    /// Process events up to and including `t_end`, then settle every active
    /// flow's progress to `t_end` so remaining bytes can be read exactly.
    /// The engine can continue afterwards (add flows, schedule reconfigs,
    /// call `run_until` again with a later deadline).
    ///
    /// Events scheduled for the *same instant* are drained as one batch and
    /// followed by a single recomputation pass, so a wave of simultaneous
    /// arrivals (every job starting a round at t = 0) or completions costs
    /// one waterfill per touched component instead of one per event.
    pub fn run_until(&mut self, t_end: f64) {
        while let Some(Reverse(head)) = self.events.peek() {
            if head.time_s > t_end {
                break;
            }
            let batch_time = head.time_s;
            self.now_s = self.now_s.max(batch_time);
            let mut seeds: Vec<FlowId> = Vec::new();
            let mut reconfigured = false;
            while let Some(Reverse(ev)) = self.events.peek() {
                if ev.time_s.total_cmp(&batch_time) != Ordering::Equal {
                    break;
                }
                let Reverse(ev) = self.events.pop().expect("peeked event vanished");
                match ev.kind {
                    EventKind::Arrival(id) => {
                        debug_assert_eq!(self.flows[id].state, FlowState::Pending);
                        self.stats.events += 1;
                        self.activate(id);
                        seeds.push(id);
                    }
                    EventKind::Completion { flow, version } => {
                        if self.flows[flow].state != FlowState::Active
                            || self.flows[flow].version != version
                        {
                            continue; // stale prediction
                        }
                        self.stats.events += 1;
                        self.settle(flow);
                        seeds.extend(self.finish_now(flow));
                    }
                    EventKind::Reconfigure(idx) => {
                        self.stats.events += 1;
                        self.stats.reconfigurations += 1;
                        self.capacity = self.pending_reconfigs[idx].clone();
                        reconfigured = true;
                    }
                }
            }
            if reconfigured {
                // New capacities can re-rate every active flow.
                seeds = (0..self.flows.len())
                    .filter(|&i| self.flows[i].state == FlowState::Active)
                    .collect();
            } else {
                seeds.sort_unstable();
                seeds.dedup();
            }
            self.recompute_components(&seeds);
        }
        // `>=`, not `>`: when the last processed event lands exactly on
        // t_end, flows in *other* components are still settled only up to
        // their previous event and need reconciling to the deadline.
        if t_end.is_finite() && t_end >= self.now_s {
            self.now_s = t_end;
            for id in 0..self.flows.len() {
                if self.flows[id].state == FlowState::Active {
                    self.settle(id);
                }
            }
        }
    }

    /// True when no flow is still making progress: everything is done,
    /// pending after `now`, or stuck at rate zero.
    pub fn drained(&self) -> bool {
        self.flows.iter().all(|f| f.state != FlowState::Active || f.rate_bps <= 0.0)
            && self.flows.iter().all(|f| f.state != FlowState::Pending)
    }

    /// Whether a flow has finished (routable flows only; see
    /// [`Self::completion_s`] for the unroutable marker).
    pub fn is_done(&self, id: FlowId) -> bool {
        self.flows[id].state == FlowState::Done
    }

    /// Completion time of a finished flow (infinite if declared
    /// unroutable); meaningless while the flow is still pending/active.
    pub fn completion_s(&self, id: FlowId) -> f64 {
        self.flows[id].completion_s
    }

    /// Bytes a flow still has to send, exact as of the last `run_until`
    /// deadline or processed event.
    pub fn remaining_bytes(&self, id: FlowId) -> f64 {
        self.flows[id].remaining_bytes
    }

    /// Latest finite completion time observed so far (0.0 if none).
    pub fn makespan_so_far(&self) -> f64 {
        self.flows
            .iter()
            .filter(|f| f.state == FlowState::Done && f.completion_s.is_finite())
            .map(|f| f.completion_s)
            .fold(0.0, f64::max)
    }

    /// Snapshot the run as a [`FluidResult`] (flows indexed in insertion
    /// order). Call after [`Self::run`]; flows not yet finished report
    /// infinite completion.
    pub fn result(&self) -> FluidResult {
        let completion: Vec<f64> = self
            .flows
            .iter()
            .map(|f| if f.state == FlowState::Done { f.completion_s } else { f64::INFINITY })
            .collect();
        let carried = sum_link_bytes(&self.link_bytes);
        let demand: f64 =
            self.flows.iter().map(|f| if f.spec.hops() > 0 { f.spec.bytes } else { 0.0 }).sum();
        let makespan = completion.iter().cloned().filter(|c| c.is_finite()).fold(0.0, f64::max);
        FluidResult {
            completion_s: completion,
            makespan_s: makespan,
            link_bytes: self.link_bytes.clone(),
            carried_bytes: carried,
            demand_bytes: demand,
        }
    }

    fn push_event(&mut self, time_s: f64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Reverse(Event { time_s, seq, kind }));
    }

    /// Reconcile a flow's remaining bytes (and the per-link byte counters)
    /// up to the current clock at its constant rate.
    fn settle(&mut self, id: FlowId) {
        let flow = &self.flows[id];
        let dt = self.now_s - flow.settled_s;
        if dt <= 0.0 || flow.rate_bps <= 0.0 {
            self.flows[id].settled_s = self.now_s;
            return;
        }
        let sent = (flow.rate_bps * dt / 8.0).min(flow.remaining_bytes);
        if sent > 0.0 {
            for w in flow.spec.path.windows(2) {
                *self.link_bytes.entry((w[0], w[1])).or_insert(0.0) += sent;
            }
        }
        let flow = &mut self.flows[id];
        flow.remaining_bytes -= sent;
        flow.settled_s = self.now_s;
    }

    /// Make a pending flow active and register it on its links; the caller
    /// re-rates its component at the end of the event batch.
    fn activate(&mut self, id: FlowId) {
        let flow = &mut self.flows[id];
        flow.state = FlowState::Active;
        flow.settled_s = self.now_s;
        let links: Vec<LinkKey> = flow.spec.path.windows(2).map(|w| (w[0], w[1])).collect();
        for link in links {
            self.active_on_link.entry(link).or_default().push(id);
        }
    }

    /// Mark a settled flow finished at the current clock: drain any float
    /// residue into the byte counters, deregister it from its links, and
    /// return the still-active flows that shared a link with it (the seeds
    /// of the component to re-rate). Idempotent callers must check state.
    fn finish_now(&mut self, id: FlowId) -> Vec<FlowId> {
        let leftover = self.flows[id].remaining_bytes;
        if leftover > 0.0 {
            let path = std::mem::take(&mut self.flows[id].spec.path);
            for w in path.windows(2) {
                *self.link_bytes.entry((w[0], w[1])).or_insert(0.0) += leftover;
            }
            self.flows[id].spec.path = path;
            self.flows[id].remaining_bytes = 0.0;
        }
        let flow = &mut self.flows[id];
        flow.state = FlowState::Done;
        flow.rate_bps = 0.0;
        flow.version += 1;
        flow.completion_s = self.now_s + self.per_hop_latency_s * flow.spec.hops() as f64;

        let links: Vec<LinkKey> =
            self.flows[id].spec.path.windows(2).map(|w| (w[0], w[1])).collect();
        let mut neighbours: Vec<FlowId> = Vec::new();
        for link in links {
            if let Some(v) = self.active_on_link.get_mut(&link) {
                v.retain(|&f| f != id);
                if v.is_empty() {
                    self.active_on_link.remove(&link);
                } else {
                    neighbours.extend(v.iter().copied());
                }
            }
        }
        neighbours.sort_unstable();
        neighbours.dedup();
        neighbours
    }

    /// Re-waterfill every connected component (over link sharing) that
    /// contains a seed flow. Disjoint components — e.g. two jobs whose
    /// rounds end at the same instant on separate shards, or a wave of
    /// t = 0 arrivals across all shards — are re-rated independently, and
    /// their water-filling passes run on separate rayon threads when the
    /// batch is large enough to pay for the fan-out (see
    /// [`PARALLEL_WATERFILL_MIN_FLOWS`]). Rates are collected in component
    /// order and applied sequentially, so results and event ordering are
    /// identical to the serial path regardless of thread count.
    fn recompute_components(&mut self, seeds: &[FlowId]) {
        // Phase 1: gather the touched components by BFS over the flow/link
        // sharing graph (components are disjoint by construction).
        let mut visited: BTreeSet<FlowId> = BTreeSet::new();
        let mut components: Vec<Vec<FlowId>> = Vec::new();
        for &s in seeds {
            if self.flows[s].state != FlowState::Active || visited.contains(&s) {
                continue;
            }
            let mut component: Vec<FlowId> = vec![s];
            let mut frontier: Vec<FlowId> = vec![s];
            visited.insert(s);
            let mut seen_links: BTreeSet<LinkKey> = BTreeSet::new();
            while let Some(f) = frontier.pop() {
                for w in self.flows[f].spec.path.windows(2) {
                    let link = (w[0], w[1]);
                    if !seen_links.insert(link) {
                        continue;
                    }
                    if let Some(sharers) = self.active_on_link.get(&link) {
                        for &g in sharers {
                            if visited.insert(g) {
                                component.push(g);
                                frontier.push(g);
                            }
                        }
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }

        // Phase 2 (sequential, mutates shared maps): settle each member,
        // finish any that already ran dry (exact ties with the event that
        // triggered this recompute, like the reference loop completing
        // several flows in one step), and keep the rest for re-rating.
        let mut live_sets: Vec<Vec<FlowId>> = Vec::with_capacity(components.len());
        for ids in &components {
            let mut live: Vec<FlowId> = Vec::with_capacity(ids.len());
            for &f in ids {
                self.settle(f);
                // The threshold is relative to the flow size so that
                // equal-share flows predicted to finish at float-identical
                // instants all complete on the first of their events (one
                // waterfill instead of one per flow); the time error is
                // O(1e-12) of the transfer.
                let eps = COMPLETION_EPS_BYTES.max(self.flows[f].spec.bytes * 1e-12);
                if self.flows[f].remaining_bytes <= eps {
                    self.finish_now(f);
                } else {
                    live.push(f);
                }
            }
            self.stats.waterfills += 1;
            self.stats.flows_rerated += live.len();
            self.stats.max_component = self.stats.max_component.max(live.len());
            live_sets.push(live);
        }

        // Phase 3 (read-only): water-fill each component. Parallel when the
        // batch spans several components with enough total work.
        let populated = live_sets.iter().filter(|l| !l.is_empty()).count();
        let total_live: usize = live_sets.iter().map(|l| l.len()).sum();
        let rate_sets: Vec<HashMap<FlowId, f64>> = if populated > 1
            && total_live >= PARALLEL_WATERFILL_MIN_FLOWS
        {
            let capacity = &self.capacity;
            let flows = &self.flows;
            live_sets.par_iter().map(|live| waterfill_component(capacity, flows, live)).collect()
        } else {
            live_sets
                .iter()
                .map(|live| waterfill_component(&self.capacity, &self.flows, live))
                .collect()
        };

        // Phase 4 (sequential, deterministic order): apply the new rates
        // and reschedule completion predictions.
        for (live, rates) in live_sets.iter().zip(rate_sets) {
            let mut to_schedule: Vec<(f64, EventKind)> = Vec::new();
            for &f in live {
                let rate = rates.get(&f).copied().unwrap_or(0.0);
                let flow = &mut self.flows[f];
                flow.rate_bps = rate;
                flow.version += 1;
                if rate > 0.0 {
                    let t = self.now_s + flow.remaining_bytes * 8.0 / rate;
                    to_schedule.push((t, EventKind::Completion { flow: f, version: flow.version }));
                }
            }
            for (t, kind) in to_schedule {
                self.push_event(t, kind);
            }
        }
    }
}

/// Smallest total live-flow count for which a multi-component event batch
/// fans its water-filling passes out to rayon threads; below this the
/// thread-team spawn costs more than the waterfills.
const PARALLEL_WATERFILL_MIN_FLOWS: usize = 64;

/// Max-min rates of one component's live flows (pure function of the
/// capacity map and flow paths, safe to run concurrently per component).
fn waterfill_component(
    capacity: &BTreeMap<LinkKey, f64>,
    flows: &[EngineFlow],
    live: &[FlowId],
) -> HashMap<FlowId, f64> {
    if live.is_empty() {
        return HashMap::new();
    }
    let paths: Vec<&[usize]> = live.iter().map(|&f| flows[f].spec.path.as_slice()).collect();
    let factors: Vec<f64> = live.iter().map(|&f| flows[f].spec.relay_factor).collect();
    waterfill_slices(capacity, live, &paths, &factors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize, cap: f64) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n, cap);
        }
        g
    }

    #[test]
    fn disjoint_components_are_not_rerated_together() {
        // Two disjoint 4-rings with one flow per edge: every waterfill must
        // stay inside one ring (4 flows), never touch all 8.
        let mut g = Graph::new(8);
        for base in [0usize, 4] {
            for i in 0..4 {
                g.add_edge(base + i, base + (i + 1) % 4, 100.0);
            }
        }
        let mut engine = FluidEngine::new(&g, 0.0);
        for base in [0usize, 4] {
            for i in 0..4 {
                engine.add_flow(FlowSpec::new(
                    vec![base + i, base + (i + 1) % 4],
                    100.0 * (1.0 + i as f64),
                ));
            }
        }
        engine.run();
        let stats = engine.stats();
        assert!(stats.max_component <= 4, "component leaked across shards: {stats:?}");
        let r = engine.result();
        assert!(r.completion_s.iter().all(|c| c.is_finite()));
    }

    #[test]
    fn reconfig_event_changes_rates_mid_flow() {
        // 100 bytes over a 100 bps link; at t = 4 s the link drops to 50
        // bps: 400 bits sent, 400 left at 50 bps -> completes at 12 s.
        let g = ring(2, 100.0);
        let mut slow = Graph::new(2);
        slow.add_edge(0, 1, 50.0);
        slow.add_edge(1, 0, 50.0);
        let mut engine = FluidEngine::new(&g, 0.0);
        let id = engine.add_flow(FlowSpec::new(vec![0, 1], 100.0));
        engine.schedule_reconfig(4.0, &slow);
        engine.run();
        assert!((engine.completion_s(id) - 12.0).abs() < 1e-9);
        assert_eq!(engine.stats().reconfigurations, 1);
    }

    #[test]
    fn reconfig_can_rescue_an_unroutable_flow() {
        // The 1 -> 0 link does not exist until the reconfiguration at t = 2.
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 80.0);
        let mut full = Graph::new(2);
        full.add_edge(0, 1, 80.0);
        full.add_edge(1, 0, 80.0);
        let mut engine = FluidEngine::new(&g, 0.0);
        let id = engine.add_flow(FlowSpec::new(vec![1, 0], 10.0)); // 80 bits
        engine.schedule_reconfig(2.0, &full);
        engine.run();
        assert!((engine.completion_s(id) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn run_until_reports_exact_partial_progress() {
        let g = ring(2, 100.0);
        let mut engine = FluidEngine::new(&g, 0.0);
        let id = engine.add_flow(FlowSpec::new(vec![0, 1], 100.0)); // 8 s total
        engine.run_until(3.0);
        assert!(!engine.is_done(id));
        assert!((engine.remaining_bytes(id) - 62.5).abs() < 1e-9); // 300 bits sent
        engine.run_until(100.0);
        assert!(engine.is_done(id));
        assert!((engine.completion_s(id) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn run_until_settles_other_components_when_an_event_lands_on_the_deadline() {
        // Flow A (625 bytes at 100 bps) completes at exactly t = 50; flow B
        // lives in a disjoint component and must still be settled to the
        // deadline rather than left at its last event.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 100.0);
        g.add_edge(2, 3, 100.0);
        let mut engine = FluidEngine::new(&g, 0.0);
        let a = engine.add_flow(FlowSpec::new(vec![0, 1], 625.0));
        let b = engine.add_flow(FlowSpec::new(vec![2, 3], 1000.0));
        engine.run_until(50.0);
        assert!(engine.is_done(a));
        assert!((engine.completion_s(a) - 50.0).abs() < 1e-9);
        assert!(!engine.is_done(b));
        assert!((engine.remaining_bytes(b) - 375.0).abs() < 1e-9); // 5000 bits sent
    }

    #[test]
    fn mid_simulation_arrival_splits_bandwidth() {
        // Flow A alone for 4 s (50 bytes left), then shares with B: A
        // finishes at 4 + 50*8/50 = 12 s; B needs 100*8 bits at 50 bps from
        // t=4 until A leaves at 12 (50 bytes sent), then 100 bps -> 16 s.
        let g = ring(2, 100.0);
        let mut engine = FluidEngine::new(&g, 0.0);
        let a = engine.add_flow(FlowSpec::new(vec![0, 1], 100.0));
        let mut late = FlowSpec::new(vec![0, 1], 100.0);
        late.start_s = 4.0;
        let b = engine.add_flow(late);
        engine.run();
        assert!((engine.completion_s(a) - 12.0).abs() < 1e-9);
        assert!((engine.completion_s(b) - 16.0).abs() < 1e-9);
    }
}
