//! Event-driven incremental fluid engine on flat index-based storage.
//!
//! The engine advances the simulation from event to event over an explicit
//! priority queue of three event kinds:
//!
//! * **flow arrival** — a flow's `start_s` is reached and it joins the
//!   active set;
//! * **flow completion** — a flow's predicted finish time fires (stale
//!   predictions are lazily invalidated by a per-flow version counter);
//! * **fabric reconfiguration** — the link capacities are swapped at a
//!   scheduled instant (OCS/patch-panel rewiring between jobs);
//! * **fault** — a [`FaultEvent`]: a link/transceiver dies or recovers, an
//!   OCS port takes every matched link on it down, or a server straggles
//!   (its egress flows are rate-scaled). Flows crossing a dead link stall
//!   at rate 0 — they are *not* dropped, and resume if the link recovers
//!   before the run drains.
//!
//! # Flat storage
//!
//! Links are interned once into a dense [`crate::arena::LinkArena`]
//! (`LinkId = u32`), and each flow's path is resolved to link ids at
//! [`FluidEngine::add_flow`] time into one flat CSR-style buffer
//! (`flow_links`, per-flow contiguous slices). Everything the hot path
//! touches — capacities, per-link byte counters, the active-flows-per-link
//! adjacency, BFS visit marks — is a `Vec` indexed by `LinkId`/[`FlowId`],
//! so event handling and water-filling do zero tree or hash lookups. The
//! old `BTreeMap`-ordered semantics survive at the API boundary
//! ([`FluidEngine::from_capacities`], [`FluidEngine::result`]) and in the
//! arena's key-sorted id list, which fixes the iteration order of every
//! order-sensitive float reduction; the refactor is bit-identical to the
//! map-keyed engine (see `tests/engine.rs` and the committed artifacts).
//!
//! # Incremental recomputation
//!
//! The key optimisation over the from-scratch loop
//! ([`crate::fluid::simulate_flows_reference`]) is *incremental* max-min
//! recomputation: an event can only change the rates of flows that share a
//! link — transitively — with the flows it touches, i.e. the connected
//! component of the flow/link sharing graph around the event. The engine
//! re-waterfills exactly that component and leaves every other flow's rate
//! (and its already-scheduled completion event) untouched. On a sharded
//! shared cluster (Figure 16), where each job's flows live on a disjoint
//! slice of the fabric, this turns every event from an O(all flows)
//! recomputation into an O(one job) one; [`EngineStats::max_component`]
//! makes the effect observable. When one event batch touches *several*
//! disjoint components, their water-filling passes additionally run on
//! separate rayon threads, with rates applied in deterministic component
//! order afterwards.
//!
//! # Sharded event loops
//!
//! [`FluidEngine::run`] goes one step further: when the live (not-yet-done)
//! flows partition into several connected components (and no
//! reconfiguration is outstanding — a capacity swap couples everything),
//! each component becomes its own *shard* with its own event heap and
//! clock, run as an independent event loop on a rayon thread and merged
//! deterministically afterwards. This works **mid-run**, not just on a
//! fresh engine: each shard is seeded with a full state transplant — flow
//! progress (`remaining_bytes`, `settled_s`, rates, versions), link byte
//! counters, and the pending events of its member flows copied verbatim
//! (times *and* tie-breaking sequence numbers) from the parent heap.
//! Components never interact — no shared links means no shared rates, no
//! shared events, and no shared byte counters — so the merge (flow
//! outcomes and per-link bytes copied per shard, the carried-bytes sum
//! taken globally in key order, stats summed in component order) is
//! bit-identical to the single-loop run regardless of thread count;
//! `RAYON_NUM_THREADS=1` and the default produce byte-identical results.
//! [`FluidEngine::run_monolithic`] keeps the single-loop path callable as
//! the equivalence oracle.
//!
//! # Window-level reuse
//!
//! The dynamic shared cluster re-rates co-resident jobs after every
//! arrival/departure. Instead of rebuilding an engine per window, one
//! engine now lives as long as the cluster: links intern once,
//! [`FluidEngine::add_flow_parked`] registers a job's flows without
//! scheduling them, [`FluidEngine::remove_flows`] retires a departing
//! job's flows (deregistering them from the adjacency and invalidating
//! their pending events), and [`FluidEngine::restart_flows`] rewinds the
//! clock and re-arms exactly the flows whose component an event window
//! touched — untouched components keep their cached results, which is
//! sound because disjoint components produce bit-identical results whether
//! or not they are re-simulated (see `multijob::SharedFabricEngine`).
//!
//! Rates between events are constant, so flow progress is settled lazily:
//! each flow remembers the last instant its remaining bytes were reconciled
//! and is only touched when its component is re-waterfilled, when it
//! completes, or when [`FluidEngine::run_until`] settles the world at a
//! window boundary.

use crate::arena::{dense_u32, waterfill_ids_with, LinkArena, LinkId, WaterfillScratch};
use crate::fluid::{link_capacities, FlowSpec, FluidResult, LinkKey, COMPLETION_EPS_BYTES};
use rayon::prelude::*;
use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use topoopt_graph::Graph;

/// Index of a flow inside a [`FluidEngine`], in insertion order. Flows are
/// already arena-allocated (dense `Vec` storage), so the id doubles as the
/// index into every per-flow side array.
pub type FlowId = usize;

/// Lifecycle of one engine flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlowState {
    /// Not yet started (waiting for its arrival event).
    Pending,
    /// Transferring bytes.
    Active,
    /// Finished (or declared unroutable at the end of the run).
    Done,
}

#[derive(Debug, Clone)]
struct EngineFlow {
    spec: FlowSpec,
    state: FlowState,
    remaining_bytes: f64,
    rate_bps: f64,
    /// Last instant `remaining_bytes` / `link_bytes` were reconciled.
    settled_s: f64,
    /// Bumped on every rate change; stale completion events carry an older
    /// version and are skipped when popped.
    version: u64,
    completion_s: f64,
    /// Start of this flow's link-id slice in the engine's flat `flow_links`
    /// buffer; the slice is `spec.hops()` long.
    links_start: usize,
}

#[derive(Debug, Clone)]
enum EventKind {
    Arrival(FlowId),
    Completion { flow: FlowId, version: u64 },
    Reconfigure(usize),
    Fault(usize),
}

/// A fabric fault (or recovery) injected into the event queue via
/// [`FluidEngine::schedule_fault`]. Link keys are directed `(src, dst)`
/// pairs; an OCS port is identified by the server whose interface is
/// matched through it, so a port failure kills every directed link
/// incident to that server. Failures stack: a link taken down twice (say,
/// by a transceiver fault *and* its OCS port) needs both recoveries before
/// it carries traffic again, and a reconfiguration cannot revive a link
/// whose transceiver is still dead. Stragglers scale the egress rate of
/// every flow sourced at the server: an `egress_factor` below 1.0 caps the
/// flow at that fraction of its path bottleneck capacity (composed with
/// the flow's relay factor); a factor of 1.0 (or more) marks the server
/// healthy again.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// A link (transceiver) fails: capacity drops to zero, flows on it
    /// stall at rate 0 until recovery.
    LinkDown(LinkKey),
    /// The matching link recovery: the link returns at the capacity it
    /// would otherwise have (current fabric capacity, not a snapshot).
    LinkUp(LinkKey),
    /// An OCS port fails: every directed link incident to the server wired
    /// through that port goes down.
    OcsPortDown(usize),
    /// The matching port recovery.
    OcsPortUp(usize),
    /// A server straggles: flows sourced there are capped at
    /// `egress_factor` × their path bottleneck capacity. 1.0 = healthy.
    Straggler { server: usize, egress_factor: f64 },
}

#[derive(Debug, Clone)]
struct Event {
    time_s: f64,
    /// Insertion order, breaking time ties deterministically.
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time_s.total_cmp(&other.time_s).then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Counters describing how much work a run did — the observable payoff of
/// incremental recomputation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events processed (stale completion events excluded).
    pub events: usize,
    /// Water-filling passes executed.
    pub waterfills: usize,
    /// Total flows re-rated across all water-filling passes. The
    /// from-scratch loop would re-rate every active flow at every event.
    pub flows_rerated: usize,
    /// Largest connected component ever re-waterfilled at once.
    pub max_component: usize,
    /// Fabric reconfigurations applied.
    pub reconfigurations: usize,
    /// Fault/recovery events applied.
    pub faults: usize,
}

impl EngineStats {
    /// Fold another run's counters in (shard merge: sums, except the
    /// component high-water mark which takes the max).
    fn absorb(&mut self, other: &EngineStats) {
        self.events += other.events;
        self.waterfills += other.waterfills;
        self.flows_rerated += other.flows_rerated;
        self.max_component = self.max_component.max(other.max_component);
        self.reconfigurations += other.reconfigurations;
        self.faults += other.faults;
    }
}

/// Event-driven max-min fluid simulator with incremental rate updates over
/// flat index-based storage (see the module docs).
#[derive(Debug, Clone)]
pub struct FluidEngine {
    links: LinkArena,
    per_hop_latency_s: f64,
    flows: Vec<EngineFlow>,
    /// CSR buffer of per-flow link ids (one entry per path window, in path
    /// order, duplicates preserved); sliced via `EngineFlow::links_start`.
    flow_links: Vec<LinkId>,
    /// Active flows crossing each link, indexed by `LinkId`, one entry per
    /// traversal.
    active_on_link: Vec<Vec<FlowId>>,
    /// Bytes carried per link, indexed by `LinkId`.
    link_bytes: Vec<f64>,
    events: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    now_s: f64,
    /// Scheduled capacity swaps, interned at schedule time.
    pending_reconfigs: Vec<Vec<(LinkId, f64)>>,
    /// Scheduled fault events, link keys interned at schedule time.
    pending_faults: Vec<FaultEvent>,
    stats: EngineStats,
    /// Reconfigurations scheduled but not yet applied; sharding is off
    /// while any is outstanding (a capacity swap couples every component).
    outstanding_reconfigs: usize,
    /// Fault events scheduled but not yet applied; sharding is off while
    /// any is outstanding (a port fault or straggler can touch several
    /// components at once).
    outstanding_faults: usize,
    /// Per-link failure count, indexed by `LinkId`: a link is dead while
    /// its count is positive (overlapping link- and port-level faults
    /// stack, so recoveries pair with their failures).
    down: Vec<u32>,
    /// The capacity each link would have if healthy, indexed by `LinkId`;
    /// the arena always holds the *effective* capacity (0 while down).
    healthy_caps: Vec<f64>,
    /// Per-server egress scale factors for straggling servers; only
    /// entries below 1.0 are stored, so an empty map is the healthy fast
    /// path (and `x * 1.0 == x` bitwise keeps factor composition exact).
    stragglers: BTreeMap<usize, f64>,
    /// Epoch-stamped BFS scratch (per flow / per link): a mark equal to
    /// `epoch` means "visited in the current traversal", so component
    /// gathering allocates nothing per event.
    flow_mark: Vec<u64>,
    link_mark: Vec<u64>,
    epoch: u64,
    /// Epoch-stamped union-find scratch for [`Self::shard_partition`]:
    /// `link_owner[l]` is the first live flow seen on link `l` this epoch
    /// (valid iff `link_mark[l] == epoch`), `uf_parent` the per-flow
    /// union-find forest — pooled so mid-run repartitioning at each window
    /// boundary allocates nothing.
    link_owner: Vec<u32>,
    uf_parent: Vec<u32>,
    /// Pooled water-filling buffers for the sequential recompute path.
    wf_scratch: WaterfillScratch,
}

impl FluidEngine {
    /// Engine over `graph`'s aggregated directed-link capacities, with a
    /// fixed per-hop propagation delay added to every completion time.
    pub fn new(graph: &Graph, per_hop_latency_s: f64) -> Self {
        Self::from_capacities(link_capacities(graph), per_hop_latency_s)
    }

    /// Engine over an explicit link-capacity map (bps per directed pair).
    /// The sorted map is interned into the flat arena here, once; the hot
    /// path never touches a tree again.
    pub fn from_capacities(capacity: BTreeMap<LinkKey, f64>, per_hop_latency_s: f64) -> Self {
        let links = LinkArena::from_sorted_capacities(capacity);
        let n = links.len();
        let healthy_caps: Vec<f64> = (0..n).map(|i| links.cap(dense_u32(i))).collect();
        FluidEngine {
            links,
            per_hop_latency_s,
            flows: Vec::new(),
            flow_links: Vec::new(),
            active_on_link: vec![Vec::new(); n],
            link_bytes: vec![0.0; n],
            events: BinaryHeap::new(),
            next_seq: 0,
            now_s: 0.0,
            pending_reconfigs: Vec::new(),
            pending_faults: Vec::new(),
            stats: EngineStats::default(),
            outstanding_reconfigs: 0,
            outstanding_faults: 0,
            down: vec![0; n],
            healthy_caps,
            stragglers: BTreeMap::new(),
            flow_mark: Vec::new(),
            link_mark: vec![0; n],
            epoch: 0,
            link_owner: vec![u32::MAX; n],
            uf_parent: Vec::new(),
            wf_scratch: WaterfillScratch::default(),
        }
    }

    /// Current simulation clock.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Work counters for this run so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Number of distinct directed links interned so far (fabric links plus
    /// any virtual links appearing only on flow paths).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Intern a link id, growing every `LinkId`-indexed side array in step
    /// with the arena.
    fn intern_link(&mut self, key: LinkKey) -> LinkId {
        let id = self.links.intern(key);
        let n = self.links.len();
        if n > self.link_bytes.len() {
            self.link_bytes.resize(n, 0.0);
            self.active_on_link.resize_with(n, Vec::new);
            self.link_mark.resize(n, 0);
            self.link_owner.resize(n, u32::MAX);
            self.down.resize(n, 0);
            self.healthy_caps.resize(n, 0.0); // fresh interns start at cap 0
        }
        id
    }

    /// The link-id slice of a flow's path.
    pub(crate) fn span(&self, id: FlowId) -> &[LinkId] {
        let f = &self.flows[id];
        &self.flow_links[f.links_start..f.links_start + f.spec.hops()]
    }

    /// Current capacity of a directed link, 0.0 when the pair was never
    /// interned (links absent from the fabric carry nothing).
    pub(crate) fn capacity_of(&self, key: LinkKey) -> f64 {
        self.links.lookup(key).map(|id| self.links.cap(id)).unwrap_or(0.0)
    }

    /// Add a flow; its arrival event fires at `spec.start_s` (clamped to the
    /// current clock if that instant already passed). Flows with zero hops
    /// or zero bytes complete immediately, matching the reference loop.
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        let id = self.flows.len();
        let links_start = self.flow_links.len();
        for w in spec.path.windows(2) {
            let lid = self.intern_link((w[0], w[1]));
            self.flow_links.push(lid);
        }
        let remaining = spec.bytes.max(0.0);
        let mut flow = EngineFlow {
            state: FlowState::Pending,
            remaining_bytes: remaining,
            rate_bps: 0.0,
            settled_s: spec.start_s,
            version: 0,
            completion_s: 0.0,
            links_start,
            spec,
        };
        if flow.spec.hops() == 0 {
            flow.state = FlowState::Done;
            flow.completion_s = flow.spec.start_s;
        } else if remaining <= 0.0 {
            flow.state = FlowState::Done;
            flow.completion_s = 0.0;
        } else {
            let t = flow.spec.start_s.max(self.now_s);
            self.push_event(t, EventKind::Arrival(id));
        }
        self.flows.push(flow);
        self.flow_mark.push(0);
        id
    }

    /// Add a flow without scheduling it: links are interned and the CSR
    /// span is built, but the flow is parked `Done` with an infinite
    /// completion until [`Self::restart_flows`] arms it for a window. This
    /// is the admission half of window-level reuse — a long-lived engine
    /// interns a job's paths once, and each event window restarts only the
    /// flows it touches.
    pub fn add_flow_parked(&mut self, spec: FlowSpec) -> FlowId {
        let id = self.flows.len();
        let links_start = self.flow_links.len();
        for w in spec.path.windows(2) {
            let lid = self.intern_link((w[0], w[1]));
            self.flow_links.push(lid);
        }
        self.flows.push(EngineFlow {
            state: FlowState::Done,
            remaining_bytes: spec.bytes.max(0.0),
            rate_bps: 0.0,
            settled_s: spec.start_s,
            version: 0,
            completion_s: f64::INFINITY,
            links_start,
            spec,
        });
        self.flow_mark.push(0);
        id
    }

    /// Retire a flow set (a departing job): unhook each flow from the
    /// per-link adjacency, cancel its pending completion/arrival events
    /// (lazily, via the version counter and the `Pending` state check in
    /// the event loop), and mark it `Done`. Flows that had not finished
    /// report an infinite completion; already-finished flows keep theirs.
    /// Retired flows stay in the arena — ids remain stable and the CSR
    /// buffer is append-only — but they are invisible to partitioning,
    /// recomputation, and future windows.
    pub fn remove_flows(&mut self, ids: &[FlowId]) {
        for &id in ids {
            match self.flows[id].state {
                FlowState::Done => {}
                FlowState::Active => {
                    self.settle(id);
                    let start = self.flows[id].links_start;
                    let end = start + self.flows[id].spec.hops();
                    for k in start..end {
                        let lid = self.flow_links[k] as usize;
                        self.active_on_link[lid].retain(|&f| f != id);
                    }
                    let flow = &mut self.flows[id];
                    flow.state = FlowState::Done;
                    flow.rate_bps = 0.0;
                    flow.version += 1;
                    flow.completion_s = f64::INFINITY;
                }
                FlowState::Pending => {
                    let flow = &mut self.flows[id];
                    flow.state = FlowState::Done;
                    flow.version += 1;
                    flow.completion_s = f64::INFINITY;
                }
            }
        }
    }

    /// Rewind the clock to 0 and re-arm exactly `ids` for a fresh window:
    /// each flow gets its full byte demand back, a bumped version (stale
    /// predictions die), zeroed window-local byte counters on its links,
    /// and a new arrival event at `spec.start_s` — scheduled in `ids`
    /// order, so passing ascending ids reproduces [`Self::add_flow`]'s
    /// event-sequence assignment on a fresh engine exactly. Flows *not* in
    /// `ids` are untouched: a finished flow in a disjoint component keeps
    /// its cached completion, which is bit-identical to what re-simulating
    /// it would produce (disjoint components share no float operations).
    ///
    /// Requires a quiescent engine: the previous window must have run to
    /// completion (empty event heap).
    pub fn restart_flows(&mut self, ids: &[FlowId]) {
        assert!(
            self.events.is_empty(),
            "restart_flows needs a quiescent engine (run the previous window to completion)"
        );
        self.now_s = 0.0;
        for &id in ids {
            let start = self.flows[id].links_start;
            let end = start + self.flows[id].spec.hops();
            if self.flows[id].state == FlowState::Active {
                // Defensive: a zero-rate flow can be live with an empty
                // heap; deregister it before resetting.
                for k in start..end {
                    let lid = self.flow_links[k] as usize;
                    self.active_on_link[lid].retain(|&f| f != id);
                }
            }
            // Zero the window-local byte counters of this flow's links
            // (idempotent across flows sharing a link).
            for k in start..end {
                self.link_bytes[self.flow_links[k] as usize] = 0.0;
            }
            let flow = &mut self.flows[id];
            flow.version += 1;
            flow.rate_bps = 0.0;
            let remaining = flow.spec.bytes.max(0.0);
            flow.remaining_bytes = remaining;
            flow.settled_s = flow.spec.start_s;
            if flow.spec.hops() == 0 {
                flow.state = FlowState::Done;
                flow.completion_s = flow.spec.start_s;
            } else if remaining <= 0.0 {
                flow.state = FlowState::Done;
                flow.completion_s = 0.0;
            } else {
                flow.state = FlowState::Pending;
                flow.completion_s = 0.0;
                let t = flow.spec.start_s.max(0.0);
                self.push_event(t, EventKind::Arrival(id));
            }
        }
    }

    /// Schedule a fabric reconfiguration: at `time_s` the link capacities
    /// are replaced by `graph`'s and every active flow is re-rated.
    pub fn schedule_reconfig(&mut self, time_s: f64, graph: &Graph) {
        self.schedule_reconfig_capacities(time_s, link_capacities(graph));
    }

    /// [`Self::schedule_reconfig`] with an explicit capacity map. Keys are
    /// interned immediately, so the swap itself is a flat pass at event
    /// time.
    pub fn schedule_reconfig_capacities(&mut self, time_s: f64, capacity: BTreeMap<LinkKey, f64>) {
        let entries: Vec<(LinkId, f64)> =
            capacity.into_iter().map(|(key, cap)| (self.intern_link(key), cap)).collect();
        let idx = self.pending_reconfigs.len();
        self.pending_reconfigs.push(entries);
        self.outstanding_reconfigs += 1;
        let t = time_s.max(self.now_s);
        self.push_event(t, EventKind::Reconfigure(idx));
    }

    /// Schedule a [`FaultEvent`] at `time_s` (clamped to the current
    /// clock). The fault enters through the ordinary event queue: when it
    /// fires, exactly the flows whose effective rates it can change are
    /// re-rated. Flows stalled on a dead link stay active at rate 0 — a
    /// later recovery revives them; only a run that drains with the link
    /// still down declares them unroutable (infinite completion).
    pub fn schedule_fault(&mut self, time_s: f64, fault: FaultEvent) {
        if let FaultEvent::LinkDown(key) | FaultEvent::LinkUp(key) = fault {
            self.intern_link(key);
        }
        let idx = self.pending_faults.len();
        self.pending_faults.push(fault);
        self.outstanding_faults += 1;
        let t = time_s.max(self.now_s);
        self.push_event(t, EventKind::Fault(idx));
    }

    /// Apply a fault immediately, bypassing the event queue, and re-rate
    /// the flows it touched. Used to transplant an accumulated health
    /// state onto a fresh engine (the rebuild oracle pre-applies the fault
    /// history its persistent counterpart absorbed event by event); on a
    /// quiescent engine this is pure state, no recomputation.
    pub fn apply_fault_now(&mut self, fault: FaultEvent) {
        let mut seeds: Vec<FlowId> = Vec::new();
        self.apply_fault_state(fault, &mut seeds);
        if !seeds.is_empty() {
            seeds.sort_unstable();
            seeds.dedup();
            self.recompute_components(&seeds);
        }
    }

    /// Mutate the health state for one fault, pushing every active flow
    /// whose effective rate can change into `seeds`.
    fn apply_fault_state(&mut self, fault: FaultEvent, seeds: &mut Vec<FlowId>) {
        match fault {
            FaultEvent::LinkDown(key) => {
                let lid = self.intern_link(key);
                self.fail_link(lid, seeds);
            }
            FaultEvent::LinkUp(key) => {
                let lid = self.intern_link(key);
                self.recover_link(lid, seeds);
            }
            FaultEvent::OcsPortDown(server) => {
                for lid in self.port_links(server) {
                    self.fail_link(lid, seeds);
                }
            }
            FaultEvent::OcsPortUp(server) => {
                for lid in self.port_links(server) {
                    self.recover_link(lid, seeds);
                }
            }
            FaultEvent::Straggler { server, egress_factor } => {
                if egress_factor >= 1.0 {
                    self.stragglers.remove(&server);
                } else {
                    self.stragglers.insert(server, egress_factor.max(0.0));
                }
                for (id, flow) in self.flows.iter().enumerate() {
                    if flow.state == FlowState::Active && flow.spec.src == server {
                        seeds.push(id);
                    }
                }
            }
        }
    }

    /// One more failure on a link; the first takes its capacity to zero.
    /// Seeding is skipped when the healthy capacity is already zero (a
    /// virtual path link): the effective capacity does not change, so
    /// which zero-capacity links happen to be interned cannot influence
    /// the recomputation.
    fn fail_link(&mut self, lid: LinkId, seeds: &mut Vec<FlowId>) {
        let l = lid as usize;
        self.down[l] += 1;
        if self.down[l] == 1 {
            self.links.set_cap(lid, 0.0);
            if self.healthy_caps[l] != 0.0 {
                seeds.extend(self.active_on_link[l].iter().copied());
            }
        }
    }

    /// One failure recovered; the last restores the healthy capacity.
    /// Recoveries without a matching failure are ignored.
    fn recover_link(&mut self, lid: LinkId, seeds: &mut Vec<FlowId>) {
        let l = lid as usize;
        if self.down[l] == 0 {
            return; // spurious recovery
        }
        self.down[l] -= 1;
        if self.down[l] == 0 {
            let cap = self.healthy_caps[l];
            self.links.set_cap(lid, cap);
            if cap != 0.0 {
                seeds.extend(self.active_on_link[l].iter().copied());
            }
        }
    }

    /// Every interned directed link incident to `server`, in ascending
    /// `LinkKey` order (the determinism contract: the same fault applies
    /// its per-link updates in the same order on every engine).
    fn port_links(&self, server: usize) -> Vec<LinkId> {
        self.links
            .ids_by_key()
            .iter()
            .copied()
            .filter(|&id| {
                let (src, dst) = self.links.key(id);
                src == server || dst == server
            })
            .collect()
    }

    /// The current per-server straggler factors (empty = all healthy).
    pub(crate) fn straggler_factors(&self) -> &BTreeMap<usize, f64> {
        &self.stragglers
    }

    /// Transplant straggler factors onto this engine (solo-probe and shard
    /// construction; the probe must rate flows exactly as the source
    /// engine would).
    pub(crate) fn set_straggler_factors(&mut self, factors: BTreeMap<usize, f64>) {
        self.stragglers = factors;
    }

    /// Ids of the links a fault would touch right now — the dirty set the
    /// window-level cache uses to decide which residents to re-rate.
    /// Straggler faults touch no links (they dirty by flow source instead).
    pub(crate) fn fault_link_ids(&self, fault: &FaultEvent) -> Vec<LinkId> {
        match *fault {
            FaultEvent::LinkDown(key) | FaultEvent::LinkUp(key) => {
                self.links.lookup(key).into_iter().collect()
            }
            FaultEvent::OcsPortDown(server) | FaultEvent::OcsPortUp(server) => {
                self.port_links(server)
            }
            FaultEvent::Straggler { .. } => Vec::new(),
        }
    }

    /// Source server of a flow (window-level straggler dirtying).
    pub(crate) fn flow_src(&self, id: FlowId) -> usize {
        self.flows[id].spec.src
    }

    /// Process every event; flows still active afterwards (zero-rate on a
    /// zero-capacity link) are declared unroutable with infinite completion.
    ///
    /// When the live flows split into several disjoint connected components
    /// (and no reconfiguration is outstanding), the run is sharded — even
    /// mid-run, with in-flight progress and pending events transplanted per
    /// component: each shard gets its own event loop, heap, and clock on a
    /// rayon thread, and the results are merged deterministically — see the
    /// module docs for why the merge is bit-identical to
    /// [`Self::run_monolithic`].
    pub fn run(&mut self) {
        if self.shardable() {
            let shards = self.shard_partition();
            if shards.len() > 1 {
                self.run_sharded(shards);
                return;
            }
        }
        self.run_monolithic();
    }

    /// [`Self::run`] without shard fan-out: one event loop over all
    /// components. Kept public as the oracle for the shard-merge
    /// equivalence tests and benches; prefer [`Self::run`].
    pub fn run_monolithic(&mut self) {
        self.run_until(f64::INFINITY);
        for flow in &mut self.flows {
            if flow.state != FlowState::Done {
                flow.state = FlowState::Done;
                flow.completion_s = f64::INFINITY;
            }
        }
        for v in &mut self.active_on_link {
            v.clear();
        }
    }

    /// True when [`Self::run`] may shard: an outstanding (scheduled but
    /// not yet applied) reconfiguration or fault blocks it — a capacity
    /// swap couples every component through the shared fabric, and a port
    /// fault or straggler can touch several components at once. Already
    /// *applied* fault state (dead links, stragglers) is fine: effective
    /// capacities and straggler factors transplant into the shards.
    fn shardable(&self) -> bool {
        self.outstanding_reconfigs == 0 && self.outstanding_faults == 0
    }

    /// Partition the not-yet-done flows into connected components over
    /// shared link ids (epoch-stamped union-find with path halving over
    /// pooled scratch — no per-call allocation beyond the shard lists),
    /// each component's flow list ascending; components ordered by their
    /// smallest flow id.
    fn shard_partition(&mut self) -> Vec<Vec<FlowId>> {
        let n = self.flows.len();
        self.epoch += 1;
        let epoch = self.epoch;
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize]; // path halving
                x = parent[x as usize];
            }
            x
        }
        let flows = &self.flows;
        let flow_links = &self.flow_links;
        let link_mark = &mut self.link_mark;
        let link_owner = &mut self.link_owner;
        let parent = &mut self.uf_parent;
        parent.clear();
        parent.extend(0..dense_u32(n));
        for (id, flow) in flows.iter().enumerate() {
            if flow.state == FlowState::Done {
                continue;
            }
            for &lid in &flow_links[flow.links_start..flow.links_start + flow.spec.hops()] {
                let lid = lid as usize;
                if link_mark[lid] != epoch {
                    link_mark[lid] = epoch;
                    link_owner[lid] = dense_u32(id);
                } else {
                    let a = find(parent, dense_u32(id));
                    let b = find(parent, link_owner[lid]);
                    if a != b {
                        parent[a as usize] = b;
                    }
                }
            }
        }
        let mut component_of_root: Vec<u32> = vec![u32::MAX; n];
        let mut shards: Vec<Vec<FlowId>> = Vec::new();
        for (id, flow) in flows.iter().enumerate() {
            if flow.state == FlowState::Done {
                continue;
            }
            let root = find(parent, dense_u32(id)) as usize;
            if component_of_root[root] == u32::MAX {
                component_of_root[root] = dense_u32(shards.len());
                shards.push(Vec::new());
            }
            shards[component_of_root[root] as usize].push(id);
        }
        shards
    }

    /// Run each shard as an independent event loop (parallel over rayon,
    /// collected in input order) and merge: per-flow outcomes and per-link
    /// bytes are copied shard by shard (link sets are disjoint), stats are
    /// folded in component order, and the clock advances to the latest
    /// shard clock — all bit-identical to the single-loop run.
    ///
    /// Shards are seeded with a full state transplant, which is what makes
    /// mid-run sharding exact rather than fresh-engine-only:
    ///
    /// * flow records are copied verbatim (progress, rate, version,
    ///   settle instant), with the CSR span remapped to shard link ids and
    ///   active flows re-registered on their links (registration order
    ///   differs from the parent's activation order, which is harmless —
    ///   every consumer of the adjacency sorts or deduplicates);
    /// * per-link byte counters start from the parent's current values, so
    ///   each shard's additions retrace the monolithic accumulation order
    ///   exactly (live components own disjoint link sets);
    /// * pending arrival/completion events move to their owner's shard
    ///   with time **and** sequence number preserved — relative heap order
    ///   inside a shard matches the monolithic heap, and fresh events get
    ///   sequence numbers starting at the parent's `next_seq`, above every
    ///   transplanted one, exactly as they would in the single loop.
    ///   Events for already-done flows (a retired job's stale arrivals or
    ///   completions) are dropped; the monolithic loop skips them without
    ///   counting.
    fn run_sharded(&mut self, shards: Vec<Vec<FlowId>>) {
        // Route the parent's pending events to their owning shard.
        let mut shard_of: Vec<u32> = vec![u32::MAX; self.flows.len()];
        for (s, ids) in shards.iter().enumerate() {
            for &f in ids {
                shard_of[f] = dense_u32(s);
            }
        }
        let mut routed: Vec<Vec<Event>> = vec![Vec::new(); shards.len()];
        for Reverse(ev) in std::mem::take(&mut self.events).into_iter() {
            let target = match ev.kind {
                EventKind::Arrival(id) | EventKind::Completion { flow: id, .. } => shard_of[id],
                EventKind::Reconfigure(_) => {
                    // lint:allow(panic-in-engine): run() only shards when
                    // shardable() saw no queued reconfiguration events.
                    unreachable!("shardable() excludes outstanding reconfigurations")
                }
                EventKind::Fault(_) => {
                    // lint:allow(panic-in-engine): run() only shards when
                    // shardable() saw no queued fault events.
                    unreachable!("shardable() excludes outstanding faults")
                }
            };
            if target != u32::MAX {
                routed[target as usize].push(ev);
            }
        }
        let base_seq = self.next_seq;
        let subs: Vec<FluidEngine> = shards
            .iter()
            .zip(routed)
            .map(|(ids, events)| {
                let mut caps: BTreeMap<LinkKey, f64> = BTreeMap::new();
                for &f in ids {
                    for &lid in self.span(f) {
                        caps.insert(self.links.key(lid), self.links.cap(lid));
                    }
                }
                let mut sub = FluidEngine::from_capacities(caps, self.per_hop_latency_s);
                sub.now_s = self.now_s;
                sub.next_seq = base_seq;
                // Applied fault state rides along: the caps above are the
                // *effective* (post-fault) capacities, and straggler
                // factors scale water-filling in the shard exactly as in
                // the parent (no fault *events* are outstanding here).
                sub.stragglers = self.stragglers.clone();
                for &f in ids {
                    let mut flow = self.flows[f].clone();
                    flow.links_start = sub.flow_links.len();
                    for &lid in self.span(f) {
                        let sid = sub
                            .links
                            .lookup(self.links.key(lid))
                            // lint:allow(panic-in-engine): the shard arena was interned
                            // from these members' spans just above.
                            .expect("shard caps cover every member span link");
                        sub.flow_links.push(sid);
                    }
                    let local = sub.flows.len();
                    if flow.state == FlowState::Active {
                        let start = flow.links_start;
                        for k in start..start + flow.spec.hops() {
                            sub.active_on_link[sub.flow_links[k] as usize].push(local);
                        }
                    }
                    sub.flows.push(flow);
                    sub.flow_mark.push(0);
                }
                for sid in 0..sub.links.len() {
                    let gid = self
                        .links
                        .lookup(sub.links.key(dense_u32(sid)))
                        // lint:allow(panic-in-engine): every shard link was copied
                        // out of the parent arena at shard build.
                        .expect("shard links are interned in the parent");
                    sub.link_bytes[sid] = self.link_bytes[gid as usize];
                }
                for ev in events {
                    let kind = match ev.kind {
                        EventKind::Arrival(id) => EventKind::Arrival(local_id(ids, id)),
                        EventKind::Completion { flow, version } => {
                            EventKind::Completion { flow: local_id(ids, flow), version }
                        }
                        EventKind::Reconfigure(_) | EventKind::Fault(_) => {
                            // lint:allow(panic-in-engine): routed events were filtered to
                            // arrivals/completions above.
                            unreachable!("filtered above")
                        }
                    };
                    sub.events.push(Reverse(Event { time_s: ev.time_s, seq: ev.seq, kind }));
                }
                sub
            })
            .collect();
        let subs: Vec<FluidEngine> = subs
            .into_par_iter()
            .map(|mut sub| {
                sub.run_monolithic();
                sub
            })
            .collect();
        for (ids, sub) in shards.iter().zip(&subs) {
            for (k, &f) in ids.iter().enumerate() {
                let done = &sub.flows[k];
                let flow = &mut self.flows[f];
                flow.state = done.state;
                flow.remaining_bytes = done.remaining_bytes;
                flow.rate_bps = 0.0;
                flow.settled_s = done.settled_s;
                flow.version = flow.version.max(done.version) + 1;
                flow.completion_s = done.completion_s;
            }
            for (sid, &bytes) in sub.link_bytes.iter().enumerate() {
                let gid = self
                    .links
                    .lookup(sub.links.key(dense_u32(sid)))
                    // lint:allow(panic-in-engine): every shard link was copied
                    // out of the parent arena at shard build.
                    .expect("shard links are interned in the parent");
                self.link_bytes[gid as usize] = bytes;
            }
            self.stats.absorb(&sub.stats);
            self.now_s = self.now_s.max(sub.now_s);
            self.next_seq = self.next_seq.max(sub.next_seq);
        }
        for v in &mut self.active_on_link {
            v.clear();
        }
    }

    /// Process events up to and including `t_end`, then settle every active
    /// flow's progress to `t_end` so remaining bytes can be read exactly.
    /// The engine can continue afterwards (add flows, schedule reconfigs,
    /// call `run_until` again with a later deadline).
    ///
    /// Events scheduled for the *same instant* are drained as one batch and
    /// followed by a single recomputation pass, so a wave of simultaneous
    /// arrivals (every job starting a round at t = 0) or completions costs
    /// one waterfill per touched component instead of one per event.
    pub fn run_until(&mut self, t_end: f64) {
        while let Some(Reverse(head)) = self.events.peek() {
            if head.time_s > t_end {
                break;
            }
            let batch_time = head.time_s;
            self.now_s = self.now_s.max(batch_time);
            let mut seeds: Vec<FlowId> = Vec::new();
            let mut reconfigured = false;
            while let Some(Reverse(ev)) = self.events.peek() {
                if ev.time_s.total_cmp(&batch_time) != Ordering::Equal {
                    break;
                }
                // lint:allow(panic-in-engine): the heap is non-empty — the
                // surrounding `while let` just peeked this event.
                let Reverse(ev) = self.events.pop().expect("peeked event vanished");
                match ev.kind {
                    EventKind::Arrival(id) => {
                        if self.flows[id].state != FlowState::Pending {
                            continue; // flow retired (or restarted) since scheduling
                        }
                        self.stats.events += 1;
                        self.activate(id);
                        seeds.push(id);
                    }
                    EventKind::Completion { flow, version } => {
                        if self.flows[flow].state != FlowState::Active
                            || self.flows[flow].version != version
                        {
                            continue; // stale prediction
                        }
                        self.stats.events += 1;
                        self.settle(flow);
                        seeds.extend(self.finish_now(flow));
                    }
                    EventKind::Reconfigure(idx) => {
                        self.stats.events += 1;
                        self.stats.reconfigurations += 1;
                        self.apply_reconfig(idx);
                        reconfigured = true;
                    }
                    EventKind::Fault(idx) => {
                        self.stats.events += 1;
                        self.stats.faults += 1;
                        self.outstanding_faults -= 1;
                        let fault = self.pending_faults[idx];
                        self.apply_fault_state(fault, &mut seeds);
                    }
                }
            }
            if reconfigured {
                // New capacities can re-rate every active flow.
                seeds = (0..self.flows.len())
                    .filter(|&i| self.flows[i].state == FlowState::Active)
                    .collect();
            } else {
                seeds.sort_unstable();
                seeds.dedup();
            }
            self.recompute_components(&seeds);
        }
        // `>=`, not `>`: when the last processed event lands exactly on
        // t_end, flows in *other* components are still settled only up to
        // their previous event and need reconciling to the deadline.
        if t_end.is_finite() && t_end >= self.now_s {
            self.now_s = t_end;
            for id in 0..self.flows.len() {
                if self.flows[id].state == FlowState::Active {
                    self.settle(id);
                }
            }
        }
    }

    /// True when no flow is still making progress: everything is done,
    /// pending after `now`, or stuck at rate zero.
    pub fn drained(&self) -> bool {
        self.flows.iter().all(|f| f.state != FlowState::Active || f.rate_bps <= 0.0)
            && self.flows.iter().all(|f| f.state != FlowState::Pending)
    }

    /// Whether a flow has finished (routable flows only; see
    /// [`Self::completion_s`] for the unroutable marker).
    pub fn is_done(&self, id: FlowId) -> bool {
        self.flows[id].state == FlowState::Done
    }

    /// Completion time of a finished flow (infinite if declared
    /// unroutable); meaningless while the flow is still pending/active.
    pub fn completion_s(&self, id: FlowId) -> f64 {
        self.flows[id].completion_s
    }

    /// Bytes a flow still has to send, exact as of the last `run_until`
    /// deadline or processed event.
    pub fn remaining_bytes(&self, id: FlowId) -> f64 {
        self.flows[id].remaining_bytes
    }

    /// Latest finite completion time observed so far (0.0 if none).
    pub fn makespan_so_far(&self) -> f64 {
        self.flows
            .iter()
            .filter(|f| f.state == FlowState::Done && f.completion_s.is_finite())
            .map(|f| f.completion_s)
            .fold(0.0, f64::max)
    }

    /// Total bytes carried over all links, summed in ascending `LinkKey`
    /// order via the arena's key-sorted id list: O(links), allocation-free,
    /// and bit-stable run-over-run (float addition does not commute at the
    /// last ulp, so the order is part of the determinism contract — see
    /// [`crate::arena`]). Links that carried nothing contribute exact
    /// zeros, which leave every partial sum bit-unchanged.
    pub fn carried_bytes(&self) -> f64 {
        self.links.ids_by_key().iter().map(|&id| self.link_bytes[id as usize]).sum()
    }

    /// Snapshot the run as a [`FluidResult`] (flows indexed in insertion
    /// order). Call after [`Self::run`]; flows not yet finished report
    /// infinite completion.
    pub fn result(&self) -> FluidResult {
        let completion: Vec<f64> = self
            .flows
            .iter()
            .map(|f| if f.state == FlowState::Done { f.completion_s } else { f64::INFINITY })
            .collect();
        // Only links that actually carried bytes get a map entry, matching
        // the map-keyed engine which created entries on first positive
        // addition.
        let mut link_bytes: HashMap<LinkKey, f64> = HashMap::new();
        for (id, &bytes) in self.link_bytes.iter().enumerate() {
            if bytes > 0.0 {
                link_bytes.insert(self.links.key(dense_u32(id)), bytes);
            }
        }
        let carried = self.carried_bytes();
        let demand: f64 =
            self.flows.iter().map(|f| if f.spec.hops() > 0 { f.spec.bytes } else { 0.0 }).sum();
        let makespan = completion.iter().cloned().filter(|c| c.is_finite()).fold(0.0, f64::max);
        FluidResult {
            completion_s: completion,
            makespan_s: makespan,
            link_bytes,
            carried_bytes: carried,
            demand_bytes: demand,
        }
    }

    fn push_event(&mut self, time_s: f64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Reverse(Event { time_s, seq, kind }));
    }

    /// Swap in a scheduled capacity set: zero everything, then write the
    /// new fabric's capacities (links absent from it carry nothing). The
    /// new capacities are the *healthy* ones — a rewiring cannot revive a
    /// link whose transceiver (or OCS port) is still dead, so links with a
    /// positive failure count keep an effective capacity of zero.
    fn apply_reconfig(&mut self, idx: usize) {
        self.outstanding_reconfigs -= 1;
        self.links.zero_caps();
        for h in &mut self.healthy_caps {
            *h = 0.0;
        }
        for k in 0..self.pending_reconfigs[idx].len() {
            let (lid, cap) = self.pending_reconfigs[idx][k];
            self.healthy_caps[lid as usize] = cap;
            self.links.set_cap(lid, if self.down[lid as usize] > 0 { 0.0 } else { cap });
        }
    }

    /// Reconcile a flow's remaining bytes (and the per-link byte counters)
    /// up to the current clock at its constant rate.
    fn settle(&mut self, id: FlowId) {
        let flow = &self.flows[id];
        let dt = self.now_s - flow.settled_s;
        if dt <= 0.0 || flow.rate_bps <= 0.0 {
            self.flows[id].settled_s = self.now_s;
            return;
        }
        let sent = (flow.rate_bps * dt / 8.0).min(flow.remaining_bytes);
        if sent > 0.0 {
            let start = flow.links_start;
            let end = start + flow.spec.hops();
            for k in start..end {
                self.link_bytes[self.flow_links[k] as usize] += sent;
            }
        }
        let flow = &mut self.flows[id];
        flow.remaining_bytes -= sent;
        flow.settled_s = self.now_s;
    }

    /// Make a pending flow active and register it on its links; the caller
    /// re-rates its component at the end of the event batch.
    fn activate(&mut self, id: FlowId) {
        let flow = &mut self.flows[id];
        flow.state = FlowState::Active;
        flow.settled_s = self.now_s;
        let start = flow.links_start;
        let end = start + flow.spec.hops();
        for k in start..end {
            self.active_on_link[self.flow_links[k] as usize].push(id);
        }
    }

    /// Mark a settled flow finished at the current clock: drain any float
    /// residue into the byte counters, deregister it from its links, and
    /// return the still-active flows that shared a link with it (the seeds
    /// of the component to re-rate). Idempotent callers must check state.
    fn finish_now(&mut self, id: FlowId) -> Vec<FlowId> {
        let start = self.flows[id].links_start;
        let end = start + self.flows[id].spec.hops();
        let leftover = self.flows[id].remaining_bytes;
        if leftover > 0.0 {
            for k in start..end {
                self.link_bytes[self.flow_links[k] as usize] += leftover;
            }
            self.flows[id].remaining_bytes = 0.0;
        }
        let flow = &mut self.flows[id];
        flow.state = FlowState::Done;
        flow.rate_bps = 0.0;
        flow.version += 1;
        flow.completion_s = self.now_s + self.per_hop_latency_s * flow.spec.hops() as f64;

        let mut neighbours: Vec<FlowId> = Vec::new();
        for k in start..end {
            let lid = self.flow_links[k] as usize;
            let sharers = &mut self.active_on_link[lid];
            sharers.retain(|&f| f != id);
            neighbours.extend(sharers.iter().copied());
        }
        neighbours.sort_unstable();
        neighbours.dedup();
        neighbours
    }

    /// Re-waterfill every connected component (over link sharing) that
    /// contains a seed flow. Disjoint components — e.g. two jobs whose
    /// rounds end at the same instant on separate shards, or a wave of
    /// t = 0 arrivals across all shards — are re-rated independently, and
    /// their water-filling passes run on separate rayon threads when the
    /// batch is large enough to pay for the fan-out (see
    /// [`PARALLEL_WATERFILL_MIN_FLOWS`]). Rates are collected in component
    /// order and applied sequentially, so results and event ordering are
    /// identical to the serial path regardless of thread count.
    fn recompute_components(&mut self, seeds: &[FlowId]) {
        // Phase 1: gather the touched components by BFS over the flow/link
        // sharing graph (components are disjoint by construction), using
        // epoch-stamped marks instead of per-event set allocations. Links
        // visited by one component can never belong to another in the same
        // batch — a shared link would have merged the components.
        self.epoch += 1;
        let epoch = self.epoch;
        let mut components: Vec<Vec<FlowId>> = Vec::new();
        {
            let flows = &self.flows;
            let flow_links = &self.flow_links;
            let active_on_link = &self.active_on_link;
            let flow_mark = &mut self.flow_mark;
            let link_mark = &mut self.link_mark;
            for &s in seeds {
                if flows[s].state != FlowState::Active || flow_mark[s] == epoch {
                    continue;
                }
                flow_mark[s] = epoch;
                let mut component: Vec<FlowId> = vec![s];
                let mut frontier: Vec<FlowId> = vec![s];
                while let Some(f) = frontier.pop() {
                    let start = flows[f].links_start;
                    let end = start + flows[f].spec.hops();
                    for &link in &flow_links[start..end] {
                        let lid = link as usize;
                        if link_mark[lid] == epoch {
                            continue;
                        }
                        link_mark[lid] = epoch;
                        for &g in &active_on_link[lid] {
                            if flow_mark[g] != epoch {
                                flow_mark[g] = epoch;
                                component.push(g);
                                frontier.push(g);
                            }
                        }
                    }
                }
                component.sort_unstable();
                components.push(component);
            }
        }

        // Phase 2 (sequential, mutates shared state): settle each member,
        // finish any that already ran dry (exact ties with the event that
        // triggered this recompute, like the reference loop completing
        // several flows in one step), and keep the rest for re-rating.
        let mut live_sets: Vec<Vec<FlowId>> = Vec::with_capacity(components.len());
        for ids in &components {
            let mut live: Vec<FlowId> = Vec::with_capacity(ids.len());
            for &f in ids {
                self.settle(f);
                // The threshold is relative to the flow size so that
                // equal-share flows predicted to finish at float-identical
                // instants all complete on the first of their events (one
                // waterfill instead of one per flow); the time error is
                // O(1e-12) of the transfer.
                let eps = COMPLETION_EPS_BYTES.max(self.flows[f].spec.bytes * 1e-12);
                if self.flows[f].remaining_bytes <= eps {
                    self.finish_now(f);
                } else {
                    live.push(f);
                }
            }
            self.stats.waterfills += 1;
            self.stats.flows_rerated += live.len();
            self.stats.max_component = self.stats.max_component.max(live.len());
            live_sets.push(live);
        }

        // Phase 3 (read-only): water-fill each component. Parallel when the
        // batch spans several components with enough total work; the
        // sequential path reuses the engine's pooled scratch buffers, the
        // parallel one gives each rayon task its own (every buffer is
        // fully rewritten per pass, so pooling cannot change results).
        let populated = live_sets.iter().filter(|l| !l.is_empty()).count();
        let total_live: usize = live_sets.iter().map(|l| l.len()).sum();
        let rate_sets: Vec<Vec<f64>> =
            if populated > 1 && total_live >= PARALLEL_WATERFILL_MIN_FLOWS {
                let links = &self.links;
                let flows = &self.flows;
                let flow_links = &self.flow_links;
                let stragglers = &self.stragglers;
                live_sets
                    .par_iter()
                    .map(|live| {
                        waterfill_live(
                            links,
                            flow_links,
                            flows,
                            stragglers,
                            live,
                            &mut Default::default(),
                        )
                    })
                    .collect()
            } else {
                let mut scratch = std::mem::take(&mut self.wf_scratch);
                let rates = live_sets
                    .iter()
                    .map(|live| {
                        waterfill_live(
                            &self.links,
                            &self.flow_links,
                            &self.flows,
                            &self.stragglers,
                            live,
                            &mut scratch,
                        )
                    })
                    .collect();
                self.wf_scratch = scratch;
                rates
            };

        // Phase 4 (sequential, deterministic order): apply the new rates
        // and reschedule completion predictions.
        for (live, rates) in live_sets.iter().zip(rate_sets) {
            let mut to_schedule: Vec<(f64, EventKind)> = Vec::new();
            for (pos, &f) in live.iter().enumerate() {
                let rate = rates[pos];
                let flow = &mut self.flows[f];
                flow.rate_bps = rate;
                flow.version += 1;
                if rate > 0.0 {
                    let t = self.now_s + flow.remaining_bytes * 8.0 / rate;
                    to_schedule.push((t, EventKind::Completion { flow: f, version: flow.version }));
                }
            }
            for (t, kind) in to_schedule {
                self.push_event(t, kind);
            }
        }
    }
}

/// Smallest total live-flow count for which a multi-component event batch
/// fans its water-filling passes out to rayon threads; below this the
/// thread-team spawn costs more than the waterfills.
const PARALLEL_WATERFILL_MIN_FLOWS: usize = 64;

/// Local (shard-relative) index of a global flow id within a shard's
/// ascending member list.
fn local_id(ids: &[FlowId], global: FlowId) -> FlowId {
    // lint:allow(panic-in-engine): run_sharded routes each event by
    // shard_of before translating, so the owner list holds the id.
    ids.binary_search(&global).expect("event routed to the shard owning its flow")
}

/// Max-min rates of one component's live flows, aligned with `live`
/// positions (pure function of the arena and the flat spans, safe to run
/// concurrently per component — each caller passes its own scratch).
/// Straggler factors compose multiplicatively with each flow's relay
/// factor; with no stragglers the factors are passed through untouched
/// (not even a `* 1.0`), so healthy runs stay bit-identical to the
/// pre-fault engine.
fn waterfill_live(
    links: &LinkArena,
    flow_links: &[LinkId],
    flows: &[EngineFlow],
    stragglers: &BTreeMap<usize, f64>,
    live: &[FlowId],
    scratch: &mut WaterfillScratch,
) -> Vec<f64> {
    if live.is_empty() {
        return Vec::new();
    }
    let spans: Vec<&[LinkId]> = live
        .iter()
        .map(|&f| {
            let flow = &flows[f];
            &flow_links[flow.links_start..flow.links_start + flow.spec.hops()]
        })
        .collect();
    let factors: Vec<f64> = if stragglers.is_empty() {
        live.iter().map(|&f| flows[f].spec.relay_factor).collect()
    } else {
        live.iter()
            .map(|&f| {
                let spec = &flows[f].spec;
                match stragglers.get(&spec.src) {
                    Some(&s) => spec.relay_factor * s,
                    None => spec.relay_factor,
                }
            })
            .collect()
    };
    waterfill_ids_with(links, &spans, &factors, scratch)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize, cap: f64) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n, cap);
        }
        g
    }

    #[test]
    fn disjoint_components_are_not_rerated_together() {
        // Two disjoint 4-rings with one flow per edge: every waterfill must
        // stay inside one ring (4 flows), never touch all 8.
        let mut g = Graph::new(8);
        for base in [0usize, 4] {
            for i in 0..4 {
                g.add_edge(base + i, base + (i + 1) % 4, 100.0);
            }
        }
        let mut engine = FluidEngine::new(&g, 0.0);
        for base in [0usize, 4] {
            for i in 0..4 {
                engine.add_flow(FlowSpec::new(
                    vec![base + i, base + (i + 1) % 4],
                    100.0 * (1.0 + i as f64),
                ));
            }
        }
        engine.run();
        let stats = engine.stats();
        assert!(stats.max_component <= 4, "component leaked across shards: {stats:?}");
        let r = engine.result();
        assert!(r.completion_s.iter().all(|c| c.is_finite()));
    }

    #[test]
    fn sharded_run_matches_the_monolithic_loop_bit_for_bit() {
        // Three disjoint rings with staggered second-wave arrivals: run()
        // takes the sharded path, run_monolithic() the single loop; every
        // observable — completions, bytes, carried sum, stats — must agree
        // exactly.
        let mut g = Graph::new(12);
        for base in [0usize, 4, 8] {
            for i in 0..4 {
                g.add_edge(base + i, base + (i + 1) % 4, 100.0);
            }
        }
        let mut sharded = FluidEngine::new(&g, 1.0e-6);
        for base in [0usize, 4, 8] {
            for i in 0..4 {
                let first =
                    FlowSpec::new(vec![base + i, base + (i + 1) % 4], 50.0 * (1.0 + i as f64));
                let mut second = first.clone();
                second.start_s = 2.0 + base as f64;
                sharded.add_flow(first);
                sharded.add_flow(second);
            }
        }
        let mut monolithic = sharded.clone();
        sharded.run();
        monolithic.run_monolithic();
        let a = sharded.result();
        let b = monolithic.result();
        for (x, y) in a.completion_s.iter().zip(&b.completion_s) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.carried_bytes.to_bits(), b.carried_bytes.to_bits());
        assert_eq!(a.link_bytes, b.link_bytes);
        assert_eq!(sharded.stats(), monolithic.stats());
        assert_eq!(sharded.now_s().to_bits(), monolithic.now_s().to_bits());
    }

    #[test]
    fn coupled_flows_do_not_shard() {
        // One shared hub link couples everything into a single component:
        // run() must fall back to the monolithic loop and still be exact.
        let g = ring(2, 100.0);
        let mut engine = FluidEngine::new(&g, 0.0);
        let a = engine.add_flow(FlowSpec::new(vec![0, 1], 100.0));
        let b = engine.add_flow(FlowSpec::new(vec![0, 1], 100.0));
        engine.run();
        assert!((engine.completion_s(a) - 16.0).abs() < 1e-9);
        assert!((engine.completion_s(b) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn reconfig_event_changes_rates_mid_flow() {
        // 100 bytes over a 100 bps link; at t = 4 s the link drops to 50
        // bps: 400 bits sent, 400 left at 50 bps -> completes at 12 s.
        let g = ring(2, 100.0);
        let mut slow = Graph::new(2);
        slow.add_edge(0, 1, 50.0);
        slow.add_edge(1, 0, 50.0);
        let mut engine = FluidEngine::new(&g, 0.0);
        let id = engine.add_flow(FlowSpec::new(vec![0, 1], 100.0));
        engine.schedule_reconfig(4.0, &slow);
        engine.run();
        assert!((engine.completion_s(id) - 12.0).abs() < 1e-9);
        assert_eq!(engine.stats().reconfigurations, 1);
    }

    #[test]
    fn reconfig_can_rescue_an_unroutable_flow() {
        // The 1 -> 0 link does not exist until the reconfiguration at t = 2.
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 80.0);
        let mut full = Graph::new(2);
        full.add_edge(0, 1, 80.0);
        full.add_edge(1, 0, 80.0);
        let mut engine = FluidEngine::new(&g, 0.0);
        let id = engine.add_flow(FlowSpec::new(vec![1, 0], 10.0)); // 80 bits
        engine.schedule_reconfig(2.0, &full);
        engine.run();
        assert!((engine.completion_s(id) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn run_until_reports_exact_partial_progress() {
        let g = ring(2, 100.0);
        let mut engine = FluidEngine::new(&g, 0.0);
        let id = engine.add_flow(FlowSpec::new(vec![0, 1], 100.0)); // 8 s total
        engine.run_until(3.0);
        assert!(!engine.is_done(id));
        assert!((engine.remaining_bytes(id) - 62.5).abs() < 1e-9); // 300 bits sent
        engine.run_until(100.0);
        assert!(engine.is_done(id));
        assert!((engine.completion_s(id) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn run_until_settles_other_components_when_an_event_lands_on_the_deadline() {
        // Flow A (625 bytes at 100 bps) completes at exactly t = 50; flow B
        // lives in a disjoint component and must still be settled to the
        // deadline rather than left at its last event.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 100.0);
        g.add_edge(2, 3, 100.0);
        let mut engine = FluidEngine::new(&g, 0.0);
        let a = engine.add_flow(FlowSpec::new(vec![0, 1], 625.0));
        let b = engine.add_flow(FlowSpec::new(vec![2, 3], 1000.0));
        engine.run_until(50.0);
        assert!(engine.is_done(a));
        assert!((engine.completion_s(a) - 50.0).abs() < 1e-9);
        assert!(!engine.is_done(b));
        assert!((engine.remaining_bytes(b) - 375.0).abs() < 1e-9); // 5000 bits sent
    }

    #[test]
    fn link_failure_stalls_and_recovery_revives_a_flow() {
        // 100 bytes at 100 bps; the link dies at t = 2 (200 bits sent, 75
        // bytes left) and recovers at t = 5: 75*8/100 = 6 s more -> 11 s.
        let g = ring(2, 100.0);
        let mut engine = FluidEngine::new(&g, 0.0);
        let id = engine.add_flow(FlowSpec::new(vec![0, 1], 100.0));
        engine.schedule_fault(2.0, FaultEvent::LinkDown((0, 1)));
        engine.schedule_fault(5.0, FaultEvent::LinkUp((0, 1)));
        engine.run();
        assert!((engine.completion_s(id) - 11.0).abs() < 1e-9);
        assert_eq!(engine.stats().faults, 2);
    }

    #[test]
    fn flow_on_a_dead_link_is_stalled_not_dropped() {
        // While the run is in flight the flow stays active at rate 0 with
        // its remaining bytes intact; only a drained run declares it
        // unroutable (infinite completion).
        let g = ring(2, 100.0);
        let mut engine = FluidEngine::new(&g, 0.0);
        let id = engine.add_flow(FlowSpec::new(vec![0, 1], 100.0));
        engine.schedule_fault(2.0, FaultEvent::LinkDown((0, 1)));
        engine.run_until(6.0);
        assert!(!engine.is_done(id), "a stalled flow must stay in flight");
        assert!((engine.remaining_bytes(id) - 75.0).abs() < 1e-9);
        // A recovery scheduled after the checkpoint still rescues it.
        engine.schedule_fault(7.0, FaultEvent::LinkUp((0, 1)));
        engine.run();
        assert!((engine.completion_s(id) - 13.0).abs() < 1e-9);
    }

    #[test]
    fn ocs_port_failure_kills_every_matched_link() {
        // Port 1 carries both directions of (0, 1) and (1, 2): flows on
        // either stall, the disjoint (2, 3)... flow 2->3 is unaffected.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 100.0);
        g.add_edge(1, 2, 100.0);
        g.add_edge(2, 3, 100.0);
        let mut engine = FluidEngine::new(&g, 0.0);
        let a = engine.add_flow(FlowSpec::new(vec![0, 1], 100.0));
        let b = engine.add_flow(FlowSpec::new(vec![1, 2], 100.0));
        let c = engine.add_flow(FlowSpec::new(vec![2, 3], 100.0));
        engine.schedule_fault(2.0, FaultEvent::OcsPortDown(1));
        engine.schedule_fault(4.0, FaultEvent::OcsPortUp(1));
        engine.run();
        // a and b: 2 s at 100 bps, 2 s dark, 6 s to drain the rest.
        assert!((engine.completion_s(a) - 10.0).abs() < 1e-9);
        assert!((engine.completion_s(b) - 10.0).abs() < 1e-9);
        // c never noticed.
        assert!((engine.completion_s(c) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_link_and_port_faults_stack() {
        // The link dies twice (transceiver + port): one recovery is not
        // enough, the second brings it back.
        let g = ring(2, 100.0);
        let mut engine = FluidEngine::new(&g, 0.0);
        let id = engine.add_flow(FlowSpec::new(vec![0, 1], 100.0));
        engine.schedule_fault(1.0, FaultEvent::LinkDown((0, 1)));
        engine.schedule_fault(1.0, FaultEvent::OcsPortDown(0));
        engine.schedule_fault(2.0, FaultEvent::LinkUp((0, 1)));
        engine.schedule_fault(5.0, FaultEvent::OcsPortUp(0));
        engine.run();
        // 1 s at 100 bps (87.5 bytes left), dark until t = 5, 7 s more.
        assert!((engine.completion_s(id) - 12.0).abs() < 1e-9);
        assert_eq!(engine.stats().faults, 4);
    }

    #[test]
    fn straggler_scales_egress_and_recovery_restores_it() {
        // At t = 4 server 0 straggles at half speed: 50 bytes left at 50
        // bps -> 8 s more (12 s total). A second flow *into* the server is
        // untouched by the egress cap.
        let g = ring(2, 100.0);
        let mut engine = FluidEngine::new(&g, 0.0);
        let out = engine.add_flow(FlowSpec::new(vec![0, 1], 100.0));
        let inbound = engine.add_flow(FlowSpec::new(vec![1, 0], 100.0));
        engine.schedule_fault(4.0, FaultEvent::Straggler { server: 0, egress_factor: 0.5 });
        engine.run();
        assert!((engine.completion_s(out) - 12.0).abs() < 1e-9);
        assert!((engine.completion_s(inbound) - 8.0).abs() < 1e-9);

        // With a recovery at t = 6 the tail runs at full rate again:
        // 4 s at 100, 2 s at 50 (37.5 bytes left), 3 s at 100 -> 9 s.
        let mut engine = FluidEngine::new(&g, 0.0);
        let out = engine.add_flow(FlowSpec::new(vec![0, 1], 100.0));
        engine.schedule_fault(4.0, FaultEvent::Straggler { server: 0, egress_factor: 0.5 });
        engine.schedule_fault(6.0, FaultEvent::Straggler { server: 0, egress_factor: 1.0 });
        engine.run();
        assert!((engine.completion_s(out) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn reconfig_cannot_revive_a_dead_transceiver() {
        // The link dies at t = 2; a rewiring at t = 3 doubles its healthy
        // capacity but the transceiver is still dead, so nothing moves
        // until the recovery at t = 4 — which restores the *new* capacity.
        let g = ring(2, 100.0);
        let mut fat = Graph::new(2);
        fat.add_edge(0, 1, 200.0);
        fat.add_edge(1, 0, 200.0);
        let mut engine = FluidEngine::new(&g, 0.0);
        let id = engine.add_flow(FlowSpec::new(vec![0, 1], 100.0));
        engine.schedule_fault(2.0, FaultEvent::LinkDown((0, 1)));
        engine.schedule_reconfig(3.0, &fat);
        engine.schedule_fault(4.0, FaultEvent::LinkUp((0, 1)));
        engine.run();
        // 2 s at 100 bps (75 bytes left), dark 2-4, then 75*8/200 = 3 s.
        assert!((engine.completion_s(id) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn sharded_run_stays_bit_identical_after_faults_are_applied() {
        // Two disjoint rings take a fault each (a dead link, a straggler);
        // run_until applies them, then run() shards over the degraded
        // state. The sharded continuation must match the monolithic one
        // bit for bit — effective capacities and straggler factors are
        // part of the transplanted state.
        let mut g = Graph::new(8);
        for base in [0usize, 4] {
            for i in 0..4 {
                g.add_edge(base + i, base + (i + 1) % 4, 100.0);
            }
        }
        let mut sharded = FluidEngine::new(&g, 1.0e-6);
        for base in [0usize, 4] {
            for i in 0..4 {
                sharded.add_flow(FlowSpec::new(
                    vec![base + i, base + (i + 1) % 4],
                    80.0 * (1.0 + i as f64),
                ));
            }
        }
        sharded.schedule_fault(1.0, FaultEvent::LinkDown((0, 1)));
        sharded.schedule_fault(2.5, FaultEvent::LinkUp((0, 1)));
        sharded.schedule_fault(1.5, FaultEvent::Straggler { server: 5, egress_factor: 0.3 });
        let mut monolithic = sharded.clone();
        sharded.run_until(3.0);
        sharded.run();
        monolithic.run_until(3.0);
        monolithic.run_monolithic();
        let a = sharded.result();
        let b = monolithic.result();
        for (x, y) in a.completion_s.iter().zip(&b.completion_s) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.carried_bytes.to_bits(), b.carried_bytes.to_bits());
        assert_eq!(sharded.stats(), monolithic.stats());
    }

    #[test]
    fn zero_capacity_links_never_produce_nan_rates() {
        // A fabric where every link a flow crosses is dead (explicit zero
        // capacity or killed by a fault): rates must be exactly 0, with no
        // NaN/inf leaking out of the water-filler and no division panic.
        let mut caps = BTreeMap::new();
        caps.insert((0usize, 1usize), 0.0f64);
        caps.insert((1, 2), 100.0);
        let mut engine = FluidEngine::from_capacities(caps, 0.0);
        let dead = engine.add_flow(FlowSpec::new(vec![0, 1], 10.0));
        let live = engine.add_flow(FlowSpec::new(vec![1, 2], 10.0));
        engine.schedule_fault(0.5, FaultEvent::LinkDown((1, 2)));
        engine.run_until(1.0);
        assert!(!engine.is_done(dead));
        assert!(engine.remaining_bytes(dead) == 10.0);
        assert!(engine.remaining_bytes(live).is_finite());
        engine.run();
        assert!(engine.completion_s(dead).is_infinite());
        assert!(engine.completion_s(live).is_infinite());
        assert!(engine.drained());
    }

    #[test]
    fn mid_simulation_arrival_splits_bandwidth() {
        // Flow A alone for 4 s (50 bytes left), then shares with B: A
        // finishes at 4 + 50*8/50 = 12 s; B needs 100*8 bits at 50 bps from
        // t=4 until A leaves at 12 (50 bytes sent), then 100 bps -> 16 s.
        let g = ring(2, 100.0);
        let mut engine = FluidEngine::new(&g, 0.0);
        let a = engine.add_flow(FlowSpec::new(vec![0, 1], 100.0));
        let mut late = FlowSpec::new(vec![0, 1], 100.0);
        late.start_s = 4.0;
        let b = engine.add_flow(late);
        engine.run();
        assert!((engine.completion_s(a) - 12.0).abs() < 1e-9);
        assert!((engine.completion_s(b) - 16.0).abs() < 1e-9);
    }
}
