//! Max-min fair fluid flow simulation.
//!
//! Rates are assigned by progressive water-filling: repeatedly find the most
//! constrained link (smallest equal share for its not-yet-frozen flows),
//! freeze those flows at that rate, subtract their consumption, and repeat.
//!
//! Since the event-driven refactor, [`simulate_flows`] is a thin wrapper
//! over [`crate::engine::FluidEngine`], which advances from event to event
//! (flow arrival, flow completion, fabric reconfiguration) and re-waterfills
//! only the connected component of links/flows an event touches. The
//! original from-scratch event loop is kept as
//! [`simulate_flows_reference`]: it is the oracle for the engine's
//! equivalence proptests and the baseline of the `fluid` Criterion bench.
//! Both allocators share [`waterfill_slices`], so any fix to the rate
//! allocation applies to both.

use crate::engine::FluidEngine;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use topoopt_graph::Graph;

/// A directed server pair, the key under which parallel physical links are
/// aggregated by the fluid model.
pub type LinkKey = (usize, usize);

/// Bytes below which a flow counts as complete (forgives float residue, and
/// matches the legacy loop's completion threshold).
pub(crate) const COMPLETION_EPS_BYTES: f64 = 1e-9;

/// One flow to simulate: `bytes` moving along the fixed node `path`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Source node (first element of `path`).
    pub src: usize,
    /// Destination node (last element of `path`).
    pub dst: usize,
    /// Flow size in bytes.
    pub bytes: f64,
    /// Node path, including both endpoints. Must contain at least two nodes
    /// for a non-empty flow.
    pub path: Vec<usize>,
    /// Earliest start time in seconds (0 for flows active from the start).
    pub start_s: f64,
    /// Kernel-relay throughput multiplier of the flow's logical connection
    /// (§6 / Appendix I): when `< 1.0`, the flow's rate is capped at
    /// `relay_factor ×` the minimum link capacity along its path, modelling
    /// relayed hops that cross the host kernel instead of the NIC's RDMA
    /// engine. `1.0` (the default) means a NIC-offloaded direct circuit —
    /// no cap beyond ordinary max-min sharing.
    pub relay_factor: f64,
}

impl FlowSpec {
    /// Convenience constructor for a flow starting at time zero.
    pub fn new(path: Vec<usize>, bytes: f64) -> Self {
        // lint:allow(panic-in-engine): API-boundary validation of the
        // caller's path — not reachable from the event loop.
        let src = *path.first().expect("path must not be empty");
        // lint:allow(panic-in-engine): API-boundary validation of the
        // caller's path — not reachable from the event loop.
        let dst = *path.last().expect("path must not be empty");
        FlowSpec { src, dst, bytes, path, start_s: 0.0, relay_factor: 1.0 }
    }

    /// Builder: attach a relay throughput factor (see
    /// [`FlowSpec::relay_factor`]).
    pub fn with_relay_factor(mut self, factor: f64) -> Self {
        self.relay_factor = factor;
        self
    }

    /// Number of physical hops the flow traverses.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Result of a fluid simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FluidResult {
    /// Per-flow completion time in seconds (same order as the input flows).
    pub completion_s: Vec<f64>,
    /// Time at which the last flow finished.
    pub makespan_s: f64,
    /// Bytes carried by each directed link, keyed by `(src, dst)` node pair
    /// (aggregated over parallel links).
    pub link_bytes: HashMap<(usize, usize), f64>,
    /// Total bytes traversing the network (sum over links) — the numerator
    /// of the bandwidth tax.
    pub carried_bytes: f64,
    /// Sum of flow sizes — the denominator of the bandwidth tax.
    pub demand_bytes: f64,
}

impl FluidResult {
    /// Bandwidth tax (§5.4): carried bytes (including forwarded traffic)
    /// divided by the logical demand. 1.0 means no forwarding overhead.
    pub fn bandwidth_tax(&self) -> f64 {
        if self.demand_bytes <= 0.0 {
            1.0
        } else {
            self.carried_bytes / self.demand_bytes
        }
    }

    /// Sorted per-link carried bytes (the CDF of Figure 15).
    pub fn link_traffic_cdf(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.link_bytes.values().cloned().collect();
        v.sort_by(f64::total_cmp);
        v
    }
}

/// Simulate `flows` on `graph` with max-min fair sharing and a fixed
/// per-hop propagation delay of `per_hop_latency_s` (added to each flow's
/// completion time).
///
/// This is a compatibility wrapper over the incremental
/// [`FluidEngine`]; construct the engine directly to schedule
/// mid-simulation reconfigurations or to inspect per-event statistics.
pub fn simulate_flows(graph: &Graph, flows: &[FlowSpec], per_hop_latency_s: f64) -> FluidResult {
    let mut engine = FluidEngine::new(graph, per_hop_latency_s);
    for flow in flows {
        engine.add_flow(flow.clone());
    }
    engine.run();
    engine.result()
}

/// Sum per-link byte counters in sorted link order, so the total (and the
/// bandwidth tax derived from it) is bit-stable run-over-run — HashMap
/// iteration order is randomized per instance and float addition does not
/// commute at the last ulp.
///
/// This allocating collect-and-sort version serves the map-keyed reference
/// loop only. The engine's hot path sums through the link arena's
/// key-sorted id list instead ([`FluidEngine::carried_bytes`]): same order,
/// O(links), no allocation — see `crate::arena` for the determinism
/// contract.
pub(crate) fn sum_link_bytes(link_bytes: &HashMap<LinkKey, f64>) -> f64 {
    let mut entries: Vec<(LinkKey, f64)> = link_bytes.iter().map(|(k, v)| (*k, *v)).collect();
    entries.sort_by_key(|(k, _)| *k);
    entries.iter().map(|(_, v)| v).sum()
}

/// Aggregate directed-link capacities of the graph, keyed by node pair.
pub(crate) fn link_capacities(graph: &Graph) -> BTreeMap<LinkKey, f64> {
    let mut caps: BTreeMap<LinkKey, f64> = BTreeMap::new();
    for (_, e) in graph.edges() {
        *caps.entry((e.src, e.dst)).or_insert(0.0) += e.capacity_bps;
    }
    caps
}

/// Progressive-filling max-min fair allocation (bits per second) with
/// per-flow rate caps.
///
/// `active` holds arbitrary flow ids, `paths[k]` is the node path of
/// `active[k]`, and `relay_factors[k]` its kernel-relay throughput
/// multiplier: a factor `< 1.0` caps the flow's rate at `factor ×` its
/// path's minimum link capacity (see [`FlowSpec::relay_factor`]); factors
/// `>= 1.0` impose no cap, reproducing the classic algorithm exactly. Links
/// missing from `capacity` count as zero-capacity, so flows routed over
/// them receive rate 0. Link iteration uses ordered maps and capped flows
/// freeze lowest-cap-first (ties by position), making the allocation fully
/// deterministic. Shared by the incremental engine and the from-scratch
/// reference loop.
pub(crate) fn waterfill_slices(
    capacity: &BTreeMap<LinkKey, f64>,
    active: &[usize],
    paths: &[&[usize]],
    relay_factors: &[f64],
) -> HashMap<usize, f64> {
    debug_assert_eq!(active.len(), paths.len());
    debug_assert_eq!(active.len(), relay_factors.len());
    // Absolute rate caps: relayed logical connections cannot exceed their
    // penalty share of the path bottleneck even when alone on the fabric.
    // Fabrics without relay overhead (every factor >= 1.0 — all switched
    // baselines) skip the cap bookkeeping entirely, so the classic
    // algorithm's hot path pays nothing for the feature.
    let any_capped = relay_factors.iter().any(|&f| f < 1.0);
    let caps: Vec<f64> = if !any_capped {
        Vec::new()
    } else {
        paths
            .iter()
            .zip(relay_factors)
            .map(|(path, &f)| {
                if f >= 1.0 {
                    f64::INFINITY
                } else {
                    let bottleneck = path
                        .windows(2)
                        .map(|w| capacity.get(&(w[0], w[1])).cloned().unwrap_or(0.0))
                        .fold(f64::INFINITY, f64::min);
                    if bottleneck.is_finite() {
                        f.max(0.0) * bottleneck
                    } else {
                        f64::INFINITY // zero-hop path: never rated anyway
                    }
                }
            })
            .collect()
    };
    let mut rates: HashMap<usize, f64> = HashMap::new();
    // Which links each active flow uses, by position in `active`. A path
    // revisiting a link registers once per traversal, so the flow counts
    // once per crossing in the link's fair share.
    let mut flows_on_link: BTreeMap<LinkKey, Vec<usize>> = BTreeMap::new();
    for (pos, path) in paths.iter().enumerate() {
        for w in path.windows(2) {
            flows_on_link.entry((w[0], w[1])).or_default().push(pos);
        }
    }
    let mut residual: BTreeMap<LinkKey, f64> = BTreeMap::new();
    let mut unfixed_count: BTreeMap<LinkKey, usize> = BTreeMap::new();
    for (link, fs) in &flows_on_link {
        let cap = capacity.get(link).cloned().unwrap_or(0.0);
        residual.insert(*link, cap);
        unfixed_count.insert(*link, fs.len());
    }

    let mut fixed = vec![false; active.len()];
    let mut remaining_flows = active.len();
    while remaining_flows > 0 {
        // Find the most constrained link: min residual / #unfixed flows.
        let mut best: Option<(LinkKey, f64)> = None;
        for (link, &count) in &unfixed_count {
            if count == 0 {
                continue;
            }
            // lint:allow(panic-in-engine): `residual` and `unfixed_count` were
            // built over the same link set a screenful above.
            let share = residual[link] / count as f64;
            if best.map(|(_, b)| share < b).unwrap_or(true) {
                best = Some((*link, share));
            }
        }
        // Find the most constrained per-flow rate cap.
        let mut best_cap: Option<(usize, f64)> = None;
        for (pos, &cap) in caps.iter().enumerate() {
            if fixed[pos] || cap.is_infinite() {
                continue;
            }
            if best_cap.map(|(_, b)| cap < b).unwrap_or(true) {
                best_cap = Some((pos, cap));
            }
        }
        // A capped flow freezes at its cap when that is *strictly* below
        // the bottleneck fair share (ties defer to link freezing, so
        // uncapped runs retrace the classic algorithm exactly); its
        // consumption is then subtracted like any frozen flow's.
        if let Some((pos, cap)) = best_cap {
            let link_share = best.map(|(_, s)| s.max(0.0)).unwrap_or(f64::INFINITY);
            if cap < link_share {
                let cap = cap.max(0.0);
                rates.insert(active[pos], cap);
                fixed[pos] = true;
                remaining_flows -= 1;
                for w in paths[pos].windows(2) {
                    let key = (w[0], w[1]);
                    if let Some(r) = residual.get_mut(&key) {
                        *r = (*r - cap).max(0.0);
                    }
                    if let Some(c) = unfixed_count.get_mut(&key) {
                        *c = c.saturating_sub(1);
                    }
                }
                continue;
            }
        }
        let Some((bottleneck, share)) = best else {
            // Remaining flows traverse no known links (shouldn't happen);
            // give them zero.
            for (pos, &id) in active.iter().enumerate() {
                if !fixed[pos] {
                    rates.insert(id, 0.0);
                }
            }
            break;
        };
        let share = share.max(0.0);
        // Freeze every unfixed flow crossing the bottleneck at `share`.
        let frozen: Vec<usize> =
            // lint:allow(panic-in-engine): the bottleneck was selected from
            // `unfixed_count`, which mirrors `flows_on_link`'s key set.
            flows_on_link[&bottleneck].iter().cloned().filter(|&pos| !fixed[pos]).collect();
        for pos in frozen {
            if fixed[pos] {
                continue; // listed twice on the bottleneck (path revisit)
            }
            rates.insert(active[pos], share);
            fixed[pos] = true;
            remaining_flows -= 1;
            // Subtract its consumption from every link it crosses.
            for w in paths[pos].windows(2) {
                let key = (w[0], w[1]);
                if let Some(r) = residual.get_mut(&key) {
                    *r = (*r - share).max(0.0);
                }
                if let Some(c) = unfixed_count.get_mut(&key) {
                    *c = c.saturating_sub(1);
                }
            }
        }
    }
    rates
}

/// From-scratch reference simulator: the pre-engine event loop that re-runs
/// full water-filling over *all* active flows at every completion event.
///
/// Kept as the correctness oracle for the incremental engine (see the
/// equivalence proptests in `tests/engine.rs`) and as the baseline of the
/// `fluid` Criterion bench. Prefer [`simulate_flows`] everywhere else.
pub fn simulate_flows_reference(
    graph: &Graph,
    flows: &[FlowSpec],
    per_hop_latency_s: f64,
) -> FluidResult {
    let capacity = link_capacities(graph);
    let n_flows = flows.len();
    let mut remaining: Vec<f64> = flows.iter().map(|f| f.bytes.max(0.0)).collect();
    let mut completion = vec![0.0f64; n_flows];
    let mut done: Vec<bool> = remaining.iter().map(|&b| b <= 0.0).collect();
    let mut link_bytes: HashMap<(usize, usize), f64> = HashMap::new();

    // Flows with zero hops complete immediately (local transfers).
    for (i, f) in flows.iter().enumerate() {
        if f.hops() == 0 {
            done[i] = true;
            completion[i] = f.start_s;
        }
    }

    let mut now = 0.0f64;
    let mut guard = 0usize;
    let max_events = 4 * n_flows + 16;
    while done.iter().any(|&d| !d) && guard < max_events {
        guard += 1;
        // Active = started and not done. Advance `now` to the next start if
        // nothing is active yet.
        let mut active: Vec<usize> =
            (0..n_flows).filter(|&i| !done[i] && flows[i].start_s <= now + 1e-15).collect();
        if active.is_empty() {
            let next_start = (0..n_flows)
                .filter(|&i| !done[i])
                .map(|i| flows[i].start_s)
                .fold(f64::INFINITY, f64::min);
            if !next_start.is_finite() {
                break;
            }
            now = next_start;
            active =
                (0..n_flows).filter(|&i| !done[i] && flows[i].start_s <= now + 1e-15).collect();
        }

        let paths: Vec<&[usize]> = active.iter().map(|&i| flows[i].path.as_slice()).collect();
        let factors: Vec<f64> = active.iter().map(|&i| flows[i].relay_factor).collect();
        let rates = waterfill_slices(&capacity, &active, &paths, &factors);

        // Time to the earliest of: an active flow finishing, or a pending
        // flow starting.
        let mut dt = f64::INFINITY;
        for &i in &active {
            // lint:allow(panic-in-engine): waterfill_slices returns a rate for
            // every active flow by construction.
            let r = rates[&i];
            if r > 0.0 {
                dt = dt.min(remaining[i] * 8.0 / r);
            }
        }
        let next_start = (0..n_flows)
            .filter(|&i| !done[i] && flows[i].start_s > now + 1e-15)
            .map(|i| flows[i].start_s - now)
            .fold(f64::INFINITY, f64::min);
        dt = dt.min(next_start);
        if !dt.is_finite() || dt <= 0.0 {
            // No progress possible (e.g. a flow with zero-rate on a
            // zero-capacity path). Mark stuck flows done with infinite time.
            for &i in &active {
                // lint:allow(panic-in-engine): waterfill_slices returns a rate for
                // every active flow by construction.
                if rates[&i] <= 0.0 {
                    done[i] = true;
                    completion[i] = f64::INFINITY;
                }
            }
            continue;
        }

        // Advance.
        for &i in &active {
            // lint:allow(panic-in-engine): waterfill_slices returns a rate for
            // every active flow by construction.
            let r = rates[&i];
            let sent = r * dt / 8.0;
            let sent = sent.min(remaining[i]);
            remaining[i] -= sent;
            for w in flows[i].path.windows(2) {
                *link_bytes.entry((w[0], w[1])).or_insert(0.0) += sent;
            }
            if remaining[i] <= COMPLETION_EPS_BYTES {
                done[i] = true;
                completion[i] = now + dt + per_hop_latency_s * flows[i].hops() as f64;
            }
        }
        now += dt;
    }

    // Anything still unfinished after the guard (shouldn't happen) is marked
    // at the current time.
    for i in 0..n_flows {
        if !done[i] {
            completion[i] = f64::INFINITY;
        }
    }

    let carried = sum_link_bytes(&link_bytes);
    let demand: f64 = flows.iter().map(|f| if f.hops() > 0 { f.bytes } else { 0.0 }).sum();
    let makespan = completion.iter().cloned().filter(|c| c.is_finite()).fold(0.0, f64::max);
    FluidResult {
        completion_s: completion,
        makespan_s: makespan,
        link_bytes,
        carried_bytes: carried,
        demand_bytes: demand,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topoopt_graph::Graph;

    fn line(capacities: &[f64]) -> Graph {
        let mut g = Graph::new(capacities.len() + 1);
        for (i, &c) in capacities.iter().enumerate() {
            g.add_edge(i, i + 1, c);
        }
        g
    }

    #[test]
    fn single_flow_uses_full_bottleneck() {
        // 0 -> 1 -> 2 with a 10 bps bottleneck on the second hop.
        let g = line(&[100.0, 10.0]);
        let f = vec![FlowSpec::new(vec![0, 1, 2], 10.0)]; // 80 bits
        let r = simulate_flows(&g, &f, 0.0);
        assert!((r.completion_s[0] - 8.0).abs() < 1e-6);
        assert!((r.makespan_s - 8.0).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_a_link_fairly() {
        let mut g = Graph::new(3);
        g.add_edge(0, 2, 100.0);
        g.add_edge(1, 2, 100.0);
        g.add_edge(2, 0, 100.0);
        // Both flows end at node 0 through the shared 2->0 link.
        let f = vec![FlowSpec::new(vec![1, 2, 0], 100.0), FlowSpec::new(vec![1, 2, 0], 100.0)];
        let r = simulate_flows(&g, &f, 0.0);
        // 800 bits each at 50 bps fair share = 16 s.
        assert!((r.completion_s[0] - 16.0).abs() < 1e-6);
        assert!((r.completion_s[1] - 16.0).abs() < 1e-6);
    }

    #[test]
    fn max_min_gives_leftover_to_unconstrained_flow() {
        // Flow A crosses the 10 bps bottleneck; flow B only the 100 bps link,
        // so B gets 90 bps after A is frozen at 10.
        let g = line(&[100.0, 10.0]);
        let f = vec![
            FlowSpec::new(vec![0, 1, 2], 10.0), // 80 bits over both links
            FlowSpec::new(vec![0, 1], 90.0),    // 720 bits over first link only
        ];
        let r = simulate_flows(&g, &f, 0.0);
        assert!((r.completion_s[0] - 8.0).abs() < 1e-6);
        assert!((r.completion_s[1] - 8.0).abs() < 1e-6);
    }

    #[test]
    fn dead_links_waterfill_to_zero_never_nan() {
        // Fault injection stalls flows on zero-capacity links instead of
        // dropping them, so the fair-share division `0 / count` must come
        // out as rate 0 — never NaN or a negative share — and flows whose
        // relay cap is `factor × 0` must freeze at exactly 0.
        let mut capacity: BTreeMap<LinkKey, f64> = BTreeMap::new();
        capacity.insert((0, 1), 100.0);
        capacity.insert((1, 2), 0.0); // failed link (capacity zeroed)
                                      // (2, 3) is intentionally absent: missing links count as dead.
        let (p0, p1, p2, p3): (&[usize], &[usize], &[usize], &[usize]) =
            (&[0, 1], &[0, 1, 2], &[2, 3], &[0, 1, 2]);
        let rates = waterfill_slices(
            &capacity,
            &[7, 8, 9, 10],
            &[p0, p1, p2, p3],
            // Flow 10's cap is 0.5 × its zero bottleneck = 0.
            &[1.0, 1.0, 1.0, 0.5],
        );
        for (&id, &r) in &rates {
            assert!(r.is_finite() && r >= 0.0, "flow {id}: rate {r} must be finite and >= 0");
        }
        assert_eq!(rates[&8], 0.0, "flow over the zeroed link stalls");
        assert_eq!(rates[&9], 0.0, "flow over the missing link stalls");
        assert_eq!(rates[&10], 0.0, "relay-capped flow over the zeroed link stalls");
        // Stalled flows consume nothing, so the healthy flow still gets the
        // full 100 bps of its link.
        assert!((rates[&7] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn forwarded_flow_pays_bandwidth_tax() {
        // A relay path of 3 hops carries the flow's bytes three times.
        let g = line(&[100.0, 100.0, 100.0]);
        let f = vec![FlowSpec::new(vec![0, 1, 2, 3], 50.0)];
        let r = simulate_flows(&g, &f, 0.0);
        assert!((r.bandwidth_tax() - 3.0).abs() < 1e-9);
        assert!((r.carried_bytes - 150.0).abs() < 1e-9);
    }

    #[test]
    fn per_hop_latency_is_added() {
        let g = line(&[100.0, 100.0]);
        let f = vec![FlowSpec::new(vec![0, 1, 2], 100.0)];
        let no_lat = simulate_flows(&g, &f, 0.0);
        let with_lat = simulate_flows(&g, &f, 0.5);
        assert!((with_lat.completion_s[0] - no_lat.completion_s[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn delayed_start_is_respected() {
        let g = line(&[100.0]);
        let mut f1 = FlowSpec::new(vec![0, 1], 100.0);
        f1.start_s = 5.0;
        let r = simulate_flows(&g, &[f1], 0.0);
        assert!((r.completion_s[0] - 13.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_and_local_flows_complete_instantly() {
        let g = line(&[10.0]);
        let flows = vec![FlowSpec::new(vec![0, 1], 0.0), FlowSpec::new(vec![1], 100.0)];
        let r = simulate_flows(&g, &flows, 0.0);
        assert_eq!(r.completion_s[0], 0.0);
        assert_eq!(r.completion_s[1], 0.0);
    }

    #[test]
    fn unroutable_flow_reports_infinite_completion() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 10.0);
        // Path uses a non-existent reverse edge.
        let f = vec![FlowSpec::new(vec![1, 0], 10.0)];
        let r = simulate_flows(&g, &f, 0.0);
        assert!(r.completion_s[0].is_infinite());
    }

    #[test]
    fn link_bytes_account_every_hop() {
        let g = line(&[10.0, 10.0]);
        let f = vec![FlowSpec::new(vec![0, 1, 2], 20.0)];
        let r = simulate_flows(&g, &f, 0.0);
        assert!((r.link_bytes[&(0, 1)] - 20.0).abs() < 1e-6);
        assert!((r.link_bytes[&(1, 2)] - 20.0).abs() < 1e-6);
    }

    #[test]
    fn many_symmetric_flows_converge() {
        // 16-node ring, 16 neighbour flows: all complete at the same time.
        let mut g = Graph::new(16);
        for i in 0..16 {
            g.add_edge(i, (i + 1) % 16, 100.0);
        }
        let flows: Vec<FlowSpec> =
            (0..16).map(|i| FlowSpec::new(vec![i, (i + 1) % 16], 1000.0)).collect();
        let r = simulate_flows(&g, &flows, 0.0);
        let first = r.completion_s[0];
        assert!(first.is_finite());
        for c in &r.completion_s {
            assert!((c - first).abs() < 1e-6);
        }
    }

    #[test]
    fn link_traffic_cdf_handles_nan_without_panicking() {
        // total_cmp sorts NaN deterministically instead of panicking as the
        // old partial_cmp().unwrap() did.
        let mut r = FluidResult {
            completion_s: vec![],
            makespan_s: 0.0,
            link_bytes: HashMap::new(),
            carried_bytes: 0.0,
            demand_bytes: 0.0,
        };
        r.link_bytes.insert((0, 1), 5.0);
        r.link_bytes.insert((1, 2), f64::NAN);
        r.link_bytes.insert((2, 3), 1.0);
        let cdf = r.link_traffic_cdf();
        assert_eq!(cdf.len(), 3);
        assert!(cdf[0] <= cdf[1] || cdf[1].is_nan() || cdf[0].is_nan());
    }

    #[test]
    fn relay_factor_caps_a_lone_flow_below_the_bottleneck() {
        // 100 bytes over a 100 bps path, but one relayed hop at 50%
        // efficiency: the kernel caps the connection at 50 bps -> 16 s.
        let g = line(&[100.0, 100.0]);
        let f = vec![FlowSpec::new(vec![0, 1, 2], 100.0).with_relay_factor(0.5)];
        let r = simulate_flows(&g, &f, 0.0);
        assert!((r.completion_s[0] - 16.0).abs() < 1e-9);
        let reference = simulate_flows_reference(&g, &f, 0.0);
        assert!((reference.completion_s[0] - 16.0).abs() < 1e-9);
    }

    #[test]
    fn capped_flow_leaves_headroom_to_uncapped_sharers() {
        // Two flows share a 100 bps link; A is relay-capped at 25 bps, so
        // max-min gives B the leftover 75 bps instead of a 50/50 split.
        let g = line(&[100.0]);
        let f = vec![
            FlowSpec::new(vec![0, 1], 100.0).with_relay_factor(0.25), // 800 bits @ 25 bps
            FlowSpec::new(vec![0, 1], 150.0),                         // 1200 bits @ 75 bps
        ];
        let r = simulate_flows(&g, &f, 0.0);
        assert!((r.completion_s[0] - 32.0).abs() < 1e-9);
        assert!((r.completion_s[1] - 16.0).abs() < 1e-9, "{}", r.completion_s[1]);
        let reference = simulate_flows_reference(&g, &f, 0.0);
        for (a, b) in r.completion_s.iter().zip(&reference.completion_s) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn relay_factor_one_changes_nothing() {
        let g = line(&[100.0, 10.0]);
        let base = vec![FlowSpec::new(vec![0, 1, 2], 10.0), FlowSpec::new(vec![0, 1], 90.0)];
        let capped: Vec<FlowSpec> =
            base.iter().cloned().map(|f| f.with_relay_factor(1.0)).collect();
        assert_eq!(simulate_flows(&g, &base, 0.0), simulate_flows(&g, &capped, 0.0));
    }

    #[test]
    fn zero_relay_factor_means_no_logical_connection() {
        // Factor 0 models a pair the forwarding plan has no route for: the
        // flow is stuck at rate zero and reports infinite completion.
        let g = line(&[100.0]);
        let f = vec![FlowSpec::new(vec![0, 1], 10.0).with_relay_factor(0.0)];
        let r = simulate_flows(&g, &f, 0.0);
        assert!(r.completion_s[0].is_infinite());
    }

    #[test]
    fn reference_loop_matches_engine_on_contended_case() {
        let g = line(&[100.0, 10.0]);
        let mut f2 = FlowSpec::new(vec![0, 1], 90.0);
        f2.start_s = 2.0;
        let flows = vec![FlowSpec::new(vec![0, 1, 2], 10.0), f2];
        let a = simulate_flows(&g, &flows, 0.0);
        let b = simulate_flows_reference(&g, &flows, 0.0);
        for (x, y) in a.completion_s.iter().zip(&b.completion_s) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
        assert!((a.carried_bytes - b.carried_bytes).abs() < 1e-6);
    }
}
