//! Windowed simulation of a reconfigurable (OCS-reconfig) fabric.
//!
//! Following §5.1 and Appendix E.4: the controller measures the unsatisfied
//! demand every `window_s` (50 ms), computes new circuits with the
//! Algorithm 5 heuristic, pauses all flows for the reconfiguration latency,
//! and resumes. With host-based forwarding (OCS-reconfig-FW) multi-hop
//! relays are allowed between reconfigurations; without it
//! (OCS-reconfig-noFW / SiP-ML) only directly connected pairs can exchange
//! traffic, so draining a high-communication-degree demand needs several
//! reconfiguration rounds.

use crate::engine::FluidEngine;
use crate::fluid::FlowSpec;
use crate::network::SimNetwork;
use serde::{Deserialize, Serialize};
use topoopt_core::ocs_reconfig::{ocs_reconfig_topology, Discount, OcsReconfigConfig};
use topoopt_graph::TrafficMatrix;
use topoopt_strategy::TrafficDemands;

/// Parameters of the reconfigurable-fabric simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconfigParams {
    /// Interfaces per server.
    pub degree: usize,
    /// Per-interface bandwidth (bps).
    pub link_bps: f64,
    /// Reconfiguration latency in seconds (10 ms for commercial 3D-MEMS
    /// OCS, down to microseconds/nanoseconds for futuristic switches).
    pub reconfig_latency_s: f64,
    /// Demand-measurement window in seconds (50 ms in the paper).
    pub window_s: f64,
    /// Enable host-based forwarding between reconfigurations
    /// (OCS-reconfig-FW vs -noFW).
    pub host_forwarding: bool,
    /// Compute time of the busiest server per iteration.
    pub compute_s: f64,
    /// Per-hop propagation latency in seconds.
    pub per_hop_latency_s: f64,
    /// Safety cap on reconfiguration rounds per iteration.
    pub max_rounds: usize,
}

impl Default for ReconfigParams {
    fn default() -> Self {
        ReconfigParams {
            degree: 4,
            link_bps: 100.0e9,
            reconfig_latency_s: 10.0e-3,
            window_s: 50.0e-3,
            host_forwarding: true,
            compute_s: 0.0,
            per_hop_latency_s: 1.0e-6,
            max_rounds: 256,
        }
    }
}

/// Result of simulating one iteration on the reconfigurable fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigResult {
    /// Communication time including all reconfiguration pauses.
    pub comm_s: f64,
    /// Total iteration time.
    pub total_s: f64,
    /// Number of reconfigurations performed.
    pub reconfigurations: usize,
    /// True if the demand could not be fully drained within the round cap.
    pub truncated: bool,
}

/// Merge a job's demands into one pairwise matrix: AllReduce groups are laid
/// on their natural +1 ring (the reconfigurable baseline is not
/// TotientPerms-aware), MP demand is added verbatim.
pub fn demand_matrix(demands: &TrafficDemands) -> TrafficMatrix {
    let n = demands.num_servers;
    let mut m = demands.mp.clone();
    for g in &demands.allreduce_groups {
        let k = g.members.len();
        if k < 2 {
            continue;
        }
        let per_node = 2.0 * g.bytes * (k as f64 - 1.0) / k as f64;
        for i in 0..k {
            m.add(g.members[i], g.members[(i + 1) % k], per_node);
        }
    }
    debug_assert_eq!(m.num_nodes(), n);
    m
}

/// Simulate one training iteration on an OCS-reconfigurable fabric.
pub fn simulate_reconfigurable_iteration(
    demands: &TrafficDemands,
    params: &ReconfigParams,
) -> ReconfigResult {
    let n = demands.num_servers;
    let mut residual = demand_matrix(demands);
    let mut comm_s = 0.0f64;
    let mut rounds = 0usize;
    let mut truncated = false;

    while residual.total() > 1.0 && rounds < params.max_rounds {
        rounds += 1;
        // Reconfigure for the current residual demand.
        let topo = ocs_reconfig_topology(
            &residual,
            &OcsReconfigConfig {
                degree: params.degree,
                link_bps: params.link_bps,
                discount: Discount::Exponential,
                ensure_connected: params.host_forwarding,
            },
        );
        comm_s += params.reconfig_latency_s;

        let net = SimNetwork::without_rules(topo, n).with_host_forwarding(params.host_forwarding);

        // Build flows for the routable part of the residual demand.
        let mut flows: Vec<FlowSpec> = Vec::new();
        let mut flow_pairs: Vec<(usize, usize)> = Vec::new();
        for (src, dst, bytes) in residual.entries_desc() {
            if let Some(path) = net.path(src, dst) {
                flows.push(FlowSpec::new(path, bytes));
                flow_pairs.push((src, dst));
            }
        }
        if flows.is_empty() {
            // Nothing routable this round (can only happen without
            // forwarding); the next reconfiguration will pick other pairs —
            // but if the allocator is deterministic this would loop, so bail
            // out and report truncation.
            truncated = true;
            break;
        }

        // Run the engine for exactly one measurement window; its exact
        // per-flow residuals replace the old proportional-drain
        // approximation, so fast pairs finish early while slow pairs carry
        // their true backlog into the next reconfiguration round.
        let mut engine = FluidEngine::new(&net.graph, params.per_hop_latency_s);
        let ids: Vec<usize> = flows.into_iter().map(|f| engine.add_flow(f)).collect();
        engine.run_until(params.window_s);
        if engine.drained() {
            // Everything routable drained within the window.
            comm_s += engine.makespan_so_far().min(params.window_s);
            for (k, &(src, dst)) in flow_pairs.iter().enumerate() {
                if engine.is_done(ids[k]) && engine.completion_s(ids[k]).is_finite() {
                    residual.set(src, dst, 0.0);
                }
            }
        } else {
            // Partial progress: every pair keeps its exact unsent bytes.
            comm_s += params.window_s;
            for (k, &(src, dst)) in flow_pairs.iter().enumerate() {
                let left = engine.remaining_bytes(ids[k]);
                residual.set(src, dst, if left < 1.0 { 0.0 } else { left });
            }
        }
    }
    if rounds >= params.max_rounds && residual.total() > 1.0 {
        truncated = true;
    }

    ReconfigResult {
        comm_s,
        total_s: params.compute_s + comm_s,
        reconfigurations: rounds,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topoopt_models::zoo::build_dlrm;
    use topoopt_models::DlrmConfig;
    use topoopt_strategy::{extract_traffic, ParallelizationStrategy};

    fn dlrm_demands(n: usize) -> TrafficDemands {
        let m = build_dlrm(&DlrmConfig::shared());
        let s = ParallelizationStrategy::hybrid_embeddings_round_robin(&m, n);
        extract_traffic(&m, &s, 4)
    }

    #[test]
    fn reconfiguration_latency_increases_iteration_time() {
        let demands = dlrm_demands(16);
        let fast = simulate_reconfigurable_iteration(
            &demands,
            &ReconfigParams { reconfig_latency_s: 1.0e-6, ..Default::default() },
        );
        let slow = simulate_reconfigurable_iteration(
            &demands,
            &ReconfigParams { reconfig_latency_s: 10.0e-3, ..Default::default() },
        );
        assert!(slow.comm_s > fast.comm_s);
        assert!(fast.reconfigurations >= 1);
    }

    #[test]
    fn forwarding_reduces_rounds_for_all_to_all_demand() {
        // All-to-all MP traffic has communication degree n-1 > d, so without
        // forwarding it needs several reconfigurations; with forwarding one
        // connected topology can carry everything (at a bandwidth tax).
        let demands = dlrm_demands(16);
        let fw = simulate_reconfigurable_iteration(
            &demands,
            &ReconfigParams { host_forwarding: true, ..Default::default() },
        );
        let nofw = simulate_reconfigurable_iteration(
            &demands,
            &ReconfigParams { host_forwarding: false, ..Default::default() },
        );
        assert!(nofw.reconfigurations >= fw.reconfigurations);
    }

    #[test]
    fn result_includes_compute_time() {
        let demands = dlrm_demands(8);
        let r = simulate_reconfigurable_iteration(
            &demands,
            &ReconfigParams { compute_s: 0.5, ..Default::default() },
        );
        assert!((r.total_s - r.comm_s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn demand_matrix_combines_allreduce_and_mp() {
        let demands = dlrm_demands(8);
        let m = demand_matrix(&demands);
        assert!(m.total() > demands.total_mp_bytes());
        assert!(m.total() > 0.0);
    }

    #[test]
    fn zero_demand_finishes_immediately() {
        let demands = TrafficDemands {
            num_servers: 4,
            allreduce_groups: vec![],
            mp: TrafficMatrix::new(4),
            samples_per_server: 1.0,
        };
        let r = simulate_reconfigurable_iteration(&demands, &ReconfigParams::default());
        assert_eq!(r.reconfigurations, 0);
        assert_eq!(r.comm_s, 0.0);
        assert!(!r.truncated);
    }
}
