//! Dynamic-cluster equivalence: the persistent incremental shared-fabric
//! engine must be bit-identical to the rebuild-per-window reference on
//! random Poisson arrival traces, and the event-loop guard must surface
//! truncation instead of silently dropping jobs.

use proptest::prelude::*;
use topoopt_graph::{topologies, Graph, TrafficMatrix};
use topoopt_netsim::{
    simulate_dynamic_cluster, AllReducePlan, DynamicClusterParams, DynamicEngineStats,
    DynamicFabric, DynamicJobSpec, MigrationMode, SharedEngineMode,
};
use topoopt_strategy::{AllReduceGroup, TrafficDemands};

fn ring_job(
    name: String,
    n: usize,
    bytes: f64,
    compute_s: f64,
    arrival_s: f64,
    iterations: usize,
) -> DynamicJobSpec {
    DynamicJobSpec {
        name,
        servers: n,
        demands: TrafficDemands {
            num_servers: n,
            allreduce_groups: vec![AllReduceGroup { members: (0..n).collect(), bytes }],
            mp: TrafficMatrix::new(n),
            samples_per_server: 1.0,
        },
        plans: vec![AllReducePlan::natural_ring((0..n).collect(), bytes)],
        topology: None,
        compute_s,
        arrival_s,
        iterations,
    }
}

fn shared_ring(total: usize, cap: f64) -> Graph {
    let mut g = Graph::new(total);
    for i in 0..total {
        g.add_edge(i, (i + 1) % total, cap);
        g.add_edge((i + 1) % total, i, cap);
    }
    g
}

/// Run the same trace through both engine modes and demand bit-identical
/// outcomes (the engine work counters differ by design and are zeroed).
fn assert_modes_agree(jobs: &[DynamicJobSpec], fabric: Graph, total: usize) {
    let params = |mode: SharedEngineMode| DynamicClusterParams {
        total_servers: total,
        fabric: DynamicFabric::Shared(fabric.clone()),
        provisioning_time_s: 0.0,
        per_hop_latency_s: 1.0e-6,
        migration: MigrationMode::Atomic,
        shared_engine: mode,
        window_cap: None,
    };
    let mut persistent = simulate_dynamic_cluster(jobs, &params(SharedEngineMode::Persistent));
    let mut rebuild = simulate_dynamic_cluster(jobs, &params(SharedEngineMode::Rebuild));
    for (p, r) in persistent.jobs.iter().zip(&rebuild.jobs) {
        assert_eq!(
            p.iteration_s.to_bits(),
            r.iteration_s.to_bits(),
            "iteration time diverged for {}: {} vs {}",
            p.name,
            p.iteration_s,
            r.iteration_s
        );
        assert_eq!(
            p.finish_s.to_bits(),
            r.finish_s.to_bits(),
            "finish time diverged for {}: {} vs {}",
            p.name,
            p.finish_s,
            r.finish_s
        );
    }
    persistent.engine = DynamicEngineStats::default();
    rebuild.engine = DynamicEngineStats::default();
    assert_eq!(persistent, rebuild, "dynamic results diverged between engine modes");
}

proptest! {
    // Random Poisson arrival traces on an ideal switch: jobs are
    // server-disjoint (per-job components), so most windows reuse every
    // other resident's cached rate — the cache must still be exact.
    #[test]
    fn persistent_engine_matches_rebuild_on_ideal_switch_traces(
        total in 8usize..20,
        trace in proptest::collection::vec(
            // (servers, iterations, exponential quantile, GB, compute)
            (2usize..6, 1usize..4, 0.0f64..0.95, 0.2f64..3.0, 0.0f64..0.2),
            1usize..10),
        mean_gap in 0.05f64..1.5,
    ) {
        let mut t = 0.0f64;
        let jobs: Vec<DynamicJobSpec> = trace
            .into_iter()
            .enumerate()
            .map(|(i, (n, iters, u, gb, compute))| {
                // Inverse-CDF exponential gap: a Poisson arrival process.
                t += -mean_gap * (1.0 - u).ln();
                ring_job(format!("j{i}"), n, gb * 1.0e9, compute, t, iters)
            })
            .collect();
        let fabric = topologies::ideal_switch(total, 100.0e9);
        assert_modes_agree(&jobs, fabric, total);
    }

    // The same traces on a shared ring fabric: BFS routes cross other
    // jobs' server ranges, so components span multiple jobs and dirty
    // propagation (retirement re-rating component mates) is exercised.
    #[test]
    fn persistent_engine_matches_rebuild_on_shared_ring_traces(
        total in 6usize..14,
        trace in proptest::collection::vec(
            (2usize..5, 1usize..4, 0.0f64..0.95, 0.2f64..3.0, 0.0f64..0.2),
            1usize..8),
        mean_gap in 0.05f64..1.0,
    ) {
        let mut t = 0.0f64;
        let jobs: Vec<DynamicJobSpec> = trace
            .into_iter()
            .enumerate()
            .map(|(i, (n, iters, u, gb, compute))| {
                t += -mean_gap * (1.0 - u).ln();
                ring_job(format!("j{i}"), n, gb * 1.0e9, compute, t, iters)
            })
            .collect();
        assert_modes_agree(&jobs, shared_ring(total, 60.0e9), total);
    }
}

#[test]
fn window_cap_truncation_is_surfaced() {
    // Three sequential jobs but only one loop iteration allowed: the run
    // is cut off with work pending, and the result must say so instead of
    // silently reporting the survivors as the whole story.
    let jobs: Vec<DynamicJobSpec> =
        (0..3).map(|i| ring_job(format!("j{i}"), 4, 1.0e9, 0.0, i as f64 * 0.1, 2)).collect();
    let params = |cap: Option<usize>| DynamicClusterParams {
        total_servers: 4,
        fabric: DynamicFabric::Shared(topologies::ideal_switch(4, 100.0e9)),
        provisioning_time_s: 0.0,
        per_hop_latency_s: 1.0e-6,
        migration: MigrationMode::Atomic,
        shared_engine: SharedEngineMode::Persistent,
        window_cap: cap,
    };
    let cut = simulate_dynamic_cluster(&jobs, &params(Some(1)));
    assert!(cut.truncated, "guard exhaustion with pending jobs must be reported");
    assert!(cut.jobs.iter().any(|o| !o.completed));
    let full = simulate_dynamic_cluster(&jobs, &params(None));
    assert!(!full.truncated);
    assert!(full.jobs.iter().all(|o| o.completed));
    // A cap large enough to finish the trace is not truncation either.
    let roomy = simulate_dynamic_cluster(&jobs, &params(Some(64)));
    assert!(!roomy.truncated);
}

#[test]
fn persistent_engine_reports_window_reuse() {
    // Disjoint jobs on an ideal switch arriving one at a time: each
    // arrival/departure window touches one job-level component, so the
    // stats must show cache reuse and a max component of one job's flows.
    let jobs: Vec<DynamicJobSpec> =
        (0..4).map(|i| ring_job(format!("j{i}"), 4, 1.0e9, 0.0, i as f64 * 0.01, 3)).collect();
    let r = simulate_dynamic_cluster(
        &jobs,
        &DynamicClusterParams {
            total_servers: 16,
            fabric: DynamicFabric::Shared(topologies::ideal_switch(16, 100.0e9)),
            provisioning_time_s: 0.0,
            per_hop_latency_s: 1.0e-6,
            migration: MigrationMode::Atomic,
            shared_engine: SharedEngineMode::Persistent,
            window_cap: None,
        },
    );
    assert!(r.jobs.iter().all(|o| o.completed));
    assert!(r.engine.windows > 0);
    assert!(r.engine.jobs_reused > 0, "disjoint residents must reuse cached rates: {:?}", r.engine);
    assert!(
        r.engine.windows_incremental > 0,
        "windows must be served incrementally: {:?}",
        r.engine
    );
    // Ring flows through a star hub are pairwise link-disjoint (flow k
    // owns up(k) and down(k+1)), so no waterfill ever couples flows.
    assert_eq!(
        r.engine.max_component, 1,
        "star-routed ring flows are link-disjoint: {:?}",
        r.engine
    );
}
