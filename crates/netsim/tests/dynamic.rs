//! Dynamic-cluster equivalence: the persistent incremental shared-fabric
//! engine must be bit-identical to the rebuild-per-window reference on
//! random Poisson arrival traces, and the event-loop guard must surface
//! truncation instead of silently dropping jobs.

use proptest::prelude::*;
use topoopt_graph::{topologies, Graph, TrafficMatrix};
use topoopt_netsim::{
    simulate_dynamic_cluster, AllReducePlan, DynamicClusterParams, DynamicEngineStats,
    DynamicFabric, DynamicJobSpec, FaultEvent, FaultInjection, MigrationMode, SharedEngineMode,
};
use topoopt_strategy::{AllReduceGroup, TrafficDemands};

fn ring_job(
    name: String,
    n: usize,
    bytes: f64,
    compute_s: f64,
    arrival_s: f64,
    iterations: usize,
) -> DynamicJobSpec {
    DynamicJobSpec {
        name,
        servers: n,
        demands: TrafficDemands {
            num_servers: n,
            allreduce_groups: vec![AllReduceGroup { members: (0..n).collect(), bytes }],
            mp: TrafficMatrix::new(n),
            samples_per_server: 1.0,
        },
        plans: vec![AllReducePlan::natural_ring((0..n).collect(), bytes)],
        topology: None,
        compute_s,
        arrival_s,
        iterations,
    }
}

fn shared_ring(total: usize, cap: f64) -> Graph {
    let mut g = Graph::new(total);
    for i in 0..total {
        g.add_edge(i, (i + 1) % total, cap);
        g.add_edge((i + 1) % total, i, cap);
    }
    g
}

/// Run the same trace through both engine modes and demand bit-identical
/// outcomes (the engine work counters differ by design and are zeroed).
fn assert_modes_agree(jobs: &[DynamicJobSpec], fabric: Graph, total: usize) {
    assert_modes_agree_under_faults(jobs, fabric, total, vec![]);
}

/// [`assert_modes_agree`] with a fault-injection schedule: the persistent
/// engine absorbs faults incrementally, the rebuild reference replays the
/// cumulative health history onto every fresh engine — the outcomes must
/// still match to the bit.
fn assert_modes_agree_under_faults(
    jobs: &[DynamicJobSpec],
    fabric: Graph,
    total: usize,
    faults: Vec<FaultInjection>,
) {
    let params = |mode: SharedEngineMode| DynamicClusterParams {
        total_servers: total,
        fabric: DynamicFabric::Shared(fabric.clone()),
        provisioning_time_s: 0.0,
        per_hop_latency_s: 1.0e-6,
        migration: MigrationMode::Atomic,
        shared_engine: mode,
        window_cap: None,
        faults: faults.clone(),
    };
    let mut persistent = simulate_dynamic_cluster(jobs, &params(SharedEngineMode::Persistent));
    let mut rebuild = simulate_dynamic_cluster(jobs, &params(SharedEngineMode::Rebuild));
    for (p, r) in persistent.jobs.iter().zip(&rebuild.jobs) {
        assert_eq!(
            p.iteration_s.to_bits(),
            r.iteration_s.to_bits(),
            "iteration time diverged for {}: {} vs {}",
            p.name,
            p.iteration_s,
            r.iteration_s
        );
        assert_eq!(
            p.finish_s.to_bits(),
            r.finish_s.to_bits(),
            "finish time diverged for {}: {} vs {}",
            p.name,
            p.finish_s,
            r.finish_s
        );
    }
    persistent.engine = DynamicEngineStats::default();
    rebuild.engine = DynamicEngineStats::default();
    assert_eq!(persistent, rebuild, "dynamic results diverged between engine modes");
}

proptest! {
    // Random Poisson arrival traces on an ideal switch: jobs are
    // server-disjoint (per-job components), so most windows reuse every
    // other resident's cached rate — the cache must still be exact.
    #[test]
    fn persistent_engine_matches_rebuild_on_ideal_switch_traces(
        total in 8usize..20,
        trace in proptest::collection::vec(
            // (servers, iterations, exponential quantile, GB, compute)
            (2usize..6, 1usize..4, 0.0f64..0.95, 0.2f64..3.0, 0.0f64..0.2),
            1usize..10),
        mean_gap in 0.05f64..1.5,
    ) {
        let mut t = 0.0f64;
        let jobs: Vec<DynamicJobSpec> = trace
            .into_iter()
            .enumerate()
            .map(|(i, (n, iters, u, gb, compute))| {
                // Inverse-CDF exponential gap: a Poisson arrival process.
                t += -mean_gap * (1.0 - u).ln();
                ring_job(format!("j{i}"), n, gb * 1.0e9, compute, t, iters)
            })
            .collect();
        let fabric = topologies::ideal_switch(total, 100.0e9);
        assert_modes_agree(&jobs, fabric, total);
    }

    // The same traces on a shared ring fabric: BFS routes cross other
    // jobs' server ranges, so components span multiple jobs and dirty
    // propagation (retirement re-rating component mates) is exercised.
    #[test]
    fn persistent_engine_matches_rebuild_on_shared_ring_traces(
        total in 6usize..14,
        trace in proptest::collection::vec(
            (2usize..5, 1usize..4, 0.0f64..0.95, 0.2f64..3.0, 0.0f64..0.2),
            1usize..8),
        mean_gap in 0.05f64..1.0,
    ) {
        let mut t = 0.0f64;
        let jobs: Vec<DynamicJobSpec> = trace
            .into_iter()
            .enumerate()
            .map(|(i, (n, iters, u, gb, compute))| {
                t += -mean_gap * (1.0 - u).ln();
                ring_job(format!("j{i}"), n, gb * 1.0e9, compute, t, iters)
            })
            .collect();
        assert_modes_agree(&jobs, shared_ring(total, 60.0e9), total);
    }

    // Poisson traces with injected fault/recovery events: link and OCS-port
    // failures (some never recovered), stragglers, all firing between
    // arrival/departure windows. Persistent absorption of the fault events
    // must stay bit-identical to replaying the cumulative health history on
    // a fresh engine every window.
    #[test]
    fn persistent_engine_matches_rebuild_under_fault_traces(
        total in 6usize..12,
        trace in proptest::collection::vec(
            (2usize..5, 1usize..4, 0.0f64..0.95, 0.2f64..3.0, 0.0f64..0.2),
            1usize..6),
        fault_seed in proptest::collection::vec(
            // (time quantile, kind, endpoint pick, straggler factor, recovery gap)
            (0.0f64..1.0, 0usize..4, 0usize..64, 0.2f64..1.4, 0.01f64..0.5),
            0usize..6),
        mean_gap in 0.05f64..1.0,
    ) {
        let mut t = 0.0f64;
        let jobs: Vec<DynamicJobSpec> = trace
            .into_iter()
            .enumerate()
            .map(|(i, (n, iters, u, gb, compute))| {
                t += -mean_gap * (1.0 - u).ln();
                ring_job(format!("j{i}"), n, gb * 1.0e9, compute, t, iters)
            })
            .collect();
        let horizon = t + 2.0;
        let mut faults = Vec::new();
        for (u, kind, pick, factor, gap) in fault_seed {
            let at = u * horizon;
            let s = pick % total;
            let link = (s, (s + 1) % total);
            match kind {
                0 => {
                    faults.push(FaultInjection { time_s: at, event: FaultEvent::LinkDown(link) });
                    faults.push(FaultInjection { time_s: at + gap, event: FaultEvent::LinkUp(link) });
                }
                1 => {
                    faults.push(FaultInjection { time_s: at, event: FaultEvent::OcsPortDown(s) });
                    faults.push(FaultInjection { time_s: at + gap, event: FaultEvent::OcsPortUp(s) });
                }
                2 => {
                    faults.push(FaultInjection {
                        time_s: at,
                        event: FaultEvent::Straggler { server: s, egress_factor: factor },
                    });
                    faults.push(FaultInjection {
                        time_s: at + gap,
                        event: FaultEvent::Straggler { server: s, egress_factor: 1.0 },
                    });
                }
                // A transceiver that never comes back: surviving jobs stall.
                _ => faults.push(FaultInjection { time_s: at, event: FaultEvent::LinkDown(link) }),
            }
        }
        assert_modes_agree_under_faults(&jobs, shared_ring(total, 60.0e9), total, faults);
    }
}

#[test]
fn link_failure_stalls_job_until_recovery_in_both_modes() {
    // One ring job on a 4-ring fabric. Killing a directed link its AllReduce
    // crosses stalls the job (rate 0, not dropped); recovery revives it.
    let jobs = vec![ring_job("j0".into(), 4, 1.0e9, 0.0, 0.0, 2)];
    let fabric = shared_ring(4, 100.0e9);
    let run = |faults: Vec<FaultInjection>| {
        simulate_dynamic_cluster(
            &jobs,
            &DynamicClusterParams {
                total_servers: 4,
                fabric: DynamicFabric::Shared(fabric.clone()),
                provisioning_time_s: 0.0,
                per_hop_latency_s: 1.0e-6,
                migration: MigrationMode::Atomic,
                shared_engine: SharedEngineMode::Persistent,
                window_cap: None,
                faults,
            },
        )
    };
    let healthy = run(vec![]);
    assert!(healthy.jobs[0].completed);
    let finish = healthy.jobs[0].finish_s;
    let mid = finish * 0.5;

    // Fault with no recovery: the job stalls forever — reported as never
    // completed, not silently dropped or priced as finished.
    let stalled = run(vec![FaultInjection { time_s: mid, event: FaultEvent::LinkDown((0, 1)) }]);
    assert!(!stalled.jobs[0].completed, "a job stalled on a dead link cannot complete");
    assert!(stalled.jobs[0].finish_s.is_infinite());
    assert!(!stalled.truncated, "a permanent stall is not guard truncation");

    // Same fault with recovery: the job finishes, later than healthy.
    let revived = run(vec![
        FaultInjection { time_s: mid, event: FaultEvent::LinkDown((0, 1)) },
        FaultInjection { time_s: mid + finish, event: FaultEvent::LinkUp((0, 1)) },
    ]);
    assert!(revived.jobs[0].completed, "recovery must revive a stalled job");
    assert!(revived.jobs[0].finish_s > finish, "the outage must cost time");
    assert_modes_agree_under_faults(
        &jobs,
        fabric.clone(),
        4,
        vec![
            FaultInjection { time_s: mid, event: FaultEvent::LinkDown((0, 1)) },
            FaultInjection { time_s: mid + finish, event: FaultEvent::LinkUp((0, 1)) },
        ],
    );
}

#[test]
fn straggler_slows_shared_jobs_and_modes_agree() {
    let jobs = vec![ring_job("j0".into(), 4, 1.0e9, 0.0, 0.0, 2)];
    let fabric = topologies::ideal_switch(4, 100.0e9);
    let run = |faults: Vec<FaultInjection>| {
        simulate_dynamic_cluster(
            &jobs,
            &DynamicClusterParams {
                total_servers: 4,
                fabric: DynamicFabric::Shared(fabric.clone()),
                provisioning_time_s: 0.0,
                per_hop_latency_s: 1.0e-6,
                migration: MigrationMode::Atomic,
                shared_engine: SharedEngineMode::Persistent,
                window_cap: None,
                faults,
            },
        )
    };
    let healthy = run(vec![]);
    let slowed = run(vec![FaultInjection {
        time_s: 0.0,
        event: FaultEvent::Straggler { server: 0, egress_factor: 0.25 },
    }]);
    assert!(healthy.jobs[0].completed && slowed.jobs[0].completed);
    assert!(
        slowed.jobs[0].finish_s > healthy.jobs[0].finish_s,
        "a straggling server must slow the ring: {} vs {}",
        slowed.jobs[0].finish_s,
        healthy.jobs[0].finish_s
    );
    assert_modes_agree_under_faults(
        &jobs,
        fabric,
        4,
        vec![FaultInjection {
            time_s: 0.0,
            event: FaultEvent::Straggler { server: 0, egress_factor: 0.25 },
        }],
    );
}

#[test]
fn window_cap_truncation_is_surfaced() {
    // Three sequential jobs but only one loop iteration allowed: the run
    // is cut off with work pending, and the result must say so instead of
    // silently reporting the survivors as the whole story.
    let jobs: Vec<DynamicJobSpec> =
        (0..3).map(|i| ring_job(format!("j{i}"), 4, 1.0e9, 0.0, i as f64 * 0.1, 2)).collect();
    let params = |cap: Option<usize>| DynamicClusterParams {
        total_servers: 4,
        fabric: DynamicFabric::Shared(topologies::ideal_switch(4, 100.0e9)),
        provisioning_time_s: 0.0,
        per_hop_latency_s: 1.0e-6,
        migration: MigrationMode::Atomic,
        shared_engine: SharedEngineMode::Persistent,
        window_cap: cap,
        faults: vec![],
    };
    let cut = simulate_dynamic_cluster(&jobs, &params(Some(1)));
    assert!(cut.truncated, "guard exhaustion with pending jobs must be reported");
    assert!(cut.jobs.iter().any(|o| !o.completed));
    let full = simulate_dynamic_cluster(&jobs, &params(None));
    assert!(!full.truncated);
    assert!(full.jobs.iter().all(|o| o.completed));
    // A cap large enough to finish the trace is not truncation either.
    let roomy = simulate_dynamic_cluster(&jobs, &params(Some(64)));
    assert!(!roomy.truncated);
}

#[test]
fn persistent_engine_reports_window_reuse() {
    // Disjoint jobs on an ideal switch arriving one at a time: each
    // arrival/departure window touches one job-level component, so the
    // stats must show cache reuse and a max component of one job's flows.
    let jobs: Vec<DynamicJobSpec> =
        (0..4).map(|i| ring_job(format!("j{i}"), 4, 1.0e9, 0.0, i as f64 * 0.01, 3)).collect();
    let r = simulate_dynamic_cluster(
        &jobs,
        &DynamicClusterParams {
            total_servers: 16,
            fabric: DynamicFabric::Shared(topologies::ideal_switch(16, 100.0e9)),
            provisioning_time_s: 0.0,
            per_hop_latency_s: 1.0e-6,
            migration: MigrationMode::Atomic,
            shared_engine: SharedEngineMode::Persistent,
            window_cap: None,
            faults: vec![],
        },
    );
    assert!(r.jobs.iter().all(|o| o.completed));
    assert!(r.engine.windows > 0);
    assert!(r.engine.jobs_reused > 0, "disjoint residents must reuse cached rates: {:?}", r.engine);
    assert!(
        r.engine.windows_incremental > 0,
        "windows must be served incrementally: {:?}",
        r.engine
    );
    // Ring flows through a star hub are pairwise link-disjoint (flow k
    // owns up(k) and down(k+1)), so no waterfill ever couples flows.
    assert_eq!(
        r.engine.max_component, 1,
        "star-routed ring flows are link-disjoint: {:?}",
        r.engine
    );
}
