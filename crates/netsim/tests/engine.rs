//! Equivalence of the incremental event-driven engine and the from-scratch
//! reference loop: random flow sets on random graphs must produce the same
//! completion times, byte accounting, and makespan.

use proptest::prelude::*;
use topoopt_graph::Graph;
use topoopt_netsim::fluid::{simulate_flows, simulate_flows_reference, FlowSpec};
use topoopt_netsim::FluidEngine;

/// Mixed absolute/relative closeness at the 1e-9 level (the two simulators
/// settle float progress in different orders).
fn close(a: f64, b: f64) -> bool {
    if a.is_infinite() || b.is_infinite() {
        return a == b;
    }
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

fn assert_equivalent(g: &Graph, flows: &[FlowSpec], per_hop_latency_s: f64) {
    let engine = simulate_flows(g, flows, per_hop_latency_s);
    let reference = simulate_flows_reference(g, flows, per_hop_latency_s);
    for (i, (a, b)) in engine.completion_s.iter().zip(&reference.completion_s).enumerate() {
        assert!(
            close(*a, *b),
            "flow {i} completion diverged: engine {a} vs reference {b} (flow {:?})",
            flows[i]
        );
    }
    assert!(
        close(engine.makespan_s, reference.makespan_s),
        "makespan diverged: {} vs {}",
        engine.makespan_s,
        reference.makespan_s
    );
    assert!(
        close(engine.carried_bytes, reference.carried_bytes),
        "carried bytes diverged: {} vs {}",
        engine.carried_bytes,
        reference.carried_bytes
    );
    assert!(close(engine.demand_bytes, reference.demand_bytes));
    for (link, bytes) in &reference.link_bytes {
        let eng = engine.link_bytes.get(link).copied().unwrap_or(0.0);
        assert!(close(eng, *bytes), "link {link:?} bytes diverged: {eng} vs {bytes}");
    }
}

proptest! {
    // Random ring-walk flows (some wrapping all the way around, revisiting
    // links) with random sizes, arrival times, and extra chords.
    #[test]
    fn engine_matches_reference_on_random_ring_walks(
        n in 3usize..10,
        extra_edges in proptest::collection::vec(
            (0usize..64, 0usize..64, 1.0f64..200.0), 0usize..12),
        flows in proptest::collection::vec(
            (0usize..64, 1usize..7, 1.0f64..2000.0, 0.0f64..3.0, 0.2f64..1.3), 1usize..14),
    ) {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n, 80.0);
        }
        for (s, d, cap) in extra_edges {
            let (s, d) = (s % n, d % n);
            if s != d {
                g.add_edge(s, d, cap);
            }
        }
        let specs: Vec<FlowSpec> = flows
            .into_iter()
            .map(|(start, len, bytes, start_s, relay_factor)| {
                let path: Vec<usize> = (0..=len).map(|k| (start + k) % n).collect();
                let mut f = FlowSpec::new(path, bytes).with_relay_factor(relay_factor);
                f.start_s = start_s;
                f
            })
            .collect();
        assert_equivalent(&g, &specs, 1.0e-3);
    }

    // Arbitrary node-sequence paths: many are unroutable (zero-capacity
    // virtual hops) and must be declared infinite by both simulators.
    #[test]
    fn engine_matches_reference_on_arbitrary_paths(
        n in 3usize..9,
        flows in proptest::collection::vec(
            (proptest::collection::vec(0usize..64, 2usize..6), 0.5f64..500.0, 0.0f64..2.0),
            1usize..10),
    ) {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n, 40.0);
            g.add_edge((i + 1) % n, i, 40.0);
        }
        let specs: Vec<FlowSpec> = flows
            .into_iter()
            .map(|(raw, bytes, start_s)| {
                let mut path: Vec<usize> = raw.into_iter().map(|v| v % n).collect();
                path.dedup();
                if path.len() < 2 {
                    path = vec![0, 1];
                }
                let mut f = FlowSpec::new(path, bytes);
                f.start_s = start_s;
                f
            })
            .collect();
        assert_equivalent(&g, &specs, 0.0);
    }
}

proptest! {
    // Random *sharded* workloads: several disjoint rings, each with its own
    // random flow mix (neighbour flows, chords, staggered arrivals). A fresh
    // engine splits this into one event-loop shard per ring, so this drives
    // the sharded `run()` path against the from-scratch oracle.
    #[test]
    fn flat_engine_matches_reference_on_random_sharded_workloads(
        rings in 2usize..6,
        size in 3usize..7,
        flows in proptest::collection::vec(
            (0usize..64, 0usize..64, 1usize..4, 1.0f64..900.0, 0.0f64..2.0), 4usize..28),
    ) {
        let mut g = Graph::new(rings * size);
        for r in 0..rings {
            let base = r * size;
            for i in 0..size {
                g.add_edge(base + i, base + (i + 1) % size, 60.0);
            }
        }
        let specs: Vec<FlowSpec> = flows
            .into_iter()
            .map(|(ring, start, len, bytes, start_s)| {
                let base = (ring % rings) * size;
                let path: Vec<usize> =
                    (0..=len.min(size - 1)).map(|k| base + (start + k) % size).collect();
                let mut f = FlowSpec::new(path, bytes);
                f.start_s = start_s;
                f
            })
            .collect();
        assert_equivalent(&g, &specs, 1.0e-4);
    }

    // Random *fully-coupled* workloads: every flow crosses one shared hub
    // link, so the whole flow set is a single connected component, the
    // engine cannot shard, and every event re-rates everything — the
    // worst case for incremental recomputation must still match the oracle.
    #[test]
    fn flat_engine_matches_reference_on_fully_coupled_workloads(
        n in 3usize..8,
        flows in proptest::collection::vec(
            (0usize..64, 1.0f64..700.0, 0.0f64..2.0, 0.3f64..1.2), 2usize..16),
    ) {
        // Star: spokes feed hub 0, plus one shared uplink 0 -> 1 that every
        // flow traverses.
        let mut g = Graph::new(n + 1);
        g.add_edge(0, 1, 90.0);
        for s in 2..=n {
            g.add_edge(s, 0, 45.0);
        }
        let specs: Vec<FlowSpec> = flows
            .into_iter()
            .map(|(spoke, bytes, start_s, relay)| {
                let s = 2 + spoke % (n - 1);
                let mut f = FlowSpec::new(vec![s, 0, 1], bytes).with_relay_factor(relay);
                f.start_s = start_s;
                f
            })
            .collect();
        assert_equivalent(&g, &specs, 1.0e-4);
    }
}

#[test]
fn sharded_event_loops_are_deterministic_across_thread_counts() {
    // The sharded `run()` path: a fresh engine over disjoint rings (with
    // staggered arrivals inside each ring, so every shard runs a real
    // multi-event loop) must be byte-identical between a serial run
    // (RAYON_NUM_THREADS=1) and the default parallel one, and bit-equal to
    // the monolithic single-heap loop.
    let rings = 12usize;
    let size = 6usize;
    let mut g = Graph::new(rings * size);
    let mut flows = Vec::new();
    for r in 0..rings {
        let base = r * size;
        for i in 0..size {
            g.add_edge(base + i, base + (i + 1) % size, 100.0);
            let mut f = FlowSpec::new(
                vec![base + i, base + (i + 1) % size, base + (i + 2) % size],
                30.0 * (1.0 + ((r * 13 + i) % 9) as f64),
            );
            f.start_s = 0.25 * ((r + i) % 3) as f64;
            flows.push(f);
        }
    }
    // See the env-mutation note in
    // parallel_component_waterfilling_is_deterministic_across_thread_counts.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = simulate_flows(&g, &flows, 1.0e-4);
    std::env::remove_var("RAYON_NUM_THREADS");
    let parallel = simulate_flows(&g, &flows, 1.0e-4);
    assert_eq!(serial.completion_s, parallel.completion_s);
    assert_eq!(serial.makespan_s, parallel.makespan_s);
    assert_eq!(serial.carried_bytes, parallel.carried_bytes);
    assert_eq!(serial.link_bytes, parallel.link_bytes);

    // Monolithic oracle: same engine, single heap, bit-equal output.
    let mut mono = FluidEngine::new(&g, 1.0e-4);
    let ids: Vec<_> = flows.iter().map(|f| mono.add_flow(f.clone())).collect();
    mono.run_monolithic();
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(
            serial.completion_s[i].to_bits(),
            mono.completion_s(*id).to_bits(),
            "flow {i} diverged between sharded and monolithic loops"
        );
    }
    assert_eq!(serial.carried_bytes.to_bits(), mono.carried_bytes().to_bits());

    assert_equivalent(&g, &flows, 1.0e-4);
}

#[test]
fn mid_simulation_arrival_matches_reference() {
    let mut g = Graph::new(2);
    g.add_edge(0, 1, 100.0);
    let flows: Vec<FlowSpec> = [0.0, 1.5, 1.5, 4.0]
        .iter()
        .map(|&t| {
            let mut f = FlowSpec::new(vec![0, 1], 100.0);
            f.start_s = t;
            f
        })
        .collect();
    assert_equivalent(&g, &flows, 0.0);
}

#[test]
fn zero_byte_zero_hop_and_unroutable_mix_matches_reference() {
    let mut g = Graph::new(3);
    g.add_edge(0, 1, 50.0);
    let flows = vec![
        FlowSpec::new(vec![0, 1], 0.0),   // zero bytes
        FlowSpec::new(vec![2], 100.0),    // zero hops
        FlowSpec::new(vec![1, 2], 10.0),  // unroutable
        FlowSpec::new(vec![0, 1], 100.0), // normal
    ];
    assert_equivalent(&g, &flows, 0.5);
}

#[test]
fn reconfig_pauses_and_resumes_consistently() {
    // 100 bytes over 100 bps; capacity drops to zero during [2, 5] (an
    // OCS rewiring blackout), then restores: 200 bits sent before, 600
    // after at 100 bps -> completion at 5 + 6 = 11 s.
    let mut fast = Graph::new(2);
    fast.add_edge(0, 1, 100.0);
    let dark = Graph::new(2);
    let mut engine = FluidEngine::new(&fast, 0.0);
    let id = engine.add_flow(FlowSpec::new(vec![0, 1], 100.0));
    engine.schedule_reconfig(2.0, &dark);
    engine.schedule_reconfig(5.0, &fast);
    engine.run();
    assert!((engine.completion_s(id) - 11.0).abs() < 1e-9);
    assert_eq!(engine.stats().reconfigurations, 2);
}

#[test]
fn parallel_component_waterfilling_is_deterministic_across_thread_counts() {
    // A t = 0 arrival wave across 24 disjoint rings (each with all
    // intra-ring neighbour+chord flows) exceeds the engine's parallel
    // fan-out threshold; a serial run (RAYON_NUM_THREADS=1) and a parallel
    // run must produce byte-identical results, since per-component rates
    // are collected in component order and applied sequentially.
    let rings = 24usize;
    let size = 6usize;
    let mut g = Graph::new(rings * size);
    let mut flows = Vec::new();
    for r in 0..rings {
        let base = r * size;
        for i in 0..size {
            g.add_edge(base + i, base + (i + 1) % size, 100.0);
            flows.push(FlowSpec::new(
                vec![base + i, base + (i + 1) % size],
                40.0 * (1.0 + ((r * 7 + i) % 11) as f64),
            ));
            // Two-hop chord sharing both links, to make components
            // non-trivial.
            flows.push(FlowSpec::new(
                vec![base + i, base + (i + 1) % size, base + (i + 2) % size],
                25.0 * (1.0 + ((r * 5 + i) % 7) as f64),
            ));
        }
    }
    // Env mutation is safe here: reads go through std::env (internally
    // serialized; no C-level getenv in this process), and a concurrently
    // running test that transiently sees the capped value only loses
    // parallelism, never determinism — the property this test asserts.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = simulate_flows(&g, &flows, 1.0e-4);
    std::env::remove_var("RAYON_NUM_THREADS");
    let parallel = simulate_flows(&g, &flows, 1.0e-4);
    assert_eq!(serial.completion_s, parallel.completion_s);
    assert_eq!(serial.makespan_s, parallel.makespan_s);
    assert_eq!(serial.carried_bytes, parallel.carried_bytes);
    assert_eq!(serial.link_bytes, parallel.link_bytes);
    // And both agree with the from-scratch oracle.
    assert_equivalent(&g, &flows, 1.0e-4);
}

#[test]
fn incremental_engine_does_less_work_on_disjoint_shards() {
    // 8 disjoint rings of 8 nodes, one flow per edge with distinct sizes:
    // 64 flows, but no waterfill may ever span more than one ring.
    let rings = 8usize;
    let size = 8usize;
    let mut g = Graph::new(rings * size);
    let mut engine_flows = Vec::new();
    for r in 0..rings {
        let base = r * size;
        for i in 0..size {
            g.add_edge(base + i, base + (i + 1) % size, 100.0);
            engine_flows.push(FlowSpec::new(
                vec![base + i, base + (i + 1) % size],
                50.0 * (1.0 + (r * size + i) as f64),
            ));
        }
    }
    let mut engine = FluidEngine::new(&g, 0.0);
    for f in &engine_flows {
        engine.add_flow(f.clone());
    }
    engine.run();
    let stats = engine.stats();
    assert!(stats.max_component <= size, "waterfill spanned shards: {stats:?}");
    // The from-scratch loop would re-rate ~64 flows per event; the engine's
    // average component is bounded by one ring.
    assert!(
        stats.flows_rerated <= stats.waterfills * size,
        "incremental recomputation exceeded one shard per event: {stats:?}"
    );
    assert_equivalent(&g, &engine_flows, 0.0);
}

/// Disjoint rings with staggered early flows plus a wave of late arrivals:
/// the fixture for the mid-run sharding tests below.
fn mid_run_workload() -> (Graph, Vec<FlowSpec>, Vec<FlowSpec>) {
    let rings = 10usize;
    let size = 5usize;
    let mut g = Graph::new(rings * size);
    let mut early = Vec::new();
    let mut late = Vec::new();
    for r in 0..rings {
        let base = r * size;
        for i in 0..size {
            g.add_edge(base + i, base + (i + 1) % size, 100.0);
            let mut f = FlowSpec::new(
                vec![base + i, base + (i + 1) % size, base + (i + 2) % size],
                35.0 * (1.0 + ((r * 11 + i) % 8) as f64),
            );
            f.start_s = 0.2 * ((r + 2 * i) % 4) as f64;
            early.push(f);
            let mut f = FlowSpec::new(
                vec![base + i, base + (i + 1) % size],
                20.0 * (1.0 + ((r * 3 + i) % 5) as f64),
            );
            f.start_s = 2.0 + 0.1 * ((r + i) % 3) as f64;
            late.push(f);
        }
    }
    (g, early, late)
}

#[test]
fn mid_run_sharding_matches_monolithic_oracle() {
    // Partial monolithic progress, then new arrivals, then `run()`: the
    // engine now shards *mid-run* — live flows with in-flight progress and
    // pending events are transplanted into per-component event loops — and
    // the merged outcome must be bit-identical to never sharding at all.
    let (g, early, late) = mid_run_workload();
    let run_split = |shard: bool| {
        let mut e = FluidEngine::new(&g, 1.0e-4);
        let mut ids: Vec<_> = early.iter().map(|f| e.add_flow(f.clone())).collect();
        e.run_until(1.0); // in-flight progress and pending completions
        ids.extend(late.iter().map(|f| e.add_flow(f.clone())));
        if shard {
            e.run();
        } else {
            e.run_monolithic();
        }
        let done: Vec<u64> = ids.iter().map(|&id| e.completion_s(id).to_bits()).collect();
        (done, e.carried_bytes().to_bits(), e.stats().events)
    };
    let (sharded, sharded_bytes, sharded_events) = run_split(true);
    let (mono, mono_bytes, mono_events) = run_split(false);
    assert_eq!(sharded, mono, "completions diverged after mid-run sharding");
    assert_eq!(sharded_bytes, mono_bytes);
    assert_eq!(sharded_events, mono_events, "shards must process the same event set");
}

#[test]
fn mid_run_sharding_is_deterministic_across_thread_counts() {
    // The transplanted shards run on rayon threads; a serial run
    // (RAYON_NUM_THREADS=1) and the default parallel one must be
    // byte-identical. See the env-mutation note in
    // parallel_component_waterfilling_is_deterministic_across_thread_counts.
    let (g, early, late) = mid_run_workload();
    let run_once = || {
        let mut e = FluidEngine::new(&g, 1.0e-4);
        let mut ids: Vec<_> = early.iter().map(|f| e.add_flow(f.clone())).collect();
        e.run_until(1.0);
        ids.extend(late.iter().map(|f| e.add_flow(f.clone())));
        e.run();
        let done: Vec<u64> = ids.iter().map(|&id| e.completion_s(id).to_bits()).collect();
        (done, e.carried_bytes().to_bits())
    };
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run_once();
    std::env::remove_var("RAYON_NUM_THREADS");
    let parallel = run_once();
    assert_eq!(serial, parallel, "mid-run sharding must not depend on thread count");
}
