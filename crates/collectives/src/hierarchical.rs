//! Hierarchical AllReduce.
//!
//! §5.1: "We use ring-AllReduce and distributed parameter server as default
//! AllReduce communication collectives between servers and within servers,
//! respectively." Each simulated server hosts several GPUs; gradients are
//! first reduced inside the server (no network traffic in our server-level
//! model), then a ring-AllReduce runs across servers, then results are
//! broadcast back inside the server. This module models the inter-server
//! stage and exposes the intra-server stage as a (local) latency term.

use crate::ring::{multi_ring_traffic, RingPermutation};
use topoopt_graph::TrafficMatrix;

/// Traffic of a hierarchical AllReduce: `gpus_per_server` local reduction is
/// free at the network level; the inter-server stage load-balances the model
/// bytes over the supplied ring permutations.
pub fn hierarchical_allreduce_traffic(
    n_servers: usize,
    model_bytes: f64,
    perms: &[RingPermutation],
) -> TrafficMatrix {
    multi_ring_traffic(n_servers, model_bytes, perms)
}

/// Intra-server reduction time: a sharded parameter server over
/// `gpus_per_server` GPUs connected by `intra_bw_bps` (e.g. NVLink).
/// Returns seconds.
pub fn intra_server_reduce_time(
    model_bytes: f64,
    gpus_per_server: usize,
    intra_bw_bps: f64,
) -> f64 {
    if gpus_per_server <= 1 {
        return 0.0;
    }
    let k = gpus_per_server as f64;
    // Each GPU sends 2*M*(k-1)/k bytes over the intra-server fabric.
    2.0 * model_bytes * (k - 1.0) / k * 8.0 / intra_bw_bps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchical_traffic_equals_multi_ring_over_servers() {
        let perms = vec![RingPermutation::new((0..16).collect(), 1)];
        let tm = hierarchical_allreduce_traffic(16, 4.0e9, &perms);
        assert_eq!(tm.nonzero_pairs(), 16);
        assert!(tm.total() > 0.0);
    }

    #[test]
    fn intra_server_time_zero_for_single_gpu() {
        assert_eq!(intra_server_reduce_time(1.0e9, 1, 600.0e9), 0.0);
    }

    #[test]
    fn intra_server_time_scales_with_model_size() {
        let t1 = intra_server_reduce_time(1.0e9, 4, 600.0e9);
        let t2 = intra_server_reduce_time(2.0e9, 4, 600.0e9);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        assert!(t1 > 0.0);
    }
}
