//! Collective communication algorithms and their traffic/timing models.
//!
//! The paper's key observation (§4.3) is that AllReduce traffic is *mutable*:
//! the set of nodes participating in an AllReduce can be relabelled by any
//! permutation without changing correctness or completion time, which lets
//! TopoOpt overlap several ring permutations to serve AllReduce traffic while
//! also shortening paths for model-parallel transfers.
//!
//! This crate models the collectives the paper uses:
//!
//! * [`ring`] — ring-AllReduce (the default inter-server collective), +p
//!   regular ring permutations (Figure 7), and multi-ring load balancing.
//! * [`tree`] — tree-AllReduce and the double binary tree of Appendix A.
//! * [`hierarchical`] — hierarchical ring-AllReduce (intra-server parameter
//!   server + inter-server rings), matching §5.1's setup.
//! * [`parameter_server`] — the distributed parameter-server collective used
//!   within servers.
//! * [`timing`] — α-β completion-time models for each collective.

pub mod hierarchical;
pub mod parameter_server;
pub mod ring;
pub mod timing;
pub mod tree;

pub use ring::{multi_ring_traffic, ring_allreduce_traffic, ring_neighbors, RingPermutation};
pub use timing::{allreduce_time, AllReduceAlgo, TimingParams};
pub use tree::{double_binary_tree, tree_allreduce_traffic, DoubleBinaryTree};
