//! α-β completion-time models for the collectives.
//!
//! These coarse models are what the strategy-search cost model (FlexNet)
//! uses when it evaluates thousands of candidate parallelization strategies;
//! the flow-level simulator later refines the winning strategy's iteration
//! time with contention and multi-hop forwarding effects.

use serde::{Deserialize, Serialize};

/// Which AllReduce algorithm to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllReduceAlgo {
    /// Ring-AllReduce (default between servers).
    Ring,
    /// Double binary tree.
    DoubleBinaryTree,
    /// Sharded parameter server (default within servers).
    ShardedParameterServer,
    /// Centralised parameter server (incast).
    CentralParameterServer,
}

/// Latency/bandwidth parameters of the α-β model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Per-message latency (seconds), covering propagation plus NIC/stack
    /// overhead.
    pub alpha_s: f64,
    /// Per-link bandwidth in bits per second available to the collective.
    pub link_bps: f64,
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams { alpha_s: 10.0e-6, link_bps: 100.0e9 }
    }
}

/// Completion time (seconds) of an AllReduce of `bytes` over `k` nodes.
pub fn allreduce_time(algo: AllReduceAlgo, bytes: f64, k: usize, p: &TimingParams) -> f64 {
    if k <= 1 || bytes <= 0.0 {
        return 0.0;
    }
    let kf = k as f64;
    let bits = bytes * 8.0;
    match algo {
        AllReduceAlgo::Ring => {
            // 2(k-1) steps, each moving bits/k per link.
            2.0 * (kf - 1.0) * (p.alpha_s + bits / kf / p.link_bps)
        }
        AllReduceAlgo::DoubleBinaryTree => {
            // Bandwidth optimal: ~2*bits/link_bps pipelined, log(k) latency
            // terms for reduce + broadcast on both trees.
            2.0 * (kf.log2().ceil()) * p.alpha_s + 2.0 * bits / p.link_bps
        }
        AllReduceAlgo::ShardedParameterServer => {
            // Each node sends/receives 2*bits*(k-1)/k spread over its single
            // uplink.
            2.0 * p.alpha_s + 2.0 * bits * (kf - 1.0) / kf / p.link_bps
        }
        AllReduceAlgo::CentralParameterServer => {
            // The server's link carries k-1 full copies in each direction.
            2.0 * p.alpha_s + 2.0 * bits * (kf - 1.0) / p.link_bps
        }
    }
}

/// Completion time of an AllReduce whose bytes are load-balanced across
/// `num_rings` parallel ring permutations, each with its own dedicated link
/// (the TotientPerms multi-ring of §4.3).
pub fn multi_ring_time(bytes: f64, k: usize, num_rings: usize, p: &TimingParams) -> f64 {
    if num_rings == 0 {
        return allreduce_time(AllReduceAlgo::Ring, bytes, k, p);
    }
    allreduce_time(AllReduceAlgo::Ring, bytes / num_rings as f64, k, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_time_grows_sublinearly_with_nodes() {
        let p = TimingParams::default();
        let t16 = allreduce_time(AllReduceAlgo::Ring, 1.0e9, 16, &p);
        let t128 = allreduce_time(AllReduceAlgo::Ring, 1.0e9, 128, &p);
        // Bandwidth term converges to 2*M/B; only the latency term grows.
        assert!(t128 < 1.3 * t16);
    }

    #[test]
    fn central_ps_is_much_slower_than_ring_for_large_k() {
        let p = TimingParams::default();
        let ring = allreduce_time(AllReduceAlgo::Ring, 1.0e9, 64, &p);
        let ps = allreduce_time(AllReduceAlgo::CentralParameterServer, 1.0e9, 64, &p);
        assert!(ps > 10.0 * ring);
    }

    #[test]
    fn dbt_and_ring_have_comparable_bandwidth_terms() {
        let p = TimingParams { alpha_s: 0.0, link_bps: 100.0e9 };
        let ring = allreduce_time(AllReduceAlgo::Ring, 1.0e9, 64, &p);
        let dbt = allreduce_time(AllReduceAlgo::DoubleBinaryTree, 1.0e9, 64, &p);
        assert!((ring - dbt).abs() / ring < 0.05);
    }

    #[test]
    fn zero_participants_or_bytes_is_free() {
        let p = TimingParams::default();
        assert_eq!(allreduce_time(AllReduceAlgo::Ring, 0.0, 16, &p), 0.0);
        assert_eq!(allreduce_time(AllReduceAlgo::Ring, 1.0e9, 1, &p), 0.0);
    }

    #[test]
    fn multi_ring_speeds_up_allreduce_linearly_in_rings() {
        let p = TimingParams { alpha_s: 0.0, link_bps: 25.0e9 };
        let one = multi_ring_time(1.0e9, 16, 1, &p);
        let four = multi_ring_time(1.0e9, 16, 4, &p);
        assert!((one / four - 4.0).abs() < 1e-9);
    }
}
