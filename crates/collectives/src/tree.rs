//! Tree-AllReduce and the double binary tree (DBT) of Appendix A.
//!
//! In the DBT algorithm two complementary balanced binary trees are built so
//! that every node is a leaf in one tree and an interior node in the other;
//! each tree carries half of the buffer, which makes the collective
//! bandwidth-optimal. Like rings, DBTs can be permuted (Figure 23) without
//! changing completion time — another instance of AllReduce mutability.

use serde::{Deserialize, Serialize};
use topoopt_graph::TrafficMatrix;

/// A pair of complementary binary trees over a node group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DoubleBinaryTree {
    /// Participating nodes (global ids) in group order.
    pub members: Vec<usize>,
    /// Parent of each member (by group index) in the first tree; the root
    /// has `None`.
    pub parent_a: Vec<Option<usize>>,
    /// Parent of each member in the second (label-flipped) tree.
    pub parent_b: Vec<Option<usize>>,
}

/// Build the double binary tree over `members` (Appendix A): tree A is a
/// balanced binary tree over the natural order; tree B shifts every label by
/// one so leaves and interior nodes swap roles.
pub fn double_binary_tree(members: &[usize]) -> DoubleBinaryTree {
    let k = members.len();
    let parent_a = balanced_tree_parents(k, 0);
    let parent_b = balanced_tree_parents(k, 1);
    DoubleBinaryTree { members: members.to_vec(), parent_a, parent_b }
}

/// Parents of a balanced binary tree over `k` in-order labelled nodes,
/// shifted by `shift` (mod k). With in-order labelling, even indices are
/// leaves and odd indices are interior — the property the DBT construction
/// relies on.
fn balanced_tree_parents(k: usize, shift: usize) -> Vec<Option<usize>> {
    let mut parents = vec![None; k];
    if k == 0 {
        return parents;
    }
    // Build an in-order balanced BST over 0..k and record parents.
    fn build(lo: usize, hi: usize, parent: Option<usize>, parents: &mut Vec<Option<usize>>) {
        if lo >= hi {
            return;
        }
        let mid = (lo + hi) / 2;
        parents[mid] = parent;
        build(lo, mid, Some(mid), parents);
        build(mid + 1, hi, Some(mid), parents);
    }
    let mut base = vec![None; k];
    build(0, k, None, &mut base);
    // Apply the label shift: node (i + shift) mod k takes the role of i.
    for (i, role_parent) in base.iter().enumerate() {
        let node = (i + shift) % k;
        parents[node] = role_parent.map(|p| (p + shift) % k);
    }
    parents
}

impl DoubleBinaryTree {
    /// Group size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Edges `(child, parent)` of tree A in global node ids.
    pub fn edges_a(&self) -> Vec<(usize, usize)> {
        self.tree_edges(&self.parent_a)
    }

    /// Edges `(child, parent)` of tree B in global node ids.
    pub fn edges_b(&self) -> Vec<(usize, usize)> {
        self.tree_edges(&self.parent_b)
    }

    fn tree_edges(&self, parents: &[Option<usize>]) -> Vec<(usize, usize)> {
        parents
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (self.members[i], self.members[p])))
            .collect()
    }

    /// Verify both trees are connected trees (k-1 edges each, single root).
    pub fn validate(&self) -> Result<(), String> {
        for (name, parents) in [("A", &self.parent_a), ("B", &self.parent_b)] {
            let roots = parents.iter().filter(|p| p.is_none()).count();
            if !self.is_empty() && roots != 1 {
                return Err(format!("tree {name} has {roots} roots"));
            }
            // Walking up from every node must terminate at the root.
            for start in 0..self.len() {
                let mut cur = start;
                let mut steps = 0;
                while let Some(p) = self.select(parents, cur) {
                    cur = p;
                    steps += 1;
                    if steps > self.len() {
                        return Err(format!("tree {name} has a cycle through node {start}"));
                    }
                }
            }
        }
        Ok(())
    }

    fn select(&self, parents: &[Option<usize>], i: usize) -> Option<usize> {
        parents[i]
    }
}

/// Traffic matrix of a double-binary-tree AllReduce of `total_bytes` over
/// the group. Each tree carries half the buffer; a reduce flows up each tree
/// (child → parent) and a broadcast flows back down (parent → child), so
/// every tree edge carries `total_bytes / 2` in each direction.
pub fn tree_allreduce_traffic(n: usize, total_bytes: f64, dbt: &DoubleBinaryTree) -> TrafficMatrix {
    let mut tm = TrafficMatrix::new(n);
    let half = total_bytes / 2.0;
    for (child, parent) in dbt.edges_a().into_iter().chain(dbt.edges_b()) {
        tm.add(child, parent, half);
        tm.add(parent, child, half);
    }
    tm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbt_over_16_nodes_is_two_valid_trees() {
        let members: Vec<usize> = (0..16).collect();
        let dbt = double_binary_tree(&members);
        dbt.validate().unwrap();
        assert_eq!(dbt.edges_a().len(), 15);
        assert_eq!(dbt.edges_b().len(), 15);
    }

    #[test]
    fn trees_are_complementary_shifted() {
        let members: Vec<usize> = (0..8).collect();
        let dbt = double_binary_tree(&members);
        // The two trees must not be identical.
        assert_ne!(dbt.parent_a, dbt.parent_b);
    }

    #[test]
    fn traffic_volume_is_two_m_per_tree_edge_pair() {
        let members: Vec<usize> = (0..8).collect();
        let dbt = double_binary_tree(&members);
        let tm = tree_allreduce_traffic(8, 1.0e9, &dbt);
        // 2 trees * 7 edges * 2 directions * M/2 = 14 * M.
        assert!((tm.total() - 14.0e9).abs() < 1.0);
    }

    #[test]
    fn subgroup_dbt_touches_only_members() {
        let members = vec![1, 4, 6, 9, 12];
        let dbt = double_binary_tree(&members);
        dbt.validate().unwrap();
        let tm = tree_allreduce_traffic(16, 1.0e6, &dbt);
        for (s, d, _) in tm.entries_desc() {
            assert!(members.contains(&s) && members.contains(&d));
        }
    }

    #[test]
    fn single_node_tree_has_no_traffic() {
        let dbt = double_binary_tree(&[3]);
        dbt.validate().unwrap();
        let tm = tree_allreduce_traffic(4, 5.0e6, &dbt);
        assert_eq!(tm.total(), 0.0);
    }

    #[test]
    fn empty_tree_is_valid() {
        let dbt = double_binary_tree(&[]);
        assert!(dbt.is_empty());
        dbt.validate().unwrap();
    }
}
