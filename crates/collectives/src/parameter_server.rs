//! Distributed parameter-server collective.
//!
//! §5.1 of the paper uses a distributed parameter server for parameter
//! synchronisation *within* servers and ring-AllReduce *between* servers.
//! In the distributed (sharded) variant every participant owns `1/k` of the
//! parameters; each worker pushes its gradient shard to every owner and
//! pulls the updated shard back, so each node sends and receives
//! `2·M·(k-1)/k` bytes — the same volume as a ring but spread across all
//! peers instead of one successor.

use topoopt_graph::TrafficMatrix;

/// Traffic of a distributed (sharded) parameter-server synchronisation of a
/// `total_bytes` model over `members`.
pub fn sharded_parameter_server_traffic(
    n: usize,
    total_bytes: f64,
    members: &[usize],
) -> TrafficMatrix {
    let mut tm = TrafficMatrix::new(n);
    let k = members.len();
    if k <= 1 {
        return tm;
    }
    // Each of the k owners holds M/k parameters; every other worker both
    // pushes a gradient shard to it and pulls the updated shard from it.
    let shard = total_bytes / k as f64;
    for &owner in members {
        for &worker in members {
            if worker != owner {
                tm.add(worker, owner, shard); // push gradients
                tm.add(owner, worker, shard); // pull updated weights
            }
        }
    }
    tm
}

/// Traffic of a *centralised* parameter server: one node owns all the
/// parameters and every worker pushes/pulls the full model — the classic
/// incast bottleneck the paper contrasts against.
pub fn central_parameter_server_traffic(
    n: usize,
    total_bytes: f64,
    server: usize,
    members: &[usize],
) -> TrafficMatrix {
    let mut tm = TrafficMatrix::new(n);
    for &w in members {
        if w != server {
            tm.add(w, server, total_bytes);
            tm.add(server, w, total_bytes);
        }
    }
    tm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_ps_volume_matches_ring_volume() {
        let members: Vec<usize> = (0..8).collect();
        let tm = sharded_parameter_server_traffic(8, 8.0e9, &members);
        // Per node sent bytes = 2 * M * (k-1)/k = 14 GB; total = 8x that.
        let expected_total = 8.0 * 2.0 * 8.0e9 * 7.0 / 8.0;
        assert!((tm.total() - expected_total).abs() / expected_total < 1e-9);
        // Unlike a ring, every ordered pair communicates.
        assert_eq!(tm.nonzero_pairs(), 8 * 7);
    }

    #[test]
    fn central_ps_concentrates_on_the_server() {
        let members: Vec<usize> = (0..4).collect();
        let tm = central_parameter_server_traffic(4, 1.0e9, 0, &members);
        assert_eq!(tm.nonzero_pairs(), 6);
        assert_eq!(tm.get(1, 0), 1.0e9);
        assert_eq!(tm.get(0, 3), 1.0e9);
        assert_eq!(tm.get(1, 2), 0.0);
    }

    #[test]
    fn single_member_has_no_traffic() {
        let tm = sharded_parameter_server_traffic(4, 1.0e9, &[2]);
        assert_eq!(tm.total(), 0.0);
    }
}
