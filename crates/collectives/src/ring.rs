//! Ring-AllReduce traffic models and +p regular ring permutations.
//!
//! A ring-AllReduce over `n` nodes of an `M`-byte buffer proceeds in
//! `2(n-1)` steps; each node sends `M/n` bytes to its ring successor per
//! step, for a total of `2M(n-1)/n` bytes sent per node — all of it to the
//! single successor. The +p permutations of Figure 7 change *which* node is
//! the successor without changing the volume or the completion time, which
//! is exactly the mutability property TopoOpt exploits.

use serde::{Deserialize, Serialize};
use topoopt_graph::TrafficMatrix;

/// A regular ring permutation "+p" over a group of nodes: member `i` sends
/// to member `(i + p) mod k` of the group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingPermutation {
    /// The participating nodes (global server ids), in group order.
    pub members: Vec<usize>,
    /// The stride `p` (must be co-prime with `members.len()` to form a
    /// single ring).
    pub stride: usize,
}

impl RingPermutation {
    /// Create a +p permutation over `members`.
    pub fn new(members: Vec<usize>, stride: usize) -> Self {
        RingPermutation { members, stride }
    }

    /// Group size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the group is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// True if `stride` is co-prime with the group size, i.e. the permutation
    /// forms a single Hamiltonian ring over the group.
    pub fn is_single_ring(&self) -> bool {
        !self.is_empty() && gcd(self.stride % self.len().max(1), self.len()) == 1
    }

    /// The successor of global node `node` under this permutation, or `None`
    /// if the node is not a member.
    pub fn successor(&self, node: usize) -> Option<usize> {
        let k = self.len();
        let idx = self.members.iter().position(|&m| m == node)?;
        Some(self.members[(idx + self.stride) % k])
    }

    /// The ordered list of `(sender, receiver)` pairs this ring uses.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let k = self.len();
        (0..k).map(|i| (self.members[i], self.members[(i + self.stride) % k])).collect()
    }

    /// Walk the ring starting at member 0 and return the visit order.
    /// Only a full traversal if [`is_single_ring`](Self::is_single_ring).
    pub fn ring_order(&self) -> Vec<usize> {
        let k = self.len();
        let mut order = Vec::with_capacity(k);
        let mut idx = 0;
        for _ in 0..k {
            order.push(self.members[idx]);
            idx = (idx + self.stride) % k;
        }
        order
    }
}

/// Greatest common divisor.
pub fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Per-node bytes sent during a ring-AllReduce of a `total_bytes` buffer over
/// `k` participants: `2 * total_bytes * (k-1) / k`.
pub fn ring_bytes_per_node(total_bytes: f64, k: usize) -> f64 {
    if k <= 1 {
        0.0
    } else {
        2.0 * total_bytes * (k as f64 - 1.0) / k as f64
    }
}

/// Hops between consecutive ring neighbours for a ring-AllReduce that runs
/// over the +p permutation: `(sender, receiver)` for every member.
pub fn ring_neighbors(perm: &RingPermutation) -> Vec<(usize, usize)> {
    perm.edges()
}

/// Traffic matrix (over `n` global nodes) of one ring-AllReduce of
/// `total_bytes` over the permutation `perm`. Every member sends
/// `2·M·(k-1)/k` bytes to its ring successor.
pub fn ring_allreduce_traffic(n: usize, total_bytes: f64, perm: &RingPermutation) -> TrafficMatrix {
    let mut tm = TrafficMatrix::new(n);
    let k = perm.len();
    if k <= 1 {
        return tm;
    }
    let per_node = ring_bytes_per_node(total_bytes, k);
    for (src, dst) in perm.edges() {
        tm.add(src, dst, per_node);
    }
    tm
}

/// Traffic matrix of an AllReduce load-balanced over several ring
/// permutations (the TotientPerms technique, §4.3): the buffer is split
/// evenly across the permutations and each slice runs its own ring.
pub fn multi_ring_traffic(n: usize, total_bytes: f64, perms: &[RingPermutation]) -> TrafficMatrix {
    let mut tm = TrafficMatrix::new(n);
    if perms.is_empty() {
        return tm;
    }
    let share = total_bytes / perms.len() as f64;
    for p in perms {
        tm = tm.merged(&ring_allreduce_traffic(n, share, p));
    }
    tm
}

/// Relabel a permutation's members by another permutation of the group —
/// the graph-isomorphism view of mutability (Appendix A): the resulting
/// collective completes in the same time.
pub fn relabel(perm: &RingPermutation, relabeling: &[usize]) -> RingPermutation {
    assert_eq!(perm.len(), relabeling.len());
    let members = relabeling.iter().map(|&i| perm.members[i]).collect();
    RingPermutation { members, stride: perm.stride }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn identity_group(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn plus_one_ring_sends_to_next() {
        let p = RingPermutation::new(identity_group(8), 1);
        assert!(p.is_single_ring());
        assert_eq!(p.successor(3), Some(4));
        assert_eq!(p.successor(7), Some(0));
        assert_eq!(p.successor(100), None);
    }

    #[test]
    fn stride_coprime_check_matches_figure7() {
        // n = 16: +1, +3, +7 are all valid single rings (Figure 7); +4 is not.
        for s in [1, 3, 7] {
            assert!(RingPermutation::new(identity_group(16), s).is_single_ring());
        }
        assert!(!RingPermutation::new(identity_group(16), 4).is_single_ring());
    }

    #[test]
    fn ring_order_visits_every_member_once_for_coprime_stride() {
        let p = RingPermutation::new(identity_group(12), 5);
        let mut order = p.ring_order();
        assert_eq!(order.len(), 12);
        order.sort_unstable();
        order.dedup();
        assert_eq!(order.len(), 12);
    }

    #[test]
    fn ring_bytes_match_2m_n_minus_1_over_n() {
        let b = ring_bytes_per_node(22.0e9, 16);
        // The §2.1 example: a 22 GB model over 16 servers produces ~41 GB of
        // AllReduce bytes per server (the paper rounds to 44 GB per heatmap
        // row which also counts both send directions of the pipelined ring).
        assert!(b > 40.0e9 && b < 42.0e9);
        assert_eq!(ring_bytes_per_node(10.0, 1), 0.0);
    }

    #[test]
    fn traffic_matrix_only_on_ring_edges() {
        let p = RingPermutation::new(identity_group(16), 3);
        let tm = ring_allreduce_traffic(16, 1.6e9, &p);
        assert_eq!(tm.nonzero_pairs(), 16);
        assert!(tm.get(0, 3) > 0.0);
        assert_eq!(tm.get(0, 1), 0.0);
        // Every member sends the same volume.
        assert!((tm.get(0, 3) - tm.get(5, 8)).abs() < 1e-6);
    }

    #[test]
    fn subgroup_allreduce_only_touches_members() {
        let p = RingPermutation::new(vec![2, 5, 9, 11], 1);
        let tm = ring_allreduce_traffic(16, 4.0e9, &p);
        assert_eq!(tm.nonzero_pairs(), 4);
        assert!(tm.get(2, 5) > 0.0);
        assert!(tm.get(11, 2) > 0.0);
        assert_eq!(tm.get(0, 1), 0.0);
    }

    #[test]
    fn multi_ring_splits_volume_conservatively() {
        let perms: Vec<RingPermutation> =
            [1usize, 3, 7].iter().map(|&s| RingPermutation::new(identity_group(16), s)).collect();
        let single = ring_allreduce_traffic(16, 3.0e9, &perms[0]);
        let multi = multi_ring_traffic(16, 3.0e9, &perms);
        // Same total volume, spread over 3x as many pairs.
        assert!((multi.total() - single.total()).abs() < 1.0);
        assert_eq!(multi.nonzero_pairs(), 48);
        assert!(multi.max_entry() < single.max_entry());
    }

    #[test]
    fn relabel_preserves_volume_and_stride() {
        let p = RingPermutation::new(identity_group(8), 1);
        let relabeling: Vec<usize> = vec![3, 2, 1, 0, 7, 6, 5, 4];
        let q = relabel(&p, &relabeling);
        assert_eq!(q.stride, 1);
        let tp = ring_allreduce_traffic(8, 1.0e6, &p);
        let tq = ring_allreduce_traffic(8, 1.0e6, &q);
        assert!((tp.total() - tq.total()).abs() < 1e-6);
        assert_eq!(tp.nonzero_pairs(), tq.nonzero_pairs());
    }

    proptest! {
        #[test]
        fn total_ring_traffic_is_k_times_per_node(
            k in 2usize..64, bytes in 1.0e3f64..1.0e10
        ) {
            let p = RingPermutation::new((0..k).collect(), 1);
            let tm = ring_allreduce_traffic(k, bytes, &p);
            let expected = ring_bytes_per_node(bytes, k) * k as f64;
            prop_assert!((tm.total() - expected).abs() / expected < 1e-9);
        }

        #[test]
        fn coprime_strides_always_single_ring(k in 2usize..128) {
            for s in 1..k {
                let p = RingPermutation::new((0..k).collect(), s);
                prop_assert_eq!(p.is_single_ring(), gcd(s, k) == 1);
                if gcd(s, k) == 1 {
                    let mut order = p.ring_order();
                    order.sort_unstable();
                    order.dedup();
                    prop_assert_eq!(order.len(), k);
                }
            }
        }
    }
}
