//! `TotientPerms` (Algorithm 2): enumerate regular ring-AllReduce
//! permutations of a server group.
//!
//! For a group of `k` servers, every stride `p < k` with `gcd(p, k) = 1`
//! generates a distinct Hamiltonian ring over the group (Theorem 2,
//! Appendix E.1): repeatedly adding `p` modulo `k` visits every member
//! exactly once. There are `φ(k)` such strides, where `φ` is Euler's totient
//! function; at large scale the paper restricts the strides to primes, which
//! shrinks the candidate set to `O(k / ln k)` by the prime number theorem.

use serde::{Deserialize, Serialize};
use topoopt_collectives::ring::{gcd, RingPermutation};

/// How `TotientPerms` enumerates candidate strides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TotientPermsConfig {
    /// If true, only prime strides are returned (plus stride 1), matching
    /// the paper's large-scale restriction.
    pub primes_only: bool,
    /// Upper bound on the number of candidates returned (0 = unlimited).
    pub max_candidates: usize,
}

/// Euler's totient function φ(n): the number of integers in `1..n` co-prime
/// with `n`.
pub fn euler_totient(n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let mut result = n;
    let mut m = n;
    let mut p = 2;
    while p * p <= m {
        if m.is_multiple_of(p) {
            while m.is_multiple_of(p) {
                m /= p;
            }
            result -= result / p;
        }
        p += 1;
    }
    if m > 1 {
        result -= result / m;
    }
    result
}

/// Simple primality test (trial division; group sizes are at most a few
/// thousand servers).
pub fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    if n < 4 {
        return true;
    }
    if n.is_multiple_of(2) {
        return false;
    }
    let mut d = 3;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// All valid ring strides for a group of size `k`: integers `p in 1..k` with
/// `gcd(p, k) == 1`, optionally restricted to `p == 1` or prime `p`.
pub fn valid_strides(k: usize, cfg: &TotientPermsConfig) -> Vec<usize> {
    if k <= 1 {
        return vec![];
    }
    let mut out: Vec<usize> = (1..k)
        .filter(|&p| gcd(p, k) == 1)
        .filter(|&p| !cfg.primes_only || p == 1 || is_prime(p))
        .collect();
    if cfg.max_candidates > 0 && out.len() > cfg.max_candidates {
        out.truncate(cfg.max_candidates);
    }
    out
}

/// `TotientPerms(n, k)` — Algorithm 2. Given the global node count and the
/// member list of one AllReduce group, return every regular ring permutation
/// of the group.
pub fn totient_perms(members: &[usize], cfg: &TotientPermsConfig) -> Vec<RingPermutation> {
    let k = members.len();
    valid_strides(k, cfg).into_iter().map(|p| RingPermutation::new(members.to_vec(), p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn totient_known_values() {
        assert_eq!(euler_totient(1), 1);
        assert_eq!(euler_totient(12), 4);
        assert_eq!(euler_totient(16), 8);
        assert_eq!(euler_totient(13), 12);
        assert_eq!(euler_totient(100), 40);
        assert_eq!(euler_totient(0), 0);
    }

    #[test]
    fn strides_for_12_match_paper_example() {
        // §4.3: "for n = 12 servers, the ring generation rule for
        // p = 1, 5, 7, 11 will lead into four distinct ring-AllReduce
        // permutations".
        let s = valid_strides(12, &TotientPermsConfig::default());
        assert_eq!(s, vec![1, 5, 7, 11]);
    }

    #[test]
    fn primes_only_reduces_candidates() {
        let all = valid_strides(16, &TotientPermsConfig::default());
        let primes =
            valid_strides(16, &TotientPermsConfig { primes_only: true, max_candidates: 0 });
        assert_eq!(all.len(), 8); // φ(16)
        assert!(primes.len() < all.len());
        assert!(primes.contains(&1));
        assert!(primes.contains(&7));
        assert!(!primes.contains(&9)); // 9 is coprime with 16 but not prime
    }

    #[test]
    fn max_candidates_truncates() {
        let s = valid_strides(128, &TotientPermsConfig { primes_only: false, max_candidates: 5 });
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn every_returned_permutation_is_a_single_ring() {
        let members: Vec<usize> = (10..26).collect(); // 16 members, offset ids
        for p in totient_perms(&members, &TotientPermsConfig::default()) {
            assert!(p.is_single_ring(), "stride {} not a ring", p.stride);
            assert_eq!(p.len(), 16);
        }
    }

    #[test]
    fn number_of_permutations_is_phi_of_group_size() {
        for k in 2..40 {
            let members: Vec<usize> = (0..k).collect();
            let perms = totient_perms(&members, &TotientPermsConfig::default());
            assert_eq!(perms.len(), euler_totient(k), "k = {k}");
        }
    }

    #[test]
    fn trivial_groups_have_no_permutations() {
        assert!(totient_perms(&[], &TotientPermsConfig::default()).is_empty());
        assert!(totient_perms(&[5], &TotientPermsConfig::default()).is_empty());
    }

    proptest! {
        #[test]
        fn strides_are_coprime_and_in_range(k in 2usize..200) {
            for p in valid_strides(k, &TotientPermsConfig::default()) {
                prop_assert!(p >= 1 && p < k);
                prop_assert_eq!(gcd(p, k), 1);
            }
        }

        #[test]
        fn prime_restriction_is_subset(k in 2usize..200) {
            let all = valid_strides(k, &TotientPermsConfig::default());
            let primes = valid_strides(
                k, &TotientPermsConfig { primes_only: true, max_candidates: 0 });
            for p in &primes {
                prop_assert!(all.contains(p));
            }
        }
    }
}
