//! `TopologyFinder` (Algorithm 1): build the job's direct-connect topology
//! and routing from its traffic demands.
//!
//! Interface model: each server has `d` duplex optical interfaces. A ring
//! permutation +p uses one interface per member (TX to the +p successor, RX
//! from the -p predecessor), i.e. one directed edge out and one in. A
//! model-parallel link between a matched pair uses one interface at each end
//! and is bidirectional (both directed edges). Out-degree and in-degree are
//! therefore both bounded by `d`.

use crate::coinchange::CoinChangeTable;
use crate::routing::Routing;
use crate::select::{select_permutations, select_permutations_available};
use crate::totient::{totient_perms, TotientPermsConfig};
use serde::{Deserialize, Serialize};
use topoopt_collectives::ring::RingPermutation;
use topoopt_graph::matching::{MatchingAlgo, MatchingRounds};
use topoopt_graph::paths::bfs_shortest_path;
use topoopt_graph::Graph;
use topoopt_strategy::TrafficDemands;

/// Inputs of `TopologyFinder` (Algorithm 1's arguments).
#[derive(Debug, Clone)]
pub struct TopologyFinderInput<'a> {
    /// Number of dedicated servers (`n`).
    pub num_servers: usize,
    /// Interfaces per server (`d`).
    pub degree: usize,
    /// Bandwidth of each interface in bits per second (`B`).
    pub link_bps: f64,
    /// Traffic demands (`T_AllReduce`, `T_MP`) from the Comp.×Comm. plane.
    pub demands: &'a TrafficDemands,
    /// TotientPerms enumeration options.
    pub totient: TotientPermsConfig,
    /// Which maximum-weight matching implementation to use for the MP
    /// sub-topology.
    pub matching: MatchingAlgo,
    /// Route model-parallel pairs over the shortest path on the combined
    /// topology even when an AllReduce group's coin-change route already
    /// covers the pair. The historical rule (`false`, the default used by
    /// all committed artifacts) lets coin-change ring routes win, which
    /// leaves matched MP links idle whenever a DP ring spans the pair;
    /// enabling this replaces the ring route whenever BFS finds a strictly
    /// shorter path, putting the dedicated MP links to work (§6 DLRM
    /// fabrics).
    pub mp_shortest_path: bool,
    /// Prefer fabrics whose AllReduce rings survive any single link loss.
    /// A group served by one directed ring dies with any one cut (each
    /// member has a single egress), so with this knob on the degree split
    /// gives every ring-carrying group at least two strides when the
    /// budget allows (degree-redundant ring placement), stride selection
    /// swaps candidates until no single cut disconnects the group's
    /// circulant ([`crate::select::critical_links`] reaches zero), and the
    /// connectivity fallback ring is doubled. Defaults OFF — the committed
    /// artifacts score fabrics on diameter and throughput alone.
    pub availability_aware: bool,
}

/// One AllReduce group's selected permutations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectedGroup {
    /// Group members (server ids).
    pub members: Vec<usize>,
    /// Selected ring strides (in group index space).
    pub strides: Vec<usize>,
    /// Bytes reduced across this group per iteration.
    pub bytes: f64,
}

impl SelectedGroup {
    /// The selected permutations as [`RingPermutation`]s.
    pub fn permutations(&self) -> Vec<RingPermutation> {
        self.strides.iter().map(|&s| RingPermutation::new(self.members.clone(), s)).collect()
    }
}

/// Output of `TopologyFinder`: the topology `G` and routing rules `R` of
/// Algorithm 1, plus the intermediate decisions the evaluation inspects.
#[derive(Debug, Clone)]
pub struct TopologyFinderOutput {
    /// The combined topology (AllReduce ∪ MP sub-topologies).
    pub graph: Graph,
    /// Routing rules: coin-change routes for AllReduce pairs, shortest paths
    /// for MP pairs.
    pub routing: Routing,
    /// Degree allocated to the AllReduce sub-topology (`d_A`).
    pub degree_allreduce: usize,
    /// Degree allocated to the MP sub-topology (`d_MP`).
    pub degree_mp: usize,
    /// Per-group selections.
    pub groups: Vec<SelectedGroup>,
    /// Matched MP pairs (one entry per physical MP link).
    pub mp_links: Vec<(usize, usize)>,
}

/// Run `TopologyFinder` (Algorithm 1).
pub fn topology_finder(input: &TopologyFinderInput<'_>) -> TopologyFinderOutput {
    let n = input.num_servers;
    let d = input.degree;
    let demands = input.demands;
    assert!(d >= 1, "server degree must be at least 1");
    assert_eq!(demands.num_servers, n, "demand matrix size mismatch");

    let sum_ar: f64 = demands.total_allreduce_bytes();
    let sum_mp: f64 = demands.total_mp_bytes();

    // Step 1: distribute the degree (lines 2–3). At least one interface goes
    // to the AllReduce sub-topology so the network stays connected.
    let mut d_a = if sum_ar + sum_mp <= 0.0 {
        d
    } else {
        let share = sum_ar / (sum_ar + sum_mp);
        ((d as f64) * share).ceil().max(1.0) as usize
    };
    d_a = d_a.min(d);
    let d_mp = d - d_a;
    let degree_allreduce = d_a;

    // Step 2: AllReduce sub-topology (lines 4–11).
    let mut graph = Graph::new(n);
    let mut groups_out: Vec<SelectedGroup> = Vec::new();
    let mut groups: Vec<_> = demands.allreduce_groups.clone();
    // total_cmp: group volumes come from float sums, and a NaN must order
    // deterministically instead of panicking (same fix as link_traffic_cdf).
    groups.sort_by(|a, b| b.bytes.total_cmp(&a.bytes));
    // If no group spans the whole job, reserve one AllReduce interface for
    // the connectivity fallback ring added below (two when the fabric must
    // survive single link loss: a lone ring dies with any one cut).
    let any_full_group = groups.iter().any(|g| g.members.len() == n && g.bytes > 0.0);
    let reserve = if any_full_group {
        0
    } else if input.availability_aware {
        d_a.min(2)
    } else {
        1
    };
    let mut remaining = d_a - reserve;
    for g in &groups {
        if remaining == 0 {
            break;
        }
        if g.members.len() < 2 || g.bytes <= 0.0 {
            continue;
        }
        // Degree for this group, proportional to its share of AllReduce
        // traffic (line 6). Degree-redundant placement: with the
        // availability knob on, a group that gets rings gets at least two
        // of them whenever the budget allows.
        let mut dk = (((d_a as f64) * g.bytes / sum_ar).ceil() as usize).max(1);
        if input.availability_aware {
            dk = dk.max(2);
        }
        let dk = dk.min(remaining);
        remaining -= dk;
        let candidates = totient_perms(&g.members, &input.totient);
        let selected = if input.availability_aware {
            select_permutations_available(&candidates, dk)
        } else {
            select_permutations(&candidates, dk)
        };
        for p in &selected {
            for (src, dst) in p.edges() {
                graph.add_edge(src, dst, input.link_bps);
            }
        }
        groups_out.push(SelectedGroup {
            members: g.members.clone(),
            strides: selected.iter().map(|p| p.stride).collect(),
            bytes: g.bytes,
        });
    }

    // Connectivity fallback: if no group spans all servers (e.g. a pure
    // model-parallel strategy), spend one AllReduce interface on a global +1
    // ring — this is the "at least one degree … to ensure the network
    // remains connected" provision of Algorithm 1.
    let covers_all = groups_out.iter().any(|g| g.members.len() == n);
    if !covers_all && n > 1 {
        let members: Vec<usize> = (0..n).collect();
        let strides = if input.availability_aware && reserve >= 2 {
            let candidates = totient_perms(&members, &input.totient);
            select_permutations_available(&candidates, reserve).iter().map(|p| p.stride).collect()
        } else {
            vec![1]
        };
        for &s in &strides {
            for i in 0..n {
                graph.add_edge(i, (i + s) % n, input.link_bps);
            }
        }
        groups_out.push(SelectedGroup { members, strides, bytes: 0.0 });
    }

    // Step 3: MP sub-topology (lines 12–17). Repeated maximum-weight
    // matching with halved demand for already-connected pairs. The rounds
    // API symmetrizes the demand matrix once and reuses the solver's DP
    // tables across all d_MP rounds.
    let mut mp_links = Vec::new();
    if d_mp > 0 {
        let mp_weights: Vec<Vec<f64>> =
            (0..n).map(|s| (0..n).map(|t| demands.mp.get(s, t)).collect()).collect();
        let mut rounds = MatchingRounds::new(&mp_weights, input.matching);
        for _round in 0..d_mp {
            let matching = rounds.round();
            if matching.is_empty() {
                break;
            }
            for &(a, b) in &matching {
                graph.add_edge(a, b, input.link_bps);
                graph.add_edge(b, a, input.link_bps);
                mp_links.push((a, b));
                // Line 17: diminish the residual demand on served pairs.
                rounds.halve_pair(a, b);
            }
        }
    }

    // Step 4: routing (lines 18–20). Coin-change routes for AllReduce pairs
    // within each group; shortest paths on the combined topology for MP
    // pairs.
    let mut routing = Routing::new();
    for g in &groups_out {
        let k = g.members.len();
        if k < 2 || g.strides.is_empty() {
            continue;
        }
        let table = CoinChangeTable::new(k, &g.strides);
        for i in 0..k {
            for j in 0..k {
                if i == j {
                    continue;
                }
                let dist = (j + k - i) % k;
                if let Some(seq) = table.decompose(dist) {
                    let mut path = vec![g.members[i]];
                    let mut cur = i;
                    for c in seq {
                        cur = (cur + c) % k;
                        path.push(g.members[cur]);
                    }
                    routing.insert(g.members[i], g.members[j], path);
                }
            }
        }
    }
    for (src, dst, _) in demands.mp.entries_desc() {
        let existing_hops = routing.hops(src, dst);
        if existing_hops.is_some() && !input.mp_shortest_path {
            continue;
        }
        if let Some(p) = bfs_shortest_path(&graph, src, dst) {
            // With `mp_shortest_path`, a covered pair is only re-routed
            // when BFS is strictly shorter, so ties keep the coin-change
            // route and uncovered pairs behave exactly as before.
            if existing_hops.map(|h| p.len() - 1 < h).unwrap_or(true) {
                routing.insert(src, dst, p);
            }
        }
    }

    TopologyFinderOutput {
        graph,
        routing,
        degree_allreduce,
        degree_mp: d_mp,
        groups: groups_out,
        mp_links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topoopt_graph::paths::diameter;
    use topoopt_models::zoo::build_dlrm;
    use topoopt_models::zoo::build_model;
    use topoopt_models::{DlrmConfig, ModelKind, ModelPreset};
    use topoopt_strategy::{extract_traffic, ParallelizationStrategy};

    fn dlrm_demands(n: usize) -> TrafficDemands {
        let m = build_dlrm(&DlrmConfig::shared());
        let s = ParallelizationStrategy::hybrid_embeddings_round_robin(&m, n);
        extract_traffic(&m, &s, 4)
    }

    fn finder_input(demands: &TrafficDemands, n: usize, d: usize) -> TopologyFinderInput<'_> {
        TopologyFinderInput {
            num_servers: n,
            degree: d,
            link_bps: 25.0e9,
            demands,
            totient: TotientPermsConfig::default(),
            matching: MatchingAlgo::Auto,
            mp_shortest_path: false,
            availability_aware: false,
        }
    }

    #[test]
    fn degree_split_favours_allreduce_for_dp_heavy_models() {
        let m = build_model(ModelKind::Vgg16, ModelPreset::Dedicated);
        let s = ParallelizationStrategy::pure_data_parallel(&m, 16);
        let demands = extract_traffic(&m, &s, 4);
        let out = topology_finder(&finder_input(&demands, 16, 4));
        assert_eq!(out.degree_allreduce, 4);
        assert_eq!(out.degree_mp, 0);
        assert!(out.mp_links.is_empty());
    }

    #[test]
    fn hybrid_dlrm_splits_degree_between_allreduce_and_mp() {
        let demands = dlrm_demands(16);
        assert!(demands.total_mp_bytes() > 0.0);
        let out = topology_finder(&finder_input(&demands, 16, 4));
        assert!(out.degree_allreduce >= 1);
        assert!(out.degree_mp >= 1, "expected some MP degree");
        assert!(!out.mp_links.is_empty());
    }

    #[test]
    fn output_respects_degree_and_connectivity() {
        let demands = dlrm_demands(16);
        for d in [2usize, 4, 8] {
            let out = topology_finder(&finder_input(&demands, 16, d));
            assert!(
                out.graph.respects_degree(d),
                "degree {d}: max out {} in {}",
                out.graph.max_out_degree(),
                (0..16).map(|v| out.graph.in_degree(v)).max().unwrap()
            );
            assert!(out.graph.is_strongly_connected());
        }
    }

    #[test]
    fn routing_paths_follow_existing_edges() {
        let demands = dlrm_demands(16);
        let out = topology_finder(&finder_input(&demands, 16, 4));
        out.routing.validate_against(&out.graph).unwrap();
        assert!(!out.routing.is_empty());
    }

    #[test]
    fn every_mp_pair_gets_a_route() {
        let demands = dlrm_demands(16);
        let out = topology_finder(&finder_input(&demands, 16, 4));
        for (src, dst, _) in demands.mp.entries_desc() {
            assert!(out.routing.path(src, dst).is_some(), "no route for MP pair ({src},{dst})");
        }
    }

    #[test]
    fn mp_shortest_path_puts_matched_links_to_work() {
        let demands = dlrm_demands(16);
        let legacy = topology_finder(&finder_input(&demands, 16, 4));
        let mut input = finder_input(&demands, 16, 4);
        input.mp_shortest_path = true;
        let routed = topology_finder(&input);
        // Same fabric, different routing.
        assert_eq!(legacy.mp_links, routed.mp_links);
        assert_eq!(legacy.graph.num_edges(), routed.graph.num_edges());
        assert!(!routed.mp_links.is_empty());
        routed.routing.validate_against(&routed.graph).unwrap();
        // Re-routing never lengthens a pair, and some covered MP pair must
        // actually get a shorter path (the matched direct link, typically).
        let mut improved = 0usize;
        for (src, dst, _) in demands.mp.entries_desc() {
            let old = legacy.routing.hops(src, dst).expect("legacy route");
            let new = routed.routing.hops(src, dst).expect("routed route");
            assert!(new <= old, "({src},{dst}) got longer: {old} -> {new}");
            improved += usize::from(new < old);
        }
        assert!(improved > 0, "expected at least one MP pair to improve");
        // Each matched pair with demand now rides its direct link.
        for &(a, b) in &routed.mp_links {
            if demands.mp.get(a, b) > 0.0 {
                assert_eq!(routed.routing.hops(a, b), Some(1));
            }
        }
    }

    #[test]
    fn availability_knob_makes_allreduce_rings_survive_any_single_cut() {
        let m = build_model(ModelKind::Vgg16, ModelPreset::Dedicated);
        let s = ParallelizationStrategy::pure_data_parallel(&m, 16);
        let demands = extract_traffic(&m, &s, 4);
        let mut input = finder_input(&demands, 16, 4);
        input.availability_aware = true;
        let out = topology_finder(&input);
        assert!(out.graph.respects_degree(4));
        assert!(out.graph.is_strongly_connected());
        for g in &out.groups {
            assert!(g.strides.len() >= 2, "group got a lone ring: {:?}", g.strides);
            assert_eq!(
                crate::select::critical_links(g.members.len(), &g.strides),
                0,
                "strides {:?} do not survive a single cut",
                g.strides
            );
        }
        // The whole fabric survives any single link loss.
        let ids: Vec<_> = out.graph.edges().map(|(id, _)| id).collect();
        for id in ids {
            let mut cut = out.graph.clone();
            cut.remove_edge(id);
            assert!(cut.is_strongly_connected(), "losing one link partitioned the fabric");
        }
    }

    #[test]
    fn availability_knob_doubles_the_fallback_ring() {
        // Zero demand: all degree goes to the fallback ring. Without the
        // knob it is a lone +1 ring (every link critical); with it the
        // reserve is doubled and the fabric survives any single cut.
        let demands = TrafficDemands {
            num_servers: 12,
            allreduce_groups: vec![],
            mp: topoopt_graph::TrafficMatrix::new(12),
            samples_per_server: 1.0,
        };
        let legacy = topology_finder(&finder_input(&demands, 12, 4));
        assert_eq!(legacy.groups[0].strides, vec![1]);
        let mut input = finder_input(&demands, 12, 4);
        input.availability_aware = true;
        let out = topology_finder(&input);
        assert_eq!(out.groups[0].strides.len(), 2);
        assert_eq!(
            crate::select::critical_links(12, &out.groups[0].strides),
            0,
            "fallback strides {:?} must survive a single cut",
            out.groups[0].strides
        );
        assert!(out.graph.respects_degree(4));
    }

    #[test]
    fn availability_knob_off_is_bit_identical_to_legacy() {
        // The committed artifacts rely on the default being a no-op.
        let demands = dlrm_demands(16);
        let out = topology_finder(&finder_input(&demands, 16, 4));
        let mut input = finder_input(&demands, 16, 4);
        input.availability_aware = false;
        let again = topology_finder(&input);
        assert_eq!(out.groups, again.groups);
        assert_eq!(out.mp_links, again.mp_links);
        assert_eq!(out.graph.num_edges(), again.graph.num_edges());
    }

    #[test]
    fn selected_strides_are_single_rings() {
        let demands = dlrm_demands(32);
        let out = topology_finder(&finder_input(&demands, 32, 6));
        for g in &out.groups {
            for p in g.permutations() {
                assert!(p.is_single_ring());
            }
        }
    }

    #[test]
    fn higher_degree_shrinks_diameter() {
        let demands = dlrm_demands(64);
        let d4 = topology_finder(&finder_input(&demands, 64, 4));
        let d8 = topology_finder(&finder_input(&demands, 64, 8));
        let dia4 = diameter(&d4.graph).unwrap();
        let dia8 = diameter(&d8.graph).unwrap();
        assert!(dia8 <= dia4, "d=8 diameter {dia8} > d=4 diameter {dia4}");
    }

    #[test]
    fn pure_mp_demand_still_yields_connected_graph() {
        // No AllReduce at all: the fallback ring must keep the fabric
        // connected.
        let mut mp = topoopt_graph::TrafficMatrix::new(8);
        mp.set(0, 5, 1.0e9);
        mp.set(3, 6, 2.0e9);
        let demands = TrafficDemands {
            num_servers: 8,
            allreduce_groups: vec![],
            mp,
            samples_per_server: 1.0,
        };
        let out = topology_finder(&finder_input(&demands, 8, 3));
        assert!(out.graph.is_strongly_connected());
        assert!(out.graph.respects_degree(3));
        // The heavy pairs should have received direct links.
        assert!(out.graph.has_edge(3, 6));
    }

    #[test]
    fn zero_demand_defaults_to_allreduce_rings() {
        let demands = TrafficDemands {
            num_servers: 12,
            allreduce_groups: vec![],
            mp: topoopt_graph::TrafficMatrix::new(12),
            samples_per_server: 1.0,
        };
        let out = topology_finder(&finder_input(&demands, 12, 4));
        assert!(out.graph.is_strongly_connected());
        assert_eq!(out.degree_allreduce, 4);
    }
}
