//! TopoOpt's core contribution: joint optimization of network topology,
//! routing, and parallelization strategy for distributed DNN training.
//!
//! Modules map one-to-one onto the paper's algorithms:
//!
//! * [`totient`] — `TotientPerms` (Algorithm 2): enumerate the regular ring
//!   permutations of an AllReduce group from Euler's totient structure.
//! * [`select`] — `SelectPermutations` (Algorithm 3): pick a degree-limited
//!   subset of permutations whose strides approximate a geometric sequence,
//!   bounding the AllReduce sub-topology's diameter to `O(d·n^(1/d))`
//!   (Theorem 1).
//! * [`topology_finder`] — `TopologyFinder` (Algorithm 1): split the server
//!   degree between AllReduce and model-parallel sub-topologies, build each,
//!   and compute routing.
//! * [`coinchange`] — `CoinChangeMod` (Algorithm 4 / Appendix E.3): route
//!   AllReduce transfers over the selected ring strides by solving a modular
//!   coin-change problem.
//! * [`ocs_reconfig`] — the OCS-reconfig heuristic (Algorithm 5 / Appendix
//!   E.4) with the discounted-utility link allocator, and the SiP-ML variant
//!   (Appendix F, discount = 1).
//! * [`alternating`] — the alternating optimization loop of §4.1 that
//!   bounces between the `Comp.×Comm.` plane (MCMC strategy search) and the
//!   `Comm.×Topo.` plane (`TopologyFinder`).
//! * [`architectures`] — constructors for every interconnect simulated in
//!   §5 (TopoOpt, OCS-reconfig, Ideal Switch, Fat-tree, oversubscribed
//!   Fat-tree, SiP-ML, Expander).

pub mod alternating;
pub mod architectures;
pub mod coinchange;
pub mod ocs_reconfig;
pub mod routing;
pub mod select;
pub mod topology_finder;
pub mod totient;

pub use alternating::{co_optimize, AlternatingConfig, CoOptResult};
pub use architectures::{build_architecture, Architecture, BuiltNetwork};
pub use coinchange::{coin_change_route, CoinChangeTable};
pub use ocs_reconfig::{ocs_reconfig_topology, sipml_topology, OcsReconfigConfig};
pub use routing::Routing;
pub use select::{critical_links, select_permutations, select_permutations_available};
pub use topology_finder::{topology_finder, TopologyFinderInput, TopologyFinderOutput};
pub use totient::{euler_totient, totient_perms, TotientPermsConfig};
