//! `SelectPermutations` (Algorithm 3): pick `d_k` ring strides whose values
//! approximate a geometric sequence.
//!
//! The goal is to minimise the diameter of the AllReduce sub-topology so
//! that model-parallel transfers, which share the same links, need few hops.
//! With strides `{1, x, x², …}` where `x = k^(1/d_k)`, any modular distance
//! can be composed from at most `O(d_k · k^(1/d_k))` stride steps
//! (Theorem 1 / Appendix E.2) — the Chord-like structure the paper points
//! out.

use crate::totient::{totient_perms, TotientPermsConfig};
use topoopt_collectives::ring::RingPermutation;

/// `SelectPermutations(n, d_k, P_k)` — Algorithm 3.
///
/// `candidates` is the stride set produced by `TotientPerms` for one group;
/// `degree` is the number of permutations (NIC interfaces) allocated to the
/// group. Returns the chosen permutations, in the order selected.
pub fn select_permutations(candidates: &[RingPermutation], degree: usize) -> Vec<RingPermutation> {
    if candidates.is_empty() || degree == 0 {
        return Vec::new();
    }
    let k = candidates[0].len() as f64;
    let degree = degree.min(candidates.len());

    // Available strides, sorted ascending.
    let mut strides: Vec<usize> = candidates.iter().map(|c| c.stride).collect();
    strides.sort_unstable();

    let mut chosen: Vec<usize> = Vec::new();
    // q starts at the minimum candidate (line 3).
    let mut q = strides[0] as f64;
    chosen.push(strides[0]);
    let mut remaining: Vec<usize> = strides[1..].to_vec();

    // Geometric ratio x = d_k-th root of the group size (line 5).
    let x = k.powf(1.0 / degree as f64);

    for _ in 1..degree {
        if remaining.is_empty() {
            break;
        }
        // Next target value on the geometric sequence (line 7).
        let target = x * q;
        // Project onto the remaining candidates with minimal L1 distance
        // (line 8).
        let (idx, &best) = remaining
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| {
                let da = (a as f64 - target).abs();
                let db = (b as f64 - target).abs();
                da.total_cmp(&db)
            })
            .unwrap();
        chosen.push(best);
        q = best as f64;
        remaining.remove(idx);
    }

    chosen
        .into_iter()
        .map(|s| {
            candidates
                .iter()
                .find(|c| c.stride == s)
                .expect("chosen stride came from candidates")
                .clone()
        })
        .collect()
}

/// Count the directed links of a `k`-member circulant with the given
/// strides whose individual loss disconnects some ordered member pair
/// (critical links). Zero means the group's AllReduce rings survive any
/// single link failure: traffic detours over the surviving strides.
pub fn critical_links(k: usize, strides: &[usize]) -> usize {
    let g = topoopt_graph::topologies::from_permutations(k, strides, 1.0);
    let ids: Vec<_> = g.edges().map(|(id, _)| id).collect();
    ids.into_iter()
        .filter(|&id| {
            let mut cut = g.clone();
            cut.remove_edge(id);
            !cut.is_strongly_connected()
        })
        .count()
}

/// Availability-aware `SelectPermutations`: the geometric pick of
/// [`select_permutations`], repaired by greedy stride swaps until no
/// single link loss can disconnect the group's circulant (or no swap
/// improves the critical-link count). A single-stride selection is
/// returned untouched — one egress per member can never survive a cut;
/// redundancy must come from the degree split (see
/// `TopologyFinderInput::availability_aware`).
pub fn select_permutations_available(
    candidates: &[RingPermutation],
    degree: usize,
) -> Vec<RingPermutation> {
    let base = select_permutations(candidates, degree);
    if base.len() < 2 {
        return base;
    }
    let k = candidates[0].len();
    let mut strides: Vec<usize> = base.iter().map(|p| p.stride).collect();
    let mut best = critical_links(k, &strides);
    while best > 0 {
        // First strictly-better swap in candidate order wins: deterministic.
        let mut swap: Option<(usize, usize)> = None;
        for slot in 0..strides.len() {
            for c in candidates.iter().map(|c| c.stride) {
                if strides.contains(&c) {
                    continue;
                }
                let mut trial = strides.clone();
                trial[slot] = c;
                let crit = critical_links(k, &trial);
                if crit < best {
                    best = crit;
                    swap = Some((slot, c));
                }
            }
        }
        match swap {
            Some((slot, c)) => strides[slot] = c,
            None => break,
        }
    }
    strides
        .into_iter()
        .map(|s| {
            candidates
                .iter()
                .find(|c| c.stride == s)
                .expect("swapped stride came from candidates")
                .clone()
        })
        .collect()
}

/// Convenience: run `TotientPerms` + `SelectPermutations` for a group.
pub fn select_for_group(
    members: &[usize],
    degree: usize,
    cfg: &TotientPermsConfig,
) -> Vec<RingPermutation> {
    let candidates = totient_perms(members, cfg);
    select_permutations(&candidates, degree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use topoopt_graph::paths::diameter;
    use topoopt_graph::topologies::from_permutations;

    fn strides_of(perms: &[RingPermutation]) -> Vec<usize> {
        perms.iter().map(|p| p.stride).collect()
    }

    #[test]
    fn selects_stride_one_first() {
        let members: Vec<usize> = (0..16).collect();
        let sel = select_for_group(&members, 3, &TotientPermsConfig::default());
        assert_eq!(sel.len(), 3);
        assert_eq!(sel[0].stride, 1);
    }

    #[test]
    fn figure7_example_spreads_strides_geometrically() {
        // The DLRM example of Figure 7/9: 16 servers, 3 interfaces for the
        // AllReduce group. The chosen strides should roughly follow
        // 1, 16^(1/3) ≈ 2.5, 16^(2/3) ≈ 6.3, i.e. small / medium / large —
        // the paper picks +1, +3, +7.
        let members: Vec<usize> = (0..16).collect();
        let sel = select_for_group(&members, 3, &TotientPermsConfig::default());
        let s = strides_of(&sel);
        assert_eq!(s[0], 1);
        assert!(s[1] >= 2 && s[1] <= 5, "mid stride = {}", s[1]);
        assert!(s[2] >= 5 && s[2] <= 9, "large stride = {}", s[2]);
    }

    #[test]
    fn selection_never_repeats_a_stride() {
        let members: Vec<usize> = (0..30).collect();
        let sel = select_for_group(&members, 6, &TotientPermsConfig::default());
        let mut s = strides_of(&sel);
        s.sort_unstable();
        let before = s.len();
        s.dedup();
        assert_eq!(before, s.len());
    }

    #[test]
    fn degree_larger_than_candidates_is_capped() {
        let members: Vec<usize> = (0..6).collect(); // φ(6) = 2 candidates
        let sel = select_for_group(&members, 5, &TotientPermsConfig::default());
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn zero_degree_or_empty_candidates_yield_nothing() {
        let members: Vec<usize> = (0..8).collect();
        assert!(select_for_group(&members, 0, &TotientPermsConfig::default()).is_empty());
        assert!(select_permutations(&[], 3).is_empty());
    }

    #[test]
    fn geometric_selection_bounds_diameter_better_than_consecutive_strides() {
        // Theorem 1: the selected permutations give a Chord-like topology
        // whose diameter is O(d * n^(1/d)); picking the d smallest strides
        // instead gives a diameter of ~n/d.
        let n = 64;
        let members: Vec<usize> = (0..n).collect();
        let d = 3;
        let selected = select_for_group(&members, d, &TotientPermsConfig::default());
        let geo = from_permutations(n, &strides_of(&selected), 1.0);
        let naive = from_permutations(n, &[1, 3, 5], 1.0);
        let dg = diameter(&geo).unwrap();
        let dn = diameter(&naive).unwrap();
        assert!(dg < dn, "geometric {dg} vs naive {dn}");
        // Theorem 1 bound with a small constant slack.
        let bound = (d as f64) * (n as f64).powf(1.0 / d as f64);
        assert!((dg as f64) <= 2.0 * bound, "diameter {dg} exceeds bound {bound}");
    }

    #[test]
    fn single_ring_is_all_critical_two_rings_survive() {
        // One directed ring: every member has a single egress, so every one
        // of the k links is critical. Two coprime strides detour around any
        // single cut.
        assert_eq!(critical_links(12, &[1]), 12);
        assert_eq!(critical_links(12, &[1, 5]), 0);
        assert_eq!(critical_links(16, &[1, 3, 7]), 0);
    }

    #[test]
    fn availability_selection_matches_geometric_when_already_survivable() {
        let members: Vec<usize> = (0..16).collect();
        let candidates = totient_perms(&members, &TotientPermsConfig::default());
        let geo = select_permutations(&candidates, 3);
        let avail = select_permutations_available(&candidates, 3);
        assert_eq!(strides_of(&geo), strides_of(&avail));
        assert_eq!(critical_links(16, &strides_of(&avail)), 0);
    }

    #[test]
    fn availability_selection_leaves_single_stride_untouched() {
        let members: Vec<usize> = (0..10).collect();
        let candidates = totient_perms(&members, &TotientPermsConfig::default());
        let avail = select_permutations_available(&candidates, 1);
        assert_eq!(strides_of(&avail), vec![1]);
    }

    #[test]
    fn diameter_shrinks_as_degree_grows() {
        let n = 128;
        let members: Vec<usize> = (0..n).collect();
        let mut last = usize::MAX;
        for d in [1usize, 2, 4, 8] {
            let sel = select_for_group(&members, d, &TotientPermsConfig::default());
            let g = from_permutations(n, &strides_of(&sel), 1.0);
            let dia = diameter(&g).unwrap();
            assert!(dia <= last, "degree {d}: diameter {dia} > previous {last}");
            last = dia;
        }
        assert!(last <= 16);
    }
}
