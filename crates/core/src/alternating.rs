//! The alternating optimization framework of §4.1.
//!
//! TopoOpt splits the intractable joint search over computation,
//! communication, and topology into two planes and alternates between them:
//!
//! 1. **Comp.×Comm.** — FlexFlow-style MCMC search for the best
//!    parallelization strategy and device placement on the *current*
//!    topology.
//! 2. **Comm.×Topo.** — `TopologyFinder` builds the best topology and
//!    routing for the traffic demands of the *current* strategy.
//!
//! The loop repeats until neither plane improves the estimated iteration
//! time, or a configurable round budget `k` is exhausted.

use crate::topology_finder::{topology_finder, TopologyFinderInput, TopologyFinderOutput};
use crate::totient::TotientPermsConfig;
use serde::{Deserialize, Serialize};
use topoopt_graph::matching::MatchingAlgo;
use topoopt_models::DnnModel;
use topoopt_strategy::{
    estimate_iteration_time, extract_traffic, search_strategy, ComputeParams, IterationEstimate,
    McmcConfig, ParallelizationStrategy, TopologyView, TrafficDemands,
};

/// Configuration of the alternating optimization loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlternatingConfig {
    /// Maximum number of alternation rounds (`k` in §4.1).
    pub max_rounds: usize,
    /// Relative improvement below which the loop is considered converged.
    pub convergence_threshold: f64,
    /// MCMC search configuration for the Comp.×Comm. plane.
    pub mcmc: McmcConfig,
    /// Compute model parameters.
    pub compute: ComputeParams,
    /// Interfaces per server.
    pub degree: usize,
    /// Per-interface bandwidth in bits per second.
    pub link_bps: f64,
    /// TotientPerms options for the Comm.×Topo. plane.
    pub totient: TotientPermsConfig,
}

impl AlternatingConfig {
    /// A reasonable default for a cluster of degree `d` with `link_bps`
    /// interfaces.
    pub fn new(degree: usize, link_bps: f64) -> Self {
        AlternatingConfig {
            max_rounds: 4,
            convergence_threshold: 0.01,
            mcmc: McmcConfig::default(),
            compute: ComputeParams::default(),
            degree,
            link_bps,
            totient: TotientPermsConfig::default(),
        }
    }
}

/// Result of the co-optimization: strategy, topology, routing and the final
/// iteration-time estimate.
#[derive(Debug, Clone)]
pub struct CoOptResult {
    /// Best parallelization strategy found.
    pub strategy: ParallelizationStrategy,
    /// Its traffic demands.
    pub demands: TrafficDemands,
    /// The topology and routing produced by `TopologyFinder` for those
    /// demands.
    pub network: TopologyFinderOutput,
    /// Estimated iteration-time breakdown on the final topology.
    pub estimate: IterationEstimate,
    /// Number of alternation rounds actually executed.
    pub rounds: usize,
}

/// Run TopoOpt's alternating optimization for one job of `num_servers`
/// servers.
pub fn co_optimize(model: &DnnModel, num_servers: usize, cfg: &AlternatingConfig) -> CoOptResult {
    let per_server_bps = cfg.degree as f64 * cfg.link_bps;

    // Round 0 starts from FlexFlow's full-mesh assumption for the strategy
    // search (the paper's description of unmodified FlexFlow), seeded with
    // the hybrid heuristic for embedding-heavy models.
    let mut view = TopologyView::FullMesh { n: num_servers, per_server_bps };
    let mut initial = ParallelizationStrategy::hybrid_embeddings_round_robin(model, num_servers);

    let mut best: Option<CoOptResult> = None;
    let mut rounds = 0usize;
    for round in 0..cfg.max_rounds {
        rounds = round + 1;
        // --- Comp.×Comm. plane.
        let mut mcmc = cfg.mcmc;
        mcmc.seed = cfg.mcmc.seed.wrapping_add(round as u64);
        let search = search_strategy(model, initial.clone(), &view, &cfg.compute, &mcmc);
        let strategy = search.strategy;
        let demands = extract_traffic(model, &strategy, cfg.compute.gpus_per_server);

        // --- Comm.×Topo. plane.
        let network = topology_finder(&TopologyFinderInput {
            num_servers,
            degree: cfg.degree,
            link_bps: cfg.link_bps,
            demands: &demands,
            totient: cfg.totient,
            matching: MatchingAlgo::Auto,
            mp_shortest_path: false,
            availability_aware: false,
        });
        let new_view = TopologyView::from_graph(&network.graph, num_servers);
        let estimate = estimate_iteration_time(model, &strategy, &new_view, &cfg.compute);

        let improved = match &best {
            None => true,
            Some(b) => estimate.total_s < b.estimate.total_s * (1.0 - cfg.convergence_threshold),
        };
        let candidate =
            CoOptResult { strategy: strategy.clone(), demands, network, estimate, rounds };
        if best.is_none() || candidate.estimate.total_s < best.as_ref().unwrap().estimate.total_s {
            best = Some(candidate);
        }
        if !improved && round > 0 {
            break;
        }

        // Feed the new topology back into the strategy search.
        view = new_view;
        initial = strategy;
    }

    let mut result = best.expect("at least one round runs");
    result.rounds = rounds;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use topoopt_models::zoo::{build_dlrm, build_model};
    use topoopt_models::{DlrmConfig, ModelKind, ModelPreset};

    fn quick_config(d: usize, bps: f64) -> AlternatingConfig {
        let mut cfg = AlternatingConfig::new(d, bps);
        cfg.max_rounds = 2;
        cfg.mcmc.iterations = 60;
        cfg
    }

    #[test]
    fn co_optimize_produces_valid_connected_topology() {
        let m = build_dlrm(&DlrmConfig::shared());
        let cfg = quick_config(4, 25.0e9);
        let r = co_optimize(&m, 16, &cfg);
        r.strategy.validate(&m).unwrap();
        assert!(r.network.graph.is_strongly_connected());
        assert!(r.network.graph.respects_degree(4));
        assert!(r.estimate.total_s.is_finite());
        assert!(r.rounds >= 1 && r.rounds <= 2);
    }

    #[test]
    fn co_optimize_is_deterministic() {
        let m = build_model(ModelKind::Candle, ModelPreset::Shared);
        let cfg = quick_config(4, 25.0e9);
        let a = co_optimize(&m, 8, &cfg);
        let b = co_optimize(&m, 8, &cfg);
        assert_eq!(a.strategy, b.strategy);
        assert_eq!(a.estimate.total_s, b.estimate.total_s);
    }

    #[test]
    fn alternating_beats_or_matches_naive_sequential_optimization() {
        // The naive approach of §4.1: search the strategy once on a full
        // mesh, then build the topology once. The alternating loop must not
        // be worse on its own estimate.
        let m = build_dlrm(&DlrmConfig::shared());
        let cfg = quick_config(4, 25.0e9);
        let n = 16;

        // Naive: one pass.
        let mut naive_cfg = cfg;
        naive_cfg.max_rounds = 1;
        let naive = co_optimize(&m, n, &naive_cfg);

        let alternating = co_optimize(&m, n, &cfg);
        assert!(alternating.estimate.total_s <= naive.estimate.total_s * 1.0001);
    }

    #[test]
    fn compute_bound_model_yields_pure_data_parallel_topology() {
        // ResNet50 has small parameters and heavy compute, so the search
        // keeps it data parallel and every interface goes to AllReduce rings.
        let m = build_model(ModelKind::ResNet50, ModelPreset::Dedicated);
        let cfg = quick_config(4, 25.0e9);
        let r = co_optimize(&m, 16, &cfg);
        assert_eq!(r.network.degree_allreduce, 4);
        assert_eq!(r.network.degree_mp, 0);
        assert!(r.demands.total_allreduce_bytes() > r.demands.total_mp_bytes());
    }

    #[test]
    fn communication_heavy_model_offloads_layers_to_model_parallelism() {
        // VGG's two giant fully-connected layers dominate its parameter
        // bytes; the co-optimizer shrinks the AllReduce volume by taking
        // them off the replicated path (§5.1: the final strategy is "either
        // hybrid or pure data-parallel").
        let m = build_model(ModelKind::Vgg16, ModelPreset::Dedicated);
        let cfg = quick_config(4, 25.0e9);
        let r = co_optimize(&m, 16, &cfg);
        assert!(r.network.degree_allreduce >= 1);
        assert!(r.network.graph.is_strongly_connected());
        let dp = ParallelizationStrategy::pure_data_parallel(&m, 16);
        let dp_demands = extract_traffic(&m, &dp, cfg.compute.gpus_per_server);
        assert!(r.demands.total_allreduce_bytes() <= dp_demands.total_allreduce_bytes());
    }
}
