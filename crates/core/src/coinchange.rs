//! `CoinChangeMod` (Algorithm 4 / Appendix E.3): modular coin-change routing
//! for AllReduce transfers.
//!
//! The AllReduce sub-topology is the union of a few +p ring permutations.
//! To route a transfer from server `i` to server `j`, the modular distance
//! `(j - i) mod n` must be decomposed into a minimum-length sum of the
//! available strides ("coins"); each coin corresponds to one physical hop
//! along the matching ring. The classic coin-change dynamic program, run in
//! modulo-`n` arithmetic, gives the optimal decomposition.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Precomputed coin-change table for a group of `n` nodes and a set of ring
/// strides.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoinChangeTable {
    /// Group size.
    pub n: usize,
    /// Available strides ("coins").
    pub coins: Vec<usize>,
    /// For each modular distance `1..n`, the number of hops needed
    /// (`usize::MAX` if unreachable, which only happens with an empty or
    /// degenerate coin set).
    pub hops: Vec<usize>,
    /// For each modular distance, the last coin used (backtrace).
    pub back: Vec<usize>,
}

impl CoinChangeTable {
    /// Build the table with the modular-BFS dynamic program of Algorithm 4.
    pub fn new(n: usize, coins: &[usize]) -> Self {
        if n == 0 {
            // A zero-node group has no distances to cover (and `c % n`
            // below would divide by zero).
            return CoinChangeTable { n, coins: Vec::new(), hops: Vec::new(), back: Vec::new() };
        }
        let coins: Vec<usize> = {
            let set: BTreeSet<usize> = coins.iter().map(|&c| c % n).filter(|&c| c != 0).collect();
            set.into_iter().collect()
        };
        let mut hops = vec![usize::MAX; n];
        let mut back = vec![usize::MAX; n];
        hops[0] = 0;
        if coins.is_empty() {
            return CoinChangeTable { n, coins, hops, back };
        }
        for &c in &coins {
            if hops[c] > 1 {
                hops[c] = 1;
                back[c] = c;
            }
        }
        // Relax until fixed point (distance values only decrease, at most n
        // rounds).
        let mut changed = true;
        while changed {
            changed = false;
            for dist in 1..n {
                for &c in &coins {
                    let from = (dist + n - c) % n;
                    if hops[from] != usize::MAX && hops[from] + 1 < hops[dist] {
                        hops[dist] = hops[from] + 1;
                        back[dist] = c;
                        changed = true;
                    }
                }
            }
        }
        CoinChangeTable { n, coins, hops, back }
    }

    /// Number of hops to cover modular distance `dist` (0 for `dist == 0`,
    /// `usize::MAX` for the degenerate zero-node group).
    pub fn hops_for_distance(&self, dist: usize) -> usize {
        if self.n == 0 {
            return usize::MAX;
        }
        self.hops[dist % self.n]
    }

    /// The coin sequence covering modular distance `dist`, or `None` if
    /// unreachable.
    pub fn decompose(&self, dist: usize) -> Option<Vec<usize>> {
        if self.n == 0 {
            return None;
        }
        let mut d = dist % self.n;
        if self.hops[d] == usize::MAX {
            return None;
        }
        let mut seq = Vec::with_capacity(self.hops[d]);
        while d != 0 {
            let c = self.back[d];
            seq.push(c);
            d = (d + self.n - c) % self.n;
        }
        Some(seq)
    }

    /// Maximum hop count over all modular distances — the diameter of the
    /// AllReduce sub-topology under coin-change routing.
    pub fn max_hops(&self) -> usize {
        self.hops.iter().cloned().filter(|&h| h != usize::MAX).max().unwrap_or(0)
    }
}

/// Route from node `src` to node `dst` over the ring strides `coins` in an
/// `n`-node group (node ids are ring positions `0..n`). Returns the node
/// path including both endpoints, or `None` if the coin set cannot reach the
/// required distance.
pub fn coin_change_route(n: usize, coins: &[usize], src: usize, dst: usize) -> Option<Vec<usize>> {
    if n == 0 {
        return None;
    }
    if src == dst {
        return Some(vec![src]);
    }
    let table = CoinChangeTable::new(n, coins);
    let dist = (dst + n - src) % n;
    let seq = table.decompose(dist)?;
    let mut path = vec![src];
    let mut cur = src;
    for c in seq {
        cur = (cur + c) % n;
        path.push(cur);
    }
    debug_assert_eq!(*path.last().unwrap(), dst);
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_coin_ring_walks_linearly() {
        let t = CoinChangeTable::new(8, &[1]);
        assert_eq!(t.hops_for_distance(5), 5);
        assert_eq!(t.max_hops(), 7);
        let p = coin_change_route(8, &[1], 2, 6).unwrap();
        assert_eq!(p, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn figure9_strides_cut_hop_count() {
        // 16 nodes with strides {1, 3, 7}: any distance is reachable in at
        // most 4 hops (e.g. 12 = 7+3+1+1 or 7+7-2 … the DP finds the min).
        let t = CoinChangeTable::new(16, &[1, 3, 7]);
        assert!(t.max_hops() <= 4);
        assert_eq!(t.hops_for_distance(7), 1);
        assert_eq!(t.hops_for_distance(10), 2); // 7 + 3
        assert_eq!(t.hops_for_distance(8), 2); // 7 + 1
    }

    #[test]
    fn route_endpoints_and_steps_are_consistent() {
        let p = coin_change_route(16, &[1, 3, 7], 5, 1).unwrap();
        assert_eq!(*p.first().unwrap(), 5);
        assert_eq!(*p.last().unwrap(), 1);
        // Every step is one of the coins (mod 16).
        for w in p.windows(2) {
            let step = (w[1] + 16 - w[0]) % 16;
            assert!([1, 3, 7].contains(&step), "invalid step {step}");
        }
    }

    #[test]
    fn self_route_is_trivial() {
        assert_eq!(coin_change_route(10, &[1, 3], 4, 4).unwrap(), vec![4]);
    }

    #[test]
    fn empty_coin_set_is_unreachable() {
        let t = CoinChangeTable::new(8, &[]);
        assert_eq!(t.hops_for_distance(3), usize::MAX);
        assert!(coin_change_route(8, &[], 0, 3).is_none());
    }

    #[test]
    fn modular_wraparound_uses_short_decomposition() {
        // Distance 15 on 16 nodes with coins {1,3,7}: 15 = 7+7+1 -> 3 hops,
        // much better than 15 single steps.
        let t = CoinChangeTable::new(16, &[1, 3, 7]);
        assert_eq!(t.hops_for_distance(15), 3);
    }

    proptest! {
        #[test]
        fn coin_change_always_reaches_with_stride_one(
            n in 2usize..64, src in 0usize..64, dst in 0usize..64,
            extra in 2usize..10
        ) {
            let src = src % n;
            let dst = dst % n;
            let coins = vec![1usize, extra % n.max(2)];
            let p = coin_change_route(n, &coins, src, dst).unwrap();
            prop_assert_eq!(*p.first().unwrap(), src);
            prop_assert_eq!(*p.last().unwrap(), dst);
            prop_assert!(p.len() <= n);
        }

        #[test]
        fn hops_never_exceed_distance_with_unit_coin(n in 2usize..128) {
            let t = CoinChangeTable::new(n, &[1, 2, 3]);
            for d in 1..n {
                prop_assert!(t.hops_for_distance(d) <= d);
            }
        }
    }
}
