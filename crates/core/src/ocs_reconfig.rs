//! OCS-reconfig heuristic (Algorithm 5 / Appendix E.4) and the SiP-ML
//! variant (Appendix F).
//!
//! When the fabric reconfigures *within* training iterations, a centralized
//! controller periodically measures the unsatisfied demand and recomputes
//! the circuits. The heuristic greedily allocates parallel links to the
//! highest-demand pair, discounting a pair's residual demand each time it
//! receives an extra link (so elephant pairs do not monopolise every
//! interface), then repairs connectivity with a two-edge replacement pass.
//!
//! SiP-ML's SiP-Ring formulation optimises the same utility with no
//! diminishing returns (`Discount = 1`), which is how the paper evaluates it
//! (Appendix F).

use serde::{Deserialize, Serialize};
use topoopt_graph::{Graph, TrafficMatrix};

/// Discount schedule applied to a pair's demand after each allocated
/// parallel link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Discount {
    /// Exponential: each extra link halves the residual demand (TopoOpt's
    /// OCS-reconfig heuristic, Eq. 2).
    Exponential,
    /// No discount (SiP-ML's utility, Appendix F).
    None,
}

/// Configuration of the reconfiguration heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OcsReconfigConfig {
    /// Interfaces per server.
    pub degree: usize,
    /// Per-interface bandwidth (bps).
    pub link_bps: f64,
    /// Discount schedule.
    pub discount: Discount,
    /// If true, run the two-edge replacement pass so the final graph is
    /// strongly connected (required when host-based forwarding is enabled).
    pub ensure_connected: bool,
}

/// Utility of a topology for a demand matrix (Eq. 1 of Appendix E.4):
/// `Σ T(i,j) · Discount(L(i,j))` where `L` is the number of parallel links.
pub fn topology_utility(demand: &TrafficMatrix, g: &Graph, discount: Discount) -> f64 {
    let n = demand.num_nodes();
    let mut u = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let l = g.multiplicity(i, j);
            if l == 0 {
                continue;
            }
            let factor = match discount {
                Discount::Exponential => (1..=l).map(|x| 0.5f64.powi(x as i32)).sum::<f64>(),
                Discount::None => l as f64,
            };
            u += demand.get(i, j) * factor;
        }
    }
    u
}

/// Run the OCS-reconfig circuit allocation (Algorithm 5) for the current
/// unsatisfied demand matrix. Node ids are `0..demand.num_nodes()`.
pub fn ocs_reconfig_topology(demand: &TrafficMatrix, cfg: &OcsReconfigConfig) -> Graph {
    let n = demand.num_nodes();
    let mut g = Graph::new(n);
    let mut available_tx = vec![cfg.degree; n];
    let mut available_rx = vec![cfg.degree; n];
    // Residual demand we keep scaling down as pairs receive links.
    let mut residual = demand.clone();

    loop {
        // Highest residual-demand pair whose endpoints still have free
        // interfaces (line 7).
        let mut best: Option<(usize, usize, f64)> = None;
        for (i, &tx) in available_tx.iter().enumerate() {
            if tx == 0 {
                continue;
            }
            for (j, &rx) in available_rx.iter().enumerate() {
                if i == j || rx == 0 {
                    continue;
                }
                let dem = residual.get(i, j);
                if dem > 0.0 && best.map(|(_, _, b)| dem > b).unwrap_or(true) {
                    best = Some((i, j, dem));
                }
            }
        }
        let Some((a, b, _)) = best else { break };
        g.add_edge(a, b, cfg.link_bps);
        // Line 11: scale residual demand by the discount factor.
        match cfg.discount {
            Discount::Exponential => residual.scale_entry(a, b, 0.5),
            Discount::None => residual.set(a, b, 0.0),
        }
        available_tx[a] -= 1;
        available_rx[b] -= 1;
    }

    if cfg.ensure_connected {
        two_edge_replacement(&mut g, cfg);
    }
    g
}

/// SiP-ML topology: the same allocator with no diminishing returns and no
/// host-based forwarding, i.e. only directly connected pairs can talk
/// between reconfigurations (Appendix F).
pub fn sipml_topology(demand: &TrafficMatrix, degree: usize, link_bps: f64) -> Graph {
    ocs_reconfig_topology(
        demand,
        &OcsReconfigConfig { degree, link_bps, discount: Discount::None, ensure_connected: false },
    )
}

/// Two-edge replacement connectivity repair (OWAN-style, Appendix E.4, line
/// 21): while the graph is not strongly connected, pick one node that cannot
/// be reached from node 0 (or cannot reach it), free one of its interfaces by
/// dropping its lowest-capacity redundant edge (a parallel edge if possible),
/// and splice it into a ring edge that stitches the components together.
fn two_edge_replacement(g: &mut Graph, cfg: &OcsReconfigConfig) {
    let n = g.num_nodes();
    if n <= 1 {
        return;
    }
    // Simple, always-terminating repair: walk the +1 ring; for any missing
    // ring edge (i, i+1) between different components, free an interface at
    // each endpoint (removing one existing edge if the degree is exhausted)
    // and add the ring edge. After at most n splices the ring exists, which
    // guarantees strong connectivity.
    for i in 0..n {
        let j = (i + 1) % n;
        let reachable = g.reachable_from(i);
        if reachable.len() == n {
            // Already strongly connected in the forward direction from i;
            // keep checking other sources cheaply only if needed.
            if g.is_strongly_connected() {
                return;
            }
        }
        if g.has_edge(i, j) {
            continue;
        }
        if g.out_degree(i) >= cfg.degree {
            remove_one_redundant_out_edge(g, i);
        }
        if g.in_degree(j) >= cfg.degree {
            remove_one_redundant_in_edge(g, j);
        }
        g.add_edge(i, j, cfg.link_bps);
    }
}

/// Remove one outgoing edge of `v`, preferring a parallel (redundant) edge.
fn remove_one_redundant_out_edge(g: &mut Graph, v: usize) {
    let mut candidate: Option<usize> = None;
    let mut best_mult = 0usize;
    let edges: Vec<(usize, usize)> = g.out_edges(v).map(|(id, e)| (id, e.dst)).collect();
    for (id, dst) in &edges {
        let mult = g.multiplicity(v, *dst);
        if mult > best_mult {
            best_mult = mult;
            candidate = Some(*id);
        }
    }
    if let Some(id) = candidate {
        g.remove_edge(id);
    }
}

/// Remove one incoming edge of `v`, preferring a parallel (redundant) edge.
fn remove_one_redundant_in_edge(g: &mut Graph, v: usize) {
    let mut candidate: Option<usize> = None;
    let mut best_mult = 0usize;
    let edges: Vec<(usize, usize)> = g.in_edges(v).map(|(id, e)| (id, e.src)).collect();
    for (id, src) in &edges {
        let mult = g.multiplicity(*src, v);
        if mult > best_mult {
            best_mult = mult;
            candidate = Some(*id);
        }
    }
    if let Some(id) = candidate {
        g.remove_edge(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_demand(n: usize) -> TrafficMatrix {
        let mut t = TrafficMatrix::new(n);
        // One elephant pair plus a mesh of mice.
        t.set(0, 1, 6.0e9);
        for i in 0..n {
            for j in 0..n {
                if i != j && !(i == 0 && j == 1) {
                    t.add(i, j, 1.0e9);
                }
            }
        }
        t
    }

    #[test]
    fn allocation_respects_interface_budget() {
        let demand = skewed_demand(8);
        let cfg = OcsReconfigConfig {
            degree: 4,
            link_bps: 25.0e9,
            discount: Discount::Exponential,
            ensure_connected: false,
        };
        let g = ocs_reconfig_topology(&demand, &cfg);
        assert!(g.respects_degree(4));
    }

    #[test]
    fn elephant_pair_gets_links_but_not_all_of_them() {
        let demand = skewed_demand(8);
        let cfg = OcsReconfigConfig {
            degree: 4,
            link_bps: 25.0e9,
            discount: Discount::Exponential,
            ensure_connected: false,
        };
        let g = ocs_reconfig_topology(&demand, &cfg);
        let elephant_links = g.multiplicity(0, 1);
        assert!(elephant_links >= 1);
        assert!(
            elephant_links < 4,
            "discounting should stop the elephant pair from taking every interface"
        );
    }

    #[test]
    fn sipml_discount_none_gives_each_pair_at_most_one_link() {
        // With Discount::None the residual demand is zeroed after the first
        // link, so no pair receives parallel links.
        let demand = skewed_demand(8);
        let g = sipml_topology(&demand, 4, 25.0e9);
        for i in 0..8 {
            for j in 0..8 {
                assert!(g.multiplicity(i, j) <= 1);
            }
        }
    }

    #[test]
    fn connectivity_repair_produces_strongly_connected_graph() {
        // Demand concentrated in two cliques: without repair the graph
        // splits; with repair it must be strongly connected.
        let mut demand = TrafficMatrix::new(12);
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    demand.set(i, j, 10.0e9);
                }
            }
        }
        for i in 6..12 {
            for j in 6..12 {
                if i != j {
                    demand.set(i, j, 10.0e9);
                }
            }
        }
        let disconnected = ocs_reconfig_topology(
            &demand,
            &OcsReconfigConfig {
                degree: 3,
                link_bps: 25.0e9,
                discount: Discount::Exponential,
                ensure_connected: false,
            },
        );
        assert!(!disconnected.is_strongly_connected());
        let repaired = ocs_reconfig_topology(
            &demand,
            &OcsReconfigConfig {
                degree: 3,
                link_bps: 25.0e9,
                discount: Discount::Exponential,
                ensure_connected: true,
            },
        );
        assert!(repaired.is_strongly_connected());
        assert!(repaired.respects_degree(3));
    }

    #[test]
    fn utility_prefers_topology_matching_demand() {
        let demand = skewed_demand(6);
        let cfg = OcsReconfigConfig {
            degree: 2,
            link_bps: 10.0e9,
            discount: Discount::Exponential,
            ensure_connected: false,
        };
        let matched = ocs_reconfig_topology(&demand, &cfg);
        // A ring ignores the demand distribution entirely.
        let ring = topoopt_graph::topologies::from_permutations(6, &[1, 5], 10.0e9);
        let u_matched = topology_utility(&demand, &matched, Discount::Exponential);
        let u_ring = topology_utility(&demand, &ring, Discount::Exponential);
        assert!(u_matched > u_ring);
    }

    #[test]
    fn empty_demand_allocates_nothing() {
        let demand = TrafficMatrix::new(5);
        let cfg = OcsReconfigConfig {
            degree: 3,
            link_bps: 1.0e9,
            discount: Discount::Exponential,
            ensure_connected: false,
        };
        let g = ocs_reconfig_topology(&demand, &cfg);
        assert_eq!(g.num_edges(), 0);
    }
}
