//! Routing rules produced by `TopologyFinder`.
//!
//! AllReduce transfers are routed with coin-change decomposition over the
//! selected ring strides (Algorithm 4); model-parallel transfers use
//! shortest paths on the combined topology (Algorithm 1, line 20). The
//! resulting table is what the flow-level simulator and the RDMA-forwarding
//! layer consume.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use topoopt_graph::paths::bfs_shortest_path;
use topoopt_graph::Graph;

/// Per-pair node paths (src, dst) → ordered node list including endpoints.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Routing {
    paths: BTreeMap<(usize, usize), Vec<usize>>,
}

impl Routing {
    /// Empty routing table.
    pub fn new() -> Self {
        Routing::default()
    }

    /// Install a path for a pair. Overwrites any existing entry.
    pub fn insert(&mut self, src: usize, dst: usize, path: Vec<usize>) {
        debug_assert!(path.first() == Some(&src) && path.last() == Some(&dst));
        self.paths.insert((src, dst), path);
    }

    /// Look up the installed path for a pair.
    pub fn path(&self, src: usize, dst: usize) -> Option<&Vec<usize>> {
        self.paths.get(&(src, dst))
    }

    /// Path for a pair, falling back to a BFS shortest path on `g` when no
    /// explicit rule was installed.
    pub fn path_or_shortest(&self, g: &Graph, src: usize, dst: usize) -> Option<Vec<usize>> {
        if let Some(p) = self.path(src, dst) {
            return Some(p.clone());
        }
        bfs_shortest_path(g, src, dst)
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True if no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Hop count of the installed path (edges, not nodes).
    pub fn hops(&self, src: usize, dst: usize) -> Option<usize> {
        self.path(src, dst).map(|p| p.len().saturating_sub(1))
    }

    /// Iterate over all installed rules.
    pub fn iter(&self) -> impl Iterator<Item = (&(usize, usize), &Vec<usize>)> {
        self.paths.iter()
    }

    /// Verify every installed path walks existing edges of `g`.
    pub fn validate_against(&self, g: &Graph) -> Result<(), String> {
        for ((src, dst), path) in &self.paths {
            if path.first() != Some(src) || path.last() != Some(dst) {
                return Err(format!("path for ({src},{dst}) has wrong endpoints"));
            }
            for w in path.windows(2) {
                if !g.has_edge(w[0], w[1]) {
                    return Err(format!(
                        "path for ({src},{dst}) uses missing edge {} -> {}",
                        w[0], w[1]
                    ));
                }
            }
        }
        Ok(())
    }

    /// Average hop count over installed rules (0 if empty).
    pub fn average_hops(&self) -> f64 {
        if self.paths.is_empty() {
            return 0.0;
        }
        let total: usize = self.paths.values().map(|p| p.len() - 1).sum();
        total as f64 / self.paths.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n, 1.0);
        }
        g
    }

    #[test]
    fn insert_and_lookup() {
        let mut r = Routing::new();
        r.insert(0, 3, vec![0, 1, 2, 3]);
        assert_eq!(r.hops(0, 3), Some(3));
        assert_eq!(r.path(3, 0), None);
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn fallback_to_shortest_path() {
        let g = ring(6);
        let r = Routing::new();
        let p = r.path_or_shortest(&g, 0, 2).unwrap();
        assert_eq!(p, vec![0, 1, 2]);
    }

    #[test]
    fn validation_catches_missing_edges() {
        let g = ring(4);
        let mut r = Routing::new();
        r.insert(0, 2, vec![0, 2]); // no direct edge 0 -> 2 in the ring
        assert!(r.validate_against(&g).is_err());
        let mut ok = Routing::new();
        ok.insert(0, 2, vec![0, 1, 2]);
        ok.validate_against(&g).unwrap();
    }

    #[test]
    fn average_hops_over_rules() {
        let mut r = Routing::new();
        r.insert(0, 1, vec![0, 1]);
        r.insert(0, 2, vec![0, 1, 2]);
        assert!((r.average_hops() - 1.5).abs() < 1e-12);
        assert_eq!(Routing::new().average_hops(), 0.0);
    }
}
