//! Constructors for every interconnect simulated in §5.1.
//!
//! Each architecture is described by the per-server degree `d` and
//! per-interface bandwidth `B`; the Fat-tree baselines take their own link
//! bandwidth (the evaluation picks `B'` so the Fat-tree's cost matches
//! TopoOpt — see `topoopt-cost`).

use crate::topology_finder::TopologyFinderOutput;
use serde::{Deserialize, Serialize};
use topoopt_graph::topologies;
use topoopt_graph::Graph;

/// The network architectures compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// TopoOpt: one-shot reconfigured direct-connect fabric from the
    /// co-optimization framework.
    TopoOpt,
    /// OCS-reconfig: direct-connect fabric re-optimised every demand window
    /// with Algorithm 5.
    OcsReconfig,
    /// Ideal Switch: a single non-blocking switch with `d·B` per server.
    IdealSwitch,
    /// Full-bisection Fat-tree with cost-equivalent (reduced) link bandwidth.
    FatTree,
    /// 2:1 oversubscribed Fat-tree at full `d·B` host bandwidth.
    OversubFatTree,
    /// SiP-ML (SiP-Ring algorithm, no host-based forwarding).
    SipMl,
    /// Static expander (Jellyfish-style random regular graph).
    Expander,
}

impl Architecture {
    /// All architectures, in the order the paper's figures list them.
    pub fn all() -> [Architecture; 7] {
        [
            Architecture::TopoOpt,
            Architecture::OcsReconfig,
            Architecture::IdealSwitch,
            Architecture::FatTree,
            Architecture::OversubFatTree,
            Architecture::SipMl,
            Architecture::Expander,
        ]
    }

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Architecture::TopoOpt => "TopoOpt",
            Architecture::OcsReconfig => "OCS-reconfig",
            Architecture::IdealSwitch => "Ideal Switch",
            Architecture::FatTree => "Fat-tree",
            Architecture::OversubFatTree => "Oversub Fat-tree",
            Architecture::SipMl => "SiP-ML",
            Architecture::Expander => "Expander",
        }
    }

    /// True when the architecture forwards traffic through hosts (servers
    /// act as relays) rather than switches.
    pub fn uses_host_forwarding(&self) -> bool {
        matches!(self, Architecture::TopoOpt | Architecture::OcsReconfig | Architecture::Expander)
    }
}

/// A built network: the physical graph plus which nodes are servers.
#[derive(Debug, Clone)]
pub struct BuiltNetwork {
    /// Which architecture this is.
    pub architecture: Architecture,
    /// The physical topology. Servers are nodes `0..num_servers`; any extra
    /// nodes are switches.
    pub graph: Graph,
    /// Number of server nodes.
    pub num_servers: usize,
    /// Per-interface bandwidth used for server links (bps).
    pub link_bps: f64,
    /// Server degree.
    pub degree: usize,
}

/// Build the static baseline architectures. `TopoOpt` and `OcsReconfig`
/// depend on the traffic demands and are built from a
/// [`TopologyFinderOutput`] (see [`built_from_finder`]) or from
/// [`crate::ocs_reconfig::ocs_reconfig_topology`] respectively; requesting
/// them here builds the degree-matched expander placeholder so callers can
/// still measure a static fabric.
pub fn build_architecture(
    arch: Architecture,
    num_servers: usize,
    degree: usize,
    link_bps: f64,
    fat_tree_link_bps: f64,
    seed: u64,
) -> BuiltNetwork {
    let graph = match arch {
        Architecture::IdealSwitch => {
            topologies::ideal_switch(num_servers, degree as f64 * link_bps)
        }
        Architecture::FatTree => {
            let k = topologies::fat_tree_arity_for_hosts(num_servers);
            topologies::fat_tree(k, fat_tree_link_bps).graph
        }
        Architecture::OversubFatTree => {
            let k = topologies::fat_tree_arity_for_hosts(num_servers);
            topologies::oversubscribed_fat_tree(k, degree as f64 * link_bps).graph
        }
        Architecture::Expander => topologies::expander(num_servers, degree, link_bps, seed),
        Architecture::TopoOpt | Architecture::OcsReconfig | Architecture::SipMl => {
            // Demand-aware fabrics need demands; callers use
            // `built_from_finder` / the ocs_reconfig module. Provide the
            // degree-matched circulant as a neutral static stand-in.
            topologies::circulant(num_servers, degree, link_bps)
        }
    };
    BuiltNetwork { architecture: arch, graph, num_servers, link_bps, degree }
}

/// Wrap a `TopologyFinder` result as a [`BuiltNetwork`] for the TopoOpt
/// architecture.
pub fn built_from_finder(
    out: &TopologyFinderOutput,
    num_servers: usize,
    degree: usize,
    link_bps: f64,
) -> BuiltNetwork {
    BuiltNetwork {
        architecture: Architecture::TopoOpt,
        graph: out.graph.clone(),
        num_servers,
        link_bps,
        degree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_enumeration() {
        assert_eq!(Architecture::all().len(), 7);
        assert_eq!(Architecture::TopoOpt.name(), "TopoOpt");
        assert!(Architecture::TopoOpt.uses_host_forwarding());
        assert!(!Architecture::FatTree.uses_host_forwarding());
        assert!(!Architecture::SipMl.uses_host_forwarding());
    }

    #[test]
    fn ideal_switch_has_hub_node() {
        let b = build_architecture(Architecture::IdealSwitch, 16, 4, 100.0e9, 0.0, 1);
        assert_eq!(b.graph.num_nodes(), 17);
        assert!((b.graph.capacity_between(0, 16) - 400.0e9).abs() < 1.0);
    }

    #[test]
    fn fat_tree_hosts_cover_requested_servers() {
        let b = build_architecture(Architecture::FatTree, 128, 4, 100.0e9, 100.0e9, 1);
        // k = 8 fat-tree has exactly 128 hosts.
        assert!(b.graph.num_nodes() > 128);
        assert!(b.graph.is_strongly_connected());
    }

    #[test]
    fn expander_respects_degree() {
        let b = build_architecture(Architecture::Expander, 64, 4, 25.0e9, 0.0, 3);
        assert!(b.graph.respects_degree(4));
        assert!(b.graph.is_strongly_connected());
    }

    #[test]
    fn oversub_fat_tree_has_less_core_capacity_than_full() {
        let full = build_architecture(Architecture::FatTree, 16, 4, 100.0e9, 400.0e9, 1);
        let over = build_architecture(Architecture::OversubFatTree, 16, 4, 100.0e9, 0.0, 1);
        assert!(over.graph.total_capacity() < full.graph.total_capacity());
    }
}
