//! Numeric edge cases for the permutation math in `topoopt-core`:
//! degenerate group sizes (n ∈ {0, 1, 2}) and degrees at or beyond n − 1.
//! These pin down behavior future refactors of `totient` / `coinchange` /
//! `select` must preserve — no panics, no phantom permutations.

use topoopt_core::coinchange::{coin_change_route, CoinChangeTable};
use topoopt_core::select::{select_for_group, select_permutations};
use topoopt_core::totient::{euler_totient, totient_perms, valid_strides, TotientPermsConfig};

fn cfg() -> TotientPermsConfig {
    TotientPermsConfig::default()
}

// ---------------------------------------------------------------- totient

#[test]
fn totient_of_degenerate_sizes() {
    assert_eq!(euler_totient(0), 0);
    assert_eq!(euler_totient(1), 1);
    assert_eq!(euler_totient(2), 1);
}

#[test]
fn valid_strides_of_degenerate_sizes() {
    assert!(valid_strides(0, &cfg()).is_empty());
    assert!(valid_strides(1, &cfg()).is_empty());
    assert_eq!(valid_strides(2, &cfg()), vec![1]);
}

#[test]
fn two_member_group_has_exactly_the_unit_permutation() {
    // φ(2) = 1: the only ring over two members is +1, regardless of member
    // ids.
    let perms = totient_perms(&[7, 9], &cfg());
    assert_eq!(perms.len(), 1);
    assert_eq!(perms[0].stride, 1);
    assert!(perms[0].is_single_ring());
    assert_eq!(perms[0].len(), 2);
}

#[test]
fn primes_only_and_max_candidates_survive_tiny_groups() {
    let primes = TotientPermsConfig { primes_only: true, max_candidates: 0 };
    assert!(valid_strides(0, &primes).is_empty());
    assert!(valid_strides(1, &primes).is_empty());
    // Stride 1 is always kept even though 1 is not prime.
    assert_eq!(valid_strides(2, &primes), vec![1]);

    let capped = TotientPermsConfig { primes_only: false, max_candidates: 1 };
    assert_eq!(valid_strides(2, &capped), vec![1]);
}

// ------------------------------------------------------------- coinchange

#[test]
fn coin_change_zero_node_group_is_inert() {
    // n = 0 used to panic (index into an empty hops table and `c % 0`).
    let t = CoinChangeTable::new(0, &[1, 3]);
    assert_eq!(t.max_hops(), 0);
    assert_eq!(t.hops_for_distance(5), usize::MAX);
    assert!(t.decompose(3).is_none());
    assert!(coin_change_route(0, &[1, 3], 0, 0).is_none());
}

#[test]
fn coin_change_single_node_group_only_self_routes() {
    // All coins collapse to 0 mod 1 and are dropped.
    let t = CoinChangeTable::new(1, &[1, 2, 3]);
    assert!(t.coins.is_empty());
    assert_eq!(t.hops_for_distance(0), 0);
    assert_eq!(t.max_hops(), 0);
    assert_eq!(coin_change_route(1, &[1], 0, 0).unwrap(), vec![0]);
}

#[test]
fn coin_change_two_node_group_crosses_in_one_hop() {
    let t = CoinChangeTable::new(2, &[1]);
    assert_eq!(t.hops_for_distance(1), 1);
    assert_eq!(t.max_hops(), 1);
    assert_eq!(coin_change_route(2, &[1], 1, 0).unwrap(), vec![1, 0]);
}

#[test]
fn coins_fold_modulo_group_size() {
    // A +9 ring over 8 nodes is a +1 ring; a +8 "ring" is a self-loop and
    // must be discarded rather than looping forever.
    let folded = CoinChangeTable::new(8, &[9]);
    assert_eq!(folded.coins, vec![1]);
    assert_eq!(folded.hops_for_distance(3), 3);

    let degenerate = CoinChangeTable::new(4, &[4]);
    assert!(degenerate.coins.is_empty());
    assert_eq!(degenerate.hops_for_distance(1), usize::MAX);
    assert!(coin_change_route(4, &[4], 0, 1).is_none());
}

// ----------------------------------------------------------------- select

#[test]
fn select_on_degenerate_groups_returns_nothing() {
    assert!(select_for_group(&[], 4, &cfg()).is_empty());
    assert!(select_for_group(&[3], 4, &cfg()).is_empty());
}

#[test]
fn select_degree_at_least_group_size_is_capped_to_candidates() {
    // Two members: one candidate. Any degree ≥ n − 1 = 1 must still return
    // exactly that one permutation.
    for degree in [1usize, 2, 5, usize::MAX] {
        let sel = select_for_group(&[0, 1], degree, &cfg());
        assert_eq!(sel.len(), 1, "degree {degree}");
        assert_eq!(sel[0].stride, 1);
    }

    // Sixteen members: φ(16) = 8 candidates; degree n − 1 = 15 caps at 8
    // distinct strides.
    let members: Vec<usize> = (0..16).collect();
    let sel = select_for_group(&members, 15, &cfg());
    assert_eq!(sel.len(), 8);
    let mut strides: Vec<usize> = sel.iter().map(|p| p.stride).collect();
    strides.sort_unstable();
    strides.dedup();
    assert_eq!(strides.len(), 8);
}

#[test]
fn select_permutations_empty_candidates_with_huge_degree() {
    assert!(select_permutations(&[], usize::MAX).is_empty());
}

#[test]
fn select_three_member_group_degree_two() {
    // n = 3: strides {1, 2}, degree = n − 1 = 2 uses both.
    let sel = select_for_group(&[0, 1, 2], 2, &cfg());
    let mut strides: Vec<usize> = sel.iter().map(|p| p.stride).collect();
    strides.sort_unstable();
    assert_eq!(strides, vec![1, 2]);
    for p in &sel {
        assert!(p.is_single_ring());
    }
}
