//! Structured experiment reports for the TopoOpt evaluation harness.
//!
//! Experiments *return data* instead of printing: each one builds an
//! [`ExperimentReport`] — metadata plus typed [`Table`]s — and renderers
//! decide presentation:
//!
//! - [`ExperimentReport::render_text`]: the aligned human-readable output
//!   the `reproduce` binary prints by default;
//! - [`ExperimentReport::render_markdown`]: the `EXPERIMENTS.md`
//!   paper-vs-measured index;
//! - [`ExperimentReport::to_json`] / [`ExperimentReport::from_json`]: the
//!   `BENCH_<id>.json` artifacts that make perf/accuracy trajectories
//!   diffable PR-over-PR.
//!
//! Cells are typed ([`Cell`]: int / float / string), so the JSON artifacts
//! stay machine-readable; formatting (fixed precision, scientific notation,
//! alignment) lives in the [`Column`] description, not in the data.

mod render;

use serde::{Deserialize, Serialize};

/// One typed table cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Cell {
    /// An integer (counts, sizes, batch sizes). `i128` so every workspace
    /// integer type (including `u64` seeds and byte counts) fits exactly.
    Int(i128),
    /// A float (seconds, bytes, ratios); display precision comes from the
    /// column's [`CellFormat`].
    Float(f64),
    /// Free text (model names, labels).
    Str(String),
    /// No value (e.g. a cost that is not commercially available); renders
    /// as `n/a`.
    Empty,
}

impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::Int(v as i128)
    }
}

impl From<i128> for Cell {
    fn from(v: i128) -> Self {
        Cell::Int(v)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as i128)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v as i128)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}

impl From<&str> for Cell {
    fn from(v: &str) -> Self {
        Cell::Str(v.to_string())
    }
}

impl From<String> for Cell {
    fn from(v: String) -> Self {
        Cell::Str(v)
    }
}

impl<T: Into<Cell>> From<Option<T>> for Cell {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Cell::Empty)
    }
}

/// Build a row of [`Cell`]s from mixed-type expressions:
/// `row![kind.name(), 25.0, servers]`.
#[macro_export]
macro_rules! row {
    ($($cell:expr),* $(,)?) => {
        vec![$($crate::Cell::from($cell)),*]
    };
}

/// Horizontal alignment of a column (headers and cells alike).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Align {
    /// Flush left (text columns).
    Left,
    /// Flush right (numeric columns).
    Right,
}

/// How a column's numeric cells are formatted for display.
///
/// This is presentation metadata only — JSON artifacts always carry the
/// full-precision typed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellFormat {
    /// Rust `Display` (`{}`): integers, and floats at shortest round-trip
    /// precision.
    Display,
    /// Fixed decimal places (`{:.N}`).
    Fixed(u8),
    /// Scientific notation with `N` decimal places (`{:.Ne}`).
    Sci(u8),
}

/// A named, aligned, format-carrying table column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Header text.
    pub name: String,
    /// Alignment for the header and every cell.
    pub align: Align,
    /// Numeric display format for [`Cell::Float`] values.
    pub format: CellFormat,
}

impl Column {
    /// A left-aligned text column.
    pub fn text(name: impl Into<String>) -> Self {
        Column { name: name.into(), align: Align::Left, format: CellFormat::Display }
    }

    /// A right-aligned integer column.
    pub fn int(name: impl Into<String>) -> Self {
        Column { name: name.into(), align: Align::Right, format: CellFormat::Display }
    }

    /// A right-aligned fixed-precision float column.
    pub fn fixed(name: impl Into<String>, decimals: u8) -> Self {
        Column { name: name.into(), align: Align::Right, format: CellFormat::Fixed(decimals) }
    }

    /// A right-aligned scientific-notation float column.
    pub fn sci(name: impl Into<String>, decimals: u8) -> Self {
        Column { name: name.into(), align: Align::Right, format: CellFormat::Sci(decimals) }
    }
}

/// A typed table: named columns and rows of [`Cell`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Optional caption printed above the table.
    pub title: Option<String>,
    /// Column descriptions; every row must have exactly this many cells.
    pub columns: Vec<Column>,
    /// Data rows.
    pub rows: Vec<Vec<Cell>>,
    /// The paper's reported reference values for this table, when the
    /// reduced-scale run has a meaningful point of comparison.
    pub paper: Option<String>,
}

impl Table {
    /// An empty table with the given columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Table { title: None, columns, rows: Vec::new(), paper: None }
    }

    /// An empty captioned table with the given columns.
    pub fn titled(title: impl Into<String>, columns: Vec<Column>) -> Self {
        Table { title: Some(title.into()), columns, rows: Vec::new(), paper: None }
    }

    /// Attach the paper's reference values (builder style).
    pub fn with_paper(mut self, note: impl Into<String>) -> Self {
        self.paper = Some(note.into());
        self
    }

    /// Append one row.
    ///
    /// # Panics
    /// If the row's cell count does not match the column count.
    pub fn push(&mut self, row: Vec<Cell>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row has {} cells but table has {} columns",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Append many rows (same arity check as [`Table::push`]).
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Vec<Cell>>) {
        for row in rows {
            self.push(row);
        }
    }
}

/// The cluster sizes an experiment ran at (paper scale or reduced).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleInfo {
    /// True when run with `--full` (paper-scale sizes).
    pub full: bool,
    /// Dedicated-cluster server count (paper: 128).
    pub dedicated: usize,
    /// Shared-cluster server count (paper: 432).
    pub shared: usize,
    /// MCMC iterations in strategy-search runs.
    pub mcmc_iters: usize,
}

/// One experiment's results: identity, run metadata, typed tables, and
/// free-form notes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Registry id, e.g. `fig11_dedicated_d4`.
    pub id: String,
    /// Figure/table name in the paper, e.g. `Figure 11`.
    pub title: String,
    /// Paper section, e.g. `§5.3`.
    pub section: String,
    /// Cluster sizes the run used.
    pub scale: ScaleInfo,
    /// RNG seed threaded into sampling/MCMC experiments.
    pub seed: u64,
    /// Wall-clock time of the experiment run, in seconds.
    pub wall_time_s: f64,
    /// Free-form notes, rendered after the tables. Multi-line notes (e.g.
    /// ASCII heatmaps) become code blocks in markdown.
    pub notes: Vec<String>,
    /// The experiment's tables.
    pub tables: Vec<Table>,
}

impl ExperimentReport {
    /// An empty report. The harness fills in identity and run metadata
    /// ([`ExperimentReport::id`], `title`, `section`, `scale`, `seed`,
    /// `wall_time_s`) from its registry; builders only add content.
    pub fn new() -> Self {
        ExperimentReport {
            id: String::new(),
            title: String::new(),
            section: String::new(),
            scale: ScaleInfo { full: false, dedicated: 0, shared: 0, mcmc_iters: 0 },
            seed: 0,
            wall_time_s: 0.0,
            notes: Vec::new(),
            tables: Vec::new(),
        }
    }

    /// Append a table (builder style).
    pub fn table(mut self, table: Table) -> Self {
        self.tables.push(table);
        self
    }

    /// Append a note (builder style).
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Serialize to pretty JSON (the `BENCH_<id>.json` artifact format).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parse a report back from its JSON artifact.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde::json::from_str(text)
    }

    /// Render as aligned plain text (the `reproduce` default output).
    pub fn render_text(&self) -> String {
        render::text(self)
    }

    /// Render as a markdown fragment (tables + notes, no heading — the
    /// `EXPERIMENTS.md` generator adds per-experiment headings).
    pub fn render_markdown(&self) -> String {
        render::markdown(self)
    }
}

impl Default for ExperimentReport {
    fn default() -> Self {
        ExperimentReport::new()
    }
}
