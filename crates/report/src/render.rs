//! Text and markdown renderers over [`ExperimentReport`].
//!
//! Both renderers are pure functions of the report, so output is
//! byte-for-byte stable for equal reports regardless of how the report was
//! computed (e.g. rows assembled in parallel and collected in order).

use crate::{Align, Cell, CellFormat, Column, ExperimentReport, Table};

/// Format one cell under its column's display format.
fn cell_text(cell: &Cell, format: CellFormat) -> String {
    match (cell, format) {
        (Cell::Empty, _) => "n/a".to_string(),
        (Cell::Int(i), _) => i.to_string(),
        (Cell::Str(s), _) => s.clone(),
        (Cell::Float(f), CellFormat::Display) => f.to_string(),
        (Cell::Float(f), CellFormat::Fixed(d)) => format!("{f:.prec$}", prec = d as usize),
        (Cell::Float(f), CellFormat::Sci(d)) => format!("{f:.prec$e}", prec = d as usize),
    }
}

fn pad(text: &str, width: usize, align: Align) -> String {
    match align {
        Align::Left => format!("{text:<width$}"),
        Align::Right => format!("{text:>width$}"),
    }
}

/// Render one table as aligned text: caption, header row, data rows, paper
/// reference. Column width is the widest of the header and every cell; the
/// column separator is two spaces.
fn table_text(out: &mut String, table: &Table) {
    if let Some(title) = &table.title {
        out.push_str(title);
        out.push('\n');
    }
    let formatted: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|row| {
            row.iter().zip(&table.columns).map(|(cell, col)| cell_text(cell, col.format)).collect()
        })
        .collect();
    let widths: Vec<usize> = table
        .columns
        .iter()
        .enumerate()
        .map(|(i, col)| {
            formatted.iter().map(|row| row[i].len()).chain([col.name.len()]).max().unwrap_or(0)
        })
        .collect();
    let emit_row = |out: &mut String, cells: &dyn Fn(usize, &Column) -> String| {
        let line: Vec<String> = table
            .columns
            .iter()
            .enumerate()
            .map(|(i, col)| pad(&cells(i, col), widths[i], col.align))
            .collect();
        out.push_str(line.join("  ").trim_end());
        out.push('\n');
    };
    emit_row(out, &|i, col| {
        let _ = i;
        col.name.clone()
    });
    for row in &formatted {
        emit_row(out, &|i, _| row[i].clone());
    }
    if let Some(paper) = &table.paper {
        out.push_str(&format!("(paper: {paper})\n"));
    }
}

/// Render the whole report as plain text: tables separated by blank lines,
/// then notes.
pub fn text(report: &ExperimentReport) -> String {
    let mut out = String::new();
    for (i, table) in report.tables.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        table_text(&mut out, table);
    }
    for note in &report.notes {
        out.push('\n');
        out.push_str(note);
        out.push('\n');
    }
    out
}

/// Escape a cell for use inside a markdown table row.
fn md_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '|' => out.push_str("\\|"),
            '\n' => out.push_str("<br>"),
            c => out.push(c),
        }
    }
    out
}

fn table_markdown(out: &mut String, table: &Table) {
    if let Some(title) = &table.title {
        out.push_str(&format!("**{}**\n\n", md_escape(title)));
    }
    let header: Vec<String> = table.columns.iter().map(|c| md_escape(&c.name)).collect();
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    let rules: Vec<&str> = table
        .columns
        .iter()
        .map(|c| match c.align {
            Align::Left => "---",
            Align::Right => "---:",
        })
        .collect();
    out.push_str(&format!("| {} |\n", rules.join(" | ")));
    for row in &table.rows {
        let cells: Vec<String> = row
            .iter()
            .zip(&table.columns)
            .map(|(cell, col)| md_escape(&cell_text(cell, col.format)))
            .collect();
        out.push_str(&format!("| {} |\n", cells.join(" | ")));
    }
    if let Some(paper) = &table.paper {
        out.push_str(&format!("\n*Paper: {}*\n", md_escape(paper)));
    }
}

/// Render the report body as a markdown fragment (tables + notes).
pub fn markdown(report: &ExperimentReport) -> String {
    let mut out = String::new();
    for (i, table) in report.tables.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        table_markdown(&mut out, table);
    }
    for note in &report.notes {
        out.push('\n');
        if note.contains('\n') {
            // Multi-line notes (ASCII heatmaps) stay preformatted.
            out.push_str(&format!("```text\n{}\n```\n", note.trim_end()));
        } else {
            out.push_str(&format!("{}\n", md_escape(note)));
        }
    }
    out
}
