//! Integration tests for `topoopt-report`: serde round-trips, stable text
//! alignment, and markdown escaping.

use topoopt_report::{row, Cell, Column, ExperimentReport, ScaleInfo, Table};

fn sample_report() -> ExperimentReport {
    let mut table = Table::titled(
        "iteration time (s), 32 servers",
        vec![
            Column::text("model"),
            Column::int("servers"),
            Column::fixed("TopoOpt", 4),
            Column::sci("reconfig", 3),
        ],
    )
    .with_paper("TopoOpt within 10% of the ideal switch at 128 servers");
    table.push(row!["DLRM", 32usize, 0.012345, 1.15e-5]);
    table.push(row!["BERT-huge", 128usize, 1.5, 3.8e-9]);
    table.push(vec![Cell::Str("n/a row".into()), Cell::Int(-1), Cell::Empty, Cell::Empty]);

    let mut report = ExperimentReport::new().table(table).note("single-line note");
    report.id = "fig11_dedicated_d4".into();
    report.title = "Figure 11".into();
    report.section = "§5.3".into();
    report.scale = ScaleInfo { full: false, dedicated: 32, shared: 64, mcmc_iters: 100 };
    report.seed = u64::MAX;
    report.wall_time_s = 1.25;
    report
}

#[test]
fn report_round_trips_through_json() {
    let report = sample_report();
    let json = report.to_json();
    let back = ExperimentReport::from_json(&json).expect("artifact should parse");
    assert_eq!(back, report);
    // u64 seeds survive even above i64::MAX.
    assert_eq!(back.seed, u64::MAX);
    // Serializing again is byte-identical (deterministic artifacts).
    assert_eq!(back.to_json(), json);
}

#[test]
fn table_round_trips_all_cell_kinds() {
    let mut table = Table::new(vec![
        Column::text("a"),
        Column::int("b"),
        Column::fixed("c", 2),
        Column::text("d"),
    ]);
    table.push(vec![
        Cell::Str("x|y".into()),
        // i128 cells hold the full u64 range exactly.
        Cell::from(u64::MAX),
        Cell::Float(0.1),
        Cell::Empty,
    ]);
    table.push(vec![
        Cell::Str("min".into()),
        Cell::Int(i64::MIN as i128),
        Cell::Float(0.2),
        Cell::Empty,
    ]);
    let json = serde::json::to_string(&table);
    let back: Table = serde::json::from_str(&json).unwrap();
    assert_eq!(back, table);
}

#[test]
#[should_panic(expected = "row has 1 cells but table has 2 columns")]
fn arity_mismatch_panics() {
    let mut table = Table::new(vec![Column::text("a"), Column::text("b")]);
    table.push(row![1usize]);
}

#[test]
fn text_renderer_aligns_columns() {
    let text = sample_report().render_text();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines[0], "iteration time (s), 32 servers");
    // Header + 3 data rows share the same column boundaries: every cell of
    // a right-aligned column ends at the same byte offset.
    let header = lines[1];
    assert!(header.starts_with("model"));
    let servers_end = header.find("servers").unwrap() + "servers".len();
    for data in &lines[2..5] {
        let int_col = &data[..servers_end];
        assert!(
            int_col.trim_end().ends_with(|c: char| c.is_ascii_digit()),
            "right-aligned integer should end at column boundary: {data:?}"
        );
    }
    // Fixed and scientific formats are applied from column metadata.
    assert!(text.contains("0.0123"), "Fixed(4) formatting:\n{text}");
    assert!(text.contains("1.150e-5"), "Sci(3) formatting:\n{text}");
    assert!(text.contains("n/a"), "Empty cells render as n/a:\n{text}");
    assert!(text.contains("(paper: TopoOpt within 10%"));
    assert!(text.trim_end().ends_with("single-line note"));
    // Rendering is a pure function of the report.
    assert_eq!(text, sample_report().render_text());
}

#[test]
fn text_renderer_widens_columns_to_fit_cells() {
    let mut narrow = Table::new(vec![Column::text("m"), Column::int("n")]);
    narrow.push(row!["a-very-long-model-name", 1usize]);
    let report = ExperimentReport::new().table(narrow);
    let text = report.render_text();
    let lines: Vec<&str> = text.lines().collect();
    // Header pads out to the widest cell; both lines end flush on column 2.
    assert_eq!(lines[0].len(), lines[1].len());
    assert!(lines[1].starts_with("a-very-long-model-name"));
}

#[test]
fn markdown_escapes_cells_and_fences_multiline_notes() {
    let mut table = Table::new(vec![Column::text("label"), Column::int("x")]);
    table.push(row!["pipe | back\\slash", 7usize]);
    let report = ExperimentReport::new()
        .table(table)
        .note("one-liner with | pipe")
        .note("heatmap\n123\n456");
    let md = report.render_markdown();
    assert!(md.contains("| pipe \\| back\\\\slash | 7 |"), "cell escaping:\n{md}");
    assert!(md.contains("one-liner with \\| pipe"), "note escaping:\n{md}");
    assert!(md.contains("```text\nheatmap\n123\n456\n```"), "multi-line note fencing:\n{md}");
    // Alignment row: text column left, int column right.
    assert!(md.contains("| --- | ---: |"), "alignment markers:\n{md}");
}

#[test]
fn markdown_paper_reference_renders_italic() {
    let table = Table::new(vec![Column::int("x")]).with_paper("128-server result: 1.12s");
    let md = ExperimentReport::new().table(table).render_markdown();
    assert!(md.contains("*Paper: 128-server result: 1.12s*"));
}
