//! Fixture corpus for the four rules plus the suppression meta-rules.
//!
//! Each known-bad file must produce *exactly* the expected `(rule, line)`
//! findings — no more (false positives break CI on clean code), no fewer
//! (false negatives let the bug classes back in). Known-good files must be
//! silent. The final test lints the real workspace and asserts it is clean,
//! which is the property the CI `lint` job gates on.

use std::path::Path;
use topoopt_lint::{lint_source, lint_workspace, Finding};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn pairs(findings: &[Finding]) -> Vec<(String, usize)> {
    findings.iter().map(|f| (f.rule.clone(), f.line)).collect()
}

/// Lint fixture `name` under display path `lint_path` and assert the exact
/// unsuppressed and suppressed `(rule, line)` lists.
fn expect(name: &str, lint_path: &str, want: &[(&str, usize)], want_suppressed: &[(&str, usize)]) {
    let src = fixture(name);
    let (findings, suppressed) = lint_source(lint_path, &src);
    let to_owned = |xs: &[(&str, usize)]| -> Vec<(String, usize)> {
        xs.iter().map(|(r, l)| (r.to_string(), *l)).collect()
    };
    assert_eq!(pairs(&findings), to_owned(want), "unsuppressed findings for {name}: {findings:#?}");
    assert_eq!(
        pairs(&suppressed),
        to_owned(want_suppressed),
        "suppressed findings for {name}: {suppressed:#?}"
    );
}

#[test]
fn nondet_float_reduction_known_bad() {
    let rule = "nondet-float-reduction";
    expect(
        "nondet_bad.rs",
        "nondet_bad.rs",
        &[
            (rule, 8),  // the PR-5 carried_bytes bug class: values().sum()
            (rule, 14), // `+=` inside `for` over a HashMap
            (rule, 20), // into_values().fold(..)
            (rule, 29), // HashSet field via `self.`
            (rule, 35), // collect-then-reduce in one chain
            (rule, 42), // local from a `HashMap::new()` constructor
            (rule, 54), // local from a hash-returning fn in this file
        ],
        &[],
    );
}

#[test]
fn nondet_float_reduction_known_good() {
    expect("nondet_good.rs", "nondet_good.rs", &[], &[]);
}

#[test]
fn nan_unsafe_sort_known_bad() {
    let rule = "nan-unsafe-sort";
    expect(
        "nan_sort_bad.rs",
        "nan_sort_bad.rs",
        &[(rule, 5), (rule, 9), (rule, 13), (rule, 17), (rule, 21)],
        &[],
    );
}

#[test]
fn nan_unsafe_sort_known_good() {
    expect("nan_sort_good.rs", "nan_sort_good.rs", &[], &[]);
}

#[test]
fn truncating_cast_known_bad() {
    let rule = "truncating-cast";
    expect("cast_bad.rs", "cast_bad.rs", &[(rule, 7), (rule, 11), (rule, 15), (rule, 19)], &[]);
}

#[test]
fn truncating_cast_known_good() {
    expect("cast_good.rs", "cast_good.rs", &[], &[]);
}

#[test]
fn panic_in_engine_known_bad_on_hot_path() {
    let rule = "panic-in-engine";
    expect(
        "netsim/src/engine.rs",
        "crates/netsim/src/engine.rs",
        &[
            (rule, 13), // .unwrap()
            (rule, 14), // .expect(..)
            (rule, 16), // panic!
            (rule, 22), // map indexing
            (rule, 28), // unreachable!
        ],
        &[(rule, 47)], // audited allow keeps the expect visible but green
    );
}

#[test]
fn panic_in_engine_is_path_scoped() {
    // The same source outside the hot path produces no panic findings.
    let src = fixture("netsim/src/engine.rs");
    let (findings, suppressed) = lint_source("crates/graph/src/traffic.rs", &src);
    assert!(
        findings.iter().all(|f| f.rule != "panic-in-engine"),
        "panic-in-engine leaked off the hot path: {findings:#?}"
    );
    assert!(suppressed.is_empty());
    // Off the hot path the allow matches nothing, so it must turn stale
    // rather than rot silently.
    assert_eq!(pairs(&findings), vec![("stale-allow".to_string(), 46)]);
}

#[test]
fn suppression_stale_and_bad_allows() {
    expect(
        "suppressed.rs",
        "suppressed.rs",
        &[
            ("stale-allow", 25), // allow matching no finding
            ("bad-allow", 31),   // reason missing
            ("bad-allow", 37),   // unknown rule name
        ],
        &[
            ("nondet-float-reduction", 7), // trailing allow, same line
            ("nan-unsafe-sort", 13),       // allow on the line above
            ("truncating-cast", 20),       // multi-line comment block
        ],
    );
}

#[test]
fn workspace_is_clean() {
    // CARGO_MANIFEST_DIR = crates/lint; two levels up is the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("walk workspace");
    assert!(report.files_scanned >= 60, "only {} files scanned", report.files_scanned);
    let rendered: Vec<String> = report.findings.iter().map(Finding::render).collect();
    assert!(report.is_clean(), "workspace has lint findings:\n{}", rendered.join("\n"));
    // The audited-allow inventory is part of the contract: every netsim
    // hot-path panic site carries a stated invariant.
    assert!(
        report.suppressed.iter().any(|f| f.rule == "panic-in-engine"),
        "expected audited panic-in-engine allows in netsim"
    );
}
