//! Known-bad corpus for `nondet-float-reduction`. Line numbers are
//! asserted exactly by `tests/fixtures.rs` — append, don't reorder.
use std::collections::{HashMap, HashSet};

/// The PR-5 `carried_bytes` bug class, verbatim: a float sum in HashMap
/// iteration order wobbles at the last ulp between identical runs.
pub fn carried_bytes(link_bytes: &HashMap<(usize, usize), f64>) -> f64 {
    link_bytes.values().sum() // line 8
}

pub fn tax(map: &HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for (_, v) in map.iter() {
        total += v; // line 14
    }
    total
}

pub fn fold_chain(m: HashMap<String, f64>) -> f64 {
    m.into_values().fold(0.0, |a, b| a + b) // line 20
}

pub struct Holder {
    weights: HashSet<u64>,
}

impl Holder {
    pub fn mass(&self) -> f64 {
        self.weights.iter().map(|&w| w as f64 * 0.5).sum() // line 29
    }
}

/// Collect-then-reduce in one chain: collecting does not fix the order.
pub fn collect_then_reduce(m: &HashMap<usize, f64>) -> f64 {
    m.values().cloned().collect::<Vec<f64>>().iter().sum() // line 35
}

/// Locals initialized from constructors are tracked too.
pub fn local_ctor() -> f64 {
    let mut acc = HashMap::new();
    acc.insert(1usize, 2.0f64);
    acc.values().sum() // line 42
}

/// And locals initialized from a hash-returning function in this file.
fn make_rates() -> HashMap<usize, f64> {
    HashMap::new()
}

pub fn from_fn_return() -> f64 {
    let rates = make_rates();
    let mut out = 0.0;
    for (_, r) in &rates {
        out += r; // line 54
    }
    out
}
