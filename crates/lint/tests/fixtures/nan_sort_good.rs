//! Known-good corpus for `nan-unsafe-sort`: zero findings expected.

/// The committed fix: `total_cmp` is a total order over all f64 values.
pub fn sort_rates(v: &mut Vec<(usize, f64)>) {
    v.sort_by(|a, b| b.1.total_cmp(&a.1));
}

/// `partial_cmp` with an explicit NaN policy does not panic.
pub fn max_with_policy(xs: &[f64]) -> Option<&f64> {
    xs.iter().max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
}

/// Key-projection sorts sidestep comparators entirely.
pub fn sort_by_key(v: &mut Vec<(usize, f64)>) {
    v.sort_by_key(|e| e.0);
}

/// `partial_cmp` outside a comparator-taking method is the caller's
/// business — only the sort/min/max family panics mid-reduction.
pub fn compare(a: f64, b: f64) -> Option<std::cmp::Ordering> {
    a.partial_cmp(&b)
}

/// Test code may use the shortcut: a panic there is a test failure.
#[cfg(test)]
mod tests {
    #[test]
    fn sorted() {
        let mut v = vec![2.0, 1.0];
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(v, vec![1.0, 2.0]);
    }
}
