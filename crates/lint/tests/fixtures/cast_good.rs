//! Known-good corpus for `truncating-cast`: zero findings expected.

/// Checked narrowing — the workspace way (`arena::dense_u32`).
pub fn dense(i: usize) -> u32 {
    u32::try_from(i).expect("dense index exceeds u32::MAX")
}

/// `.min()` directly before the cast is a visible bound.
pub fn bucket(v: f64, max: f64) -> u32 {
    ((v / max) * 9.0).ceil().min(9.0) as u32
}

/// `.clamp()` likewise.
pub fn clamped(x: i64) -> u16 {
    x.clamp(0, 65_535) as u16
}

/// Literal casts are bounded by inspection.
pub fn literal() -> u32 {
    40_000 as u32
}

/// Widening and same-width casts are not narrowing.
pub fn widen(x: u32) -> (u64, usize, f64) {
    (x as u64, x as usize, x as f64)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let n: usize = 7;
        assert_eq!(n as u32, 7);
    }
}
