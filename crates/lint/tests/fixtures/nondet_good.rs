//! Known-good corpus for `nondet-float-reduction`: every pattern here is a
//! deterministic reduction and must produce zero findings.
use std::collections::{BTreeMap, HashMap};

/// The PR-5 *fix*: collect, sort, then sum — order pinned.
pub fn sum_link_bytes(link_bytes: &HashMap<(usize, usize), f64>) -> f64 {
    let mut entries: Vec<((usize, usize), f64)> =
        link_bytes.iter().map(|(k, v)| (*k, *v)).collect();
    entries.sort_by_key(|(k, _)| *k);
    entries.iter().map(|(_, v)| v).sum()
}

/// BTreeMap iteration order is the key order: deterministic.
pub fn btree_sum(caps: &BTreeMap<(usize, usize), f64>) -> f64 {
    caps.values().sum()
}

/// Vec iteration is insertion order: deterministic.
pub fn vec_sum(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

/// Keyed lookups into a HashMap are fine — only *iteration* order wobbles.
pub fn keyed_lookup(rates: &HashMap<usize, f64>, active: &[usize]) -> f64 {
    let mut total = 0.0;
    for &i in active {
        total += rates.get(&i).copied().unwrap_or(0.0);
    }
    total
}

/// Building a map by insertion is not a reduction.
pub fn build(pairs: &[(usize, f64)]) -> HashMap<usize, f64> {
    let mut m = HashMap::new();
    for &(k, v) in pairs {
        m.insert(k, v);
    }
    m
}

/// Exact test code is exempt: the rules guard shipped behavior.
#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn order_insensitive_assertion() {
        let m: HashMap<usize, f64> = HashMap::new();
        assert_eq!(m.values().sum::<f64>(), 0.0);
    }
}
