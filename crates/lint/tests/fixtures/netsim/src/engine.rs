//! Corpus for `panic-in-engine`. The fixture path ends in
//! `netsim/src/engine.rs`, which puts it in the hot-path set. Line
//! numbers are asserted exactly by `tests/fixtures.rs`.
use std::collections::HashMap;

pub struct Engine {
    rates: HashMap<u64, f64>,
    order: Vec<u64>,
}

impl Engine {
    pub fn step(&mut self) -> f64 {
        let first = self.order.first().unwrap(); // line 13
        let rate = self.rates.get(first).expect("flow is registered"); // line 14
        if rate.is_nan() {
            panic!("NaN rate for flow {first}"); // line 16
        }
        *rate
    }

    pub fn lookup(&self, id: u64) -> f64 {
        self.rates[&id] // line 22
    }

    pub fn classify(&self, id: u64) -> u32 {
        match id {
            0 => 0,
            _ => unreachable!("only flow 0 exists"), // line 28
        }
    }

    /// Vec indexing is the flat-arena design, not a map panic.
    pub fn by_slot(&self, slot: usize) -> u64 {
        self.order[slot]
    }

    /// `debug_assert!` arguments are exempt: stripped in release builds.
    pub fn checked_step(&mut self) -> f64 {
        debug_assert!(self.order.first().unwrap() < &u64::MAX);
        0.0
    }
}

/// An audited allow suppresses the panic without hiding it from the report.
pub fn audited(order: &[u64]) -> u64 {
    // lint:allow(panic-in-engine): fixture — the invariant is stated here.
    *order.first().expect("non-empty by construction") // line 47, suppressed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panics_are_fine_in_tests() {
        let e = Engine { rates: HashMap::new(), order: vec![1] };
        assert_eq!(*e.order.first().unwrap(), 1);
    }
}
