//! Known-bad corpus for `nan-unsafe-sort`. Line numbers are asserted
//! exactly by `tests/fixtures.rs` — append, don't reorder.

pub fn sort_rates(v: &mut Vec<(usize, f64)>) {
    v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap()); // line 5
}

pub fn sort_unstable(values: &mut [f64]) {
    values.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap()); // line 9
}

pub fn pick_max(xs: &[f64]) -> Option<&f64> {
    xs.iter().max_by(|a, b| a.partial_cmp(b).expect("comparable")) // line 13
}

pub fn pick_min(xs: &[f64]) -> Option<&f64> {
    xs.iter().min_by(|a, b| a.partial_cmp(b).unwrap()) // line 17
}

pub fn search(xs: &[f64], t: f64) -> Result<usize, usize> {
    xs.binary_search_by(|x| x.partial_cmp(&t).unwrap()) // line 21
}
