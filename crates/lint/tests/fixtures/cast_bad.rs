//! Known-bad corpus for `truncating-cast`. Line numbers are asserted
//! exactly by `tests/fixtures.rs` — append, don't reorder.

pub type LinkId = u32;

pub fn intern(len: usize) -> u32 {
    len as u32 // line 7
}

pub fn shard_tag(id: u64) -> u16 {
    id as u16 // line 11
}

pub fn link_of(pos: usize) -> LinkId {
    pos as LinkId // line 15
}

pub fn unguarded_paren(x: f64) -> u32 {
    (x * 9.0).ceil() as u32 // line 19
}
