//! Suppression mechanics corpus: valid allows for three rules, one stale
//! allow, and two malformed ones. Asserted exactly by `tests/fixtures.rs`.
use std::collections::HashMap;

/// A trailing allow on the finding's own line.
pub fn tail_allow(m: &HashMap<u32, f64>) -> f64 {
    m.values().sum() // lint:allow(nondet-float-reduction): fixture — pretend the sum is exact
}

/// An allow on the line directly above the finding.
pub fn line_above(v: &mut Vec<(usize, f64)>) {
    // lint:allow(nan-unsafe-sort): fixture — inputs proven NaN-free upstream
    v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
}

/// A multi-line comment block: the allow covers the first code line below.
pub fn block_allow(len: usize) -> u32 {
    // lint:allow(truncating-cast): fixture — callers cap the arena at
    // u32::MAX entries, so the narrowing is total on reachable inputs.
    len as u32
}

/// This allow matches nothing: a `stale-allow` finding is expected here.
pub fn stale(xs: &[f64]) -> f64 {
    // lint:allow(truncating-cast): nothing below can trigger it
    xs.iter().sum()
}

/// Missing reason: a `bad-allow` finding on the comment line.
pub fn missing_reason(len: usize) -> u32 {
    // lint:allow(truncating-cast)
    u32::try_from(len).unwrap_or(u32::MAX)
}

/// Unknown rule name: a `bad-allow` finding on the comment line.
pub fn unknown_rule(len: usize) -> u32 {
    // lint:allow(made-up-rule): confidently wrong
    u32::try_from(len).unwrap_or(u32::MAX)
}
