//! The four workspace invariant rules, evaluated over a lexed token stream.
//!
//! Everything here is deliberately token-level: no type inference, no
//! grammar. Each rule over-approximates its bug class and the repo buys
//! precision back two ways — per-file name tables that track which
//! identifiers were *declared* as hash containers, and explicit audited
//! `// lint:allow(rule): reason` suppressions for the survivors (see
//! `crate::suppress`).

use crate::lexer::{Tok, TokKind};
use std::collections::BTreeSet;

/// Rule identifiers, also the names accepted by `lint:allow(...)`.
pub const NONDET_FLOAT_REDUCTION: &str = "nondet-float-reduction";
pub const NAN_UNSAFE_SORT: &str = "nan-unsafe-sort";
pub const TRUNCATING_CAST: &str = "truncating-cast";
pub const PANIC_IN_ENGINE: &str = "panic-in-engine";
/// Meta-rules emitted by the suppression checker itself.
pub const STALE_ALLOW: &str = "stale-allow";
pub const BAD_ALLOW: &str = "bad-allow";

/// Every real (suppressible) rule.
pub const RULES: &[&str] =
    &[NONDET_FLOAT_REDUCTION, NAN_UNSAFE_SORT, TRUNCATING_CAST, PANIC_IN_ENGINE];

/// The netsim hot-path files rule `panic-in-engine` applies to.
const HOT_PATH_SUFFIXES: &[&str] =
    &["netsim/src/engine.rs", "netsim/src/arena.rs", "netsim/src/fluid.rs"];

/// Iterator sources on a hash container whose order is randomized per
/// process (`RandomState`).
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Order-sensitive float reductions.
const REDUCERS: &[&str] = &["sum", "product", "fold"];

/// Comparator-taking methods rule `nan-unsafe-sort` inspects.
const SORTERS: &[&str] = &["sort_by", "sort_unstable_by", "max_by", "min_by", "binary_search_by"];

/// A raw rule hit, before suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFinding {
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

/// Per-file token analysis shared by all rules.
pub struct FileAnalysis<'a> {
    toks: &'a [Tok],
    /// Token is inside a `#[cfg(test)]` / `#[test]` item.
    test: Vec<bool>,
    /// Token is inside a `debug_assert*!(..)` argument list.
    guarded: Vec<bool>,
    /// 1-based line ranges of test items (for suppression bookkeeping).
    test_lines: Vec<(usize, usize)>,
    /// Struct fields declared in this file with a HashMap/HashSet type.
    hash_fields: BTreeSet<String>,
    /// `let` bindings / fn params with a HashMap/HashSet type or initializer.
    hash_locals: BTreeSet<String>,
    /// Same, additionally including BTreeMap/BTreeSet (whose `Index` also
    /// panics on absent keys) — used by the map-indexing check.
    map_fields: BTreeSet<String>,
    map_locals: BTreeSet<String>,
}

fn is_hash_ty(name: &str) -> bool {
    name == "HashMap" || name == "HashSet"
}

fn is_map_ty(name: &str) -> bool {
    is_hash_ty(name) || name == "BTreeMap" || name == "BTreeSet"
}

/// Find the matching closer for the opener at `i` (same punct pair).
/// Returns `toks.len() - 1` on unbalanced input rather than panicking.
fn match_close(toks: &[Tok], i: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(i) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Find the matching opener for the closer at `i`, scanning backwards.
fn match_open(toks: &[Tok], i: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    for j in (0..=i).rev() {
        if toks[j].is_punct(close) {
            depth += 1;
        } else if toks[j].is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    0
}

/// Combined nesting depth of `()`, `[]`, `{}` deltas for one token.
fn depth_delta(t: &Tok) -> isize {
    match t.kind {
        TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => 1,
        TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => -1,
        _ => 0,
    }
}

impl<'a> FileAnalysis<'a> {
    pub fn new(toks: &'a [Tok]) -> Self {
        let mut a = FileAnalysis {
            toks,
            test: vec![false; toks.len()],
            guarded: vec![false; toks.len()],
            test_lines: Vec::new(),
            hash_fields: BTreeSet::new(),
            hash_locals: BTreeSet::new(),
            map_fields: BTreeSet::new(),
            map_locals: BTreeSet::new(),
        };
        a.mark_test_items();
        a.mark_debug_asserts();
        a.collect_fields();
        a.collect_locals();
        a
    }

    /// 1-based line ranges of `#[cfg(test)]` / `#[test]` items.
    pub fn test_line_ranges(&self) -> &[(usize, usize)] {
        &self.test_lines
    }

    fn mark_test_items(&mut self) {
        let toks = self.toks;
        let mut i = 0usize;
        while i + 1 < toks.len() {
            if !(toks[i].is_punct('#') && toks[i + 1].is_punct('[')) {
                i += 1;
                continue;
            }
            let close = match_close(toks, i + 1, '[', ']');
            // `test` anywhere in the attribute marks a test item, except the
            // `not(test)` form (`#[cfg(not(test))]` is production code).
            let mut is_test = false;
            for j in i + 2..close {
                if toks[j].is_ident("test") {
                    let negated =
                        j >= 2 && toks[j - 1].is_punct('(') && toks[j - 2].is_ident("not");
                    if !negated {
                        is_test = true;
                    }
                }
            }
            if !is_test {
                i = close + 1;
                continue;
            }
            // Skip any further attributes, then the annotated item: either a
            // braced body or a `;`-terminated declaration.
            let mut k = close + 1;
            while k + 1 < toks.len() && toks[k].is_punct('#') && toks[k + 1].is_punct('[') {
                k = match_close(toks, k + 1, '[', ']') + 1;
            }
            let mut depth = 0isize;
            let mut end = toks.len().saturating_sub(1);
            let mut j = k;
            while j < toks.len() {
                if toks[j].is_punct('{') && depth == 0 {
                    end = match_close(toks, j, '{', '}');
                    break;
                }
                if toks[j].is_punct(';') && depth == 0 {
                    end = j;
                    break;
                }
                depth += depth_delta(&toks[j]);
                j += 1;
            }
            for flag in &mut self.test[i..=end] {
                *flag = true;
            }
            self.test_lines.push((toks[i].line, toks[end].line));
            i = end + 1;
        }
    }

    fn mark_debug_asserts(&mut self) {
        let toks = self.toks;
        let mut i = 0usize;
        while i + 2 < toks.len() {
            if toks[i].kind == TokKind::Ident
                && toks[i].text.starts_with("debug_assert")
                && toks[i + 1].is_punct('!')
                && toks[i + 2].is_punct('(')
            {
                let close = match_close(toks, i + 2, '(', ')');
                for flag in &mut self.guarded[i..=close] {
                    *flag = true;
                }
                i = close + 1;
                continue;
            }
            i += 1;
        }
    }

    /// Record hash/map-typed fields of structs declared in this file.
    fn collect_fields(&mut self) {
        let toks = self.toks;
        let mut i = 0usize;
        while i + 1 < toks.len() {
            if !toks[i].is_ident("struct") {
                i += 1;
                continue;
            }
            // struct Name <generics>? where..? { fields } | (..); | ;
            let mut j = i + 2;
            let mut open = None;
            let mut angle = 0isize;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct('<') => angle += 1,
                    // `->` only occurs inside fn-pointer field types, which
                    // are themselves inside the braces we are looking for.
                    TokKind::Punct('>') => angle -= 1,
                    TokKind::Punct('{') if angle == 0 => {
                        open = Some(j);
                        break;
                    }
                    TokKind::Punct(';') | TokKind::Punct('(') if angle == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = open else {
                i = j.max(i + 1);
                continue;
            };
            let close = match_close(toks, open, '{', '}');
            // Fields: `name: Type,` at relative depth 0 within the braces.
            let mut depth = 0isize;
            let mut k = open + 1;
            while k < close {
                let d = depth_delta(&toks[k]);
                if depth == 0
                    && d == 0
                    && toks[k].kind == TokKind::Ident
                    && k + 1 < close
                    && toks[k + 1].is_punct(':')
                    && !toks[k].is_ident("pub")
                {
                    // Type runs to the `,` at depth 0 (or the region close).
                    let name = toks[k].text.clone();
                    let mut t = k + 2;
                    let mut tdepth = 0isize;
                    let mut hash = false;
                    let mut map = false;
                    while t < close {
                        if tdepth == 0 && toks[t].is_punct(',') {
                            break;
                        }
                        if toks[t].kind == TokKind::Ident {
                            hash |= is_hash_ty(&toks[t].text);
                            map |= is_map_ty(&toks[t].text);
                        }
                        tdepth += depth_delta(&toks[t]);
                        t += 1;
                    }
                    if hash {
                        self.hash_fields.insert(name.clone());
                    }
                    if map {
                        self.map_fields.insert(name);
                    }
                    k = t;
                    continue;
                }
                depth += d;
                k += 1;
            }
            i = close + 1;
        }
    }

    /// Record hash/map-typed `let` bindings and fn parameters, plus locals
    /// initialized from `HashMap::..` constructors or from functions in this
    /// file whose return type mentions a hash container.
    fn collect_locals(&mut self) {
        let toks = self.toks;
        // Pass 1: functions returning hash containers.
        let mut hash_fns: BTreeSet<String> = BTreeSet::new();
        let mut i = 0usize;
        while i + 2 < toks.len() {
            if toks[i].is_ident("fn") && toks[i + 1].kind == TokKind::Ident {
                let name = toks[i + 1].text.clone();
                let mut j = i + 2;
                if toks[j].is_punct('<') {
                    let mut angle = 0isize;
                    while j < toks.len() {
                        if toks[j].is_punct('<') {
                            angle += 1;
                        } else if toks[j].is_punct('>') {
                            angle -= 1;
                            if angle == 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                }
                if j < toks.len() && toks[j].is_punct('(') {
                    let pclose = match_close(toks, j, '(', ')');
                    self.collect_params(j + 1, pclose);
                    // Return type: `-> .. {` (or `;` / `where`).
                    let mut t = pclose + 1;
                    if t + 1 < toks.len() && toks[t].is_punct('-') && toks[t + 1].is_punct('>') {
                        t += 2;
                        let mut tdepth = 0isize;
                        while t < toks.len() {
                            if tdepth == 0
                                && (toks[t].is_punct('{')
                                    || toks[t].is_punct(';')
                                    || toks[t].is_ident("where"))
                            {
                                break;
                            }
                            if toks[t].kind == TokKind::Ident && is_hash_ty(&toks[t].text) {
                                hash_fns.insert(name.clone());
                            }
                            tdepth += depth_delta(&toks[t]);
                            t += 1;
                        }
                    }
                    i = pclose + 1;
                    continue;
                }
            }
            i += 1;
        }
        // Pass 2: let bindings.
        let mut i = 0usize;
        while i + 1 < toks.len() {
            if !toks[i].is_ident("let") {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            if j >= toks.len() || toks[j].kind != TokKind::Ident {
                i = j;
                continue;
            }
            let name = toks[j].text.clone();
            let mut k = j + 1;
            let mut hash = false;
            let mut map = false;
            // Optional `: Type` up to `=` or `;` at depth 0.
            if k < toks.len() && toks[k].is_punct(':') {
                k += 1;
                let mut tdepth = 0isize;
                while k < toks.len() {
                    if tdepth == 0 && (toks[k].is_punct('=') || toks[k].is_punct(';')) {
                        break;
                    }
                    if toks[k].kind == TokKind::Ident {
                        hash |= is_hash_ty(&toks[k].text);
                        map |= is_map_ty(&toks[k].text);
                    }
                    tdepth += depth_delta(&toks[k]);
                    k += 1;
                }
            }
            // Optional `= init` up to `;` at depth 0: constructor calls and
            // calls of known hash-returning functions.
            if k < toks.len() && toks[k].is_punct('=') {
                let mut t = k + 1;
                let first = t;
                let mut tdepth = 0isize;
                while t < toks.len() {
                    if tdepth == 0 && toks[t].is_punct(';') {
                        break;
                    }
                    if toks[t].kind == TokKind::Ident
                        && t + 2 < toks.len()
                        && toks[t + 1].is_punct(':')
                        && toks[t + 2].is_punct(':')
                    {
                        hash |= is_hash_ty(&toks[t].text);
                        map |= is_map_ty(&toks[t].text);
                    }
                    if t == first
                        && toks[t].kind == TokKind::Ident
                        && t + 1 < toks.len()
                        && toks[t + 1].is_punct('(')
                        && hash_fns.contains(&toks[t].text)
                    {
                        hash = true;
                        map = true;
                    }
                    tdepth += depth_delta(&toks[t]);
                    t += 1;
                }
            }
            if hash {
                self.hash_locals.insert(name.clone());
            }
            if map {
                self.map_locals.insert(name);
            }
            i = k;
        }
    }

    /// Record hash/map-typed fn parameters (`name: &HashMap<..>`) as locals.
    fn collect_params(&mut self, start: usize, end: usize) {
        let toks = self.toks;
        let mut depth = 0isize;
        let mut k = start;
        while k < end {
            let d = depth_delta(&toks[k]);
            if depth == 0
                && d == 0
                && toks[k].kind == TokKind::Ident
                && k + 1 < end
                && toks[k + 1].is_punct(':')
            {
                let name = toks[k].text.clone();
                let mut t = k + 2;
                let mut tdepth = 0isize;
                let mut hash = false;
                let mut map = false;
                while t < end {
                    if tdepth == 0 && toks[t].is_punct(',') {
                        break;
                    }
                    if toks[t].kind == TokKind::Ident {
                        hash |= is_hash_ty(&toks[t].text);
                        map |= is_map_ty(&toks[t].text);
                    }
                    tdepth += depth_delta(&toks[t]);
                    t += 1;
                }
                if hash {
                    self.hash_locals.insert(name.clone());
                }
                if map {
                    self.map_locals.insert(name);
                }
                k = t;
                continue;
            }
            depth += d;
            k += 1;
        }
    }

    /// Resolve whether the identifier at `idx` (a receiver being iterated or
    /// indexed) names a container in `fields`/`locals`. A `.`-preceded name
    /// is a field access of *some* receiver — looked up in the field table
    /// only; a bare name checks both.
    fn resolves(&self, idx: usize, fields: &BTreeSet<String>, locals: &BTreeSet<String>) -> bool {
        let name = &self.toks[idx].text;
        if idx >= 1 && self.toks[idx - 1].is_punct('.') {
            fields.contains(name)
        } else {
            locals.contains(name) || fields.contains(name)
        }
    }

    fn is_hash_receiver(&self, idx: usize) -> bool {
        self.resolves(idx, &self.hash_fields, &self.hash_locals)
    }

    fn is_map_receiver(&self, idx: usize) -> bool {
        self.resolves(idx, &self.map_fields, &self.map_locals)
    }

    /// Walk a method chain starting after token `i` (the last token of the
    /// current receiver expression). Returns the token index of the first
    /// order-sensitive reducer (`sum`/`product`/`fold`) reached, if any.
    fn chain_reducer(&self, mut i: usize) -> Option<usize> {
        let toks = self.toks;
        loop {
            if i + 1 < toks.len() && toks[i + 1].is_punct('?') {
                i += 1;
                continue;
            }
            if !(i + 2 < toks.len() && toks[i + 1].is_punct('.')) {
                return None;
            }
            // Tuple-index steps like `.0`.
            if toks[i + 2].kind == TokKind::Int {
                i += 2;
                continue;
            }
            if toks[i + 2].kind != TokKind::Ident {
                return None;
            }
            let m = i + 2;
            if REDUCERS.iter().any(|r| toks[m].is_ident(r)) {
                return Some(m);
            }
            let mut j = m + 1;
            // Optional turbofish `::<..>`.
            if j + 2 < toks.len()
                && toks[j].is_punct(':')
                && toks[j + 1].is_punct(':')
                && toks[j + 2].is_punct('<')
            {
                let mut angle = 0isize;
                j += 2;
                while j < toks.len() {
                    if toks[j].is_punct('<') {
                        angle += 1;
                    } else if toks[j].is_punct('>') {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            if j < toks.len() && toks[j].is_punct('(') {
                i = match_close(toks, j, '(', ')');
            } else {
                // Field access in the middle of a chain: keep walking.
                i = m;
            }
        }
    }

    /// Rule 1: HashMap/HashSet iteration feeding a float reduction.
    fn rule_nondet_float_reduction(&self, out: &mut Vec<RawFinding>) {
        let toks = self.toks;
        // (a) Method chains: `name.values()...sum()` etc.
        for idx in 0..toks.len() {
            if self.test[idx] {
                continue;
            }
            if toks[idx].kind != TokKind::Ident
                || idx + 3 >= toks.len()
                || !toks[idx + 1].is_punct('.')
                || toks[idx + 2].kind != TokKind::Ident
                || !toks[idx + 3].is_punct('(')
            {
                continue;
            }
            if !HASH_ITER_METHODS.iter().any(|m| toks[idx + 2].is_ident(m)) {
                continue;
            }
            if !self.is_hash_receiver(idx) {
                continue;
            }
            let close = match_close(toks, idx + 3, '(', ')');
            if let Some(r) = self.chain_reducer(close) {
                out.push(RawFinding {
                    line: toks[r].line,
                    rule: NONDET_FLOAT_REDUCTION,
                    message: format!(
                        "`.{}()` over `{}`'s HashMap/HashSet iteration order is \
                         nondeterministic run-over-run for float reductions; iterate a \
                         BTreeMap, the arena's key-sorted ids, or collect-and-sort first",
                        toks[r].text, toks[idx].text
                    ),
                });
            }
        }
        // (b) `for .. in <hash>` loops accumulating with `+=`-style ops.
        let mut i = 0usize;
        while i < toks.len() {
            if self.test[i] || !toks[i].is_ident("for") {
                i += 1;
                continue;
            }
            // `for<'a>` higher-ranked bounds are not loops.
            if i + 1 < toks.len() && toks[i + 1].is_punct('<') {
                i += 2;
                continue;
            }
            // Pattern up to `in` at depth 0.
            let mut j = i + 1;
            let mut depth = 0isize;
            let mut found_in = None;
            while j < toks.len() {
                if depth == 0 && toks[j].is_ident("in") {
                    found_in = Some(j);
                    break;
                }
                if depth == 0 && (toks[j].is_punct('{') || toks[j].is_punct(';')) {
                    break;
                }
                depth += depth_delta(&toks[j]);
                j += 1;
            }
            let Some(in_idx) = found_in else {
                i += 1;
                continue;
            };
            // Iterated expression up to `{` at depth 0.
            let mut e = in_idx + 1;
            while e < toks.len() && (toks[e].is_punct('&') || toks[e].is_ident("mut")) {
                e += 1;
            }
            let mut body_open = None;
            let mut k = e;
            let mut kdepth = 0isize;
            while k < toks.len() {
                if kdepth == 0 && toks[k].is_punct('{') {
                    body_open = Some(k);
                    break;
                }
                kdepth += depth_delta(&toks[k]);
                k += 1;
            }
            let (Some(body_open), true) = (body_open, e < toks.len()) else {
                i = in_idx + 1;
                continue;
            };
            // Root of the iterated expression: `name...` or `self.name...`.
            let root = if toks[e].is_ident("self")
                && e + 2 < toks.len()
                && toks[e + 1].is_punct('.')
                && toks[e + 2].kind == TokKind::Ident
            {
                Some(e + 2)
            } else if toks[e].kind == TokKind::Ident {
                Some(e)
            } else {
                None
            };
            let is_hash = root.is_some_and(|r| self.is_hash_receiver(r));
            if !is_hash {
                i = body_open + 1;
                continue;
            }
            let body_close = match_close(toks, body_open, '{', '}');
            for b in body_open + 1..body_close {
                // `+=` / `-=` / `*=` / `/=`: order-sensitive for floats.
                // (`&= |= ^=` are exact/commutative and stay unflagged.)
                let compound = matches!(
                    toks[b].kind,
                    TokKind::Punct('+')
                        | TokKind::Punct('-')
                        | TokKind::Punct('*')
                        | TokKind::Punct('/')
                ) && b + 1 < body_close
                    && toks[b + 1].is_punct('=');
                if compound {
                    out.push(RawFinding {
                        line: toks[b].line,
                        rule: NONDET_FLOAT_REDUCTION,
                        message: format!(
                            "accumulation inside `for` over `{}`'s HashMap/HashSet \
                             iteration order is nondeterministic for floats; iterate in \
                             sorted order (or lint:allow with the reason it is exact)",
                            toks[root.unwrap_or(e)].text
                        ),
                    });
                }
            }
            i = body_open + 1;
        }
    }

    /// Rule 2: `partial_cmp(..).unwrap()` inside a comparator closure.
    fn rule_nan_unsafe_sort(&self, out: &mut Vec<RawFinding>) {
        let toks = self.toks;
        for idx in 0..toks.len() {
            if self.test[idx] {
                continue;
            }
            if toks[idx].kind != TokKind::Ident
                || !SORTERS.iter().any(|s| toks[idx].is_ident(s))
                || idx + 1 >= toks.len()
                || !toks[idx + 1].is_punct('(')
            {
                continue;
            }
            let close = match_close(toks, idx + 1, '(', ')');
            for j in idx + 2..close {
                if toks[j].is_ident("partial_cmp") && j + 1 < close && toks[j + 1].is_punct('(') {
                    let pc = match_close(toks, j + 1, '(', ')');
                    let unwrapped = pc + 2 < toks.len()
                        && toks[pc + 1].is_punct('.')
                        && (toks[pc + 2].is_ident("unwrap") || toks[pc + 2].is_ident("expect"));
                    if unwrapped {
                        out.push(RawFinding {
                            line: toks[j].line,
                            rule: NAN_UNSAFE_SORT,
                            message: format!(
                                "`partial_cmp().{}()` inside `{}` panics on NaN keys; \
                                 use `f64::total_cmp`",
                                toks[pc + 2].text,
                                toks[idx].text
                            ),
                        });
                    }
                }
            }
        }
    }

    /// Rule 3: narrowing `as` casts in id/arena construction without a
    /// visible bound. `expr.min(..) as u32`, `expr.clamp(..) as u32`, and
    /// literal casts are treated as guarded.
    fn rule_truncating_cast(&self, out: &mut Vec<RawFinding>) {
        let toks = self.toks;
        for idx in 1..toks.len() {
            if self.test[idx] || self.guarded[idx] {
                continue;
            }
            if !toks[idx].is_ident("as") || idx + 1 >= toks.len() {
                continue;
            }
            let target = &toks[idx + 1];
            let narrow =
                target.is_ident("u32") || target.is_ident("u16") || target.is_ident("LinkId");
            if !narrow {
                continue;
            }
            // Guards: float/int literal sources are visibly bounded, and a
            // `.min(..)`/`.clamp(..)` call immediately before the cast is an
            // explicit bound.
            let prev = &toks[idx - 1];
            if prev.kind == TokKind::Float || prev.kind == TokKind::Int {
                continue;
            }
            if prev.is_punct(')') {
                let open = match_open(toks, idx - 1, '(', ')');
                if open >= 2
                    && toks[open - 2].is_punct('.')
                    && (toks[open - 1].is_ident("min") || toks[open - 1].is_ident("clamp"))
                {
                    continue;
                }
            }
            out.push(RawFinding {
                line: toks[idx].line,
                rule: TRUNCATING_CAST,
                message: format!(
                    "`as {}` truncates silently on overflow; use the checked \
                     `dense_u32`/`JobId::from_usize` constructors, `try_into`, or bound \
                     the value with `.min()`/`.clamp()` first",
                    target.text
                ),
            });
        }
    }

    /// Rule 4: implicit panics in the netsim hot path.
    fn rule_panic_in_engine(&self, out: &mut Vec<RawFinding>) {
        let toks = self.toks;
        for idx in 0..toks.len() {
            if self.test[idx] || self.guarded[idx] {
                continue;
            }
            // `.unwrap()` / `.expect(..)`.
            if idx >= 1
                && toks[idx - 1].is_punct('.')
                && (toks[idx].is_ident("unwrap") || toks[idx].is_ident("expect"))
                && idx + 1 < toks.len()
                && toks[idx + 1].is_punct('(')
            {
                out.push(RawFinding {
                    line: toks[idx].line,
                    rule: PANIC_IN_ENGINE,
                    message: format!(
                        "`.{}()` in the netsim hot path; handle the case or add an \
                         audited lint:allow stating the invariant that rules it out",
                        toks[idx].text
                    ),
                });
                continue;
            }
            // `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
            let panicky = ["panic", "unreachable", "todo", "unimplemented"];
            if panicky.iter().any(|p| toks[idx].is_ident(p))
                && idx + 1 < toks.len()
                && toks[idx + 1].is_punct('!')
            {
                out.push(RawFinding {
                    line: toks[idx].line,
                    rule: PANIC_IN_ENGINE,
                    message: format!(
                        "`{}!` in the netsim hot path; handle the case or add an \
                         audited lint:allow stating the invariant that rules it out",
                        toks[idx].text
                    ),
                });
                continue;
            }
            // Map indexing `m[..]`: panics on absent keys.
            if toks[idx].kind == TokKind::Ident
                && idx + 1 < toks.len()
                && toks[idx + 1].is_punct('[')
                && self.is_map_receiver(idx)
            {
                out.push(RawFinding {
                    line: toks[idx].line,
                    rule: PANIC_IN_ENGINE,
                    message: format!(
                        "indexing map `{}` panics on absent keys in the netsim hot \
                         path; use `.get()` or add an audited lint:allow",
                        toks[idx].text
                    ),
                });
            }
        }
    }

    /// Run every rule applicable to `path` (workspace-relative, `/`-separated).
    pub fn run(&self, path: &str) -> Vec<RawFinding> {
        let mut out = Vec::new();
        self.rule_nondet_float_reduction(&mut out);
        self.rule_nan_unsafe_sort(&mut out);
        self.rule_truncating_cast(&mut out);
        if HOT_PATH_SUFFIXES.iter().any(|s| path.ends_with(s)) {
            self.rule_panic_in_engine(&mut out);
        }
        out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
        out
    }
}
