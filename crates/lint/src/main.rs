//! CLI for the workspace determinism & panic-safety lint.
//!
//! ```text
//! topoopt-lint check [--json] [ROOT]   # exit 1 on any unsuppressed finding
//! topoopt-lint rules                   # list the rules
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: topoopt-lint check [--json] [ROOT]\n       topoopt-lint rules";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("rules") => {
            for r in topoopt_lint::rules::RULES {
                println!("{r}");
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let mut json = false;
            let mut root: Option<PathBuf> = None;
            for a in it {
                match a.as_str() {
                    "--json" => json = true,
                    s if s.starts_with('-') => {
                        eprintln!("unknown flag `{s}`\n{USAGE}");
                        return ExitCode::from(2);
                    }
                    s if root.is_none() => root = Some(PathBuf::from(s)),
                    s => {
                        eprintln!("unexpected argument `{s}`\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            let root = root.unwrap_or_else(|| PathBuf::from("."));
            if !root.join("Cargo.toml").exists() {
                eprintln!(
                    "{}: no Cargo.toml here — point me at the workspace root",
                    root.display()
                );
                return ExitCode::from(2);
            }
            let report = match topoopt_lint::lint_workspace(&root) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("io error while scanning {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            if json {
                print!("{}", report.to_json());
            } else {
                for f in &report.findings {
                    println!("{}", f.render());
                }
                println!(
                    "{} files scanned, {} finding(s), {} suppressed by audited lint:allow",
                    report.files_scanned,
                    report.findings.len(),
                    report.suppressed.len()
                );
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
