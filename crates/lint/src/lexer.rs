//! Minimal Rust lexer for the workspace lint.
//!
//! Token-level only — no grammar, no `syn`. Produces a stream of
//! significant tokens (identifiers, literals, single-character punctuation)
//! plus a side list of comments, both tagged with 1-based line numbers.
//! Multi-character operators are left as adjacent single-character punct
//! tokens; rules match them by adjacency, which is unambiguous for every
//! pattern the rules care about (`+=` can never lex from valid Rust as two
//! separate expressions meeting at `+` `=`).

/// Kind of a significant token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `let`, `as`, names, ...).
    Ident,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-9`, `0.5f32`).
    Float,
    /// String or byte-string literal, including raw forms.
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Single punctuation character (`.`, `(`, `=`, ...).
    Punct(char),
}

/// A significant token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Tok {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment (line or block) with the line its first character is on.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: usize,
}

/// Lex `src` into significant tokens and comments. Never fails: unexpected
/// bytes become punct tokens, unterminated literals run to end of input —
/// good enough for a lint that only ever sees code rustc already accepted.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    let push = |toks: &mut Vec<Tok>, kind: TokKind, text: String, line: usize| {
        toks.push(Tok { kind, text, line });
    };

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && (b[i + 1] == '/' || b[i + 1] == '*') {
            let start_line = line;
            let mut text = String::new();
            if b[i + 1] == '/' {
                while i < n && b[i] != '\n' {
                    text.push(b[i]);
                    i += 1;
                }
            } else {
                // Nested block comments.
                let mut depth = 0usize;
                while i < n {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        text.push_str("/*");
                        i += 2;
                        continue;
                    }
                    if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        text.push_str("*/");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                        continue;
                    }
                    if b[i] == '\n' {
                        line += 1;
                    }
                    text.push(b[i]);
                    i += 1;
                }
            }
            comments.push(Comment { text, line: start_line });
            continue;
        }
        // Raw strings and raw identifiers: r"..", r#".."#, br#".."#, r#ident.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (j, is_b) =
                if c == 'b' && b[i + 1] == 'r' { (i + 2, true) } else { (i + 1, false) };
            let j0 = if is_b {
                j
            } else if c == 'r' {
                i + 1
            } else {
                usize::MAX
            };
            if j0 != usize::MAX && j0 < n && (b[j0] == '"' || b[j0] == '#') {
                // Count hashes.
                let mut k = j0;
                let mut hashes = 0usize;
                while k < n && b[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && b[k] == '"' {
                    // Raw (byte) string: scan to `"` followed by `hashes` #s.
                    let start_line = line;
                    let mut text = String::new();
                    k += 1;
                    while k < n {
                        if b[k] == '"' {
                            let mut h = 0usize;
                            while k + 1 + h < n && h < hashes && b[k + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                k += 1 + hashes;
                                break;
                            }
                        }
                        if b[k] == '\n' {
                            line += 1;
                        }
                        text.push(b[k]);
                        k += 1;
                    }
                    push(&mut toks, TokKind::Str, text, start_line);
                    i = k;
                    continue;
                }
                if hashes == 1 && k < n && is_ident_start(b[k]) && !is_b {
                    // Raw identifier r#ident.
                    let mut k2 = k;
                    let mut text = String::new();
                    while k2 < n && is_ident_cont(b[k2]) {
                        text.push(b[k2]);
                        k2 += 1;
                    }
                    push(&mut toks, TokKind::Ident, text, line);
                    i = k2;
                    continue;
                }
            }
        }
        // Strings and byte strings.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let start_line = line;
            let mut k = if c == 'b' { i + 2 } else { i + 1 };
            let mut text = String::new();
            while k < n {
                if b[k] == '\\' && k + 1 < n {
                    text.push(b[k]);
                    text.push(b[k + 1]);
                    if b[k + 1] == '\n' {
                        line += 1;
                    }
                    k += 2;
                    continue;
                }
                if b[k] == '"' {
                    k += 1;
                    break;
                }
                if b[k] == '\n' {
                    line += 1;
                }
                text.push(b[k]);
                k += 1;
            }
            push(&mut toks, TokKind::Str, text, start_line);
            i = k;
            continue;
        }
        // Char literals vs lifetimes.
        if c == '\'' {
            // `'a` followed by non-quote is a lifetime; `'a'`, `'\n'` are chars.
            if i + 1 < n && b[i + 1] == '\\' {
                // Escaped char literal: consume to closing quote.
                let mut k = i + 2;
                while k < n && b[k] != '\'' {
                    if b[k] == '\\' {
                        k += 1;
                    }
                    k += 1;
                }
                push(&mut toks, TokKind::Char, String::new(), line);
                i = (k + 1).min(n);
                continue;
            }
            if i + 2 < n && b[i + 2] == '\'' {
                push(&mut toks, TokKind::Char, b[i + 1].to_string(), line);
                i += 3;
                continue;
            }
            // Lifetime.
            let mut k = i + 1;
            let mut text = String::new();
            while k < n && is_ident_cont(b[k]) {
                text.push(b[k]);
                k += 1;
            }
            push(&mut toks, TokKind::Lifetime, text, line);
            i = k;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let mut k = i;
            let mut text = String::new();
            let mut float = false;
            if c == '0' && i + 1 < n && (b[i + 1] == 'x' || b[i + 1] == 'o' || b[i + 1] == 'b') {
                text.push(b[k]);
                text.push(b[k + 1]);
                k += 2;
                while k < n && (b[k].is_ascii_alphanumeric() || b[k] == '_') {
                    text.push(b[k]);
                    k += 1;
                }
            } else {
                while k < n && (b[k].is_ascii_digit() || b[k] == '_') {
                    text.push(b[k]);
                    k += 1;
                }
                // Fractional part: consume `.` only when followed by a digit
                // (so `0..n` and `1.max(2)` lex the dot separately).
                if k + 1 < n && b[k] == '.' && b[k + 1].is_ascii_digit() {
                    float = true;
                    text.push('.');
                    k += 1;
                    while k < n && (b[k].is_ascii_digit() || b[k] == '_') {
                        text.push(b[k]);
                        k += 1;
                    }
                } else if k < n && b[k] == '.' && (k + 1 >= n || !is_ident_start(b[k + 1])) {
                    // Trailing-dot float like `1.` (but not `1.max(..)`).
                    if k + 1 >= n || b[k + 1] != '.' {
                        float = true;
                        text.push('.');
                        k += 1;
                    }
                }
                // Exponent.
                if k < n && (b[k] == 'e' || b[k] == 'E') {
                    let mut k2 = k + 1;
                    if k2 < n && (b[k2] == '+' || b[k2] == '-') {
                        k2 += 1;
                    }
                    if k2 < n && b[k2].is_ascii_digit() {
                        float = true;
                        text.push(b[k]);
                        k += 1;
                        while k < n && (b[k].is_ascii_digit() || b[k] == '+' || b[k] == '-') {
                            text.push(b[k]);
                            k += 1;
                        }
                    }
                }
                // Suffix (`u32`, `f64`, ...). An `f` suffix marks a float.
                if k < n && is_ident_start(b[k]) {
                    if b[k] == 'f' {
                        float = true;
                    }
                    while k < n && is_ident_cont(b[k]) {
                        text.push(b[k]);
                        k += 1;
                    }
                }
            }
            let kind = if float { TokKind::Float } else { TokKind::Int };
            push(&mut toks, kind, text, line);
            i = k;
            continue;
        }
        // Identifiers and keywords.
        if is_ident_start(c) {
            let mut k = i;
            let mut text = String::new();
            while k < n && is_ident_cont(b[k]) {
                text.push(b[k]);
                k += 1;
            }
            push(&mut toks, TokKind::Ident, text, line);
            i = k;
            continue;
        }
        // Everything else: single punctuation character.
        push(&mut toks, TokKind::Punct(c), c.to_string(), line);
        i += 1;
    }
    (toks, comments)
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).0.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn numbers_ranges_and_method_calls() {
        let t = kinds("0..n as u32");
        assert_eq!(t[0], (TokKind::Int, "0".into()));
        assert_eq!(t[1], (TokKind::Punct('.'), ".".into()));
        assert_eq!(t[2], (TokKind::Punct('.'), ".".into()));
        assert_eq!(t[3], (TokKind::Ident, "n".into()));
        let t = kinds("1.0e-9 9.0f64 1_000u64 1.5.max(2.0)");
        assert_eq!(t[0].0, TokKind::Float);
        assert_eq!(t[1].0, TokKind::Float);
        assert_eq!(t[2].0, TokKind::Int);
        assert_eq!(t[3], (TokKind::Float, "1.5".into()));
        assert_eq!(t[4], (TokKind::Punct('.'), ".".into()));
        assert_eq!(t[5], (TokKind::Ident, "max".into()));
    }

    #[test]
    fn lifetimes_chars_strings_comments() {
        let (toks, comments) = lex("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; } // done");
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Char && t.text == "x"));
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].text, "// done");
        let (toks, comments) = lex("let s = r#\"raw \" string\"#; /* block\nnested /* deep */ */");
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].line, 1);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let (toks, comments) = lex("a\nb\n// c\nd");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(comments[0].line, 3);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn strings_with_escapes_do_not_leak_tokens() {
        let t = kinds(r#"let s = "partial_cmp(\").unwrap()";"#);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert!(!t.iter().any(|(k, s)| *k == TokKind::Ident && s == "unwrap"));
    }
}
