//! `topoopt-lint` — the workspace determinism & panic-safety lint.
//!
//! Every bit-identity contract in this reproduction (flat engine vs.
//! map-keyed loop, persistent vs. rebuild, sharded vs. monolithic) rests on
//! invariants that used to be enforced only by memory: no float reductions
//! in `HashMap` iteration order (the PR-5 `carried_bytes` bug), no
//! NaN-unsafe `partial_cmp().unwrap()` comparators (patched twice, in PRs 3
//! and 4), no silently-truncating id casts, no implicit panics in the
//! netsim hot path. This crate machine-checks them as four named rules over
//! a token-level lex of the workspace's `.rs` files — its own lexer, no
//! `syn`, same raw-token approach the vendored serde derive already proved
//! out.
//!
//! Suppressions are explicit and auditable:
//!
//! ```text
//! // lint:allow(panic-in-engine): heap non-empty — peeked one event above
//! ```
//!
//! on the finding's line or the line directly above it. The reason is
//! mandatory; a malformed comment is a `bad-allow` finding and a
//! suppression that matches nothing is a `stale-allow` finding, so the
//! allow inventory can never rot silently.

pub mod lexer;
pub mod rules;

use rules::{RawFinding, BAD_ALLOW, RULES, STALE_ALLOW};
use std::fs;
use std::path::{Path, PathBuf};

/// A finding bound to a workspace-relative file path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: String,
    pub message: String,
}

impl Finding {
    /// rustc-style one-liner: `file:line: rule: message`.
    pub fn render(&self) -> String {
        format!("{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// Result of linting a file set.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unsuppressed findings — any entry here fails the build.
    pub findings: Vec<Finding>,
    /// Findings silenced by an audited `lint:allow`, kept for the report.
    pub suppressed: Vec<Finding>,
    pub files_scanned: usize,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// JSON report (hand-rolled writer — this crate has no dependencies so
    /// it builds before, and independently of, everything it checks).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
                    c => out.push(c),
                }
            }
            out
        }
        fn list(items: &[Finding]) -> String {
            let rows: Vec<String> = items
                .iter()
                .map(|f| {
                    format!(
                        "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                        esc(&f.file),
                        f.line,
                        esc(&f.rule),
                        esc(&f.message)
                    )
                })
                .collect();
            if rows.is_empty() {
                "[]".to_string()
            } else {
                format!("[\n{}\n  ]", rows.join(",\n"))
            }
        }
        format!(
            "{{\n  \"files_scanned\": {},\n  \"findings\": {},\n  \"suppressed\": {}\n}}\n",
            self.files_scanned,
            list(&self.findings),
            list(&self.suppressed)
        )
    }
}

/// One parsed `// lint:allow(rule): reason` comment. `target` is the line
/// the allow covers besides its own: for a comment-only line (possibly the
/// first of a multi-line comment block) that is the next line holding any
/// code; for a trailing comment it is the comment's own line.
struct Allow {
    line: usize,
    target: usize,
    rule: String,
}

/// Lint one file's source. `path` is the display path (workspace-relative);
/// it also selects the path-scoped `panic-in-engine` rule.
pub fn lint_source(path: &str, src: &str) -> (Vec<Finding>, Vec<Finding>) {
    let (toks, comments) = lexer::lex(src);
    let analysis = rules::FileAnalysis::new(&toks);
    let raw = analysis.run(path);

    // Parse suppression comments outside test items.
    let in_test =
        |line: usize| analysis.test_line_ranges().iter().any(|&(lo, hi)| line >= lo && line <= hi);
    let mut allows: Vec<Allow> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    for c in &comments {
        let Some(pos) = c.text.find("lint:allow") else { continue };
        if in_test(c.line) {
            continue;
        }
        // Doc comments never carry functional suppressions — they describe
        // the mechanism (as this crate's own docs do).
        let doc = ["///", "//!", "/**", "/*!"].iter().any(|p| c.text.starts_with(p));
        if doc {
            continue;
        }
        let rest = &c.text[pos + "lint:allow".len()..];
        let parsed = rest.strip_prefix('(').and_then(|r| {
            let close = r.find(')')?;
            let rule = r[..close].trim().to_string();
            let reason = r[close + 1..].trim_start().strip_prefix(':')?.trim();
            if reason.is_empty() {
                None
            } else {
                Some(rule)
            }
        });
        match parsed {
            Some(rule) if RULES.contains(&rule.as_str()) => {
                let has_code = toks.iter().any(|t| t.line == c.line);
                let target = if has_code {
                    c.line
                } else {
                    toks.iter().map(|t| t.line).filter(|&l| l > c.line).min().unwrap_or(c.line)
                };
                allows.push(Allow { line: c.line, target, rule });
            }
            Some(rule) => findings.push(Finding {
                file: path.to_string(),
                line: c.line,
                rule: BAD_ALLOW.to_string(),
                message: format!(
                    "unknown rule `{rule}` in lint:allow; rules are: {}",
                    RULES.join(", ")
                ),
            }),
            None => findings.push(Finding {
                file: path.to_string(),
                line: c.line,
                rule: BAD_ALLOW.to_string(),
                message: "malformed lint:allow — the form is `lint:allow(<rule>): <reason>` \
                          and the reason is mandatory"
                    .to_string(),
            }),
        }
    }

    // Apply: an allow covers findings of its rule on its own line or on the
    // first code line after its comment block.
    let mut used = vec![false; allows.len()];
    let mut suppressed: Vec<Finding> = Vec::new();
    for RawFinding { line, rule, message } in raw {
        let hit =
            allows.iter().position(|a| a.rule == rule && (a.line == line || a.target == line));
        let f = Finding { file: path.to_string(), line, rule: rule.to_string(), message };
        match hit {
            Some(i) => {
                used[i] = true;
                suppressed.push(f);
            }
            None => findings.push(f),
        }
    }
    for (a, _) in allows.iter().zip(&used).filter(|(_, &u)| !u) {
        findings.push(Finding {
            file: path.to_string(),
            line: a.line,
            rule: STALE_ALLOW.to_string(),
            message: format!(
                "lint:allow({}) matches no finding on this line or the code line below \
                 its comment — delete it or fix the rule name",
                a.rule
            ),
        });
    }
    findings.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    (findings, suppressed)
}

/// Directory names whose contents are exempt: generated/vendored code and
/// test/bench/example code (the rules guard non-test code by design — see
/// README "Determinism invariants and the workspace lint").
const SKIP_DIRS: &[&str] =
    &["target", "vendor", ".git", "tests", "benches", "examples", "fixtures"];

/// Recursively collect workspace `.rs` files under `root`, sorted.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> =
            fs::read_dir(&dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if !SKIP_DIRS.contains(&name) {
                    stack.push(p);
                }
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every non-exempt `.rs` file under `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let files = collect_files(root)?;
    let mut report = LintReport::default();
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path);
        let display = rel.to_string_lossy().replace('\\', "/");
        let src = fs::read_to_string(path)?;
        let (findings, suppressed) = lint_source(&display, &src);
        report.findings.extend(findings);
        report.suppressed.extend(suppressed);
        report.files_scanned += 1;
    }
    Ok(report)
}
