//! Per-architecture interconnect cost (§5.2, Figure 10).
//!
//! Accounting rules follow Appendix G:
//!
//! * **Fat-tree / Ideal Switch** — a full-bisection k-ary fat-tree has
//!   `5k³/4` switch ports; every host has one NIC; every NIC and switch port
//!   carries a transceiver; fibers cost 30 ¢/m with lengths uniform in
//!   0–1000 m (expected 150 $/fiber).
//! * **TopoOpt** — `n·d` NIC ports and transceivers, `2·n·d` patch-panel
//!   ports (the look-ahead design doubles the optical ports), and one 1×2
//!   mechanical switch per interface.
//! * **OCS-reconfig** — `n·d` OCS ports instead of the doubled patch-panel
//!   ports.
//! * **SiP-ML** — per-GPU optics: `n·4·d` OCS-class ports plus per-GPU
//!   transceivers (the priciest fabric, as in the paper).
//! * **Expander** — NICs, transceivers and fibers only (no switching
//!   elements at all): the cheapest fabric.
//! * **Oversubscribed Fat-tree** — a fat-tree with half the
//!   aggregation/core ports.

use crate::components::component_costs;
use serde::{Deserialize, Serialize};
use topoopt_graph::topologies::fat_tree_arity_for_hosts;

/// Architectures the cost model knows about (mirrors
/// `topoopt_core::Architecture`, duplicated here to keep the cost crate
/// independent of the core crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostedArchitecture {
    /// TopoOpt with patch panels and the look-ahead design.
    TopoOptPatchPanel,
    /// TopoOpt / OCS-reconfig built from 3D-MEMS OCS ports.
    TopoOptOcs,
    /// Full-bisection fat-tree at the given link bandwidth.
    FatTree,
    /// 2:1 oversubscribed fat-tree.
    OversubFatTree,
    /// Ideal Switch (priced as a full-bisection fat-tree of d·B links).
    IdealSwitch,
    /// SiP-ML per-GPU optical fabric.
    SipMl,
    /// Expander (NICs + fibers only).
    Expander,
}

/// Cost breakdown in dollars.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// NIC cost.
    pub nics: f64,
    /// Transceivers.
    pub transceivers: f64,
    /// Electrical switch ports.
    pub electrical_ports: f64,
    /// Optical ports (patch panel or OCS) plus 1×2 switches.
    pub optical_ports: f64,
    /// Fiber cost.
    pub fibers: f64,
}

impl CostBreakdown {
    /// Total interconnect cost.
    pub fn total(&self) -> f64 {
        self.nics + self.transceivers + self.electrical_ports + self.optical_ports + self.fibers
    }
}

/// Expected fiber cost: 30 ¢/m, uniform length in 0–1000 m.
const FIBER_COST: f64 = 150.0;
/// GPUs per server (for SiP-ML's per-GPU optics).
const GPUS_PER_SERVER: f64 = 4.0;

/// Cost of interconnecting `num_servers` servers with degree `degree` and
/// per-interface bandwidth `link_bps`, for the given architecture.
///
/// For the Fat-tree variants `link_bps` is interpreted as the tree's link
/// bandwidth (each server has a single NIC of that speed); for the others it
/// is the per-interface bandwidth.
pub fn interconnect_cost(
    arch: CostedArchitecture,
    num_servers: usize,
    degree: usize,
    link_bps: f64,
) -> CostBreakdown {
    let n = num_servers as f64;
    let d = degree as f64;
    match arch {
        CostedArchitecture::FatTree => fat_tree_cost(num_servers, link_bps, 1.0),
        CostedArchitecture::OversubFatTree => fat_tree_cost(num_servers, link_bps, 0.5),
        CostedArchitecture::IdealSwitch => fat_tree_cost(num_servers, d * link_bps, 1.0),
        CostedArchitecture::TopoOptPatchPanel => {
            let c = component_costs(link_bps);
            CostBreakdown {
                nics: n * d * c.nic,
                transceivers: n * d * c.transceiver,
                electrical_ports: 0.0,
                // Look-ahead design: 2 patch-panel ports and one 1x2 switch
                // per interface (Appendix C).
                optical_ports: n * d * (2.0 * c.patch_panel_port + c.one_by_two_switch),
                fibers: n * d * FIBER_COST,
            }
        }
        CostedArchitecture::TopoOptOcs => {
            let c = component_costs(link_bps);
            CostBreakdown {
                nics: n * d * c.nic,
                transceivers: n * d * c.transceiver,
                electrical_ports: 0.0,
                optical_ports: n * d * c.ocs_port,
                fibers: n * d * FIBER_COST,
            }
        }
        CostedArchitecture::SipMl => {
            let c = component_costs(link_bps);
            CostBreakdown {
                nics: 0.0,
                transceivers: n * GPUS_PER_SERVER * d * c.transceiver,
                electrical_ports: 0.0,
                optical_ports: n * GPUS_PER_SERVER * d * c.ocs_port,
                fibers: n * GPUS_PER_SERVER * d * FIBER_COST,
            }
        }
        CostedArchitecture::Expander => {
            let c = component_costs(link_bps);
            CostBreakdown {
                nics: n * d * c.nic,
                transceivers: n * d * c.transceiver,
                electrical_ports: 0.0,
                optical_ports: 0.0,
                fibers: n * d * FIBER_COST,
            }
        }
    }
}

/// Full-bisection fat-tree cost at `link_bps` per link; `core_fraction`
/// scales the non-host-facing ports (0.5 models 2:1 oversubscription).
///
/// Links faster than 200 Gbps are built from parallel 100 Gbps lanes
/// (Appendix G: "for 200 Gbps, we use more 100 Gbps ports and fibers,
/// because they were less expensive than high-end components") — this is
/// what makes the Ideal Switch (d·B links) substantially pricier than
/// TopoOpt.
fn fat_tree_cost(num_servers: usize, link_bps: f64, core_fraction: f64) -> CostBreakdown {
    let (c, lanes) = if link_bps > 200.0e9 {
        (component_costs(100.0e9), (link_bps / 100.0e9).ceil())
    } else {
        (component_costs(link_bps), 1.0)
    };
    let k = fat_tree_arity_for_hosts(num_servers) as f64;
    let total_switch_ports = 5.0 * k.powi(3) / 4.0;
    let host_ports = k.powi(3) / 4.0;
    let upper_ports = (total_switch_ports - host_ports) * core_fraction;
    let switch_ports = (host_ports + upper_ports) * lanes;
    let n = num_servers as f64;
    CostBreakdown {
        nics: n * lanes * c.nic,
        transceivers: (n * lanes + switch_ports) * c.transceiver,
        electrical_ports: switch_ports * c.electrical_switch_port,
        optical_ports: 0.0,
        fibers: (n * lanes + switch_ports / 2.0) * FIBER_COST,
    }
}

/// The cost-equivalent Fat-tree link bandwidth `d·B'` used in §5.3: scale a
/// full `d·B` Fat-tree's bandwidth down by the cost ratio between that
/// Fat-tree and the TopoOpt fabric of the same `n, d, B`, clamped to at
/// least 10 Gbps.
pub fn equivalent_fat_tree_bandwidth(num_servers: usize, degree: usize, link_bps: f64) -> f64 {
    let topoopt =
        interconnect_cost(CostedArchitecture::TopoOptPatchPanel, num_servers, degree, link_bps)
            .total();
    let full =
        interconnect_cost(CostedArchitecture::IdealSwitch, num_servers, degree, link_bps).total();
    let ratio = (topoopt / full).clamp(0.05, 1.0);
    (degree as f64 * link_bps * ratio).max(10.0e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: f64 = 1.0e6;

    #[test]
    fn ideal_switch_is_about_3x_topoopt() {
        // §5.2: "the ratio of Ideal Switch's cost to TopoOpT's cost is 3.2x
        // on average". Check the ratio lands in the right ballpark across
        // the Figure 10 sweep.
        let mut ratios = Vec::new();
        for &n in &[128usize, 432, 1024, 2000] {
            for &(d, b) in &[(4usize, 100.0e9), (8usize, 200.0e9)] {
                let ideal = interconnect_cost(CostedArchitecture::IdealSwitch, n, d, b).total();
                let topo =
                    interconnect_cost(CostedArchitecture::TopoOptPatchPanel, n, d, b).total();
                ratios.push(ideal / topo);
            }
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(avg > 2.0 && avg < 5.0, "avg Ideal/TopoOpt cost ratio = {avg}");
    }

    #[test]
    fn ocs_variant_is_more_expensive_than_patch_panel() {
        // §5.2: OCS ports make TopoOpt ~1.3x pricier than patch panels.
        let pp = interconnect_cost(CostedArchitecture::TopoOptPatchPanel, 432, 4, 100.0e9).total();
        let ocs = interconnect_cost(CostedArchitecture::TopoOptOcs, 432, 4, 100.0e9).total();
        let ratio = ocs / pp;
        assert!(ratio > 1.1 && ratio < 1.6, "OCS/patch-panel ratio = {ratio}");
    }

    #[test]
    fn sipml_most_expensive_expander_cheapest() {
        let n = 432;
        let d = 4;
        let b = 100.0e9;
        // Compare the fabrics Figure 10 plots: the Fat-tree entry there is
        // the cost-equivalent one (same price as TopoOpt by construction),
        // so the relevant ordering is among TopoOpt, Ideal Switch, SiP-ML
        // and Expander.
        let costs: Vec<(CostedArchitecture, f64)> = [
            CostedArchitecture::TopoOptPatchPanel,
            CostedArchitecture::TopoOptOcs,
            CostedArchitecture::IdealSwitch,
            CostedArchitecture::SipMl,
            CostedArchitecture::Expander,
        ]
        .iter()
        .map(|&a| (a, interconnect_cost(a, n, d, b).total()))
        .collect();
        let sipml = costs.iter().find(|(a, _)| *a == CostedArchitecture::SipMl).unwrap().1;
        let expander = costs.iter().find(|(a, _)| *a == CostedArchitecture::Expander).unwrap().1;
        for (_, c) in &costs {
            assert!(sipml >= *c);
            assert!(expander <= *c);
        }
    }

    #[test]
    fn oversubscribed_fat_tree_is_cheaper_than_full() {
        let full = interconnect_cost(CostedArchitecture::FatTree, 128, 4, 400.0e9).total();
        let over = interconnect_cost(CostedArchitecture::OversubFatTree, 128, 4, 400.0e9).total();
        assert!(over < full);
    }

    #[test]
    fn cost_grows_with_cluster_size() {
        let small =
            interconnect_cost(CostedArchitecture::TopoOptPatchPanel, 128, 4, 100.0e9).total();
        let large =
            interconnect_cost(CostedArchitecture::TopoOptPatchPanel, 2000, 4, 100.0e9).total();
        assert!(large > 10.0 * small);
        // Order of magnitude sanity: a 128-server d=4 TopoOpt is well under
        // $2M (Figure 10a's y-axis range is 0.2–60 M$).
        assert!(small < 2.0 * M);
        assert!(small > 0.05 * M);
    }

    #[test]
    fn equivalent_fat_tree_bandwidth_is_reduced_but_positive() {
        let b_eq = equivalent_fat_tree_bandwidth(128, 4, 100.0e9);
        assert!(b_eq < 4.0 * 100.0e9);
        assert!(b_eq >= 10.0e9);
        // Cost parity: a fat-tree at the reduced bandwidth should cost about
        // the same as TopoOpt (within the tier granularity of Table 2).
        let ft = interconnect_cost(CostedArchitecture::FatTree, 128, 1, b_eq).total();
        let topo =
            interconnect_cost(CostedArchitecture::TopoOptPatchPanel, 128, 4, 100.0e9).total();
        assert!(ft < 2.5 * topo && topo < 2.5 * ft, "ft = {ft}, topo = {topo}");
    }
}
