//! Component price list (Table 2, Appendix G) and optical switching
//! technology characteristics (Table 1).

use serde::{Deserialize, Serialize};

/// Per-component prices in US dollars for one link-bandwidth tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentCosts {
    /// Link bandwidth this row applies to, in bits per second.
    pub link_bps: f64,
    /// Optical transceiver.
    pub transceiver: f64,
    /// NIC (per port).
    pub nic: f64,
    /// Electrical switch port.
    pub electrical_switch_port: f64,
    /// Optical patch panel port.
    pub patch_panel_port: f64,
    /// 3D-MEMS OCS port.
    pub ocs_port: f64,
    /// 1×2 mechanical optical switch (for the look-ahead design).
    pub one_by_two_switch: f64,
}

/// Table 2: component costs per link bandwidth. Unknown tiers pick the
/// nearest lower tier.
pub fn component_costs(link_bps: f64) -> ComponentCosts {
    let rows = [
        ComponentCosts {
            link_bps: 10.0e9,
            transceiver: 20.0,
            nic: 185.0,
            electrical_switch_port: 94.0,
            patch_panel_port: 100.0,
            ocs_port: 520.0,
            one_by_two_switch: 25.0,
        },
        ComponentCosts {
            link_bps: 25.0e9,
            transceiver: 39.0,
            nic: 185.0,
            electrical_switch_port: 144.0,
            patch_panel_port: 100.0,
            ocs_port: 520.0,
            one_by_two_switch: 25.0,
        },
        ComponentCosts {
            link_bps: 40.0e9,
            transceiver: 39.0,
            nic: 354.0,
            electrical_switch_port: 144.0,
            patch_panel_port: 100.0,
            ocs_port: 520.0,
            one_by_two_switch: 25.0,
        },
        ComponentCosts {
            link_bps: 100.0e9,
            transceiver: 99.0,
            nic: 678.0,
            electrical_switch_port: 187.0,
            patch_panel_port: 100.0,
            ocs_port: 520.0,
            one_by_two_switch: 25.0,
        },
        ComponentCosts {
            link_bps: 200.0e9,
            transceiver: 198.0,
            nic: 815.0,
            electrical_switch_port: 374.0,
            patch_panel_port: 100.0,
            ocs_port: 520.0,
            one_by_two_switch: 25.0,
        },
    ];
    let mut best = rows[0];
    for r in rows {
        if link_bps >= r.link_bps - 1.0 {
            best = r;
        }
    }
    best
}

/// One row of Table 1: characteristics of an optical switching technology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpticalTechnology {
    /// Technology name.
    pub name: String,
    /// Port count of the largest commercial/prototyped device.
    pub port_count: usize,
    /// Reconfiguration latency in seconds.
    pub reconfig_latency_s: f64,
    /// Typical insertion loss in dB (upper end of the reported range).
    pub insertion_loss_db: f64,
    /// Cost per port in dollars (`None` when not commercially available).
    pub cost_per_port: Option<f64>,
}

/// Table 1: the optical switching technologies TopoOpt can use.
pub fn optical_technologies() -> Vec<OpticalTechnology> {
    vec![
        OpticalTechnology {
            name: "Optical Patch Panels".to_string(),
            port_count: 1008,
            reconfig_latency_s: 120.0, // "minutes"
            insertion_loss_db: 0.5,
            cost_per_port: Some(100.0),
        },
        OpticalTechnology {
            name: "3D MEMS".to_string(),
            port_count: 384,
            reconfig_latency_s: 10.0e-3,
            insertion_loss_db: 2.7,
            cost_per_port: Some(520.0),
        },
        OpticalTechnology {
            name: "2D MEMS".to_string(),
            port_count: 300,
            reconfig_latency_s: 11.5e-6,
            insertion_loss_db: 20.0,
            cost_per_port: None,
        },
        OpticalTechnology {
            name: "Silicon Photonics".to_string(),
            port_count: 256,
            reconfig_latency_s: 900.0e-9,
            insertion_loss_db: 3.7,
            cost_per_port: None,
        },
        OpticalTechnology {
            name: "Tunable Lasers".to_string(),
            port_count: 128,
            reconfig_latency_s: 3.8e-9,
            insertion_loss_db: 13.0,
            cost_per_port: None,
        },
        OpticalTechnology {
            name: "RotorNet".to_string(),
            port_count: 64,
            reconfig_latency_s: 10.0e-6,
            insertion_loss_db: 2.0,
            cost_per_port: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_match_paper() {
        let c100 = component_costs(100.0e9);
        assert_eq!(c100.transceiver, 99.0);
        assert_eq!(c100.nic, 678.0);
        assert_eq!(c100.electrical_switch_port, 187.0);
        assert_eq!(c100.patch_panel_port, 100.0);
        assert_eq!(c100.ocs_port, 520.0);
        let c25 = component_costs(25.0e9);
        assert_eq!(c25.transceiver, 39.0);
        assert_eq!(c25.electrical_switch_port, 144.0);
    }

    #[test]
    fn unknown_tier_rounds_down() {
        let c = component_costs(50.0e9);
        assert_eq!(c.link_bps, 40.0e9);
        let c = component_costs(400.0e9);
        assert_eq!(c.link_bps, 200.0e9);
        let c = component_costs(1.0e9);
        assert_eq!(c.link_bps, 10.0e9);
    }

    #[test]
    fn optical_costs_are_bandwidth_independent() {
        assert_eq!(
            component_costs(10.0e9).patch_panel_port,
            component_costs(200.0e9).patch_panel_port
        );
        assert_eq!(component_costs(10.0e9).ocs_port, component_costs(200.0e9).ocs_port);
    }

    #[test]
    fn table1_matches_paper_ordering() {
        let t = optical_technologies();
        assert_eq!(t.len(), 6);
        assert_eq!(t[0].name, "Optical Patch Panels");
        assert_eq!(t[0].port_count, 1008);
        // OCS ports are ~5x more expensive than patch panel ports.
        let ratio = t[1].cost_per_port.unwrap() / t[0].cost_per_port.unwrap();
        assert!(ratio > 4.9 && ratio < 5.3);
        // Patch panels are the slowest to reconfigure, tunable lasers the
        // fastest (Table 1).
        let slowest = t.iter().map(|x| x.reconfig_latency_s).fold(0.0, f64::max);
        let fastest = t.iter().map(|x| x.reconfig_latency_s).fold(f64::INFINITY, f64::min);
        assert_eq!(slowest, t[0].reconfig_latency_s);
        assert_eq!(fastest, 3.8e-9);
    }
}
