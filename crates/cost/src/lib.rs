//! Interconnect cost model (§5.2, Appendix G).
//!
//! * [`components`] — the per-component price list of Table 2 and the
//!   optical-technology characteristics of Table 1.
//! * [`interconnect`] — per-architecture cost functions used to produce the
//!   Figure 10 comparison and to pick the cost-equivalent Fat-tree link
//!   bandwidth used throughout §5.3.

pub mod components;
pub mod interconnect;

pub use components::{component_costs, optical_technologies, ComponentCosts, OpticalTechnology};
pub use interconnect::{
    equivalent_fat_tree_bandwidth, interconnect_cost, CostBreakdown, CostedArchitecture,
};
