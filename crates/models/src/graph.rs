//! DNN models as DAGs of operators.

use crate::op::Operator;
use serde::{Deserialize, Serialize};

/// Index of an operator within a [`DnnModel`].
pub type OpId = usize;

/// One node of a model DAG: an operator plus its data-dependency
/// predecessors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpNode {
    /// The operator.
    pub op: Operator,
    /// Operators whose outputs feed this one (empty for inputs).
    pub inputs: Vec<OpId>,
}

/// A DNN model: a named DAG of operators plus the per-GPU batch size the
/// evaluation uses for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnnModel {
    /// Model name (e.g. "DLRM", "BERT").
    pub name: String,
    /// Operators in topological order (builders always append in dependency
    /// order).
    pub ops: Vec<OpNode>,
    /// Per-GPU batch size used by the evaluation section for this model.
    pub batch_per_gpu: usize,
}

impl DnnModel {
    /// Create an empty model.
    pub fn new(name: impl Into<String>, batch_per_gpu: usize) -> Self {
        DnnModel { name: name.into(), ops: Vec::new(), batch_per_gpu }
    }

    /// Append an operator with the given dependency list and return its id.
    ///
    /// # Panics
    /// Panics if any dependency refers to a not-yet-added operator (the
    /// builder must append in topological order).
    pub fn add_op(&mut self, op: Operator, inputs: Vec<OpId>) -> OpId {
        let id = self.ops.len();
        for &i in &inputs {
            assert!(i < id, "dependencies must precede the operator");
        }
        self.ops.push(OpNode { op, inputs });
        id
    }

    /// Number of operators.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Total trainable parameter bytes of the whole model.
    pub fn total_param_bytes(&self) -> f64 {
        self.ops.iter().map(|n| n.op.param_bytes()).sum()
    }

    /// Total forward+backward FLOPs for one sample.
    pub fn flops_per_sample(&self) -> f64 {
        self.ops.iter().map(|n| n.op.total_flops()).sum()
    }

    /// Total forward+backward FLOPs for a batch of `batch` samples.
    pub fn flops_per_batch(&self, batch: usize) -> f64 {
        self.flops_per_sample() * batch as f64
    }

    /// Sum of parameter bytes over embedding-table operators only.
    pub fn embedding_param_bytes(&self) -> f64 {
        self.ops.iter().filter(|n| n.op.is_embedding()).map(|n| n.op.param_bytes()).sum()
    }

    /// Sum of parameter bytes over non-embedding ("dense") operators.
    pub fn dense_param_bytes(&self) -> f64 {
        self.total_param_bytes() - self.embedding_param_bytes()
    }

    /// Ids of embedding-table operators.
    pub fn embedding_ops(&self) -> Vec<OpId> {
        self.ops.iter().enumerate().filter(|(_, n)| n.op.is_embedding()).map(|(i, _)| i).collect()
    }

    /// Direct consumers of an operator's output.
    pub fn consumers(&self, id: OpId) -> Vec<OpId> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, n)| n.inputs.contains(&id))
            .map(|(i, _)| i)
            .collect()
    }

    /// Verify the stored order is a valid topological order and every
    /// dependency exists.
    pub fn validate(&self) -> Result<(), String> {
        for (i, n) in self.ops.iter().enumerate() {
            for &dep in &n.inputs {
                if dep >= i {
                    return Err(format!(
                        "operator {} ({}) depends on later operator {}",
                        i, n.op.name, dep
                    ));
                }
            }
        }
        let mut names: Vec<&str> = self.ops.iter().map(|n| n.op.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        if names.len() != before {
            return Err("duplicate operator names".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    fn dense(name: &str, inf: usize, outf: usize) -> Operator {
        Operator::new(name, OpKind::Dense { in_features: inf, out_features: outf })
    }

    #[test]
    fn add_op_and_totals() {
        let mut m = DnnModel::new("toy", 32);
        let a = m.add_op(dense("fc1", 10, 20), vec![]);
        let b = m.add_op(dense("fc2", 20, 5), vec![a]);
        assert_eq!(m.num_ops(), 2);
        assert_eq!(m.consumers(a), vec![b]);
        assert!(m.total_param_bytes() > 0.0);
        assert!(m.flops_per_batch(64) > m.flops_per_sample());
        m.validate().unwrap();
    }

    #[test]
    #[should_panic]
    fn forward_dependency_panics() {
        let mut m = DnnModel::new("bad", 1);
        m.add_op(dense("fc1", 4, 4), vec![3]);
    }

    #[test]
    fn embedding_vs_dense_split() {
        let mut m = DnnModel::new("mix", 1);
        m.add_op(
            Operator::new("emb", OpKind::Embedding { rows: 1000, dim: 16, lookups: 1 }),
            vec![],
        );
        m.add_op(dense("fc", 16, 16), vec![0]);
        assert_eq!(m.embedding_ops(), vec![0]);
        assert!(m.embedding_param_bytes() > 0.0);
        assert!(m.dense_param_bytes() > 0.0);
        assert!(
            (m.embedding_param_bytes() + m.dense_param_bytes() - m.total_param_bytes()).abs()
                < 1e-9
        );
    }

    #[test]
    fn validate_rejects_duplicate_names() {
        let mut m = DnnModel::new("dup", 1);
        m.add_op(dense("fc", 4, 4), vec![]);
        m.add_op(dense("fc", 4, 4), vec![0]);
        assert!(m.validate().is_err());
    }
}
