//! Operator abstraction.
//!
//! Every DNN layer is modelled by the three quantities the co-optimization
//! framework actually needs:
//!
//! * forward+backward FLOPs per sample (drives the compute-time estimate),
//! * parameter bytes (drives AllReduce transfer sizes),
//! * output activation bytes per sample (drives model-parallel transfer
//!   sizes when consecutive operators land on different servers).
//!
//! Sizes assume 4-byte (fp32) parameters and activations, matching the
//! paper's DLRM arithmetic (e.g. the 22 GB model of Figure 1, §2.1).

use serde::{Deserialize, Serialize};

/// Bytes per parameter / activation element (fp32).
pub const BYTES_PER_ELEM: f64 = 4.0;

/// The kind of layer an [`Operator`] models, with its shape parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// Fully-connected layer: `in_features x out_features` weight matrix.
    Dense {
        /// Input feature count.
        in_features: usize,
        /// Output feature count.
        out_features: usize,
    },
    /// 2-D convolution.
    Conv2d {
        /// Input channels.
        in_channels: usize,
        /// Output channels.
        out_channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Output spatial height (= width assumed).
        out_size: usize,
    },
    /// Embedding table lookup: `rows x dim` table, `lookups` indices per
    /// sample.
    Embedding {
        /// Number of rows (vocabulary / id space).
        rows: usize,
        /// Embedding dimension (columns).
        dim: usize,
        /// Lookups per sample.
        lookups: usize,
    },
    /// One transformer encoder block (self-attention + FFN).
    TransformerBlock {
        /// Hidden size.
        hidden: usize,
        /// Sequence length.
        seq_len: usize,
        /// Attention heads (affects only bookkeeping; FLOPs depend on
        /// hidden/seq).
        heads: usize,
        /// Feed-forward inner dimension (usually 4×hidden).
        ffn_dim: usize,
    },
    /// Pooling / elementwise / normalisation layer: no parameters, small
    /// compute, passes activations through (possibly reduced).
    Pointwise {
        /// Output elements per sample.
        out_elems: usize,
        /// FLOPs per output element (e.g. ~5 for batch-norm + ReLU).
        flops_per_elem: f64,
    },
    /// Pairwise feature interaction (DLRM dot-product interaction).
    Interaction {
        /// Number of interacting feature vectors.
        num_features: usize,
        /// Dimension of each feature vector.
        dim: usize,
    },
    /// Loss / output layer placeholder with a fixed activation size.
    Loss {
        /// Output elements per sample (e.g. number of classes).
        out_elems: usize,
    },
}

/// A concrete operator instance in a model graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operator {
    /// Human-readable name, unique within a model.
    pub name: String,
    /// Layer kind and shape.
    pub kind: OpKind,
}

impl Operator {
    /// Create an operator.
    pub fn new(name: impl Into<String>, kind: OpKind) -> Self {
        Operator { name: name.into(), kind }
    }

    /// Trainable parameter count.
    pub fn param_count(&self) -> f64 {
        match &self.kind {
            OpKind::Dense { in_features, out_features } => {
                (*in_features as f64) * (*out_features as f64) + *out_features as f64
            }
            OpKind::Conv2d { in_channels, out_channels, kernel, .. } => {
                (*in_channels as f64) * (*out_channels as f64) * (*kernel as f64).powi(2)
                    + *out_channels as f64
            }
            OpKind::Embedding { rows, dim, .. } => (*rows as f64) * (*dim as f64),
            OpKind::TransformerBlock { hidden, ffn_dim, .. } => {
                // QKV + output projection: 4 * hidden^2; FFN: 2 * hidden * ffn_dim;
                // plus biases and layer norms (small, ignored at this granularity).
                4.0 * (*hidden as f64).powi(2) + 2.0 * (*hidden as f64) * (*ffn_dim as f64)
            }
            OpKind::Pointwise { .. } | OpKind::Interaction { .. } | OpKind::Loss { .. } => 0.0,
        }
    }

    /// Trainable parameter bytes (fp32).
    pub fn param_bytes(&self) -> f64 {
        self.param_count() * BYTES_PER_ELEM
    }

    /// Output activation elements per sample.
    pub fn activation_elems(&self) -> f64 {
        match &self.kind {
            OpKind::Dense { out_features, .. } => *out_features as f64,
            OpKind::Conv2d { out_channels, out_size, .. } => {
                (*out_channels as f64) * (*out_size as f64).powi(2)
            }
            OpKind::Embedding { dim, lookups, .. } => (*dim as f64) * (*lookups as f64),
            OpKind::TransformerBlock { hidden, seq_len, .. } => {
                (*hidden as f64) * (*seq_len as f64)
            }
            OpKind::Pointwise { out_elems, .. } => *out_elems as f64,
            OpKind::Interaction { num_features, dim, .. } => {
                // Dot-product interaction outputs the upper triangle of the
                // feature-pair similarity matrix concatenated with the dense
                // feature.
                let nf = *num_features as f64;
                nf * (nf - 1.0) / 2.0 + *dim as f64
            }
            OpKind::Loss { out_elems } => *out_elems as f64,
        }
    }

    /// Output activation bytes per sample (fp32).
    pub fn activation_bytes(&self) -> f64 {
        self.activation_elems() * BYTES_PER_ELEM
    }

    /// Forward-pass FLOPs per sample.
    pub fn forward_flops(&self) -> f64 {
        match &self.kind {
            OpKind::Dense { in_features, out_features } => {
                2.0 * (*in_features as f64) * (*out_features as f64)
            }
            OpKind::Conv2d { in_channels, out_channels, kernel, out_size } => {
                2.0 * (*in_channels as f64)
                    * (*out_channels as f64)
                    * (*kernel as f64).powi(2)
                    * (*out_size as f64).powi(2)
            }
            // Embedding lookups are memory bound; model a small constant cost
            // per looked-up element.
            OpKind::Embedding { dim, lookups, .. } => (*dim as f64) * (*lookups as f64),
            OpKind::TransformerBlock { hidden, seq_len, ffn_dim, .. } => {
                let h = *hidden as f64;
                let s = *seq_len as f64;
                let f = *ffn_dim as f64;
                // Projections: 4 * s * h^2 (x2 flops), attention scores + apply:
                // 2 * s^2 * h (x2), FFN: 2 * s * h * f (x2).
                2.0 * (4.0 * s * h * h + 2.0 * s * s * h + 2.0 * s * h * f)
            }
            OpKind::Pointwise { out_elems, flops_per_elem } => (*out_elems as f64) * flops_per_elem,
            OpKind::Interaction { num_features, dim, .. } => {
                let nf = *num_features as f64;
                2.0 * nf * nf * (*dim as f64)
            }
            OpKind::Loss { out_elems } => 5.0 * (*out_elems as f64),
        }
    }

    /// Forward + backward FLOPs per sample. Backpropagation costs roughly
    /// twice the forward pass (gradient w.r.t. inputs and w.r.t. weights).
    pub fn total_flops(&self) -> f64 {
        3.0 * self.forward_flops()
    }

    /// True if the operator has trainable parameters (and therefore
    /// participates in AllReduce when replicated).
    pub fn has_params(&self) -> bool {
        self.param_count() > 0.0
    }

    /// True if this operator is an embedding table (candidate for
    /// model-parallel placement in DLRM/NCF-style models).
    pub fn is_embedding(&self) -> bool {
        matches!(self.kind, OpKind::Embedding { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_params_and_flops() {
        let op = Operator::new("fc", OpKind::Dense { in_features: 1024, out_features: 512 });
        assert_eq!(op.param_count(), 1024.0 * 512.0 + 512.0);
        assert_eq!(op.forward_flops(), 2.0 * 1024.0 * 512.0);
        assert_eq!(op.activation_elems(), 512.0);
        assert!(op.has_params());
        assert!(!op.is_embedding());
    }

    #[test]
    fn embedding_matches_paper_sizing() {
        // §2.1: a 512 x 1e7 table is ~20.5 GB in fp32; four of them are the
        // "total size 22 GB" DLRM example (rest of the model adds the rest).
        let op = Operator::new("emb", OpKind::Embedding { rows: 10_000_000, dim: 512, lookups: 1 });
        let gib = op.param_bytes() / (1024.0 * 1024.0 * 1024.0);
        assert!(gib > 19.0 && gib < 20.0, "one table = {gib} GiB");
        assert!(op.is_embedding());
        assert_eq!(op.activation_elems(), 512.0);
    }

    #[test]
    fn conv_flops_scale_with_spatial_size() {
        let small = Operator::new(
            "c1",
            OpKind::Conv2d { in_channels: 64, out_channels: 64, kernel: 3, out_size: 28 },
        );
        let large = Operator::new(
            "c2",
            OpKind::Conv2d { in_channels: 64, out_channels: 64, kernel: 3, out_size: 56 },
        );
        assert!((large.forward_flops() / small.forward_flops() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn transformer_block_param_count_is_plausible() {
        // BERT-base block: hidden 768, ffn 3072 -> ~7.1M params.
        let op = Operator::new(
            "blk",
            OpKind::TransformerBlock { hidden: 768, seq_len: 128, heads: 12, ffn_dim: 3072 },
        );
        let m = op.param_count() / 1.0e6;
        assert!(m > 6.0 && m < 8.0, "block params = {m}M");
    }

    #[test]
    fn pointwise_and_loss_have_no_params() {
        let p = Operator::new("relu", OpKind::Pointwise { out_elems: 1000, flops_per_elem: 1.0 });
        let l = Operator::new("loss", OpKind::Loss { out_elems: 10 });
        assert!(!p.has_params());
        assert!(!l.has_params());
        assert_eq!(p.forward_flops(), 1000.0);
    }

    #[test]
    fn total_flops_is_three_times_forward() {
        let op = Operator::new("fc", OpKind::Dense { in_features: 10, out_features: 10 });
        assert_eq!(op.total_flops(), 3.0 * op.forward_flops());
    }

    #[test]
    fn interaction_output_is_pair_count_plus_dense() {
        let op = Operator::new("int", OpKind::Interaction { num_features: 27, dim: 128 });
        assert_eq!(op.activation_elems(), 27.0 * 26.0 / 2.0 + 128.0);
        assert_eq!(op.param_count(), 0.0);
    }
}
