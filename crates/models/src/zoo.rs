//! Builders for the six DNN models evaluated in the paper.

use crate::config::{
    BertConfig, CandleConfig, DlrmConfig, ModelPreset, NcfConfig, ResNetConfig, VggConfig,
};
use crate::graph::DnnModel;
use crate::op::{OpKind, Operator};
use serde::{Deserialize, Serialize};

/// The six workloads of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Deep Learning Recommendation Model.
    Dlrm,
    /// CANDLE Uno (cancer drug response MLP).
    Candle,
    /// BERT transformer encoder.
    Bert,
    /// Neural Collaborative Filtering.
    Ncf,
    /// ResNet-50 image classifier.
    ResNet50,
    /// VGG-16 image classifier.
    Vgg16,
}

impl ModelKind {
    /// All six evaluated models.
    pub fn all() -> [ModelKind; 6] {
        [
            ModelKind::Dlrm,
            ModelKind::Candle,
            ModelKind::Bert,
            ModelKind::Ncf,
            ModelKind::ResNet50,
            ModelKind::Vgg16,
        ]
    }

    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Dlrm => "DLRM",
            ModelKind::Candle => "CANDLE",
            ModelKind::Bert => "BERT",
            ModelKind::Ncf => "NCF",
            ModelKind::ResNet50 => "ResNet50",
            ModelKind::Vgg16 => "VGG",
        }
    }
}

/// Build one of the six models using the List 1 parameters for the requested
/// paper section.
pub fn build_model(kind: ModelKind, preset: ModelPreset) -> DnnModel {
    match (kind, preset) {
        (ModelKind::Dlrm, ModelPreset::Dedicated) => build_dlrm(&DlrmConfig::dedicated()),
        (ModelKind::Dlrm, ModelPreset::Shared) => build_dlrm(&DlrmConfig::shared()),
        (ModelKind::Dlrm, ModelPreset::Testbed) => build_dlrm(&DlrmConfig::testbed(64)),
        (ModelKind::Candle, ModelPreset::Dedicated) => build_candle(&CandleConfig::dedicated()),
        (ModelKind::Candle, ModelPreset::Shared) => build_candle(&CandleConfig::shared()),
        (ModelKind::Candle, ModelPreset::Testbed) => build_candle(&CandleConfig::testbed()),
        (ModelKind::Bert, ModelPreset::Dedicated) => build_bert(&BertConfig::dedicated()),
        (ModelKind::Bert, ModelPreset::Shared) => build_bert(&BertConfig::shared()),
        (ModelKind::Bert, ModelPreset::Testbed) => build_bert(&BertConfig::testbed()),
        (ModelKind::Ncf, _) => build_ncf(&NcfConfig::dedicated()),
        (ModelKind::ResNet50, ModelPreset::Testbed) => build_resnet50(&ResNetConfig::testbed()),
        (ModelKind::ResNet50, _) => build_resnet50(&ResNetConfig::dedicated()),
        (ModelKind::Vgg16, ModelPreset::Testbed) => build_vgg16(&VggConfig::testbed()),
        (ModelKind::Vgg16, _) => build_vgg16(&VggConfig::dedicated()),
    }
}

/// Build a DLRM: bottom (feature) MLP, embedding tables, dot-product
/// interaction, top (dense) MLP, loss.
pub fn build_dlrm(cfg: &DlrmConfig) -> DnnModel {
    let mut m = DnnModel::new("DLRM", cfg.batch_per_gpu);

    // Bottom MLP processing dense features.
    let mut prev = m.add_op(
        Operator::new(
            "bottom_mlp_0",
            OpKind::Dense {
                in_features: cfg.feature_layer_size,
                out_features: cfg.feature_layer_size,
            },
        ),
        vec![],
    );
    for i in 1..cfg.num_feature_layers {
        prev = m.add_op(
            Operator::new(
                format!("bottom_mlp_{i}"),
                OpKind::Dense {
                    in_features: cfg.feature_layer_size,
                    out_features: if i + 1 == cfg.num_feature_layers {
                        cfg.embedding_dim
                    } else {
                        cfg.feature_layer_size
                    },
                },
            ),
            vec![prev],
        );
    }
    let bottom_out = prev;

    // Embedding tables (the model-parallel candidates).
    let mut table_ids = Vec::new();
    for t in 0..cfg.num_tables {
        let id = m.add_op(
            Operator::new(
                format!("emb_table_{t}"),
                OpKind::Embedding { rows: cfg.embedding_rows, dim: cfg.embedding_dim, lookups: 1 },
            ),
            vec![],
        );
        table_ids.push(id);
    }

    // Dot-product feature interaction over table outputs + bottom MLP output.
    let mut interaction_inputs = table_ids.clone();
    interaction_inputs.push(bottom_out);
    let interaction = m.add_op(
        Operator::new(
            "interaction",
            OpKind::Interaction { num_features: cfg.num_tables + 1, dim: cfg.embedding_dim },
        ),
        interaction_inputs,
    );

    // Top MLP.
    let interaction_out = m.ops[interaction].op.activation_elems() as usize;
    let mut prev = m.add_op(
        Operator::new(
            "top_mlp_0",
            OpKind::Dense { in_features: interaction_out, out_features: cfg.dense_layer_size },
        ),
        vec![interaction],
    );
    for i in 1..cfg.num_dense_layers {
        prev = m.add_op(
            Operator::new(
                format!("top_mlp_{i}"),
                OpKind::Dense {
                    in_features: cfg.dense_layer_size,
                    out_features: cfg.dense_layer_size,
                },
            ),
            vec![prev],
        );
    }
    m.add_op(Operator::new("loss", OpKind::Loss { out_elems: 1 }), vec![prev]);
    m
}

/// Build CANDLE Uno: parallel feature-encoder MLPs feeding a deep dense
/// tower.
pub fn build_candle(cfg: &CandleConfig) -> DnnModel {
    let mut m = DnnModel::new("CANDLE", cfg.batch_per_gpu);
    // Feature encoder layers (sequential MLP over molecular descriptors).
    let mut prev = m.add_op(
        Operator::new(
            "feature_0",
            OpKind::Dense {
                in_features: cfg.feature_layer_size,
                out_features: cfg.feature_layer_size,
            },
        ),
        vec![],
    );
    for i in 1..cfg.num_feature_layers {
        prev = m.add_op(
            Operator::new(
                format!("feature_{i}"),
                OpKind::Dense {
                    in_features: cfg.feature_layer_size,
                    out_features: cfg.feature_layer_size,
                },
            ),
            vec![prev],
        );
    }
    // Dense tower.
    for i in 0..cfg.num_dense_layers {
        prev = m.add_op(
            Operator::new(
                format!("dense_{i}"),
                OpKind::Dense {
                    in_features: if i == 0 { cfg.feature_layer_size } else { cfg.dense_layer_size },
                    out_features: cfg.dense_layer_size,
                },
            ),
            vec![prev],
        );
    }
    m.add_op(Operator::new("loss", OpKind::Loss { out_elems: 1 }), vec![prev]);
    m
}

/// Build a BERT encoder: token embedding, `num_blocks` transformer blocks,
/// pooler + loss.
pub fn build_bert(cfg: &BertConfig) -> DnnModel {
    let mut m = DnnModel::new("BERT", cfg.batch_per_gpu);
    // WordPiece vocabulary of 30k projected to the hidden size.
    let emb = m.add_op(
        Operator::new(
            "token_embedding",
            OpKind::Embedding { rows: 30_522, dim: cfg.hidden, lookups: cfg.seq_len },
        ),
        vec![],
    );
    let mut prev = emb;
    for b in 0..cfg.num_blocks {
        prev = m.add_op(
            Operator::new(
                format!("encoder_block_{b}"),
                OpKind::TransformerBlock {
                    hidden: cfg.hidden,
                    seq_len: cfg.seq_len,
                    heads: cfg.heads,
                    ffn_dim: 4 * cfg.hidden,
                },
            ),
            vec![prev],
        );
    }
    let pooler = m.add_op(
        Operator::new(
            "pooler",
            OpKind::Dense { in_features: cfg.hidden, out_features: cfg.embed_size },
        ),
        vec![prev],
    );
    m.add_op(Operator::new("loss", OpKind::Loss { out_elems: 2 }), vec![pooler]);
    m
}

/// Build NCF: MF and MLP branch embeddings for users and items, an MLP
/// tower, and a fusion layer.
pub fn build_ncf(cfg: &NcfConfig) -> DnnModel {
    let mut m = DnnModel::new("NCF", cfg.batch_per_gpu);
    let mut emb_ids = Vec::new();
    for t in 0..cfg.user_tables_per_branch {
        emb_ids.push(m.add_op(
            Operator::new(
                format!("user_mf_{t}"),
                OpKind::Embedding { rows: cfg.users_per_table, dim: cfg.mf_dim, lookups: 1 },
            ),
            vec![],
        ));
        emb_ids.push(m.add_op(
            Operator::new(
                format!("user_mlp_{t}"),
                OpKind::Embedding { rows: cfg.users_per_table, dim: cfg.mlp_dim, lookups: 1 },
            ),
            vec![],
        ));
    }
    for t in 0..cfg.item_tables_per_branch {
        emb_ids.push(m.add_op(
            Operator::new(
                format!("item_mf_{t}"),
                OpKind::Embedding { rows: cfg.items_per_table, dim: cfg.mf_dim, lookups: 1 },
            ),
            vec![],
        ));
        emb_ids.push(m.add_op(
            Operator::new(
                format!("item_mlp_{t}"),
                OpKind::Embedding { rows: cfg.items_per_table, dim: cfg.mlp_dim, lookups: 1 },
            ),
            vec![],
        ));
    }
    // Concatenate MLP-branch embeddings and run the tower.
    let concat = m.add_op(
        Operator::new(
            "concat",
            OpKind::Pointwise { out_elems: cfg.mlp_dim * 2, flops_per_elem: 1.0 },
        ),
        emb_ids.clone(),
    );
    let mut prev = m.add_op(
        Operator::new(
            "mlp_0",
            OpKind::Dense { in_features: cfg.mlp_dim * 2, out_features: cfg.dense_layer_size },
        ),
        vec![concat],
    );
    for i in 1..cfg.num_dense_layers {
        prev = m.add_op(
            Operator::new(
                format!("mlp_{i}"),
                OpKind::Dense {
                    in_features: cfg.dense_layer_size,
                    out_features: cfg.dense_layer_size,
                },
            ),
            vec![prev],
        );
    }
    // Fuse the MF dot product with the MLP tower output.
    let fusion = m.add_op(
        Operator::new(
            "neumf_fusion",
            OpKind::Dense { in_features: cfg.dense_layer_size + cfg.mf_dim, out_features: 1 },
        ),
        vec![prev],
    );
    m.add_op(Operator::new("loss", OpKind::Loss { out_elems: 1 }), vec![fusion]);
    m
}

/// Build ResNet-50 at 224x224 input: the standard conv1 + four stages of
/// bottleneck blocks (3, 4, 6, 3) + final FC.
pub fn build_resnet50(cfg: &ResNetConfig) -> DnnModel {
    let mut m = DnnModel::new("ResNet50", cfg.batch_per_gpu);
    let mut prev = m.add_op(
        Operator::new(
            "conv1",
            OpKind::Conv2d { in_channels: 3, out_channels: 64, kernel: 7, out_size: 112 },
        ),
        vec![],
    );
    // (blocks, mid_channels, out_channels, spatial)
    let stages: [(usize, usize, usize, usize); 4] =
        [(3, 64, 256, 56), (4, 128, 512, 28), (6, 256, 1024, 14), (3, 512, 2048, 7)];
    let mut in_ch = 64;
    for (s, &(blocks, mid, out, size)) in stages.iter().enumerate() {
        for b in 0..blocks {
            let c_in = if b == 0 { in_ch } else { out };
            prev = m.add_op(
                Operator::new(
                    format!("stage{}_block{}_conv1x1a", s + 2, b),
                    OpKind::Conv2d {
                        in_channels: c_in,
                        out_channels: mid,
                        kernel: 1,
                        out_size: size,
                    },
                ),
                vec![prev],
            );
            prev = m.add_op(
                Operator::new(
                    format!("stage{}_block{}_conv3x3", s + 2, b),
                    OpKind::Conv2d {
                        in_channels: mid,
                        out_channels: mid,
                        kernel: 3,
                        out_size: size,
                    },
                ),
                vec![prev],
            );
            prev = m.add_op(
                Operator::new(
                    format!("stage{}_block{}_conv1x1b", s + 2, b),
                    OpKind::Conv2d {
                        in_channels: mid,
                        out_channels: out,
                        kernel: 1,
                        out_size: size,
                    },
                ),
                vec![prev],
            );
        }
        in_ch = out;
    }
    let pool = m.add_op(
        Operator::new("global_pool", OpKind::Pointwise { out_elems: 2048, flops_per_elem: 49.0 }),
        vec![prev],
    );
    let fc = m.add_op(
        Operator::new("fc", OpKind::Dense { in_features: 2048, out_features: 1000 }),
        vec![pool],
    );
    m.add_op(Operator::new("loss", OpKind::Loss { out_elems: 1000 }), vec![fc]);
    m
}

/// Build VGG-16 at 224x224 input: 13 conv layers + 3 FC layers.
pub fn build_vgg16(cfg: &VggConfig) -> DnnModel {
    let mut m = DnnModel::new("VGG", cfg.batch_per_gpu);
    // (in_channels, out_channels, out_size) per conv layer.
    let convs: [(usize, usize, usize); 13] = [
        (3, 64, 224),
        (64, 64, 224),
        (64, 128, 112),
        (128, 128, 112),
        (128, 256, 56),
        (256, 256, 56),
        (256, 256, 56),
        (256, 512, 28),
        (512, 512, 28),
        (512, 512, 28),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
    ];
    let mut prev = None;
    for (i, &(cin, cout, size)) in convs.iter().enumerate() {
        let deps = prev.map(|p| vec![p]).unwrap_or_default();
        let id = m.add_op(
            Operator::new(
                format!("conv_{i}"),
                OpKind::Conv2d { in_channels: cin, out_channels: cout, kernel: 3, out_size: size },
            ),
            deps,
        );
        prev = Some(id);
    }
    let flatten = m.add_op(
        Operator::new("flatten", OpKind::Pointwise { out_elems: 512 * 7 * 7, flops_per_elem: 1.0 }),
        vec![prev.unwrap()],
    );
    let fc1 = m.add_op(
        Operator::new("fc1", OpKind::Dense { in_features: 512 * 7 * 7, out_features: 4096 }),
        vec![flatten],
    );
    let fc2 = m.add_op(
        Operator::new("fc2", OpKind::Dense { in_features: 4096, out_features: 4096 }),
        vec![fc1],
    );
    let fc3 = m.add_op(
        Operator::new("fc3", OpKind::Dense { in_features: 4096, out_features: 1000 }),
        vec![fc2],
    );
    m.add_op(Operator::new("loss", OpKind::Loss { out_elems: 1000 }), vec![fc3]);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelPreset;

    const GB: f64 = 1.0e9;

    #[test]
    fn all_models_build_and_validate() {
        for kind in ModelKind::all() {
            for preset in [ModelPreset::Dedicated, ModelPreset::Shared, ModelPreset::Testbed] {
                let m = build_model(kind, preset);
                m.validate().unwrap();
                assert!(m.num_ops() > 3, "{} has too few ops", m.name);
                assert!(m.total_param_bytes() > 0.0);
                assert!(m.flops_per_sample() > 0.0);
            }
        }
    }

    #[test]
    fn vgg16_has_roughly_138m_params() {
        let m = build_vgg16(&VggConfig::dedicated());
        let params = m.total_param_bytes() / 4.0 / 1.0e6;
        assert!(params > 130.0 && params < 145.0, "VGG16 params = {params}M");
    }

    #[test]
    fn resnet50_has_roughly_25m_params() {
        let m = build_resnet50(&ResNetConfig::dedicated());
        let params = m.total_param_bytes() / 4.0 / 1.0e6;
        // Conv-only accounting (no batch-norm affine / downsample shortcuts)
        // lands slightly under torchvision's 25.6M.
        assert!(params > 19.0 && params < 28.0, "ResNet50 params = {params}M");
    }

    #[test]
    fn dlrm_motivating_example_is_about_22_gb() {
        let m = build_dlrm(&DlrmConfig::motivating_example());
        let gb = m.total_param_bytes() / GB;
        assert!(gb > 20.0 && gb < 24.0, "DLRM motivating example = {gb} GB");
        assert_eq!(m.embedding_ops().len(), 4);
    }

    #[test]
    fn dlrm_dedicated_embeddings_dominate() {
        let m = build_dlrm(&DlrmConfig::dedicated());
        assert_eq!(m.embedding_ops().len(), 64);
        assert!(m.embedding_param_bytes() > 10.0 * m.dense_param_bytes());
    }

    #[test]
    fn bert_dedicated_parameter_count_is_plausible() {
        // 12 blocks of hidden 1024 -> ~150M + embeddings ~31M.
        let m = build_bert(&BertConfig::dedicated());
        let params = m.total_param_bytes() / 4.0 / 1.0e6;
        assert!(params > 120.0 && params < 250.0, "BERT params = {params}M");
    }

    #[test]
    fn ncf_has_128_embedding_tables() {
        let m = build_ncf(&NcfConfig::dedicated());
        assert_eq!(m.embedding_ops().len(), 128);
    }

    #[test]
    fn candle_dedicated_is_mlp_heavy() {
        let m = build_candle(&CandleConfig::dedicated());
        // 24 layers of 16384x16384 fp32 ≈ 24 GB of parameters.
        let gb = m.total_param_bytes() / GB;
        assert!(gb > 20.0, "CANDLE params = {gb} GB");
        assert!(m.embedding_ops().is_empty());
    }

    #[test]
    fn compute_ranking_resnet_lighter_than_vgg() {
        let vgg = build_vgg16(&VggConfig::dedicated());
        let resnet = build_resnet50(&ResNetConfig::dedicated());
        assert!(vgg.flops_per_sample() > resnet.flops_per_sample());
        // VGG also has far more parameters (communication heavy vs ResNet).
        assert!(vgg.total_param_bytes() > 3.0 * resnet.total_param_bytes());
    }

    #[test]
    fn model_kind_names_match_paper() {
        assert_eq!(ModelKind::Dlrm.name(), "DLRM");
        assert_eq!(ModelKind::Vgg16.name(), "VGG");
        assert_eq!(ModelKind::all().len(), 6);
    }
}
