//! DNN model zoo for the TopoOpt reproduction.
//!
//! The paper evaluates six real-world models — DLRM, CANDLE (Uno), BERT,
//! NCF, ResNet-50 and VGG — with the configurations listed in List 1
//! (Appendix D). This crate provides:
//!
//! * [`op`] — an operator abstraction with analytical FLOP, parameter-byte
//!   and activation-byte counts,
//! * [`graph`] — DNN models as DAGs of operators,
//! * [`zoo`] — builders for the six models,
//! * [`config`] — the exact List 1 parameterisations used in §5.3, §5.4,
//!   §5.6 and the §6 testbed.

pub mod config;
pub mod graph;
pub mod op;
pub mod zoo;

pub use config::{
    BertConfig, CandleConfig, DlrmConfig, ModelPreset, NcfConfig, ResNetConfig, VggConfig,
};
pub use graph::{DnnModel, OpId, OpNode};
pub use op::{OpKind, Operator};
pub use zoo::{build_model, ModelKind};
